"""Ablation A1 — which Fiedler-vector solver to use (DESIGN.md design choice).

The paper computes the second Laplacian eigenvector with Lanczos or with the
multilevel scheme; SciPy offers LOBPCG and shift-invert ARPACK.  This harness
times every method on unstructured airfoil meshes of increasing size and
records the eigenvalue and residual each produces, quantifying the
quality/time trade-off behind the ``method="auto"`` policy.

Results are written to ``benchmarks/results/ablation_eigensolvers.txt``.
"""

import pytest

from common import TableCollector, timed_once
from repro.collections.generators import airfoil_pattern
from repro.eigen.fiedler import fiedler_vector

SIZES = (400, 1200, 3000)
METHODS = ("lanczos", "multilevel", "lobpcg", "eigsh")

_collector = TableCollector(
    "ablation_eigensolvers.txt",
    "Ablation A1 — Fiedler solver comparison on airfoil meshes",
    ["n_points", "n", "method", "eigenvalue", "residual", "time_s", "converged"],
)

_patterns = {}


def _pattern(n_points):
    if n_points not in _patterns:
        _patterns[n_points] = airfoil_pattern(n_points, seed=4)
    return _patterns[n_points]


@pytest.mark.parametrize(
    "case",
    [(n, m) for n in SIZES for m in METHODS],
    ids=lambda case: f"n{case[0]}-{case[1]}",
)
def test_ablation_eigensolver(benchmark, case):
    n_points, method = case
    benchmark.group = f"ablation-eigensolver:n{n_points}"
    pattern = _pattern(n_points)
    result, seconds = timed_once(
        benchmark, lambda: fiedler_vector(pattern, method=method, rng=1)
    )
    _collector.add(
        n_points=n_points,
        n=pattern.n,
        method=method,
        eigenvalue=float(result.eigenvalue),
        residual=float(result.residual_norm),
        time_s=seconds,
        converged=str(result.converged),
    )
    benchmark.extra_info.update(
        {"method": method, "n": pattern.n, "eigenvalue": result.eigenvalue}
    )
    assert result.eigenvalue > 0
