"""Ablation A3 — local post-processing of the spectral ordering (Section 4).

The paper suggests "limited use of a local reordering strategy based on the
adjacency structure to improve the envelope parameters obtained from the
spectral method".  This harness compares, on the miscellaneous surrogate
suite:

* the plain spectral ordering,
* the hybrid spectral + adjacency refinement (:mod:`repro.orderings.hybrid`),
* Sloan's algorithm (the strongest classical local method), and
* RCM (the baseline most packages ship).

Results are written to ``benchmarks/results/ablation_hybrid.txt``.
"""

import pytest

from common import TableCollector, cached_problem, timed_once
from repro.envelope.metrics import envelope_size, envelope_work
from repro.orderings.registry import ORDERING_ALGORITHMS

PROBLEMS = ("CAN1072", "POW9", "BLKHOLE", "DWT2680", "SSTMODEL", "BARTH4")
ALGORITHMS = ("spectral", "hybrid", "sloan", "rcm")

_collector = TableCollector(
    "ablation_hybrid.txt",
    "Ablation A3 — spectral vs hybrid (spectral + local) vs Sloan vs RCM",
    ["problem", "n", "algorithm", "envelope", "ework", "bandwidth", "time_s"],
)


@pytest.mark.parametrize(
    "case",
    [(p, a) for p in PROBLEMS for a in ALGORITHMS],
    ids=lambda case: f"{case[0]}-{case[1]}",
)
def test_ablation_hybrid(benchmark, case):
    problem, algorithm = case
    benchmark.group = f"ablation-hybrid:{problem}"
    pattern = cached_problem(problem)
    ordering, seconds = timed_once(
        benchmark, lambda: ORDERING_ALGORITHMS[algorithm](pattern)
    )
    from repro.envelope.metrics import bandwidth

    _collector.add(
        problem=problem,
        n=pattern.n,
        algorithm=algorithm.upper(),
        envelope=envelope_size(pattern, ordering.perm),
        ework=envelope_work(pattern, ordering.perm),
        bandwidth=bandwidth(pattern, ordering.perm),
        time_s=seconds,
    )
    assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
