"""Ablation A2 — multilevel solver parameters (DESIGN.md design choice).

Section 3 of the paper contracts "until the size of the vertex set is less
than some number (typically 100)" and refines with "one or perhaps two" RQI
iterations.  This harness sweeps the coarsest-graph size and the per-level
RQI step count on an airfoil mesh and records quality (eigenvalue, residual)
and cost, justifying the library defaults (coarsest_size=100, rqi_steps=2).

Results are written to ``benchmarks/results/ablation_multilevel.txt``.
"""

import pytest

from common import TableCollector, timed_once
from repro.collections.generators import airfoil_pattern
from repro.eigen.multilevel import multilevel_fiedler

COARSEST_SIZES = (25, 100, 400)
RQI_STEPS = (1, 2, 4)
N_POINTS = 2500

_collector = TableCollector(
    "ablation_multilevel.txt",
    f"Ablation A2 — multilevel parameters (airfoil mesh, {N_POINTS} points)",
    ["coarsest_size", "rqi_steps", "levels", "eigenvalue", "residual", "rqi_total", "time_s"],
)

_pattern_cache = {}


def _pattern():
    if "p" not in _pattern_cache:
        _pattern_cache["p"] = airfoil_pattern(N_POINTS, seed=4)
    return _pattern_cache["p"]


@pytest.mark.parametrize(
    "case",
    [(c, r) for c in COARSEST_SIZES for r in RQI_STEPS],
    ids=lambda case: f"coarse{case[0]}-rqi{case[1]}",
)
def test_ablation_multilevel(benchmark, case):
    coarsest_size, rqi_steps = case
    benchmark.group = "ablation-multilevel"
    pattern = _pattern()
    result, seconds = timed_once(
        benchmark,
        lambda: multilevel_fiedler(
            pattern, coarsest_size=coarsest_size, rqi_steps=rqi_steps, rng=1
        ),
    )
    _collector.add(
        coarsest_size=coarsest_size,
        rqi_steps=rqi_steps,
        levels=result.levels,
        eigenvalue=float(result.eigenvalue),
        residual=float(result.residual_norm),
        rqi_total=result.refinement_iterations,
        time_s=seconds,
    )
    benchmark.extra_info.update(
        {"coarsest_size": coarsest_size, "rqi_steps": rqi_steps, "levels": result.levels}
    )
    assert result.eigenvalue > 0
