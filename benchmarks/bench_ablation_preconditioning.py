"""Ablation A5 — envelope orderings as IC(0)/PCG preorderings (intro motivation).

The paper's introduction motivates envelope-reducing orderings beyond direct
envelope factorization: "The RCM ordering has been found to be an effective
preordering in computing incomplete factorization preconditioners for
preconditioned conjugate gradients methods."  This harness quantifies that on
the surrogate problems: for each ordering it builds IC(0) on the reordered
matrix and runs PCG, recording the iteration count and times.

Results are written to ``benchmarks/results/ablation_preconditioning.txt``.
"""

import numpy as np
import pytest

from common import TableCollector, cached_problem
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.solvers.experiment import preconditioned_cg_experiment

PROBLEMS = ("CAN1072", "DWT2680", "BARTH4")
ORDERINGS = ("natural", "rcm", "spectral", "sloan")

_collector = TableCollector(
    "ablation_preconditioning.txt",
    "Ablation A5 — IC(0)-preconditioned CG iteration counts per preordering",
    ["problem", "n", "ordering", "pcg_iterations", "plain_cg_iterations",
     "setup_time_s", "solve_time_s"],
)

_plain_iterations: dict[str, int] = {}


@pytest.mark.parametrize(
    "case",
    [(p, o) for p in PROBLEMS for o in ORDERINGS],
    ids=lambda case: f"{case[0]}-{case[1]}",
)
def test_ablation_preconditioning(benchmark, case):
    problem, ordering_name = case
    benchmark.group = f"ablation-pcg:{problem}"
    pattern = cached_problem(problem)
    matrix = pattern.to_scipy("spd")
    rng = np.random.default_rng(0)
    b = rng.standard_normal(pattern.n)

    ordering = None if ordering_name == "natural" else ORDERING_ALGORITHMS[ordering_name](pattern)

    if problem not in _plain_iterations:
        plain = preconditioned_cg_experiment(matrix, b, None, preconditioner="none", tol=1e-8)
        _plain_iterations[problem] = plain.iterations

    def run():
        return preconditioned_cg_experiment(matrix, b, ordering, preconditioner="ic0", tol=1e-8)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _collector.add(
        problem=problem,
        n=pattern.n,
        ordering=ordering_name,
        pcg_iterations=result.iterations,
        plain_cg_iterations=_plain_iterations[problem],
        setup_time_s=result.setup_time,
        solve_time_s=result.solve_time,
    )
    benchmark.extra_info.update({"ordering": ordering_name, "iterations": result.iterations})
    assert result.cg.converged
    # the preconditioner must actually help relative to unpreconditioned CG
    assert result.iterations <= _plain_iterations[problem]
