"""Ablation A4 — the quadratic factorization-cost law behind Table 4.4.

The paper concludes from Table 4.4 that envelope-factorization time grows
roughly quadratically with the envelope size (per row), so halving the
envelope much more than halves the factorization cost.  This harness factors
a family of grid problems of increasing size under the spectral and RCM
orderings, recording envelope size, the operation count of
:func:`repro.factor.envelope_cholesky`, and wall-clock time, so that the
cost-vs-envelope relationship can be fit.

Results are written to ``benchmarks/results/ablation_scaling.txt``.
"""

import pytest

from common import TableCollector, timed_once
from repro.collections.meshes import grid2d_pattern
from repro.envelope.metrics import envelope_size
from repro.factor.cholesky import envelope_cholesky, estimate_factor_work
from repro.orderings.registry import ORDERING_ALGORITHMS

GRIDS = ((20, 20), (30, 30), (40, 40))
ALGORITHMS = ("spectral", "rcm")

_collector = TableCollector(
    "ablation_scaling.txt",
    "Ablation A4 — factorization cost vs envelope size (9-point grids)",
    ["grid", "n", "algorithm", "envelope", "est_work", "factor_ops", "factor_time_s"],
)

_patterns = {}


def _pattern(shape):
    if shape not in _patterns:
        _patterns[shape] = grid2d_pattern(*shape, stencil=9)
    return _patterns[shape]


@pytest.mark.parametrize(
    "case",
    [(g, a) for g in GRIDS for a in ALGORITHMS],
    ids=lambda case: f"{case[0][0]}x{case[0][1]}-{case[1]}",
)
def test_ablation_scaling(benchmark, case):
    shape, algorithm = case
    benchmark.group = f"ablation-scaling:{shape[0]}x{shape[1]}"
    pattern = _pattern(shape)
    matrix = pattern.to_scipy("spd")
    ordering = ORDERING_ALGORITHMS[algorithm](pattern)
    chol, seconds = timed_once(
        benchmark, lambda: envelope_cholesky(matrix, perm=ordering.perm)
    )
    _collector.add(
        grid=f"{shape[0]}x{shape[1]}",
        n=pattern.n,
        algorithm=algorithm.upper(),
        envelope=envelope_size(pattern, ordering.perm),
        est_work=estimate_factor_work(pattern, ordering.perm),
        factor_ops=chol.operations,
        factor_time_s=seconds,
    )
    assert chol.operations > 0
