"""Figures 4.1-4.5 — the BARTH4 structure under the five orderings.

The paper's figures are dot plots of the BARTH4 matrix under the original
ordering and the GPS, GK, RCM and SPECTRAL reorderings.  This harness
benchmarks the reordering + structure-rendering pipeline for each figure and
writes the ASCII spy plots plus the quantitative band profiles to
``benchmarks/results/figures_4_1_to_4_5.txt`` — the numbers that capture what
the figures show (local methods: narrow uniform band; spectral: smaller
envelope with a wider, bowed profile).

Run with::

    pytest benchmarks/bench_figures_4_1_to_4_5.py --benchmark-only
"""

from pathlib import Path

import pytest

from common import RESULTS_DIR, bench_scale, cached_problem
from repro.analysis.spy import ascii_spy, band_profile, density_grid
from repro.orderings.registry import ORDERING_ALGORITHMS

FIGURES = [
    ("figure_4_1", "original", None),
    ("figure_4_2", "gps", "gps"),
    ("figure_4_3", "gk", "gk"),
    ("figure_4_4", "rcm", "rcm"),
    ("figure_4_5", "spectral", "spectral"),
]

_sections: dict[str, str] = {}


def _write_figures_file() -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = Path(RESULTS_DIR) / "figures_4_1_to_4_5.txt"
    header = (
        f"Figures 4.1-4.5 — BARTH4 surrogate structure plots (scale={bench_scale()})\n"
        + "=" * 72
        + "\n"
    )
    body = "\n\n".join(_sections[key] for key, _, _ in FIGURES if key in _sections)
    path.write_text(header + body + "\n")


@pytest.mark.parametrize("figure", FIGURES, ids=lambda f: f[0])
def test_figures_4_1_to_4_5(benchmark, figure):
    key, label, algorithm_name = figure
    benchmark.group = "figures4.1-4.5"
    pattern = cached_problem("BARTH4")

    def render():
        perm = None
        if algorithm_name is not None:
            perm = ORDERING_ALGORITHMS[algorithm_name](pattern).perm
        profile = band_profile(pattern, perm)
        art = ascii_spy(pattern, perm, resolution=48)
        grid = density_grid(pattern, perm, resolution=32)
        return perm, profile, art, grid

    perm, profile, art, grid = benchmark.pedantic(render, rounds=1, iterations=1)

    _sections[key] = (
        f"{key.replace('_', ' ').title()} — {label.upper()} ordering\n"
        f"n={profile['n']}  envelope={profile['envelope_size']:,}  "
        f"bandwidth={profile['bandwidth']:,}  mean row width={profile['mean_row_width']:.1f}  "
        f"p95 row width={profile['p95_row_width']:.0f}\n" + art
    )
    _write_figures_file()

    benchmark.extra_info.update(
        {
            "figure": key,
            "ordering": label,
            "envelope": profile["envelope_size"],
            "bandwidth": profile["bandwidth"],
        }
    )
    assert grid.sum() == pattern.nnz
