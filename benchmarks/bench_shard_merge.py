#!/usr/bin/env python
"""Sharded-suite scaling of the batch engine (`repro suite --shard K/N`),
round-robin vs the cost-balanced LPT planner (`--balance cost`).

Simulates an N-machine run on one box twice: once with the deterministic
round-robin shards and once with the shards planned by
:func:`repro.batch.sched.plan_shards` from a cost model fit on the reference
run.  Both shard sets are merged (:func:`repro.batch.results.merge_results`)
and verified *byte-identical* in canonical form to the single-machine run;
the per-shard wall times give the makespan an actual cluster would see —
the before/after number the scheduler exists to improve.  A summary is
written to ``benchmarks/results/shard_merge.txt``.

Run with::

    PYTHONPATH=src python benchmarks/bench_shard_merge.py [--shards 4]
        [--scale 0.05] [--table 4.2] [--jobs 1]

``--jobs`` sets the worker processes *within* each shard (the two levels of
parallelism compose: N machines x ``--jobs`` workers each).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.batch import CostModel, merge_results, plan_shards, run_suite
from repro.batch.tasks import build_tasks
from repro.collections.registry import available_problems
from repro.orderings.registry import PAPER_ALGORITHMS

RESULTS_PATH = Path(__file__).parent / "results" / "shard_merge.txt"


def run_split(problems, scale, jobs, shards, balance, cost_model, reference):
    """Run all N shards of one split sequentially; verify the merge; return
    the per-shard wall times."""
    results = []
    for k in range(1, shards + 1):
        shard = run_suite(problems, scale=scale, n_jobs=jobs,
                          shard=(k, shards), balance=balance,
                          cost_model=cost_model, keep_orderings=False)
        results.append(shard)
        print(f"  [{balance:>10}] shard {k}/{shards}: {len(shard.records):3d} "
              f"task(s) in {shard.wall_time_s:.2f} s")
    merged = merge_results(results)
    if merged.to_json(include_timing=False) != reference.to_json(include_timing=False):
        print(f"ERROR: {balance} shards merged != single-machine run:",
              file=sys.stderr)
        for line in reference.diff(merged):
            print(f"  {line}", file=sys.stderr)
        raise SystemExit(1)
    return [shard.wall_time_s for shard in results]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--table", default="4.2", choices=["4.1", "4.2", "4.3"])
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    problems = available_problems(args.table)
    print(f"Table {args.table} suite ({len(problems)} problems x 4 algorithms, "
          f"scale={args.scale}) over {args.shards} shard(s)")

    print("single-machine reference run ...")
    reference = run_suite(problems, scale=args.scale, n_jobs=args.jobs,
                          keep_orderings=False)
    print(f"  wall time: {reference.wall_time_s:.2f} s")

    model = CostModel()
    model.observe_suite(reference)
    tasks = build_tasks(problems, PAPER_ALGORITHMS, scale=args.scale)
    plan = plan_shards(tasks, args.shards, model)

    rr_times = run_split(problems, args.scale, args.jobs, args.shards,
                         "roundrobin", None, reference)
    lpt_times = run_split(problems, args.scale, args.jobs, args.shards,
                          "cost", model, reference)

    rr_makespan, lpt_makespan = max(rr_times), max(lpt_times)
    total = sum(lpt_times)
    lines = [
        f"Shard scaling — Table {args.table}, scale={args.scale}, "
        f"{len(reference.records)} tasks, {args.shards} shard(s), "
        f"jobs/shard={args.jobs}",
        f"single machine          : {reference.wall_time_s:8.2f} s",
        f"round-robin makespan    : {rr_makespan:8.2f} s  (before)",
        f"cost-balanced makespan  : {lpt_makespan:8.2f} s  (after, "
        f"{plan.strategy} plan)",
        f"makespan improvement    : {rr_makespan / lpt_makespan:8.2f} x",
        f"planner estimate        : {plan.makespan:8.2f} s vs round-robin "
        f"{plan.round_robin_makespan:.2f} s",
        f"sum of shards           : {total:8.2f} s  (total compute)",
        f"ideal makespan          : {reference.wall_time_s / args.shards:8.2f} s",
        f"balance efficiency      : {total / (args.shards * lpt_makespan):8.2%}",
        "merged == single-machine (canonical form): yes, for both splits",
    ]
    print("\n".join(lines))
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text("\n".join(lines) + "\n")
    print(f"summary written to {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
