#!/usr/bin/env python
"""Sharded-suite scaling of the batch engine (`repro suite --shard K/N`).

Simulates an N-machine run on one box: executes the N round-robin shards of
one paper table's ``problems x algorithms`` cross-product sequentially,
merges the artifacts (:func:`repro.batch.results.merge_results`), verifies
that the merged result is *byte-identical* in canonical form to a
single-machine run, and reports the per-shard wall times — the balance of
the round-robin partition is what an actual cluster's makespan would be.
A summary is written to ``benchmarks/results/shard_merge.txt``.

Run with::

    PYTHONPATH=src python benchmarks/bench_shard_merge.py [--shards 4]
        [--scale 0.05] [--table 4.2] [--jobs 1]

``--jobs`` sets the worker processes *within* each shard (the two levels of
parallelism compose: N machines x ``--jobs`` workers each).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.batch import merge_results, run_suite
from repro.collections.registry import available_problems

RESULTS_PATH = Path(__file__).parent / "results" / "shard_merge.txt"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--table", default="4.2", choices=["4.1", "4.2", "4.3"])
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    problems = available_problems(args.table)
    print(f"Table {args.table} suite ({len(problems)} problems x 4 algorithms, "
          f"scale={args.scale}) over {args.shards} shard(s)")

    print("single-machine reference run ...")
    reference = run_suite(problems, scale=args.scale, n_jobs=args.jobs,
                          keep_orderings=False)
    print(f"  wall time: {reference.wall_time_s:.2f} s")

    shards = []
    for k in range(1, args.shards + 1):
        shard = run_suite(problems, scale=args.scale, n_jobs=args.jobs,
                          shard=(k, args.shards), keep_orderings=False)
        shards.append(shard)
        print(f"  shard {k}/{args.shards}: {len(shard.records):3d} task(s) "
              f"in {shard.wall_time_s:.2f} s")

    merged = merge_results(shards)
    identical = (merged.to_json(include_timing=False)
                 == reference.to_json(include_timing=False))
    if not identical:
        print("ERROR: merged shards differ from the single-machine run:",
              file=sys.stderr)
        for line in reference.diff(merged):
            print(f"  {line}", file=sys.stderr)
        return 1

    makespan = max(shard.wall_time_s for shard in shards)
    total = sum(shard.wall_time_s for shard in shards)
    lines = [
        f"Shard scaling — Table {args.table}, scale={args.scale}, "
        f"{len(reference.records)} tasks, {args.shards} shard(s), "
        f"jobs/shard={args.jobs}",
        f"single machine      : {reference.wall_time_s:8.2f} s",
        f"slowest shard       : {makespan:8.2f} s  (cluster makespan)",
        f"sum of shards       : {total:8.2f} s  (total compute)",
        f"ideal makespan      : {reference.wall_time_s / args.shards:8.2f} s",
        f"balance efficiency  : {total / (args.shards * makespan):8.2%}",
        "merged == single-machine (canonical form): yes",
    ]
    print("\n".join(lines))
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text("\n".join(lines) + "\n")
    print(f"summary written to {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
