#!/usr/bin/env python
"""Suite-level speedup of the parallel batch engine (`repro suite --jobs N`).

Runs one paper table's full ``problems x algorithms`` cross-product twice —
serially (``n_jobs=1``) and over a process pool (``--jobs``, default 4) —
verifies that the two runs produce *identical* results modulo timing fields,
and reports the wall-clock speedup.  A summary is written to
``benchmarks/results/suite_speedup.txt``.

Run with::

    PYTHONPATH=src python benchmarks/bench_suite_speedup.py [--jobs 4]
        [--scale 0.05] [--table 4.2]

This is a plain script (not a pytest-benchmark harness): the quantity under
test is the end-to-end suite wall time, which ``SuiteResult.wall_time_s``
already records.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.batch import run_suite
from repro.collections.registry import available_problems

RESULTS_PATH = Path(__file__).parent / "results" / "suite_speedup.txt"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--table", default="4.2", choices=["4.1", "4.2", "4.3"])
    args = parser.parse_args()

    problems = available_problems(args.table)
    print(f"Table {args.table} suite ({len(problems)} problems x 4 algorithms, "
          f"scale={args.scale})")

    print("serial run (n_jobs=1) ...")
    serial = run_suite(problems, scale=args.scale, n_jobs=1, keep_orderings=False)
    print(f"  wall time: {serial.wall_time_s:.2f} s")

    print(f"parallel run (n_jobs={args.jobs}) ...")
    parallel = run_suite(problems, scale=args.scale, n_jobs=args.jobs,
                         keep_orderings=False)
    print(f"  wall time: {parallel.wall_time_s:.2f} s")

    differences = serial.diff(parallel)
    if differences:
        print(f"ERROR: serial and parallel runs differ ({len(differences)}):",
              file=sys.stderr)
        for line in differences:
            print(f"  {line}", file=sys.stderr)
        return 1

    speedup = serial.wall_time_s / max(parallel.wall_time_s, 1e-9)
    lines = [
        f"Suite speedup — Table {args.table}, scale={args.scale}, "
        f"{len(serial.records)} tasks, {os.cpu_count()} core(s)",
        f"serial   (n_jobs=1): {serial.wall_time_s:8.2f} s",
        f"parallel (n_jobs={args.jobs}): {parallel.wall_time_s:8.2f} s",
        f"speedup           : {speedup:8.2f}x",
        "results identical modulo timing fields: yes",
    ]
    print("\n".join(lines))
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text("\n".join(lines) + "\n")
    print(f"summary written to {RESULTS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
