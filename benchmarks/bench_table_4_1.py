"""Table 4.1 — Boeing-Harwell structural analysis set.

Regenerates the paper's Table 4.1 (envelope size, bandwidth, run time and rank
for SPECTRAL / GK / GPS / RCM) on synthetic surrogates of BCSSTK13 and
BCSSTK29-33.  Results are written to ``benchmarks/results/table_4_1.txt``.

Run with::

    pytest benchmarks/bench_table_4_1.py --benchmark-only
"""

import pytest

from common import TableCollector, bench_scale
from repro.collections.registry import available_problems
from table_harness import TABLE_COLUMNS, case_id, run_table_case, table_cases

# Every registered Table 4.1 problem in the paper's row order; cells run
# through the batch engine (repro.batch.execute_task), the same path
# `repro suite --table 4.1` uses.
PROBLEMS = tuple(available_problems("4.1", paper_order=True))

_collector = TableCollector(
    "table_4_1.txt",
    f"Table 4.1 — Boeing-Harwell structural analysis (surrogates, scale={bench_scale()})",
    TABLE_COLUMNS,
)


@pytest.mark.parametrize("case", table_cases(PROBLEMS), ids=case_id)
def test_table_4_1(benchmark, case):
    problem, algorithm = case
    benchmark.group = f"table4.1:{problem}"
    run_table_case(benchmark, _collector, problem, algorithm)
