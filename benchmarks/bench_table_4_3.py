"""Table 4.3 — NASA structural / CFD set.

Regenerates the paper's Table 4.3 (BARTH4, SHUTTLE, SKIRT, PWT, BODY, FLAP,
IN3C) on synthetic surrogates.  Results are written to
``benchmarks/results/table_4_3.txt``.

Run with::

    pytest benchmarks/bench_table_4_3.py --benchmark-only
"""

import pytest

from common import TableCollector, bench_scale
from table_harness import TABLE_COLUMNS, case_id, run_table_case, table_cases

PROBLEMS = ("BARTH4", "SHUTTLE", "SKIRT", "PWT", "BODY", "FLAP", "IN3C")

_collector = TableCollector(
    "table_4_3.txt",
    f"Table 4.3 — NASA problems (surrogates, scale={bench_scale()})",
    TABLE_COLUMNS,
)


@pytest.mark.parametrize("case", table_cases(PROBLEMS), ids=case_id)
def test_table_4_3(benchmark, case):
    problem, algorithm = case
    benchmark.group = f"table4.3:{problem}"
    run_table_case(benchmark, _collector, problem, algorithm)
