"""Table 4.4 — envelope factorization times, SPECTRAL vs RCM.

The paper factors BCSSTK29, BCSSTK33 and BARTH4 with the SPARSPAK envelope
routine under the spectral and RCM orderings and shows that the factorization
time tracks the envelope size ("the quadratic behavior of the factorization
time as a function of the envelope size").  This harness reproduces that
comparison with :func:`repro.factor.envelope_cholesky` on the surrogates.

Results are written to ``benchmarks/results/table_4_4.txt``.

Run with::

    pytest benchmarks/bench_table_4_4.py --benchmark-only
"""

import pytest

from common import TableCollector, bench_scale, cached_problem
from repro.envelope.metrics import envelope_size
from repro.factor.cholesky import envelope_cholesky
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.utils.timing import Timer

PROBLEMS = ("BCSSTK29", "BCSSTK33", "BARTH4")
ALGORITHMS = ("spectral", "rcm")

_collector = TableCollector(
    "table_4_4.txt",
    f"Table 4.4 — envelope factorization (surrogates, scale={bench_scale()})",
    ["problem", "n", "algorithm", "envelope", "factor_ops", "factor_time_s", "order_time_s",
     "paper_envelope", "paper_factor_time_s"],
)

# Factorization times the paper reports (seconds on a 33 MHz SGI workstation).
PAPER_FACTOR_TIMES = {
    ("BCSSTK29", "spectral"): 257.0,
    ("BCSSTK29", "rcm"): 1677.0,
    ("BCSSTK33", "spectral"): 670.0,
    ("BCSSTK33", "rcm"): 685.0,
    ("BARTH4", "spectral"): 8.19,
    ("BARTH4", "rcm"): 35.17,
}
PAPER_ENVELOPES = {
    ("BCSSTK29", "spectral"): 3067004,
    ("BCSSTK29", "rcm"): 7374140,
    ("BCSSTK33", "spectral"): 3788702,
    ("BCSSTK33", "rcm"): 3799285,
    ("BARTH4", "spectral"): 345623,
    ("BARTH4", "rcm"): 725950,
}


@pytest.mark.parametrize(
    "case",
    [(p, a) for p in PROBLEMS for a in ALGORITHMS],
    ids=lambda case: f"{case[0]}-{case[1]}",
)
def test_table_4_4_factorization(benchmark, case):
    problem, algorithm = case
    benchmark.group = f"table4.4:{problem}"
    pattern = cached_problem(problem)
    matrix = pattern.to_scipy("spd")

    order_timer = Timer()
    with order_timer:
        ordering = ORDERING_ALGORITHMS[algorithm](pattern)

    factor_timer = Timer()

    def factor():
        with factor_timer:
            return envelope_cholesky(matrix, perm=ordering.perm)

    chol = benchmark.pedantic(factor, rounds=1, iterations=1)

    esize = envelope_size(pattern, ordering.perm)
    _collector.add(
        problem=problem,
        n=pattern.n,
        algorithm=algorithm.upper(),
        envelope=esize,
        factor_ops=chol.operations,
        factor_time_s=factor_timer.laps[-1],
        order_time_s=order_timer.elapsed,
        paper_envelope=PAPER_ENVELOPES[(problem, algorithm)],
        paper_factor_time_s=PAPER_FACTOR_TIMES[(problem, algorithm)],
    )
    benchmark.extra_info.update(
        {"problem": problem, "algorithm": algorithm, "envelope": esize, "ops": chol.operations}
    )
    # the factor must actually be usable
    assert chol.n == pattern.n
