"""Table 4.4 — envelope factorization times, SPECTRAL vs RCM.

The paper factors BCSSTK29, BCSSTK33 and BARTH4 with the SPARSPAK envelope
routine under the spectral and RCM orderings and shows that the factorization
time tracks the envelope size ("the quadratic behavior of the factorization
time as a function of the envelope size").  This harness reproduces that
comparison with :func:`repro.factor.envelope_cholesky` on the surrogates.

Results are written to ``benchmarks/results/table_4_4.txt``.

Run with::

    pytest benchmarks/bench_table_4_4.py --benchmark-only
"""

import pytest

from common import TableCollector, bench_scale, cached_problem, timed_once
from repro.batch import BatchTask, derive_seed, execute_task
from repro.factor.cholesky import envelope_cholesky

PROBLEMS = ("BCSSTK29", "BCSSTK33", "BARTH4")
ALGORITHMS = ("spectral", "rcm")

_collector = TableCollector(
    "table_4_4.txt",
    f"Table 4.4 — envelope factorization (surrogates, scale={bench_scale()})",
    ["problem", "n", "algorithm", "envelope", "factor_ops", "factor_time_s", "order_time_s",
     "paper_envelope", "paper_factor_time_s"],
)

# Factorization times the paper reports (seconds on a 33 MHz SGI workstation).
PAPER_FACTOR_TIMES = {
    ("BCSSTK29", "spectral"): 257.0,
    ("BCSSTK29", "rcm"): 1677.0,
    ("BCSSTK33", "spectral"): 670.0,
    ("BCSSTK33", "rcm"): 685.0,
    ("BARTH4", "spectral"): 8.19,
    ("BARTH4", "rcm"): 35.17,
}
PAPER_ENVELOPES = {
    ("BCSSTK29", "spectral"): 3067004,
    ("BCSSTK29", "rcm"): 7374140,
    ("BCSSTK33", "spectral"): 3788702,
    ("BCSSTK33", "rcm"): 3799285,
    ("BARTH4", "spectral"): 345623,
    ("BARTH4", "rcm"): 725950,
}


@pytest.mark.parametrize(
    "case",
    [(p, a) for p in PROBLEMS for a in ALGORITHMS],
    ids=lambda case: f"{case[0]}-{case[1]}",
)
def test_table_4_4_factorization(benchmark, case):
    problem, algorithm = case
    benchmark.group = f"table4.4:{problem}"
    pattern = cached_problem(problem)
    matrix = pattern.to_scipy("spd")

    # The ordering step goes through the batch engine, like the table harnesses.
    task = BatchTask(problem=problem, algorithm=algorithm, scale=bench_scale(),
                     seed=derive_seed(0, problem, algorithm))
    record = execute_task(task, pattern=pattern, capture_errors=False)
    ordering = record.ordering

    chol, factor_seconds = timed_once(
        benchmark, lambda: envelope_cholesky(matrix, perm=ordering.perm)
    )

    esize = record.metrics["envelope_size"]
    _collector.add(
        problem=problem,
        n=pattern.n,
        algorithm=algorithm.upper(),
        envelope=esize,
        factor_ops=chol.operations,
        factor_time_s=factor_seconds,
        order_time_s=record.time_s,
        paper_envelope=PAPER_ENVELOPES[(problem, algorithm)],
        paper_factor_time_s=PAPER_FACTOR_TIMES[(problem, algorithm)],
    )
    benchmark.extra_info.update(
        {"problem": problem, "algorithm": algorithm, "envelope": esize, "ops": chol.operations}
    )
    # the factor must actually be usable
    assert chol.n == pattern.n
