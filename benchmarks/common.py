"""Shared infrastructure for the benchmark harnesses.

Every benchmark regenerates part of the paper's evaluation section:

* ``bench_table_4_1.py`` / ``4_2`` / ``4_3`` — ordering quality and run time
  for the four paper algorithms on each test-set surrogate (Tables 4.1-4.3);
* ``bench_table_4_4.py`` — envelope factorization times under the spectral and
  RCM orderings (Table 4.4);
* ``bench_figures_4_1_to_4_5.py`` — structure plots of BARTH4 under the five
  orderings (Figures 4.1-4.5);
* ``bench_ablation_*.py`` — ablations of the design choices called out in
  DESIGN.md.

Surrogate sizes are controlled by the ``REPRO_BENCH_SCALE`` environment
variable (default 0.05, i.e. about 5% of the paper's matrix orders, which
keeps a full ``pytest benchmarks/ --benchmark-only`` run to a few minutes in
pure Python).  Each harness also writes a human-readable results file under
``benchmarks/results/`` so the numbers can be compared against the paper's
tables (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path

from repro.bench import time_call
from repro.collections.registry import PAPER_PROBLEMS, load_problem

RESULTS_DIR = Path(__file__).parent / "results"


def timed_once(benchmark, func):
    """Run *func* once under pytest-benchmark and return ``(result, seconds)``.

    The measurement itself goes through :func:`repro.bench.time_call`, the
    same timing core the ``repro bench`` regression harness uses, so the
    numbers in the table/ablation results files and in ``BENCH_*.json``
    artifacts are produced identically.
    """
    holder: dict = {}

    def call():
        holder["result"], holder["seconds"] = time_call(func)
        return holder["result"]

    benchmark.pedantic(call, rounds=1, iterations=1)
    return holder["result"], holder["seconds"]


def bench_scale() -> float:
    """Surrogate scale used by the benchmark harnesses."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


@lru_cache(maxsize=None)
def cached_problem(name: str, scale: float | None = None):
    """Build (and memoize) the surrogate pattern for a paper problem."""
    if scale is None:
        scale = bench_scale()
    pattern, _spec = load_problem(name, scale=scale)
    return pattern


def problem_spec(name: str):
    """The :class:`repro.collections.registry.ProblemSpec` for *name*."""
    return PAPER_PROBLEMS[name.upper()]


class TableCollector:
    """Accumulates paper-style rows and rewrites a results file after each update.

    The file is rewritten on every :meth:`add` so that a partially executed
    benchmark session still leaves a readable (if incomplete) table behind.
    """

    def __init__(self, filename: str, title: str, columns: list[str]):
        self.path = RESULTS_DIR / filename
        self.title = title
        self.columns = columns
        self.rows: list[dict] = []

    def add(self, **row) -> None:
        self.rows.append(row)
        self.write()

    def write(self) -> None:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        widths = {c: max(len(c), 14) for c in self.columns}
        lines = [self.title, "=" * len(self.title)]
        lines.append("  ".join(f"{c:>{widths[c]}}" for c in self.columns))
        for row in self.rows:
            cells = []
            for c in self.columns:
                value = row.get(c, "")
                if isinstance(value, float):
                    cells.append(f"{value:>{widths[c]}.4f}")
                elif isinstance(value, int):
                    cells.append(f"{value:>{widths[c]},}")
                else:
                    cells.append(f"{str(value):>{widths[c]}}")
            lines.append("  ".join(cells))
        self.path.write_text("\n".join(lines) + "\n")
