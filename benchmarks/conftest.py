"""Pytest configuration for the benchmark harnesses."""

from __future__ import annotations

import sys
from pathlib import Path

# Make `import common` work regardless of the rootdir pytest was invoked from.
sys.path.insert(0, str(Path(__file__).parent))
