"""Shared driver for the Table 4.1 / 4.2 / 4.3 benchmark harnesses.

Each paper table reports, per matrix and per algorithm: envelope size,
bandwidth, ordering run time, and the rank of the algorithm by envelope size.
The three bench modules differ only in their problem list, so the
parametrization and row collection live here.
"""

from __future__ import annotations

from common import TableCollector, cached_problem, ordering_row, problem_spec
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS
from repro.utils.timing import Timer

TABLE_COLUMNS = [
    "problem", "n", "nnz", "algorithm", "envelope", "bandwidth", "ework", "time_s",
    "paper_envelope", "paper_bandwidth",
]


def table_cases(problems):
    """(problem, algorithm) pairs in the paper's row order."""
    return [(problem, algorithm) for problem in problems for algorithm in PAPER_ALGORITHMS]


def case_id(case) -> str:
    problem, algorithm = case
    return f"{problem}-{algorithm}"


def run_table_case(benchmark, collector: TableCollector, problem: str, algorithm: str):
    """Benchmark one (problem, algorithm) cell and record the paper-style row."""
    pattern = cached_problem(problem)
    spec = problem_spec(problem)
    func = ORDERING_ALGORITHMS[algorithm]
    timer = Timer()

    def compute():
        with timer:
            return func(pattern)

    ordering = benchmark.pedantic(compute, rounds=1, iterations=1)
    row = ordering_row(pattern, problem, algorithm, ordering, timer.laps[-1])
    row["paper_envelope"] = spec.paper_envelopes[algorithm]
    row["paper_bandwidth"] = spec.paper_bandwidths[algorithm]
    collector.add(**row)
    benchmark.extra_info.update(
        {k: row[k] for k in ("problem", "algorithm", "n", "envelope", "bandwidth")}
    )
    # Sanity: the ordering must be a genuine permutation of the surrogate.
    assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
    return row
