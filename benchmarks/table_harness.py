"""Shared driver for the Table 4.1 / 4.2 / 4.3 benchmark harnesses.

Each paper table reports, per matrix and per algorithm: envelope size,
bandwidth, ordering run time, and the rank of the algorithm by envelope size.
The three bench modules differ only in their problem list, so the
parametrization and row collection live here.

Each ``(problem, algorithm)`` cell uses the batch engine's task seeding and
option resolution (:func:`repro.batch.task_options`) — the same inputs
``repro suite`` hands each pooled worker — but the pytest-benchmark measured
region is the *ordering call alone*: envelope statistics are computed outside
it, so reported times stay comparable to the paper's per-algorithm run times
and are not inflated by the metrics pass.
"""

from __future__ import annotations

from common import TableCollector, bench_scale, cached_problem, problem_spec, timed_once
from repro.batch import BatchTask, derive_seed, task_options
from repro.envelope.metrics import envelope_statistics
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS

TABLE_COLUMNS = [
    "problem", "n", "nnz", "algorithm", "envelope", "bandwidth", "ework", "time_s",
    "paper_envelope", "paper_bandwidth",
]


def table_cases(problems):
    """(problem, algorithm) pairs in the paper's row order."""
    return [(problem, algorithm) for problem in problems for algorithm in PAPER_ALGORITHMS]


def case_id(case) -> str:
    problem, algorithm = case
    return f"{problem}-{algorithm}"


def run_table_case(benchmark, collector: TableCollector, problem: str, algorithm: str):
    """Benchmark one (problem, algorithm) cell and record the paper-style row."""
    pattern = cached_problem(problem)
    spec = problem_spec(problem)
    func = ORDERING_ALGORITHMS[algorithm]
    task = BatchTask(
        problem=problem,
        algorithm=algorithm,
        scale=bench_scale(),
        seed=derive_seed(0, problem, algorithm),
    )
    options = task_options(func, task)
    ordering, seconds = timed_once(benchmark, lambda: func(pattern, **options))
    stats = envelope_statistics(pattern, ordering.perm)
    row = {
        "problem": problem,
        "n": stats.n,
        "nnz": stats.nnz,
        "algorithm": algorithm.upper(),
        "envelope": stats.envelope_size,
        "bandwidth": stats.bandwidth,
        "ework": stats.envelope_work,
        "time_s": float(seconds),
        "paper_envelope": spec.paper_envelopes[algorithm],
        "paper_bandwidth": spec.paper_bandwidths[algorithm],
    }
    collector.add(**row)
    benchmark.extra_info.update(
        {k: row[k] for k in ("problem", "algorithm", "n", "envelope", "bandwidth")}
    )
    # Sanity: the ordering must be a genuine permutation of the surrogate.
    assert sorted(ordering.perm.tolist()) == list(range(pattern.n))
    return row
