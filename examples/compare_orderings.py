#!/usr/bin/env python
"""Compare all ordering algorithms across the surrogate problem suite.

Reproduces the layout of the paper's Tables 4.1-4.3 on the synthetic
surrogates, including the extension algorithms (Sloan, hybrid) that the paper
does not evaluate.

Run with::

    python examples/compare_orderings.py [scale] [problem ...]

``scale`` controls the surrogate size (default 0.05, i.e. roughly 5% of the
paper's matrix orders, which keeps the run under a minute); problem names
default to one representative per paper table.
"""

from __future__ import annotations

import sys

from repro.analysis.runner import run_problem_suite
from repro.collections.registry import available_problems


def main(argv: list[str]) -> None:
    scale = float(argv[1]) if len(argv) > 1 else 0.05
    problems = argv[2:] if len(argv) > 2 else ["BCSSTK13", "POW9", "DWT2680", "BARTH4", "SHUTTLE"]
    unknown = [p for p in problems if p.upper() not in available_problems()]
    if unknown:
        raise SystemExit(f"unknown problems: {unknown}; available: {available_problems()}")

    algorithms = ("spectral", "gk", "gps", "rcm", "sloan", "hybrid")
    results = run_problem_suite(problems, algorithms=algorithms, scale=scale)

    wins = {name: 0 for name in algorithms}
    for result in results:
        print(result.to_text())
        print()
        wins[result.winner] += 1

    print("Envelope-size wins per algorithm (paper: spectral wins 14 of 18):")
    for name, count in sorted(wins.items(), key=lambda kv: -kv[1]):
        print(f"  {name.upper():<10} {count}")


if __name__ == "__main__":
    main(sys.argv)
