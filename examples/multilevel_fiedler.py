#!/usr/bin/env python
"""The multilevel Fiedler-vector solver of Section 3, dissected.

Shows the contraction hierarchy (maximal independent sets + domain growing),
the coarse Lanczos solve, and the interpolation/RQI refinement sweep, and
compares accuracy and run time against plain Lanczos and SciPy's LOBPCG.

Run with::

    python examples/multilevel_fiedler.py [n_points]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.collections import airfoil_pattern
from repro.eigen import fiedler_vector, multilevel_fiedler
from repro.graph.coarsen import coarsening_hierarchy
from repro.graph.laplacian import laplacian_matrix


def main(argv: list[str]) -> None:
    n_points = int(argv[1]) if len(argv) > 1 else 4000
    pattern = airfoil_pattern(n_points, seed=4)
    print(f"Unstructured airfoil mesh: n={pattern.n}, edges={pattern.num_edges}")

    # --- the contraction hierarchy -------------------------------------------
    hierarchy = coarsening_hierarchy(pattern, coarsest_size=100)
    sizes = [pattern.n] + [level.coarse_pattern.n for level in hierarchy]
    print("\nContraction hierarchy (vertex counts):", " -> ".join(str(s) for s in sizes))

    # --- the full multilevel solve --------------------------------------------
    start = time.perf_counter()
    result = multilevel_fiedler(pattern, coarsest_size=100)
    multilevel_time = time.perf_counter() - start
    print(
        f"\nMultilevel solver: lambda_2 = {result.eigenvalue:.6e}, "
        f"residual = {result.residual_norm:.1e}, levels = {result.levels}, "
        f"coarse Lanczos iters = {result.coarse_iterations}, "
        f"RQI steps = {result.refinement_iterations}, time = {multilevel_time:.3f}s"
    )

    # --- compare against the other solvers ------------------------------------
    lap = laplacian_matrix(pattern)
    print(f"\n{'method':<12} {'lambda_2':>14} {'residual':>10} {'time (s)':>10}")
    for method in ("multilevel", "lanczos", "lobpcg", "eigsh"):
        start = time.perf_counter()
        res = fiedler_vector(pattern, method=method)
        elapsed = time.perf_counter() - start
        print(f"{method:<12} {res.eigenvalue:>14.6e} {res.residual_norm:>10.1e} {elapsed:>10.3f}")

    # sanity: the eigenvector really is the second one (orthogonal to constants)
    print(f"\n|1^T x_2| of the multilevel vector: {abs(result.eigenvector.sum()):.2e}")


if __name__ == "__main__":
    main(sys.argv)
