#!/usr/bin/env python
"""Regenerate the paper's Tables 4.1-4.4 on the synthetic surrogate suite.

For every matrix of the paper's three test sets this script runs the four
ordering algorithms (SPECTRAL, GK, GPS, RCM), reports envelope size, bandwidth,
ordering time and rank — the exact columns of Tables 4.1-4.3 — and then runs
the envelope-factorization timing comparison of Table 4.4 on the three
matrices the paper selected.

Run with::

    python examples/paper_tables.py [scale] [--tables 4.1,4.2,4.3,4.4] [--jobs 4]

``scale`` defaults to the value of ``REPRO_BENCH_SCALE`` or 0.125.  The full
run at the default scale takes several minutes (the spectral and GK orderings
dominate); pass a smaller scale (e.g. 0.03) for a quick look, or ``--jobs N``
to fan the (problem, algorithm) cells out over ``N`` worker processes via the
batch engine (:mod:`repro.batch`) — the numbers are identical to a serial run.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.analysis.runner import run_problem_suite
from repro.collections.registry import available_problems, default_scale, load_problem
from repro.envelope.metrics import envelope_size
from repro.factor.cholesky import envelope_cholesky
from repro.orderings.registry import ORDERING_ALGORITHMS

TABLE_44_PROBLEMS = ("BCSSTK29", "BCSSTK33", "BARTH4")


def run_table(table: str, scale: float, jobs: int = 1) -> None:
    problems = available_problems(table)
    print(f"\n=== Table {table} (surrogates at scale {scale}, jobs={jobs}) ===")
    results = run_problem_suite(problems, scale=scale, n_jobs=jobs)
    spectral_wins = 0
    for result in results:
        print()
        print(result.to_text())
        if result.winner == "spectral":
            spectral_wins += 1
    print(f"\nSPECTRAL has the smallest envelope on {spectral_wins} of {len(results)} problems.")


def run_table_44(scale: float) -> None:
    print(f"\n=== Table 4.4: envelope factorization times (scale {scale}) ===")
    print(f"{'Title':<12} {'Envelope':>12} {'Factor ops':>14} {'Factor time (s)':>16} {'Algorithm':>10}")
    for name in TABLE_44_PROBLEMS:
        pattern, spec = load_problem(name, scale=scale)
        matrix = pattern.to_scipy("spd")
        for algorithm in ("spectral", "rcm"):
            ordering = ORDERING_ALGORITHMS[algorithm](pattern)
            start = time.perf_counter()
            chol = envelope_cholesky(matrix, perm=ordering.perm)
            elapsed = time.perf_counter() - start
            print(
                f"{spec.name:<12} {envelope_size(pattern, ordering.perm):>12,} "
                f"{chol.operations:>14,} {elapsed:>16.3f} {algorithm.upper():>10}"
            )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("scale", nargs="?", type=float, default=None)
    parser.add_argument("--tables", default="4.1,4.2,4.3,4.4")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the ordering suite (batch engine)")
    args = parser.parse_args()
    scale = args.scale if args.scale is not None else default_scale()
    tables = [t.strip() for t in args.tables.split(",") if t.strip()]

    for table in tables:
        if table == "4.4":
            run_table_44(scale)
        else:
            run_table(table, scale, jobs=args.jobs)


if __name__ == "__main__":
    main()
