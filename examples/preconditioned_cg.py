#!/usr/bin/env python
"""Envelope orderings as preorderings for IC(0)-preconditioned conjugate gradients.

The paper's introduction points out that envelope-reducing orderings are also
"an effective preordering in computing incomplete factorization
preconditioners for preconditioned conjugate gradients methods".  This example
measures that effect: it builds an SPD system on an unstructured mesh, runs
plain CG, and then IC(0)-preconditioned CG under the natural, RCM, Sloan and
spectral orderings, reporting iteration counts and run times.

Run with::

    python examples/preconditioned_cg.py [n_points]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.collections import airfoil_pattern
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.solvers import preconditioned_cg_experiment


def main(argv: list[str]) -> None:
    n_points = int(argv[1]) if len(argv) > 1 else 1200
    pattern = airfoil_pattern(n_points, seed=4)
    matrix = pattern.to_scipy("spd")
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(pattern.n)
    b = matrix @ x_true

    print(f"Unstructured airfoil mesh: n={pattern.n}, nonzeros={matrix.nnz}\n")

    plain = preconditioned_cg_experiment(matrix, b, None, preconditioner="none", tol=1e-8)
    print(f"{'ordering':<10} {'preconditioner':<14} {'iterations':>10} "
          f"{'setup (s)':>10} {'solve (s)':>10} {'error':>10}")
    error = np.linalg.norm(plain.x - x_true) / np.linalg.norm(x_true)
    print(f"{'natural':<10} {'none':<14} {plain.iterations:>10} "
          f"{plain.setup_time:>10.3f} {plain.solve_time:>10.3f} {error:>10.2e}")

    for name in ("natural", "rcm", "sloan", "spectral"):
        ordering = None if name == "natural" else ORDERING_ALGORITHMS[name](pattern)
        result = preconditioned_cg_experiment(matrix, b, ordering, preconditioner="ic0", tol=1e-8)
        error = np.linalg.norm(result.x - x_true) / np.linalg.norm(x_true)
        print(f"{name:<10} {'ic0':<14} {result.iterations:>10} "
              f"{result.setup_time:>10.3f} {result.solve_time:>10.3f} {error:>10.2e}")


if __name__ == "__main__":
    main(sys.argv)
