#!/usr/bin/env python
"""Quickstart: reorder a sparse symmetric matrix and factor it in envelope form.

Run with::

    python examples/quickstart.py

The script builds a small finite-element-style mesh matrix, computes the
spectral (Fiedler-vector) ordering of the paper next to reverse Cuthill-McKee,
reports the envelope statistics of each, and solves a linear system through
the envelope Cholesky factorization of the reordered matrix.
"""

from __future__ import annotations

import numpy as np

from repro import compare_orderings, envelope_solve, reorder
from repro.collections import airfoil_pattern


def main() -> None:
    # An unstructured airfoil mesh with ~1500 vertices — the BARTH4 family on
    # which the paper's spectral ordering shows its largest gains.
    pattern = airfoil_pattern(1500, seed=4)
    print(f"Problem: unstructured airfoil mesh, n={pattern.n}, nonzeros={pattern.nnz}")

    # --- one-call reordering ------------------------------------------------
    report = reorder(pattern, algorithm="spectral")
    print("\nSpectral ordering (Algorithm 1 of the paper):")
    print(f"  envelope size : {report.original.envelope_size:>10,} -> {report.statistics.envelope_size:,}")
    print(f"  bandwidth     : {report.original.bandwidth:>10,} -> {report.statistics.bandwidth:,}")
    print(f"  reduction     : {report.envelope_reduction:.2f}x")
    print(f"  ordering time : {report.run_time*1e3:.1f} ms")

    # --- compare against the paper's baselines -------------------------------
    result = compare_orderings(pattern, problem="airfoil")
    print()
    print(result.to_text())

    # --- solve a linear system with the envelope Cholesky solver -------------
    matrix = pattern.to_scipy("spd")
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(pattern.n)
    b = matrix @ x_true

    solution = envelope_solve(matrix, b, ordering=report.ordering)
    error = np.linalg.norm(solution.x - x_true) / np.linalg.norm(x_true)
    print("\nEnvelope Cholesky solve with the spectral ordering:")
    print(f"  factor operations : {solution.factorization.operations:,}")
    print(f"  residual norm     : {solution.residual_norm:.2e}")
    print(f"  relative error    : {error:.2e}")


if __name__ == "__main__":
    main()
