#!/usr/bin/env python
"""Regenerate Figures 4.1-4.5: the BARTH4 structure under the five orderings.

The paper shows dot plots of the BARTH4 matrix in its original ordering and
after the GPS, GK, RCM and SPECTRAL reorderings.  This script renders the
same five pictures as ASCII spy plots of the synthetic BARTH4 surrogate (or of
a real matrix file given on the command line) and prints the band-profile
numbers that quantify the visual difference.

Run with::

    python examples/spy_figures.py [scale | path/to/matrix.mtx]
"""

from __future__ import annotations

import os
import sys

from repro.analysis.spy import ascii_spy, band_profile
from repro.collections.registry import load_problem
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.sparse import read_harwell_boeing, read_matrix_market, structure_from_matrix

FIGURES = [
    ("Figure 4.1", "original", None),
    ("Figure 4.2", "gps", ORDERING_ALGORITHMS["gps"]),
    ("Figure 4.3", "gk", ORDERING_ALGORITHMS["gk"]),
    ("Figure 4.4", "rcm", ORDERING_ALGORITHMS["rcm"]),
    ("Figure 4.5", "spectral", ORDERING_ALGORITHMS["spectral"]),
]


def _load(argument: str | None):
    if argument and os.path.exists(argument):
        if argument.endswith((".mtx", ".mm")):
            return structure_from_matrix(read_matrix_market(argument)), argument
        return structure_from_matrix(read_harwell_boeing(argument)), argument
    scale = float(argument) if argument else 0.08
    pattern, spec = load_problem("BARTH4", scale=scale)
    return pattern, f"BARTH4 surrogate (scale={scale})"


def main(argv: list[str]) -> None:
    pattern, label = _load(argv[1] if len(argv) > 1 else None)
    print(f"{label}: n={pattern.n}, nonzeros={pattern.nnz}\n")

    for figure, name, algorithm in FIGURES:
        perm = None if algorithm is None else algorithm(pattern).perm
        profile = band_profile(pattern, perm)
        print(f"{figure}: {name.upper()} ordering")
        print(
            f"  envelope={profile['envelope_size']:,}  bandwidth={profile['bandwidth']:,}  "
            f"mean row width={profile['mean_row_width']:.1f}  "
            f"95th pct row width={profile['p95_row_width']:.0f}"
        )
        print(ascii_spy(pattern, perm, resolution=40))
        print()


if __name__ == "__main__":
    main(sys.argv)
