#!/usr/bin/env python
"""Structural-analysis workflow: shell model, reordering, envelope factorization.

This mirrors how the paper motivates envelope reduction: frontal/envelope
solvers are "still the method of choice ... in many structural engineering
applications", and a better ordering directly reduces both the storage and the
factorization time of such a solver.

The script

1. builds a stiffened cylindrical shell model with 4 degrees of freedom per
   node (a small stand-in for BCSSTK29 / the SHUTTLE model),
2. computes the spectral, RCM, GPS, GK and Sloan orderings,
3. factors the matrix in envelope form under the best spectral ordering and
   under RCM, timing both (the Table 4.4 experiment), and
4. solves a load case and verifies the solution.

Run with::

    python examples/structural_analysis.py [n_axial] [n_around]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro import envelope_solve
from repro.analysis.runner import run_comparison
from repro.collections import cylinder_shell_pattern
from repro.envelope.metrics import envelope_size
from repro.factor.cholesky import envelope_cholesky, estimate_factor_work
from repro.orderings import rcm_ordering, spectral_ordering


def main(argv: list[str]) -> None:
    n_axial = int(argv[1]) if len(argv) > 1 else 36
    n_around = int(argv[2]) if len(argv) > 2 else 14

    pattern = cylinder_shell_pattern(
        n_axial=n_axial, n_around=n_around, dofs_per_node=4, stiffener_every=6
    )
    print(
        f"Stiffened shell model: {n_axial} x {n_around} nodes x 4 dof "
        f"=> n={pattern.n}, nonzeros={pattern.nnz}"
    )

    # --- ordering comparison (one block of Table 4.1) ------------------------
    comparison = run_comparison(
        pattern, algorithms=("spectral", "gk", "gps", "rcm", "sloan"), problem="shell"
    )
    print()
    print(comparison.to_text())

    # --- factorization experiment (Table 4.4) --------------------------------
    matrix = pattern.to_scipy("spd")
    spectral = comparison.orderings["spectral"]
    rcm = comparison.orderings["rcm"]

    print("\nEnvelope factorization (Table 4.4 shape):")
    print(f"{'ordering':<10} {'envelope':>12} {'est. work':>14} {'ops':>14} {'time (s)':>10}")
    for name, ordering in (("SPECTRAL", spectral), ("RCM", rcm)):
        start = time.perf_counter()
        chol = envelope_cholesky(matrix, perm=ordering.perm)
        elapsed = time.perf_counter() - start
        print(
            f"{name:<10} {envelope_size(pattern, ordering.perm):>12,} "
            f"{estimate_factor_work(pattern, ordering.perm):>14,.0f} "
            f"{chol.operations:>14,} {elapsed:>10.3f}"
        )

    # --- load-case solve ------------------------------------------------------
    rng = np.random.default_rng(1)
    load = rng.standard_normal(pattern.n)
    solution = envelope_solve(matrix, load, ordering=spectral)
    print(f"\nLoad-case solve residual: {solution.residual_norm:.2e}")


if __name__ == "__main__":
    main(sys.argv)
