"""Setuptools shim.

The project metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks the
PEP 660 editable-wheel path (no ``wheel`` package installed).
"""

from setuptools import setup

setup()
