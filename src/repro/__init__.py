"""repro — spectral envelope reduction of sparse symmetric matrices.

A complete, pure-Python reproduction of

    S. T. Barnard, A. Pothen, H. D. Simon,
    "A Spectral Algorithm for Envelope Reduction of Sparse Matrices",
    Supercomputing '93 (NASA Ames report RNR-93-015).

The package provides:

* the spectral envelope-reducing ordering (Algorithm 1 of the paper) with
  Lanczos, multilevel and SciPy eigensolver back ends
  (:func:`repro.spectral_ordering`, :func:`repro.fiedler_vector`);
* the classical baselines it is compared against — reverse Cuthill-McKee,
  Gibbs-Poole-Stockmeyer, Gibbs-King — plus Sloan and a hybrid
  spectral+local refinement (:mod:`repro.orderings`);
* every envelope parameter and theoretical bound from Section 2
  (:mod:`repro.envelope`);
* an envelope (skyline) Cholesky solver for the factorization experiments of
  Table 4.4 (:mod:`repro.factor`);
* synthetic surrogates of the paper's Boeing-Harwell / NASA test matrices and
  Harwell-Boeing / Matrix Market readers for the real files
  (:mod:`repro.collections`, :mod:`repro.sparse`);
* reporting utilities that regenerate the paper's tables and figures
  (:mod:`repro.analysis`).

Quick start
-----------
>>> from repro import reorder
>>> from repro.collections import grid2d_pattern
>>> report = reorder(grid2d_pattern(20, 30), algorithm="spectral")
>>> report.statistics.envelope_size <= report.original.envelope_size
True
"""

from repro.core.pipeline import EnvelopeReport, compare_orderings, reorder
from repro.eigen.fiedler import FiedlerResult, fiedler_vector
from repro.envelope.metrics import (
    EnvelopeStatistics,
    bandwidth,
    envelope_size,
    envelope_statistics,
    envelope_work,
)
from repro.factor.cholesky import EnvelopeCholesky, envelope_cholesky
from repro.factor.solve import envelope_solve
from repro.orderings.base import Ordering
from repro.orderings.cuthill_mckee import cuthill_mckee_ordering, rcm_ordering
from repro.orderings.gibbs_king import gibbs_king_ordering
from repro.orderings.gps import gps_ordering
from repro.orderings.hybrid import hybrid_spectral_ordering
from repro.orderings.sloan import sloan_ordering
from repro.orderings.spectral import spectral_ordering
from repro.sparse.pattern import SymmetricPattern

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # pipeline
    "reorder",
    "compare_orderings",
    "EnvelopeReport",
    # orderings
    "Ordering",
    "spectral_ordering",
    "rcm_ordering",
    "cuthill_mckee_ordering",
    "gps_ordering",
    "gibbs_king_ordering",
    "sloan_ordering",
    "hybrid_spectral_ordering",
    # eigen
    "fiedler_vector",
    "FiedlerResult",
    # envelope metrics
    "envelope_size",
    "envelope_work",
    "bandwidth",
    "envelope_statistics",
    "EnvelopeStatistics",
    # factorization
    "envelope_cholesky",
    "EnvelopeCholesky",
    "envelope_solve",
    # structure
    "SymmetricPattern",
]
