"""Reporting: text spy plots, comparison tables, and the experiment runner.

* :mod:`repro.analysis.spy` — the Figure 4.1-4.5 equivalents: density grids
  and ASCII spy plots of a matrix structure under an ordering, plus numerical
  band-profile summaries that capture the visual difference the paper shows
  between the local (GPS/GK/RCM) and spectral reorderings;
* :mod:`repro.analysis.report` — the Table 4.1-4.3 row format: one row per
  (matrix, algorithm) with envelope size, bandwidth, run time and rank;
* :mod:`repro.analysis.runner` — the experiment driver used by the benchmark
  harnesses and by ``examples/paper_tables.py``.
"""

from repro.analysis.spy import ascii_spy, density_grid, band_profile
from repro.analysis.report import ComparisonRow, comparison_table, format_table, rank_by
from repro.analysis.runner import ExperimentResult, run_comparison, run_problem_suite
from repro.analysis.locality import (
    LocalityReport,
    average_nonzero_distance,
    cache_line_spans,
    locality_report,
    partition_communication_volume,
)

__all__ = [
    "ascii_spy",
    "density_grid",
    "band_profile",
    "LocalityReport",
    "locality_report",
    "average_nonzero_distance",
    "cache_line_spans",
    "partition_communication_volume",
    "ComparisonRow",
    "comparison_table",
    "format_table",
    "rank_by",
    "ExperimentResult",
    "run_comparison",
    "run_problem_suite",
]
