"""Matrix-vector locality metrics of an ordering (the intro's matvec motivation).

The paper's introduction notes that envelope-reducing orderings "have also
been used in parallel matrix-vector multiplication".  The reason is locality:
in ``y = A x``, row ``i`` reads ``x[j]`` for every nonzero ``a_ij``, so the
spread of the column indices around the diagonal determines cache reuse (on
one processor) and communication volume (across a row-wise partition).  This
module quantifies that for a given ordering:

* :func:`average_nonzero_distance` — mean ``|i - j|`` over the off-diagonal
  nonzeros (``sigma_1 / offdiag-nnz``): small values mean the vector entries a
  row touches are close together;
* :func:`cache_line_spans` — for a given cache-line length, how many distinct
  lines of ``x`` each row touches (total and per-row mean);
* :func:`partition_communication_volume` — for a contiguous ``p``-way row
  partition of the reordered matrix, how many remote ``x`` entries each part
  must receive (the classic 1-D matvec communication volume).

These metrics are descriptive (no benchmark claims absolute cache behaviour);
the ablation-style tests check the expected ordering relationships, e.g. that
an envelope-reducing ordering has far better locality than a random one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.envelope.sums import one_sum
from repro.sparse.ops import structure_from_matrix
from repro.utils.validation import check_permutation, require_positive_int

__all__ = [
    "average_nonzero_distance",
    "cache_line_spans",
    "partition_communication_volume",
    "LocalityReport",
    "locality_report",
]


def _positions(pattern, perm):
    n = pattern.n
    if perm is None:
        return np.arange(n, dtype=np.intp)
    perm = check_permutation(perm, n)
    positions = np.empty(n, dtype=np.intp)
    positions[perm] = np.arange(n, dtype=np.intp)
    return positions


def average_nonzero_distance(pattern, perm=None) -> float:
    """Mean ``|i - j|`` over the off-diagonal nonzeros of the (re)ordered matrix."""
    pattern = structure_from_matrix(pattern)
    if pattern.num_edges == 0:
        return 0.0
    return one_sum(pattern, perm) / float(pattern.num_edges)


def cache_line_spans(pattern, perm=None, line_length: int = 8) -> dict:
    """Distinct ``x`` cache lines touched per row of the (re)ordered matrix.

    Parameters
    ----------
    pattern:
        Matrix structure.
    perm:
        Optional new-to-old ordering.
    line_length:
        Number of vector entries per cache line (8 doubles = one 64-byte line).

    Returns
    -------
    dict
        ``{"total": ..., "per_row_mean": ..., "per_row_max": ...}`` counting,
        for every row, the distinct lines holding the ``x`` entries the row
        reads (its own diagonal entry included).
    """
    pattern = structure_from_matrix(pattern)
    line_length = require_positive_int(line_length, "line_length")
    positions = _positions(pattern, perm)
    n = pattern.n
    counts = np.empty(n, dtype=np.intp)
    for v in range(n):
        cols = positions[pattern.neighbors(v)]
        lines = np.unique(np.concatenate([cols, positions[v : v + 1]]) // line_length)
        counts[positions[v]] = lines.size
    return {
        "total": int(counts.sum()),
        "per_row_mean": float(counts.mean()) if n else 0.0,
        "per_row_max": int(counts.max(initial=0)),
    }


def partition_communication_volume(pattern, parts: int, perm=None) -> dict:
    """1-D (row-block) matvec communication volume under an ordering.

    The reordered rows are split into ``parts`` contiguous blocks of (almost)
    equal size; part ``p`` owns the corresponding block of ``x``.  For
    ``y = A x`` each part must receive every remote ``x`` entry referenced by
    one of its rows; the *communication volume* counts those (entry, receiving
    part) pairs, and the cut counts edges joining different parts.

    Returns
    -------
    dict
        ``{"volume": ..., "cut_edges": ..., "max_part_volume": ...}``.
    """
    pattern = structure_from_matrix(pattern)
    parts = require_positive_int(parts, "parts")
    n = pattern.n
    positions = _positions(pattern, perm)
    if n == 0 or parts == 1:
        return {"volume": 0, "cut_edges": 0, "max_part_volume": 0}
    boundaries = np.linspace(0, n, parts + 1).astype(np.intp)
    part_of_position = np.searchsorted(boundaries[1:], np.arange(n), side="right")

    rows = np.repeat(np.arange(n), np.diff(pattern.indptr))
    cols = pattern.indices
    part_row = part_of_position[positions[rows]]
    part_col = part_of_position[positions[cols]]
    remote = part_row != part_col
    # volume: distinct (owner position of x entry, receiving part) pairs
    pairs = set(zip(positions[cols][remote].tolist(), part_row[remote].tolist()))
    per_part = np.zeros(parts, dtype=np.intp)
    for _, receiver in pairs:
        per_part[receiver] += 1
    # each undirected edge appears twice in the CSR structure; halve for the cut
    cut_edges = int(remote.sum()) // 2
    return {
        "volume": len(pairs),
        "cut_edges": cut_edges,
        "max_part_volume": int(per_part.max(initial=0)),
    }


@dataclass(frozen=True)
class LocalityReport:
    """Bundle of the locality metrics of one ordering."""

    average_distance: float
    cache_total: int
    cache_per_row_mean: float
    communication_volume: int
    cut_edges: int


def locality_report(pattern, perm=None, *, line_length: int = 8, parts: int = 4) -> LocalityReport:
    """Compute every locality metric of an ordering in one call."""
    pattern = structure_from_matrix(pattern)
    cache = cache_line_spans(pattern, perm, line_length=line_length)
    comm = partition_communication_volume(pattern, parts, perm)
    return LocalityReport(
        average_distance=average_nonzero_distance(pattern, perm),
        cache_total=cache["total"],
        cache_per_row_mean=cache["per_row_mean"],
        communication_volume=comm["volume"],
        cut_edges=comm["cut_edges"],
    )
