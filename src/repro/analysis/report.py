"""Comparison tables in the format of the paper's Tables 4.1-4.3.

Each paper table row reports, for one matrix and one algorithm: the envelope
size, the bandwidth, the ordering run time and the rank of the algorithm by
envelope size.  :func:`comparison_table` produces exactly those rows for a
set of orderings of one matrix, and :func:`format_table` renders them as a
fixed-width text table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.envelope.metrics import envelope_statistics

__all__ = ["ComparisonRow", "comparison_table", "rank_by", "rows_from_records", "format_table"]


@dataclass(frozen=True)
class ComparisonRow:
    """One row of a Table 4.x-style comparison."""

    problem: str
    algorithm: str
    n: int
    nnz: int
    envelope_size: int
    envelope_work: int
    bandwidth: int
    run_time: float
    rank: int = 0
    extra: dict = field(default_factory=dict)


def rank_by(rows: list[ComparisonRow], key: str = "envelope_size") -> list[ComparisonRow]:
    """Assign 1-based ranks by the given metric (smaller is better), per problem."""
    by_problem: dict[str, list[ComparisonRow]] = {}
    for row in rows:
        by_problem.setdefault(row.problem, []).append(row)
    ranked: list[ComparisonRow] = []
    for problem_rows in by_problem.values():
        order = np.argsort([getattr(r, key) for r in problem_rows], kind="stable")
        ranks = np.empty(len(problem_rows), dtype=int)
        ranks[order] = np.arange(1, len(problem_rows) + 1)
        for row, rank in zip(problem_rows, ranks):
            ranked.append(ComparisonRow(**{**row.__dict__, "rank": int(rank)}))
    return ranked


def comparison_table(
    pattern,
    orderings: dict,
    problem: str = "problem",
    run_times: dict | None = None,
) -> list[ComparisonRow]:
    """Build Table 4.x-style rows for several orderings of one matrix.

    Parameters
    ----------
    pattern:
        Matrix structure.
    orderings:
        Mapping ``algorithm name -> Ordering`` (or ``None`` for the natural
        ordering).
    problem:
        Problem name recorded on every row.
    run_times:
        Optional mapping ``algorithm name -> seconds``.

    Returns
    -------
    list of ComparisonRow, ranked by envelope size.
    """
    run_times = run_times or {}
    rows = []
    for name, ordering in orderings.items():
        perm = None if ordering is None else ordering.perm
        stats = envelope_statistics(pattern, perm)
        rows.append(
            ComparisonRow(
                problem=problem,
                algorithm=name,
                n=stats.n,
                nnz=stats.nnz,
                envelope_size=stats.envelope_size,
                envelope_work=stats.envelope_work,
                bandwidth=stats.bandwidth,
                run_time=float(run_times.get(name, 0.0)),
            )
        )
    return rank_by(rows)


def rows_from_records(records) -> list[ComparisonRow]:
    """Ranked comparison rows from batch :class:`repro.batch.results.TaskRecord`s.

    The adapter between the batch engine's structured results and the paper's
    table format: non-ok tasks (``"error"`` and ``"timeout"`` records alike)
    carry no metrics and are skipped — they are reported separately, e.g. as
    the ``FAILED``/``TIMEOUT`` lines of ``SuiteResult.to_text``.
    """
    rows = []
    for record in records:
        if not getattr(record, "ok", False):
            continue
        rows.append(
            ComparisonRow(
                problem=record.problem,
                algorithm=record.algorithm,
                n=int(record.n),
                nnz=int(record.nnz),
                envelope_size=int(record.metrics["envelope_size"]),
                envelope_work=int(record.metrics["envelope_work"]),
                bandwidth=int(record.metrics["bandwidth"]),
                run_time=float(record.time_s),
            )
        )
    return rank_by(rows)


def format_table(rows: list[ComparisonRow], title: str = "") -> str:
    """Render comparison rows as a fixed-width text table (paper layout)."""
    header = (
        f"{'Problem':<12} {'(n)':>9} {'(nnz)':>11} {'Algorithm':<10} "
        f"{'Envelope':>12} {'Bandwidth':>10} {'Time (s)':>10} {'Rank':>5}"
    )
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(header))
    lines.append(header)
    lines.append("-" * len(header))
    previous_problem = None
    for row in rows:
        problem_label = row.problem if row.problem != previous_problem else ""
        n_label = f"({row.n})" if row.problem != previous_problem else ""
        nnz_label = f"({row.nnz})" if row.problem != previous_problem else ""
        previous_problem = row.problem
        lines.append(
            f"{problem_label:<12} {n_label:>9} {nnz_label:>11} {row.algorithm.upper():<10} "
            f"{row.envelope_size:>12,} {row.bandwidth:>10,} {row.run_time:>10.3f} {row.rank:>5}"
        )
    return "\n".join(lines)
