"""Experiment runner: orchestrates the Table 4.1-4.3 style comparisons.

The benchmark harnesses and ``examples/paper_tables.py`` both need the same
operation: given a problem (a matrix structure), run a set of ordering
algorithms on it, time each one, compute the envelope statistics of each
result, and rank the algorithms.  :func:`run_comparison` does that for one
problem, :func:`run_problem_suite` for a whole paper table of registered
surrogate problems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import ComparisonRow, comparison_table, format_table
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS
from repro.sparse.ops import structure_from_matrix
from repro.utils.timing import Timer

__all__ = ["ExperimentResult", "run_comparison", "run_problem_suite"]


@dataclass
class ExperimentResult:
    """Result of one problem's comparison run.

    Attributes
    ----------
    problem:
        Problem name.
    rows:
        Ranked :class:`ComparisonRow` entries, one per algorithm.
    orderings:
        The computed :class:`repro.orderings.base.Ordering` objects by name.
    run_times:
        Ordering computation wall-clock times by algorithm name.
    """

    problem: str
    rows: list = field(default_factory=list)
    orderings: dict = field(default_factory=dict)
    run_times: dict = field(default_factory=dict)

    @property
    def winner(self) -> str:
        """Algorithm with the smallest envelope size."""
        best = min(self.rows, key=lambda r: r.envelope_size)
        return best.algorithm

    def row_for(self, algorithm: str) -> ComparisonRow:
        """The row of a specific algorithm (KeyError if absent)."""
        for row in self.rows:
            if row.algorithm == algorithm:
                return row
        raise KeyError(f"no row for algorithm {algorithm!r}")

    def to_text(self) -> str:
        """Render this result as a paper-style text table."""
        return format_table(self.rows, title=f"Results for {self.problem}")


def run_comparison(
    pattern,
    algorithms: tuple = PAPER_ALGORITHMS,
    problem: str = "problem",
    algorithm_options: dict | None = None,
) -> ExperimentResult:
    """Run several ordering algorithms on one matrix and tabulate the results.

    Parameters
    ----------
    pattern:
        Matrix structure (pattern, SciPy sparse matrix or dense array).
    algorithms:
        Iterable of registered algorithm names (default: the paper's four).
    problem:
        Problem name used in the rows.
    algorithm_options:
        Optional mapping ``name -> dict of keyword arguments``.

    Returns
    -------
    ExperimentResult
    """
    pattern = structure_from_matrix(pattern)
    algorithm_options = algorithm_options or {}
    orderings = {}
    run_times = {}
    for name in algorithms:
        func = ORDERING_ALGORITHMS[name]
        options = algorithm_options.get(name, {})
        timer = Timer()
        with timer:
            ordering = func(pattern, **options)
        orderings[name] = ordering
        run_times[name] = timer.elapsed
    rows = comparison_table(pattern, orderings, problem=problem, run_times=run_times)
    return ExperimentResult(problem=problem, rows=rows, orderings=orderings, run_times=run_times)


def run_problem_suite(
    problem_names,
    algorithms: tuple = PAPER_ALGORITHMS,
    scale: float | None = None,
    algorithm_options: dict | None = None,
) -> list[ExperimentResult]:
    """Run the comparison over a list of registered surrogate problems.

    Parameters
    ----------
    problem_names:
        Iterable of names from :data:`repro.collections.registry.PAPER_PROBLEMS`.
    algorithms:
        Algorithm names to run.
    scale:
        Surrogate scale forwarded to the problem generators.
    algorithm_options:
        Per-algorithm keyword arguments.

    Returns
    -------
    list of ExperimentResult, one per problem, in the given order.
    """
    from repro.collections.registry import load_problem

    results = []
    for name in problem_names:
        pattern, spec = load_problem(name, scale=scale)
        results.append(
            run_comparison(
                pattern,
                algorithms=algorithms,
                problem=spec.name,
                algorithm_options=algorithm_options,
            )
        )
    return results
