"""Experiment runner: orchestrates the Table 4.1-4.3 style comparisons.

The benchmark harnesses and ``examples/paper_tables.py`` both need the same
operation: given a problem (a matrix structure), run a set of ordering
algorithms on it, time each one, compute the envelope statistics of each
result, and rank the algorithms.  :func:`run_comparison` does that for one
problem, :func:`run_problem_suite` for a whole paper table of registered
surrogate problems.

Both are thin adapters over the parallel batch engine
(:mod:`repro.batch.engine`): :func:`run_comparison` executes the engine's
tasks in-process against an explicit pattern (exceptions propagate, as the
legacy API always did), while :func:`run_problem_suite` drives a full
:func:`repro.batch.engine.run_suite` run and accepts ``n_jobs`` to fan the
cells out over a process pool.  Callers that want structured, savable
results (failure records, the JSON artifact) should use
:func:`repro.batch.run_suite` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import ComparisonRow, format_table, rows_from_records
from repro.batch.engine import execute_task, run_suite
from repro.batch.tasks import BatchTask, derive_seed
from repro.orderings.registry import PAPER_ALGORITHMS
from repro.sparse.ops import structure_from_matrix

__all__ = ["ExperimentResult", "run_comparison", "run_problem_suite"]


@dataclass
class ExperimentResult:
    """Result of one problem's comparison run.

    Attributes
    ----------
    problem:
        Problem name.
    rows:
        Ranked :class:`ComparisonRow` entries, one per algorithm.
    orderings:
        The computed :class:`repro.orderings.base.Ordering` objects by name.
    run_times:
        Ordering computation wall-clock times by algorithm name.
    """

    problem: str
    rows: list = field(default_factory=list)
    orderings: dict = field(default_factory=dict)
    run_times: dict = field(default_factory=dict)

    @property
    def winner(self) -> str:
        """Algorithm with the smallest envelope size.

        Raises
        ------
        ValueError
            When the result holds no comparison rows (no algorithm ran
            successfully), instead of an opaque ``min()`` crash.
        """
        if not self.rows:
            raise ValueError(
                f"cannot determine a winner for {self.problem!r}: "
                "the result has no comparison rows"
            )
        best = min(self.rows, key=lambda r: r.envelope_size)
        return best.algorithm

    def row_for(self, algorithm: str) -> ComparisonRow:
        """The row of a specific algorithm (KeyError if absent)."""
        for row in self.rows:
            if row.algorithm == algorithm:
                return row
        raise KeyError(f"no row for algorithm {algorithm!r}")

    def to_text(self) -> str:
        """Render this result as a paper-style text table."""
        return format_table(self.rows, title=f"Results for {self.problem}")


def _experiment_from_records(problem: str, records) -> ExperimentResult:
    """Bundle the engine's per-task records into the legacy result object."""
    return ExperimentResult(
        problem=problem,
        rows=rows_from_records(records),
        orderings={r.algorithm: r.ordering for r in records if r.ok and r.ordering is not None},
        run_times={r.algorithm: r.time_s for r in records if r.ok},
    )


def run_comparison(
    pattern,
    algorithms: tuple = PAPER_ALGORITHMS,
    problem: str = "problem",
    algorithm_options: dict | None = None,
    base_seed: int = 0,
) -> ExperimentResult:
    """Run several ordering algorithms on one matrix and tabulate the results.

    Parameters
    ----------
    pattern:
        Matrix structure (pattern, SciPy sparse matrix or dense array).
    algorithms:
        Iterable of registered algorithm names (default: the paper's four).
    problem:
        Problem name used in the rows.
    algorithm_options:
        Optional mapping ``name -> dict of keyword arguments``.
    base_seed:
        Root of the deterministic per-algorithm seeding.

    Returns
    -------
    ExperimentResult
    """
    pattern = structure_from_matrix(pattern)
    algorithm_options = algorithm_options or {}
    records = []
    for index, name in enumerate(algorithms):
        task = BatchTask(
            problem=problem,
            algorithm=name,
            seed=derive_seed(base_seed, problem, name),
            options=dict(algorithm_options.get(name, {})),
            index=index,
        )
        records.append(execute_task(task, pattern=pattern, capture_errors=False))
    return _experiment_from_records(problem, records)


def run_problem_suite(
    problem_names,
    algorithms: tuple = PAPER_ALGORITHMS,
    scale: float | None = None,
    algorithm_options: dict | None = None,
    n_jobs: int = 1,
    base_seed: int = 0,
    timeout: float | None = None,
) -> list[ExperimentResult]:
    """Run the comparison over a list of registered surrogate problems.

    Parameters
    ----------
    problem_names:
        Iterable of names from :data:`repro.collections.registry.PAPER_PROBLEMS`.
    algorithms:
        Algorithm names to run.
    scale:
        Surrogate scale forwarded to the problem generators.
    algorithm_options:
        Per-algorithm keyword arguments.
    n_jobs:
        Worker processes for the batch engine (``1`` = serial in-process;
        results are identical either way).
    base_seed:
        Root of the deterministic per-task seeding.
    timeout:
        Per-task wall-clock limit in seconds, enforced by the batch engine's
        timeout pool (``None`` = unlimited).  A timed-out task surfaces as a
        :class:`RuntimeError` here, like any other failure.

    Returns
    -------
    list of ExperimentResult, one per problem, in the given order.

    Raises
    ------
    RuntimeError
        When any task failed or timed out — this legacy API has no
        failure-record channel.  Use :func:`repro.batch.run_suite` to get
        structured failure records instead.
    """
    suite = run_suite(
        problem_names,
        algorithms,
        scale=scale,
        n_jobs=n_jobs,
        algorithm_options=algorithm_options,
        base_seed=base_seed,
        timeout=timeout,
    )
    if suite.failures:
        first = suite.failures[0]
        error = first.error or {}
        raise RuntimeError(
            f"{len(suite.failures)} suite task(s) failed; first: "
            f"{first.problem}/{first.algorithm}: "
            f"{error.get('type', 'Error')}: {error.get('message', '')}"
        )
    # Records arrive in cross-product order: len(algorithms) consecutive
    # records per problem entry.  Chunking (rather than filtering by name)
    # keeps duplicate problem names as separate results, like the legacy loop.
    width = len(suite.algorithms)
    return [
        _experiment_from_records(problem, suite.records[i * width : (i + 1) * width])
        for i, problem in enumerate(suite.problems)
    ]
