"""Text spy plots and band profiles (the Figure 4.1-4.5 equivalents).

The paper's Figures 4.1-4.5 show the nonzero structure of BARTH4 under the
original ordering and the four reorderings; the qualitative message is that
GK/GPS/RCM produce narrow bands while the spectral reordering produces a
different, more "bowed" but tighter envelope.  Without a plotting dependency
this module renders the same information as

* a *density grid* — an ``m x m`` array whose ``(I, J)`` entry counts the
  structural nonzeros falling in that block of the (re)ordered matrix,
* an *ASCII spy plot* — the density grid drawn with characters of increasing
  darkness, and
* a *band profile* — per-row first/last nonzero columns and summary
  statistics, which quantify the visual band shape.
"""

from __future__ import annotations

import numpy as np

from repro.envelope.metrics import first_nonzero_columns, row_widths
from repro.sparse.ops import structure_from_matrix
from repro.utils.validation import check_permutation

__all__ = ["density_grid", "ascii_spy", "band_profile"]

_SHADES = " .:-=+*#%@"


def density_grid(pattern, perm=None, resolution: int = 64) -> np.ndarray:
    """Block nonzero counts of the (re)ordered matrix.

    Parameters
    ----------
    pattern:
        Matrix structure.
    perm:
        Optional new-to-old permutation.
    resolution:
        Number of blocks per side of the grid.

    Returns
    -------
    numpy.ndarray
        ``resolution x resolution`` array of nonzero counts (diagonal
        included), suitable for plotting or ASCII rendering.
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    resolution = int(min(max(1, resolution), max(1, n)))
    if perm is None:
        positions = np.arange(n, dtype=np.intp)
    else:
        perm = check_permutation(perm, n)
        positions = np.empty(n, dtype=np.intp)
        positions[perm] = np.arange(n, dtype=np.intp)

    scale = resolution / float(n)
    grid = np.zeros((resolution, resolution), dtype=np.int64)
    rows = np.repeat(np.arange(n), np.diff(pattern.indptr))
    if rows.size:
        bi = np.minimum((positions[rows] * scale).astype(np.intp), resolution - 1)
        bj = np.minimum((positions[pattern.indices] * scale).astype(np.intp), resolution - 1)
        np.add.at(grid, (bi, bj), 1)
    diag = np.minimum((positions * scale).astype(np.intp), resolution - 1)
    np.add.at(grid, (diag, diag), 1)
    return grid


def ascii_spy(pattern, perm=None, resolution: int = 48) -> str:
    """ASCII rendering of the spy plot of the (re)ordered matrix."""
    grid = density_grid(pattern, perm, resolution)
    peak = grid.max(initial=0)
    if peak == 0:
        return "\n".join(" " * grid.shape[1] for _ in range(grid.shape[0]))
    levels = (grid.astype(np.float64) / peak * (len(_SHADES) - 1)).round().astype(int)
    lines = ["".join(_SHADES[v] for v in row) for row in levels]
    return "\n".join(lines)


def band_profile(pattern, perm=None) -> dict:
    """Numerical summary of the band shape of the (re)ordered matrix.

    Returns
    -------
    dict
        ``n``, ``bandwidth``, ``envelope_size``, ``mean_row_width``,
        ``median_row_width``, ``p95_row_width`` and ``row_width_std`` — enough
        to distinguish the narrow uniform bands of RCM/GPS/GK from the wider
        but lower-area profile of the spectral ordering (the Figure 4.1-4.5
        comparison in numbers).
    """
    pattern = structure_from_matrix(pattern)
    widths = row_widths(pattern, perm).astype(np.float64)
    firsts = first_nonzero_columns(pattern, perm)
    n = pattern.n
    return {
        "n": n,
        "bandwidth": int(widths.max(initial=0)),
        "envelope_size": int(widths.sum()),
        "mean_row_width": float(widths.mean()) if n else 0.0,
        "median_row_width": float(np.median(widths)) if n else 0.0,
        "p95_row_width": float(np.percentile(widths, 95)) if n else 0.0,
        "row_width_std": float(widths.std()) if n else 0.0,
        "first_nonzero_min": int(firsts.min(initial=0)) if n else 0,
    }
