"""Per-kernel backend registry: vectorized numpy, loop ``python``, JIT ``numba``.

The envelope pipeline is dominated by a handful of inner loops — BFS frontier
expansion, the Cuthill-McKee queue, the GPS/GK level numbering, Sloan's
priority heap, and the CSR matvec under Lanczos/RQI — and each of those hot
sites asks this registry which implementation to run:

* ``numpy`` — the vectorized production paths already in place (always
  available, the default below the auto threshold).  The registry signals it
  by returning *no* kernel, so the call site falls through to its own code.
* ``python`` — the loop-form kernels of :mod:`repro.backends.kernels`,
  interpreted.  Slow; exists so the *exact* code numba compiles can be
  validated (property tests, differential sweep) without numba installed.
* ``numba`` — the same kernels JIT-compiled
  (:mod:`repro.backends.numba_backend`).  Optional: when numba is absent an
  explicit request falls back to numpy and the fallback is recorded, so
  artifacts and ``/statsz`` can report it.

Selection is per kernel call.  The requested backend comes from
:func:`set_backend` (the ``--backend`` CLI flag), else the ``REPRO_BACKEND``
environment variable (exported by the CLI so pool workers inherit it), else
``"auto"``.  In auto mode the compiled tier engages only above a per-kernel
work threshold (``n + nnz`` of the pattern at the call site, the same
analytic size measure the scheduler's cost model plans with) so tiny graphs
skip the dispatch and conversion overhead; ``REPRO_BACKEND_THRESHOLD``
overrides the thresholds globally, and
:func:`repro.backends.policy.fit_threshold` derives an observed threshold
from a numpy/numba bench artifact pair.

Identity guarantee: every backend returns bit-identical results — orderings
are integer algorithms with replicated tie-breaking, and the compiled CSR
matvec preserves scipy's summation order (no ``fastmath``).  The per-kernel
property tests and the differential sweep run against every available
backend.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.backends import kernels as _kernels
from repro.backends import numba_backend as _numba

__all__ = [
    "KERNELS",
    "BACKENDS",
    "BackendUnavailableError",
    "numba_available",
    "numba_versions",
    "available_backends",
    "normalize_backend",
    "set_backend",
    "requested_backend",
    "require_backend",
    "auto_threshold",
    "resolve_backend",
    "kernel_impl",
    "spmv_operator",
    "backend_status",
    "backend_summary",
    "backend_events",
    "reset_events",
]

#: Kernels the registry dispatches (hot sites in graph/orderings/eigen).
KERNELS = ("bfs_levels", "bfs_order", "number_by_levels", "sloan", "spmv")

#: Registered tiers, in fallback order.
BACKENDS = ("numpy", "python", "numba")

#: Names accepted by ``--backend`` / ``REPRO_BACKEND``.
REQUESTABLE = ("auto",) + BACKENDS

#: Auto-mode work threshold (``n + nnz`` at the call site) above which the
#: compiled tier engages.  Below it the numpy paths win: per-call dispatch
#: and array handoff overheads dominate tiny graphs.
DEFAULT_AUTO_THRESHOLD = 2048

_PY_KERNELS = {
    "bfs_levels": _kernels.bfs_levels_kernel,
    "bfs_order": _kernels.bfs_order_kernel,
    "number_by_levels": _kernels.number_by_levels_kernel,
    "sloan": _kernels.sloan_kernel,
    "spmv": _kernels.csr_matvec_kernel,
}

_lock = threading.Lock()
_override: str | None = None
_events: dict = {}
_fallbacks: int = 0
_invalid_env: str | None = None


class BackendUnavailableError(RuntimeError):
    """An explicitly requested backend cannot run in this environment.

    Carries the failing ``backend``, a ``reason`` and the ``available``
    backend list so the CLI can exit 2 with a structured message.
    """

    def __init__(self, backend: str, reason: str):
        self.backend = backend
        self.reason = reason
        self.available = available_backends()
        self.message = (
            f"backend {backend!r} is unavailable: {reason}; "
            f"available backends: {', '.join(self.available)} "
            "(use --backend auto for automatic selection with fallback)"
        )
        super().__init__(self.message)

    def __str__(self) -> str:
        return self.message


def numba_available() -> bool:
    """True when the numba tier can compile (numba imports cleanly)."""
    return _numba.available()


def numba_versions() -> dict:
    """``{"numba": ..., "llvmlite": ...}`` when installed, else ``{}``."""
    return _numba.versions()


def available_backends() -> list[str]:
    """Backends that can actually run in this environment."""
    names = ["numpy", "python"]
    if numba_available():
        names.append("numba")
    return names


def normalize_backend(name: str) -> str:
    """Validate and canonicalize a requested backend name.

    Accepts any of ``auto``, ``numpy``, ``python``, ``numba``
    (case-insensitive).  Raises ``ValueError`` otherwise.
    """
    key = str(name).strip().lower()
    if key not in REQUESTABLE:
        raise ValueError(
            f"unknown backend {name!r}; expected one of: {', '.join(REQUESTABLE)}"
        )
    return key


def set_backend(name: str | None) -> None:
    """Set (or with ``None`` clear) the process-level backend override.

    The override outranks ``REPRO_BACKEND``; the CLI also exports the
    environment variable so pool workers inherit the choice.
    """
    global _override
    _override = None if name is None else normalize_backend(name)


def requested_backend() -> str:
    """The effective request: override > ``REPRO_BACKEND`` env > ``auto``.

    An unrecognized environment value is treated as ``auto`` (and surfaced
    through :func:`backend_status`) rather than crashing worker processes.
    """
    global _invalid_env
    if _override is not None:
        return _override
    env = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not env:
        return "auto"
    if env in REQUESTABLE:
        return env
    _invalid_env = env
    return "auto"


def require_backend(name: str) -> str:
    """Validate that an explicit request can run; raise otherwise.

    ``auto`` always passes (it falls back by design).  ``numba`` raises
    :class:`BackendUnavailableError` when numba is not importable — the CLI
    turns that into a structured exit 2.
    """
    key = normalize_backend(name)
    if key == "numba" and not numba_available():
        raise BackendUnavailableError(
            "numba", "the 'numba' package is not installed in this environment"
        )
    return key


def auto_threshold() -> int:
    """Auto-mode work threshold (``REPRO_BACKEND_THRESHOLD`` env override)."""
    value = os.environ.get("REPRO_BACKEND_THRESHOLD", "")
    if not value:
        return DEFAULT_AUTO_THRESHOLD
    try:
        return max(0, int(value))
    except ValueError as exc:
        raise ValueError(
            f"REPRO_BACKEND_THRESHOLD must be an integer, got {value!r}"
        ) from exc


def _record(kernel: str, choice: str, fallback: bool = False) -> None:
    global _fallbacks
    with _lock:
        key = (kernel, choice)
        _events[key] = _events.get(key, 0) + 1
        if fallback:
            _fallbacks += 1


def resolve_backend(kernel: str, work: int) -> str:
    """The backend tier that will serve one call of *kernel*.

    *work* is the call-site size measure ``n + nnz``; it only matters in
    auto mode, where the compiled tier engages above :func:`auto_threshold`.
    A request for ``numba`` without numba resolves to ``numpy`` (the
    fallback is counted; the CLI rejects the explicit flag up front).
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of: {', '.join(KERNELS)}")
    req = requested_backend()
    if req == "numpy":
        choice = "numpy"
    elif req == "python":
        choice = "python"
    elif req == "numba":
        if numba_available():
            choice = "numba"
        else:
            _record(kernel, "numpy", fallback=True)
            return "numpy"
    else:  # auto
        choice = "numba" if numba_available() and work >= auto_threshold() else "numpy"
    _record(kernel, choice)
    return choice


def kernel_impl(kernel: str, work: int):
    """The loop/compiled implementation serving one call, or ``None``.

    ``None`` means "use the vectorized numpy path at the call site" — the
    hot sites do ``impl = kernel_impl(...); if impl is None: <numpy code>``.
    """
    choice = resolve_backend(kernel, work)
    if choice == "numpy":
        return None
    if choice == "python":
        return _PY_KERNELS[kernel]
    return _numba.compiled_kernels()[kernel]


def spmv_operator(matrix):
    """A backend matvec closure for a CSR float64 matrix, or ``None``.

    Returns ``None`` when the numpy tier is selected or the matrix is not a
    plain float64 CSR — callers keep their ``matrix @ v`` path.  The closure
    is bit-identical to scipy's matvec (same in-row summation order).
    """
    import scipy.sparse as sp

    if not (sp.issparse(matrix) and matrix.format == "csr" and matrix.dtype == np.float64):
        return None
    impl = kernel_impl("spmv", int(matrix.shape[0]) + int(matrix.nnz))
    if impl is None:
        return None
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    nrows = int(matrix.shape[0])

    def matvec(v):
        vec = np.ascontiguousarray(v, dtype=np.float64)
        if vec.ndim != 1 or vec.shape[0] != nrows:
            return matrix @ v
        out = np.empty(nrows, dtype=np.float64)
        impl(indptr, indices, data, vec, out)
        return out

    return matvec


def backend_events() -> dict:
    """Per-``(kernel, backend)`` call counts since process start (or reset)."""
    with _lock:
        return {f"{kernel}:{choice}": count for (kernel, choice), count in sorted(_events.items())}


def reset_events() -> None:
    """Zero the event counters (test/bench hook)."""
    global _fallbacks, _invalid_env
    with _lock:
        _events.clear()
        _fallbacks = 0
        _invalid_env = None


def backend_status() -> dict:
    """Snapshot for artifacts and ``/statsz``.

    Keys: the effective ``requested`` backend, numba availability and
    versions, the auto threshold, per-kernel dispatch counts, how many calls
    fell back from an unavailable explicit request, and any unrecognized
    ``REPRO_BACKEND`` value that was ignored.
    """
    status = {
        "requested": requested_backend(),
        "available": available_backends(),
        "numba_available": numba_available(),
        "auto_threshold": auto_threshold(),
        "events": backend_events(),
        "fallbacks": _fallbacks,
    }
    status.update(numba_versions())
    if _invalid_env:
        status["ignored_invalid_env"] = _invalid_env
    return status


def backend_summary() -> dict:
    """Deterministic backend block for suite artifacts (full/timing form).

    Unlike :func:`backend_status`, this carries no call counters — the same
    run configuration always produces the same summary, so it can live in
    the timing section of a suite artifact without perturbing replays.
    ``fallback`` is true when ``numba`` was explicitly requested but the
    package is absent (every dispatch served numpy instead).
    """
    requested = requested_backend()
    summary = {
        "requested": requested,
        "numba_available": numba_available(),
        "fallback": requested == "numba" and not numba_available(),
    }
    summary.update(numba_versions())
    return summary
