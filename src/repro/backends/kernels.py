"""Loop-form hot kernels shared by the ``python`` and ``numba`` backends.

Every function in this module is written in the *nopython* subset of Python —
scalar loops over preallocated arrays, no Python objects, no fancy indexing —
so the exact same code object runs two ways:

* interpreted, as the always-available ``python`` backend (slow, but it is
  the literal code the compiled tier executes, which makes the bit-identity
  tests meaningful without numba installed);
* JIT-compiled by :mod:`repro.backends.numba_backend` when numba is present
  (``numba.njit(cache=True)``, **without** ``fastmath`` so floating-point
  summation order is preserved).

Identity contracts (pinned by ``tests/test_backends.py`` against the
vectorized-numpy production paths, which are in turn pinned against
:mod:`repro.reference`):

* :func:`bfs_levels_kernel` reproduces the discovery order of
  ``SymmetricPattern.frontier_expand`` — the queue scan appends, for each
  frontier vertex in turn, its still-fresh neighbours in adjacency order,
  which is exactly the first-occurrence dedupe of the concatenated slab.
* :func:`bfs_order_kernel` is the vertex-at-a-time Cuthill-McKee queue scan
  (stable insertion sort by degree replicates the stable lexsort).
* :func:`number_by_levels_kernel` transcribes the GPS/GK level numbering:
  the "touched candidates first" rule becomes a leading 0/1 key in a single
  lexicographic argmin scan.
* :func:`sloan_kernel` replicates the heapq lazy-deletion max-heap: entries
  are ordered by ``(negated priority, push counter)`` with unique counters,
  so the pop sequence of *any* correct binary min-heap is identical to
  ``heapq``'s.  Push batches are deduplicated with the same keep-first
  (``w1 == 0``) / keep-last (``w1 != 0``) rule as ``_dedupe_batch``.
* :func:`csr_matvec_kernel` accumulates each row left to right, matching
  scipy's in-order CSR row summation bit for bit.

All integer work uses ``np.intp`` / ``np.int64`` to match the production
dtypes exactly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bfs_levels_kernel",
    "bfs_order_kernel",
    "number_by_levels_kernel",
    "sloan_kernel",
    "csr_matvec_kernel",
]


def bfs_levels_kernel(indptr, indices, roots, allowed, n):
    """Queue BFS producing level structure arrays.

    Returns ``(level_of, order, level_starts, num_levels)``: vertices in
    discovery order with ``order[level_starts[k]:level_starts[k+1]]`` the
    ``k``-th level.  Vertices outside ``allowed`` (or unreachable) keep
    ``level_of == -1``.  Duplicate roots are kept in level 0, matching the
    frontier-based production path.
    """
    level_of = np.full(n, -1, dtype=np.intp)
    order = np.empty(n + roots.shape[0], dtype=np.intp)
    level_starts = np.zeros(n + 2, dtype=np.intp)

    tail = 0
    for i in range(roots.shape[0]):
        r = roots[i]
        if allowed[r]:
            order[tail] = r
            level_of[r] = 0
            tail += 1
    if tail == 0:
        return level_of, order, level_starts, 0

    fresh = allowed.copy()
    for i in range(tail):
        fresh[order[i]] = False

    level_starts[1] = tail
    num_levels = 1
    start = 0
    end = tail
    while end > start:
        for i in range(start, end):
            v = order[i]
            for jj in range(indptr[v], indptr[v + 1]):
                w = indices[jj]
                if fresh[w]:
                    fresh[w] = False
                    level_of[w] = num_levels
                    order[tail] = w
                    tail += 1
        start = end
        end = tail
        if end > start:
            num_levels += 1
            level_starts[num_levels] = end
    return level_of, order, level_starts, num_levels


def bfs_order_kernel(indptr, indices, degrees, root, sort_by_degree, n):
    """Vertex-at-a-time BFS visitation order from ``root``.

    With ``sort_by_degree`` the still-unvisited neighbours of each dequeued
    vertex are appended in nondecreasing degree (stable in adjacency
    position) — the Cuthill-McKee enqueue rule.  Returns ``(order, count)``;
    only ``order[:count]`` is meaningful.
    """
    visited = np.zeros(n, dtype=np.bool_)
    order = np.empty(n, dtype=np.intp)
    buf = np.empty(n, dtype=np.intp)
    order[0] = root
    visited[root] = True
    tail = 1
    head = 0
    while head < tail:
        v = order[head]
        head += 1
        cnt = 0
        for jj in range(indptr[v], indptr[v + 1]):
            w = indices[jj]
            if not visited[w]:
                visited[w] = True
                buf[cnt] = w
                cnt += 1
        if sort_by_degree and cnt > 1:
            # Stable insertion sort by degree: equal degrees keep adjacency
            # order, matching the stable lexsort of the production path.
            for i in range(1, cnt):
                x = buf[i]
                dx = degrees[x]
                j = i - 1
                while j >= 0 and degrees[buf[j]] > dx:
                    buf[j + 1] = buf[j]
                    j -= 1
                buf[j + 1] = x
        for i in range(cnt):
            order[tail] = buf[i]
            tail += 1
    return order, tail


def number_by_levels_kernel(indptr, indices, degrees, levels, start, king, n):
    """GPS/GK phase-3 level-by-level numbering (see ``orderings/gps.py``).

    ``king`` selects the Gibbs-King tie-break (incrementally maintained
    active-front growth) instead of plain degree.  Returns the new-to-old
    permutation of the component.
    """
    numbered = np.zeros(n, dtype=np.bool_)
    # n encodes "no numbered neighbour yet": every real number is < n.
    bnn = np.full(n, n, dtype=np.intp)
    order = np.empty(n, dtype=np.intp)
    members = np.empty(n, dtype=np.intp)
    front_growth = degrees.astype(np.intp).copy()

    height = 0
    for v in range(n):
        if levels[v] > height:
            height = levels[v]

    def _number_vertex(v, number):
        if king:
            if bnn[v] >= n:
                for jj in range(indptr[v], indptr[v + 1]):
                    front_growth[indices[jj]] -= 1
            for jj in range(indptr[v], indptr[v + 1]):
                w = indices[jj]
                if (not numbered[w]) and bnn[w] >= n:
                    for kk in range(indptr[w], indptr[w + 1]):
                        front_growth[indices[kk]] -= 1
        for jj in range(indptr[v], indptr[v + 1]):
            w = indices[jj]
            if number < bnn[w]:
                bnn[w] = number

    order[0] = start
    numbered[start] = True
    _number_vertex(start, 0)
    count = 1

    for lvl in range(height + 1):
        msize = 0
        for v in range(n):
            if levels[v] == lvl and not numbered[v]:
                members[msize] = v
                msize += 1
        for _ in range(msize):
            # Lexicographic argmin over the still-unnumbered members with
            # keys (touched?, [front growth,] best neighbour number, degree,
            # vertex id).  The leading 0/1 "touched" key reproduces the
            # "candidates adjacent to a numbered vertex first" rule.
            best = -1
            b0 = np.intp(0)
            b1 = np.intp(0)
            b2 = np.intp(0)
            b3 = np.intp(0)
            for i in range(msize):
                v = members[i]
                if numbered[v]:
                    continue
                k0 = np.intp(0) if bnn[v] < n else np.intp(1)
                k1 = front_growth[v] if king else np.intp(0)
                k2 = bnn[v]
                k3 = degrees[v]
                if best < 0:
                    better = True
                elif k0 != b0:
                    better = k0 < b0
                elif k1 != b1:
                    better = k1 < b1
                elif k2 != b2:
                    better = k2 < b2
                elif k3 != b3:
                    better = k3 < b3
                else:
                    better = False  # ascending scan: first hit wins vertex tie
                if better:
                    best = v
                    b0, b1, b2, b3 = k0, k1, k2, k3
            order[count] = best
            numbered[best] = True
            _number_vertex(best, count)
            count += 1
    return order


def sloan_kernel(indptr, indices, degrees, dist_to_end, start, w1, w2, n):
    """Sloan's numbering loop over one connected component.

    Array-based binary min-heap keyed ``(negated priority, push counter)``
    with lazy deletion; counters are unique so the pop sequence is exactly
    ``heapq``'s.  Returns the new-to-old permutation.
    """
    inactive = np.int8(0)
    preactive = np.int8(1)
    active = np.int8(2)
    done = np.int8(3)

    status = np.zeros(n, dtype=np.int8)
    priority = np.empty(n, dtype=np.int64)
    for v in range(n):
        priority[v] = -w1 * (np.int64(degrees[v]) + 1) + w2 * np.int64(dist_to_end[v])

    order = np.empty(n, dtype=np.intp)
    nnz = indices.shape[0]
    # Every vertex is numbered once (ring-1 pushes <= nnz in total) and
    # becomes newly-active at most once (ring-2 pushes <= nnz in total).
    cap = 2 * nnz + n + 2
    hp = np.empty(cap, dtype=np.int64)
    hc = np.empty(cap, dtype=np.int64)
    hv = np.empty(cap, dtype=np.intp)
    hsize = 0
    counter = np.int64(0)

    ring1 = np.empty(n, dtype=np.intp)
    targets = np.empty(nnz + 1, dtype=np.intp)
    mark = np.full(n, -1, dtype=np.int64)
    lastpos = np.zeros(n, dtype=np.int64)
    keep_first = w1 == 0

    def _push(p, c, v, size):
        i = size
        hp[i] = p
        hc[i] = c
        hv[i] = v
        while i > 0:
            parent = (i - 1) >> 1
            if hp[i] < hp[parent] or (hp[i] == hp[parent] and hc[i] < hc[parent]):
                hp[i], hp[parent] = hp[parent], hp[i]
                hc[i], hc[parent] = hc[parent], hc[i]
                hv[i], hv[parent] = hv[parent], hv[i]
                i = parent
            else:
                break

    def _sift_down(size):
        i = 0
        while True:
            left = 2 * i + 1
            if left >= size:
                break
            small = left
            right = left + 1
            if right < size and (
                hp[right] < hp[left]
                or (hp[right] == hp[left] and hc[right] < hc[left])
            ):
                small = right
            if hp[small] < hp[i] or (hp[small] == hp[i] and hc[small] < hc[i]):
                hp[i], hp[small] = hp[small], hp[i]
                hc[i], hc[small] = hc[small], hc[i]
                hv[i], hv[small] = hv[small], hv[i]
                i = small
            else:
                break

    status[start] = preactive
    _push(-priority[start], counter, start, hsize)
    hsize += 1
    counter += 1

    count = 0
    step = np.int64(0)
    while count < n:
        v = -1
        while hsize > 0:
            neg_p = hp[0]
            u = hv[0]
            hsize -= 1
            if hsize > 0:
                hp[0] = hp[hsize]
                hc[0] = hc[hsize]
                hv[0] = hv[hsize]
                _sift_down(hsize)
            if status[u] != done and -neg_p == priority[u]:
                v = u
                break
        if v < 0:  # pragma: no cover - defensive; component is connected
            for u in range(n):
                if status[u] != done:
                    v = u
                    break

        r1 = 0
        for jj in range(indptr[v], indptr[v + 1]):
            w = indices[jj]
            if status[w] != done:
                ring1[r1] = w
                r1 += 1
                priority[w] += w1
        if status[v] == preactive:
            for i in range(r1):
                w = ring1[i]
                if status[w] == inactive:
                    status[w] = preactive
        for i in range(r1):
            w = ring1[i]
            _push(-priority[w], counter, w, hsize)
            hsize += 1
            counter += 1

        order[count] = v
        status[v] = done
        count += 1

        # Second ring: neighbours of newly activated vertices.  Priority
        # increments happen for every slab occurrence; the push batch keeps
        # one governing entry per vertex (first for w1 == 0, last otherwise).
        t = 0
        for i in range(r1):
            w = ring1[i]
            if status[w] == preactive:
                status[w] = active
                for jj in range(indptr[w], indptr[w + 1]):
                    x = indices[jj]
                    if status[x] != done:
                        targets[t] = x
                        t += 1
                        priority[x] += w1
        if t > 0:
            for i in range(t):
                x = targets[i]
                if status[x] == inactive:
                    status[x] = preactive
            if keep_first:
                for i in range(t):
                    x = targets[i]
                    if mark[x] != step:
                        mark[x] = step
                        _push(-priority[x], counter, x, hsize)
                        hsize += 1
                        counter += 1
            else:
                for i in range(t):
                    lastpos[targets[i]] = i
                for i in range(t):
                    x = targets[i]
                    if lastpos[x] == i:
                        _push(-priority[x], counter, x, hsize)
                        hsize += 1
                        counter += 1
        step += 1

    return order


def csr_matvec_kernel(indptr, indices, data, x, out):
    """CSR matrix-vector product with left-to-right row accumulation.

    Matches scipy's CSR matvec summation order exactly (and is compiled
    without ``fastmath``, so the compiler cannot reassociate the sums).
    """
    for i in range(indptr.shape[0] - 1):
        acc = 0.0
        for jj in range(indptr[i], indptr[i + 1]):
            acc += data[jj] * x[indices[jj]]
        out[i] = acc
    return out
