"""Optional numba tier: JIT compilation of :mod:`repro.backends.kernels`.

numba is an optional dependency — the container images and the numpy-only CI
lane do not ship it.  Everything here is import-gated: :func:`available`
probes once per process, :func:`compiled_kernels` compiles lazily on first
use, and a missing (or broken) numba simply reports unavailable so the
registry falls back to the numpy tier.

The kernels are compiled with ``cache=True`` (compile once per interpreter /
on-disk cache across processes) and **without** ``fastmath``: the identity
guarantee of the backend registry depends on LLVM not reassociating the
floating-point sums in :func:`repro.backends.kernels.csr_matvec_kernel`.
"""

from __future__ import annotations

from repro.backends import kernels as _kernels

__all__ = ["available", "versions", "compiled_kernels"]

_PROBED: bool | None = None
_COMPILED: dict | None = None

_KERNEL_FUNCS = {
    "bfs_levels": _kernels.bfs_levels_kernel,
    "bfs_order": _kernels.bfs_order_kernel,
    "number_by_levels": _kernels.number_by_levels_kernel,
    "sloan": _kernels.sloan_kernel,
    "spmv": _kernels.csr_matvec_kernel,
}


def available() -> bool:
    """True when numba imports cleanly (probed once per process)."""
    global _PROBED
    if _PROBED is None:
        try:
            import numba  # noqa: F401

            _PROBED = True
        except Exception:
            _PROBED = False
    return _PROBED


def versions() -> dict:
    """``{"numba": ..., "llvmlite": ...}`` when available, else ``{}``."""
    if not available():
        return {}
    out: dict = {}
    try:
        import numba

        out["numba"] = getattr(numba, "__version__", "unknown")
    except Exception:  # pragma: no cover - available() just succeeded
        return {}
    try:
        import llvmlite

        out["llvmlite"] = getattr(llvmlite, "__version__", "unknown")
    except Exception:  # pragma: no cover - ships with numba
        out["llvmlite"] = "unknown"
    return out


def compiled_kernels() -> dict:
    """Name → JIT-compiled kernel.  Raises ``ImportError`` when numba is absent."""
    global _COMPILED
    if _COMPILED is None:
        import numba

        jit = numba.njit(cache=True, fastmath=False)
        _COMPILED = {name: jit(func) for name, func in _KERNEL_FUNCS.items()}
    return _COMPILED


def _reset_for_tests() -> None:
    """Forget the probe/compile caches (test hook)."""
    global _PROBED, _COMPILED
    _PROBED = None
    _COMPILED = None
