"""Calibrating the auto-mode backend threshold from bench artifacts.

Auto mode engages the compiled tier only above a work threshold
(``n + nnz`` at the call site, see :func:`repro.backends.auto_threshold`):
below it the per-call dispatch, array handoff and (first-call) JIT overheads
outweigh the loop speedup.  The default is analytic; this module derives an
*observed* threshold from a matched pair of bench artifacts — one recorded
with ``repro bench --backend numpy``, one with ``--backend numba`` — by
finding the work size where the compiled tier starts winning.

The suite cells of a bench artifact carry ``n``/``nnz`` per cell, which is
exactly the work measure the dispatcher sees, so the calibration needs no
extra instrumentation::

    from repro.backends.policy import fit_threshold
    calibration = fit_threshold(load_bench("BENCH_numpy.json"),
                                load_bench("BENCH_numba.json"))
    os.environ["REPRO_BACKEND_THRESHOLD"] = str(calibration.threshold)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["CalibrationPoint", "Calibration", "fit_threshold"]


@dataclass(frozen=True)
class CalibrationPoint:
    """One matched suite cell: work size and baseline/compiled best times."""

    name: str
    work: int
    base_s: float
    compiled_s: float

    @property
    def speedup(self) -> float:
        """Baseline over compiled (>1 means the compiled tier won)."""
        return self.base_s / self.compiled_s if self.compiled_s > 0 else math.inf


@dataclass(frozen=True)
class Calibration:
    """A fitted auto-mode threshold and the evidence behind it.

    ``threshold`` minimizes the total *time lost to misclassification* over
    the observed points: for each point served by the wrong tier (compiled
    below its win size, or numpy above it) the loss is the difference of the
    two measured times.  ``fallback`` is true when the artifact pair held no
    usable matched points and ``threshold`` is just the supplied default.
    """

    threshold: int
    loss_s: float
    points: tuple = field(default_factory=tuple)
    fallback: bool = False

    def describe(self) -> str:
        if self.fallback:
            return (f"backend threshold {self.threshold} (default; no matched "
                    f"suite cells to calibrate from)")
        wins = sum(1 for p in self.points if p.speedup > 1.0)
        return (f"backend threshold {self.threshold} fitted from "
                f"{len(self.points)} matched cell(s) ({wins} compiled win(s), "
                f"misclassification loss {self.loss_s:.4f} s)")


def _matched_points(baseline: dict, compiled: dict) -> list[CalibrationPoint]:
    def cells(artifact: dict) -> dict:
        suite = artifact.get("suite") or {}
        out = {}
        for cell in suite.get("cells", []):
            if cell.get("status") != "ok":
                continue
            n, nnz = cell.get("n"), cell.get("nnz")
            if not n or nnz is None:
                continue  # pre-calibration artifacts lack n/nnz; skip them
            best = cell.get("best_s") or cell.get("time_s")
            if not best:
                continue
            out[f"{cell['problem']}/{cell['algorithm']}"] = (
                int(n) + int(nnz), float(best)
            )
        return out

    base, comp = cells(baseline), cells(compiled)
    points = [
        CalibrationPoint(name=name, work=base[name][0],
                         base_s=base[name][1], compiled_s=comp[name][1])
        for name in sorted(base)
        if name in comp
    ]
    return sorted(points, key=lambda p: (p.work, p.name))


def fit_threshold(baseline: dict, compiled: dict, *,
                  default: int | None = None) -> Calibration:
    """Fit the auto-mode work threshold from a numpy/numba artifact pair.

    Parameters
    ----------
    baseline, compiled:
        Bench artifacts (:func:`repro.bench.load_bench`) recorded with the
        numpy and the compiled tier respectively.  Matching is by suite cell
        (problem/algorithm); cells missing from either side, failed, or
        lacking ``n``/``nnz`` are ignored.
    default:
        Threshold returned when no matched points exist
        (:data:`repro.backends.DEFAULT_AUTO_THRESHOLD` when ``None``).

    Returns
    -------
    Calibration
        The candidate threshold (0, each observed work size, or above the
        largest) whose dispatch — compiled at ``work >= threshold``, numpy
        below — loses the least measured time versus always picking the
        faster tier per point.  Ties break toward the smallest threshold.
    """
    from repro.backends import DEFAULT_AUTO_THRESHOLD

    if default is None:
        default = DEFAULT_AUTO_THRESHOLD
    points = _matched_points(baseline, compiled)
    if not points:
        return Calibration(threshold=int(default), loss_s=0.0, fallback=True)

    candidates = sorted({0, *(p.work for p in points),
                         max(p.work for p in points) + 1})
    best_threshold, best_loss = None, None
    for threshold in candidates:
        loss = 0.0
        for p in points:
            served_compiled = p.work >= threshold
            chosen = p.compiled_s if served_compiled else p.base_s
            loss += chosen - min(p.base_s, p.compiled_s)
        if best_loss is None or loss < best_loss - 1e-12:
            best_threshold, best_loss = threshold, loss
    return Calibration(threshold=int(best_threshold), loss_s=float(best_loss),
                       points=tuple(points))
