"""Distributable batch-experiment engine with structured, mergeable results.

The paper's evaluation is a cross-product of ``{problems} x {ordering
algorithms}``; this package decomposes it into independent tasks
(:mod:`repro.batch.tasks`), executes them serially, over a process pool, or
as one shard of a multi-machine run (:mod:`repro.batch.engine`), streams
records incrementally to a resumable JSONL sink (:mod:`repro.batch.stream`),
and bundles the outcomes into a versioned JSON artifact that can be saved,
diffed, regression-compared and merged across shards
(:mod:`repro.batch.results`).

Quick start::

    from repro.batch import run_suite
    suite = run_suite(["BARTH4", "POW9"], scale=0.02, n_jobs=4)
    suite.save("results.json")
    print(suite.to_text())

Distributed across 3 machines::

    # machine k of 3 (k = 1, 2, 3):
    shard = run_suite(["BARTH4", "POW9"], scale=0.02, shard=(k, 3))
    shard.save(f"shard{k}.json")

    # anywhere afterwards:
    from repro.batch import SuiteResult, merge_results
    merged = merge_results([SuiteResult.load(f"shard{k}.json") for k in (1, 2, 3)])

or from the command line::

    repro suite --jobs 4 --output results.json
    repro suite --shard 2/3 --output shard2.json
    repro merge shard1.json shard2.json shard3.json --output full.json
"""

from repro.batch.engine import (
    clear_problem_cache,
    crash_record,
    execute_task,
    iter_suite,
    problem_cache_info,
    run_suite,
    task_options,
    timeout_record,
)
from repro.batch.results import (
    READ_COMPAT_VERSIONS,
    SCHEMA_VERSION,
    SchemaVersionError,
    SuiteResult,
    TaskRecord,
    dedupe_records,
    merge_results,
)
from repro.batch.sched import (
    CostModel,
    ShardPlan,
    auto_timeout,
    order_longest_first,
    plan_shards,
)
from repro.batch.stream import (
    StreamWriter,
    TruncatedStreamError,
    read_jsonl_objects,
    read_jsonl_objects_partial,
    read_stream,
    read_stream_partial,
    stream_header,
    suite_from_stream,
    validate_stream_header,
)
from repro.batch.tasks import (
    BatchTask,
    build_task,
    build_tasks,
    derive_seed,
    parse_shard,
    shard_tasks,
)

__all__ = [
    "BatchTask",
    "CostModel",
    "READ_COMPAT_VERSIONS",
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "ShardPlan",
    "StreamWriter",
    "SuiteResult",
    "TruncatedStreamError",
    "TaskRecord",
    "auto_timeout",
    "build_task",
    "build_tasks",
    "clear_problem_cache",
    "crash_record",
    "dedupe_records",
    "derive_seed",
    "execute_task",
    "problem_cache_info",
    "iter_suite",
    "merge_results",
    "order_longest_first",
    "parse_shard",
    "plan_shards",
    "read_jsonl_objects",
    "read_jsonl_objects_partial",
    "read_stream",
    "read_stream_partial",
    "run_suite",
    "shard_tasks",
    "stream_header",
    "suite_from_stream",
    "task_options",
    "timeout_record",
    "validate_stream_header",
]
