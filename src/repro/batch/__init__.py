"""Parallel batch-experiment engine with structured, replayable results.

The paper's evaluation is a cross-product of ``{problems} x {ordering
algorithms}``; this package decomposes it into independent tasks
(:mod:`repro.batch.tasks`), executes them serially or over a process pool
(:mod:`repro.batch.engine`), and bundles the outcomes into a versioned JSON
results artifact that can be saved, diffed and regression-compared
(:mod:`repro.batch.results`).

Quick start::

    from repro.batch import run_suite
    suite = run_suite(["BARTH4", "POW9"], scale=0.02, n_jobs=4)
    suite.save("results.json")
    print(suite.to_text())

or from the command line::

    repro suite --jobs 4 --output results.json
"""

from repro.batch.engine import execute_task, run_suite, task_options
from repro.batch.results import SCHEMA_VERSION, SuiteResult, TaskRecord
from repro.batch.tasks import BatchTask, build_tasks, derive_seed

__all__ = [
    "BatchTask",
    "SCHEMA_VERSION",
    "SuiteResult",
    "TaskRecord",
    "build_tasks",
    "derive_seed",
    "execute_task",
    "run_suite",
    "task_options",
]
