"""Parallel batch-experiment engine — the backend of ``repro suite``.

Executes the ``{problems} x {algorithms}`` cross-product of a suite run as
independent tasks (see :mod:`repro.batch.tasks`), either in-process
(``n_jobs=1``) or over a :class:`concurrent.futures.ProcessPoolExecutor`.
Results are identical in both modes: every task carries a deterministic seed,
and patterns are rebuilt from the registry inside each worker so no shared
mutable state is involved.

One failing task never kills the suite: the exception is captured into a
structured ``"error"`` record (type, message, traceback) and the remaining
tasks keep running.

Example
-------
>>> from repro.batch import run_suite
>>> suite = run_suite(["POW9", "CAN1072"], algorithms=("rcm", "gps"),
...                   scale=0.02, n_jobs=2)
>>> suite.failures
[]
>>> _ = suite.save("results.json")    # doctest: +SKIP

The equivalent CLI invocation::

    repro suite POW9 CAN1072 --algorithms rcm,gps --scale 0.02 \\
        --jobs 2 --output results.json
"""

from __future__ import annotations

import inspect
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from functools import lru_cache

import numpy as np

from repro.batch.results import SuiteResult, TaskRecord
from repro.batch.tasks import BatchTask, build_tasks
from repro.collections.registry import load_problem
from repro.envelope.metrics import envelope_statistics
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS
from repro.utils.timing import Timer

__all__ = ["execute_task", "run_suite", "task_options"]


@lru_cache(maxsize=64)
def _cached_pattern(problem: str, scale: float | None):
    """Per-process cache of surrogate patterns, shared by a worker's tasks."""
    pattern, _spec = load_problem(problem, scale=scale)
    return pattern


def _accepts_rng(func) -> bool:
    try:
        return "rng" in inspect.signature(func).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins without signatures
        return False


def task_options(func, task: BatchTask) -> dict:
    """The algorithm's keyword arguments, with the task's deterministic rng
    injected when the algorithm accepts one and the caller did not supply it."""
    options = dict(task.options)
    if "rng" not in options and _accepts_rng(func):
        options["rng"] = np.random.default_rng(task.seed)
    return options


def execute_task(task: BatchTask, pattern=None, capture_errors: bool = True) -> TaskRecord:
    """Run one ``(problem, algorithm)`` cell and return its :class:`TaskRecord`.

    Parameters
    ----------
    task:
        The cell to run.
    pattern:
        Pre-built matrix structure.  When ``None`` the pattern is built (and
        memoized per process) from the registered problem generator at the
        task's scale.
    capture_errors:
        When true (the batch default) any exception becomes a structured
        ``"error"`` record; when false it propagates to the caller (the
        behaviour of the legacy in-process runner).
    """
    try:
        func = ORDERING_ALGORITHMS[task.algorithm]
        if pattern is None:
            pattern = _cached_pattern(task.problem, task.scale)
        timer = Timer()
        with timer:
            ordering = func(pattern, **task_options(func, task))
        stats = envelope_statistics(pattern, ordering.perm)
        return TaskRecord(
            problem=task.problem,
            algorithm=task.algorithm,
            status="ok",
            seed=task.seed,
            n=stats.n,
            nnz=stats.nnz,
            metrics=stats.as_dict(),
            time_s=float(timer.elapsed),
            ordering=ordering,
        )
    except Exception as exc:
        if not capture_errors:
            raise
        return TaskRecord(
            problem=task.problem,
            algorithm=task.algorithm,
            status="error",
            seed=task.seed,
            error={
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        )


def run_suite(
    problem_names,
    algorithms=PAPER_ALGORITHMS,
    *,
    scale: float | None = None,
    n_jobs: int | None = 1,
    algorithm_options: dict | None = None,
    base_seed: int = 0,
    keep_orderings: bool = True,
) -> SuiteResult:
    """Run the full ``problems x algorithms`` suite and return a :class:`SuiteResult`.

    Parameters
    ----------
    problem_names:
        Registered paper-problem names (case-insensitive).
    algorithms:
        Registered ordering-algorithm names (default: the paper's four).
    scale:
        Surrogate scale (``None`` uses the registry default).
    n_jobs:
        Worker processes.  ``1`` (default) runs serially in-process and
        produces bit-identical results to any parallel run; ``None`` uses
        the CPU count.
    algorithm_options:
        Mapping ``algorithm name -> dict of keyword arguments``.
    base_seed:
        Root of the deterministic per-task seeding.
    keep_orderings:
        When false, the permutation objects are dropped from the records
        (smaller in-memory result; the JSON artifact never contains them).

    Raises
    ------
    ValueError
        On unknown problem/algorithm names or a non-positive ``n_jobs``
        (validated up front; a task that *raises while running* is captured
        as a failure record instead).
    """
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    n_jobs = int(n_jobs)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be a positive integer or None, got {n_jobs}")

    problems = [str(name).strip().upper() for name in problem_names]
    algorithms = tuple(algorithms)
    tasks = build_tasks(
        problems,
        algorithms,
        scale=scale,
        algorithm_options=algorithm_options,
        base_seed=base_seed,
    )

    timer = Timer()
    with timer:
        if n_jobs == 1 or len(tasks) <= 1:
            records = [execute_task(task) for task in tasks]
        else:
            with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
                records = list(pool.map(execute_task, tasks, chunksize=1))
    if not keep_orderings:
        for record in records:
            record.ordering = None
    return SuiteResult(
        problems=problems,
        algorithms=list(algorithms),
        scale=scale,
        n_jobs=n_jobs,
        base_seed=base_seed,
        records=records,
        wall_time_s=float(timer.elapsed),
    )
