"""Parallel batch-experiment engine — the backend of ``repro suite``.

Executes the ``{problems} x {algorithms}`` cross-product of a suite run as
independent tasks (see :mod:`repro.batch.tasks`), either in-process
(``n_jobs=1``) or over a process pool.  Results are identical in both modes:
every task carries a deterministic seed, and patterns are rebuilt from the
registry inside each worker so no shared mutable state is involved.

One failing task never kills the suite: the exception is captured into a
structured ``"error"`` record (type, message, traceback) and the remaining
tasks keep running.  With a per-task ``timeout``, a task that overruns is
terminated and captured as a ``"timeout"`` record the same way.

Streaming
---------
:func:`iter_suite` yields ``(task, record)`` pairs *as workers finish*
(completion order when parallel, task order when serial), which is what the
CLI's live progress line and ``--stream-output`` JSONL sink consume.
:func:`run_suite` drains the same iterator and re-sorts into the
deterministic task order, so artifacts never depend on scheduling.

Example
-------
>>> from repro.batch import run_suite
>>> suite = run_suite(["POW9"], algorithms=("rcm", "gps"), scale=0.02)
>>> suite.failures
[]
>>> [record.algorithm for record in suite.records]
['rcm', 'gps']
>>> _ = suite.save("results.json")    # doctest: +SKIP

The equivalent CLI invocation::

    repro suite POW9 --algorithms rcm,gps --scale 0.02 --output results.json
"""

from __future__ import annotations

import inspect
import math
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import replace
from functools import lru_cache

import numpy as np

from repro import faults
from repro.batch.results import SuiteResult, TaskRecord
from repro.batch.sched import CostModel, order_longest_first, plan_shards
from repro.batch.tasks import BatchTask, build_tasks, derive_seed, shard_tasks
from repro.collections.registry import load_problem
from repro.envelope.metrics import envelope_statistics
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS
from repro.utils.timing import Timer

__all__ = [
    "crash_record",
    "execute_task",
    "iter_suite",
    "run_suite",
    "task_options",
    "timeout_record",
    "problem_cache_info",
    "clear_problem_cache",
]

# Injected-fault backoff sleeps go through this indirection so tests can
# observe the schedule without actually waiting.
_sleep = time.sleep


def _fault_key(task: BatchTask) -> str:
    """The deterministic fault-draw key of one execution attempt."""
    return f"{task.problem}/{task.algorithm}#a{int(task.attempt)}"


@lru_cache(maxsize=64)
def _cached_pattern(problem: str, scale: float | None):
    """Per-worker problem cache keyed by ``(problem, scale)``.

    The ``{problems} x {algorithms}`` cross-product hands every worker several
    tasks per problem; building (and validating) the surrogate pattern is a
    nontrivial fraction of a cell's cost, so each worker process assembles it
    once and reuses it for all of that problem's algorithms.  The pattern's
    degree array is additionally memoized on first touch
    (:meth:`repro.sparse.pattern.SymmetricPattern.degree`), so the cached
    object keeps getting cheaper as algorithms hit it.

    Correctness: patterns are structurally immutable and every task derives
    its randomness from its own seed, so cached and cold runs are
    byte-identical in canonical form (pinned by
    ``tests/test_batch_cache.py``).

    When a persistent store is configured (``--store`` / ``REPRO_STORE``)
    the built structure is additionally spilled to disk keyed by
    ``(problem, scale)`` and loaded from there on a cold in-process cache —
    the cross-process extension of this cache that lets every suite worker,
    bench repeat and ``repro cache prewarm`` share one build.
    """
    from repro.store.core import get_default_store

    store = get_default_store()
    if store is not None:
        from repro.store import spectral as codecs

        pattern = codecs.load_pattern(store, problem, scale)
        if pattern is not None:
            return pattern
    pattern, _spec = load_problem(problem, scale=scale)
    if store is not None:
        try:
            codecs.save_pattern(store, problem, scale, pattern)
        except OSError:
            pass  # a read-only/full store must never fail the build
    return pattern


def problem_cache_info():
    """``functools.lru_cache`` statistics of this process's problem cache."""
    return _cached_pattern.cache_info()


def clear_problem_cache() -> None:
    """Drop this process's cached problem patterns (tests / memory pressure)."""
    _cached_pattern.cache_clear()


def _accepts_rng(func) -> bool:
    try:
        return "rng" in inspect.signature(func).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins without signatures
        return False


def task_options(func, task: BatchTask) -> dict:
    """The algorithm's keyword arguments, with the task's deterministic rng
    injected when the algorithm accepts one and the caller did not supply it."""
    options = dict(task.options)
    if "rng" not in options and _accepts_rng(func):
        options["rng"] = np.random.default_rng(task.seed)
    return options


def execute_task(task: BatchTask, pattern=None, capture_errors: bool = True) -> TaskRecord:
    """Run one ``(problem, algorithm)`` cell and return its :class:`TaskRecord`.

    Parameters
    ----------
    task:
        The cell to run.
    pattern:
        Pre-built matrix structure.  When ``None`` the pattern is built (and
        memoized per process) from the registered problem generator at the
        task's scale.
    capture_errors:
        When true (the batch default) any exception becomes a structured
        ``"error"`` record; when false it propagates to the caller (the
        behaviour of the legacy in-process runner).
    """
    try:
        faults.worker_faults(_fault_key(task), point="start")
        func = ORDERING_ALGORITHMS[task.algorithm]
        if pattern is None:
            pattern = _cached_pattern(task.problem, task.scale)
        timer = Timer()
        with timer:
            ordering = func(pattern, **task_options(func, task))
        stats = envelope_statistics(pattern, ordering.perm)
        faults.worker_faults(_fault_key(task), point="finish")
        return TaskRecord(
            problem=task.problem,
            algorithm=task.algorithm,
            status="ok",
            seed=task.seed,
            n=stats.n,
            nnz=stats.nnz,
            metrics=stats.as_dict(),
            time_s=float(timer.elapsed),
            ordering=ordering,
        )
    except Exception as exc:
        if not capture_errors:
            raise
        return TaskRecord(
            problem=task.problem,
            algorithm=task.algorithm,
            status="error",
            seed=task.seed,
            error={
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            },
        )


def timeout_record(task: BatchTask, timeout: float) -> TaskRecord:
    """The structured record of a task terminated by the per-task timeout."""
    return TaskRecord(
        problem=task.problem,
        algorithm=task.algorithm,
        status="timeout",
        seed=task.seed,
        time_s=float(timeout),
        error={
            "type": "TaskTimeout",
            "message": f"task exceeded the per-task timeout of {timeout:g} s",
            "traceback": None,
        },
    )


def crash_record(task: BatchTask, detail: str) -> TaskRecord:
    """The structured record of a worker that died without reporting back."""
    return TaskRecord(
        problem=task.problem,
        algorithm=task.algorithm,
        status="error",
        seed=task.seed,
        error={
            "type": "WorkerCrashed",
            "message": f"worker process died without a result ({detail})",
            "traceback": None,
        },
    )


def _is_crash(record: TaskRecord) -> bool:
    """True when a record reports a worker that died without a result."""
    return (record.status == "error"
            and (record.error or {}).get("type") == "WorkerCrashed")


def _timeout_worker(task: BatchTask, connection) -> None:
    """Child-process entry point of the timeout pool: run one task, pipe the
    record back.  ``execute_task`` already captures ordinary exceptions."""
    try:
        connection.send(execute_task(task))
    finally:
        connection.close()


def _iter_with_timeout(tasks, n_jobs: int, timeout_for):
    """Yield ``(task, record)`` as tasks finish, terminating overrunners.

    Each task gets its own worker process (started with the platform-default
    multiprocessing context) so an overrunning task can be killed without
    poisoning a shared pool: on deadline the process is terminated and a
    ``"timeout"`` record yielded, while up to ``n_jobs`` other workers keep
    running undisturbed.  ``timeout_for(task)`` supplies the per-task limit;
    ``None`` means that task has no deadline (the ``--timeout auto`` path for
    cells the cost model has never observed).
    """
    context = multiprocessing.get_context()
    pending = list(tasks)[::-1]
    running: dict = {}  # receive-end connection -> (task, process, deadline, limit)
    try:
        while pending or running:
            while pending and len(running) < n_jobs:
                task = pending.pop()
                receiver, sender = context.Pipe(duplex=False)
                process = context.Process(
                    target=_timeout_worker, args=(task, sender), daemon=True
                )
                process.start()
                sender.close()
                limit = timeout_for(task)
                if limit is not None and limit <= 0:
                    raise ValueError(
                        f"timeout policy returned {limit!r} for "
                        f"{task.problem}/{task.algorithm}; per-task limits "
                        f"must be positive (or None for no limit)"
                    )
                deadline = math.inf if limit is None else time.monotonic() + limit
                running[receiver] = (task, process, deadline, limit)

            nearest = min(deadline for (_, _, deadline, _) in running.values())
            wait_s = None if math.isinf(nearest) else max(0.0, nearest - time.monotonic())
            ready = multiprocessing.connection.wait(list(running), timeout=wait_s)
            now = time.monotonic()
            for receiver in list(running):
                task, process, deadline, limit = running[receiver]
                if receiver in ready:
                    try:
                        record = receiver.recv()
                    except (EOFError, OSError) as exc:
                        record = crash_record(task, f"{type(exc).__name__}")
                elif now >= deadline:
                    process.terminate()
                    record = timeout_record(task, limit)
                else:
                    continue
                del running[receiver]
                receiver.close()
                process.join()
                yield task, record
    finally:
        for task, process, _deadline, _limit in running.values():
            process.terminate()
            process.join()


def _iter_pool(tasks, n_jobs: int):
    """Yield ``(task, record)`` in completion order from a shared process pool.

    A worker that dies mid-task (SIGKILL, OOM, injected crash) breaks the
    whole executor — every pending future raises ``BrokenProcessPool`` at
    once.  Each such task is captured as a ``"WorkerCrashed"`` record rather
    than killing the suite; tasks the broken pool never started are re-run
    through a fresh pool so one crash costs one cell, not the batch.
    """
    tasks = list(tasks)
    broke = False
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
        futures = {pool.submit(execute_task, task): task for task in tasks}
        pending = {id(task): task for task in tasks}
        for future in as_completed(futures):
            task = futures[future]
            try:
                record = future.result()
            except Exception:
                # The pool is poisoned; which worker actually died is
                # resolved below, not from completion-order timing.
                broke = True
                continue
            pending.pop(id(task), None)
            yield task, record
    if not broke:
        return
    # A broken pool cannot say *which* task killed its worker — every
    # unfinished future raises the same BrokenProcessPool.  Re-run each
    # survivor in an isolated single-worker pool: execution is deterministic
    # (seeds and fault draws are pure functions of the task), so the genuine
    # crasher crashes again — unambiguously attributed — and collateral
    # tasks complete normally.  One crash costs one cell, never the batch.
    for task in pending.values():
        with ProcessPoolExecutor(max_workers=1) as solo:
            try:
                record = solo.submit(execute_task, task).result()
            except Exception as exc:
                record = crash_record(task, type(exc).__name__)
        yield task, record


def iter_suite(tasks, *, n_jobs: int = 1, timeout: float | None = None):
    """Stream ``(task, record)`` pairs as the suite's tasks complete.

    The generator behind :func:`run_suite` and the CLI's live progress /
    ``--stream-output`` sink.  Serial execution (``n_jobs=1`` without a
    timeout) yields in task order; parallel execution yields in completion
    order — consumers that need the deterministic order sort by
    ``task.index`` afterwards, as :func:`run_suite` does.

    Parameters
    ----------
    tasks:
        :class:`~repro.batch.tasks.BatchTask` list (any slice, e.g. a shard).
    n_jobs:
        Concurrent worker processes.
    timeout:
        Per-task wall-clock limit in seconds — a single float for every
        task, or a callable ``task -> float | None`` for per-cell limits
        (``None`` exempts that task; the ``--timeout auto`` cost-model
        path).  A task that overruns is terminated and reported as a
        ``"timeout"`` record; the remaining tasks are unaffected.  Requires
        worker processes even for ``n_jobs=1`` (an in-process task could
        not be interrupted), so plain serial runs leave it ``None``.
    """
    tasks = list(tasks)
    if timeout is not None:
        if callable(timeout):
            timeout_fn = timeout
        else:
            if timeout <= 0:
                raise ValueError(f"timeout must be positive, got {timeout}")
            limit = float(timeout)

            def timeout_fn(_task, _limit=limit):
                return _limit

        yield from _iter_with_timeout(tasks, max(int(n_jobs), 1), timeout_fn)
    elif n_jobs == 1 or len(tasks) <= 1:
        for task in tasks:
            yield task, execute_task(task)
    else:
        yield from _iter_pool(tasks, int(n_jobs))


def run_suite(
    problem_names,
    algorithms=PAPER_ALGORITHMS,
    *,
    scale: float | None = None,
    n_jobs: int | None = 1,
    algorithm_options: dict | None = None,
    base_seed: int = 0,
    keep_orderings: bool = True,
    shard: tuple | None = None,
    balance: str = "roundrobin",
    cost_model: CostModel | None = None,
    timeout: float | None = None,
    retry_timeouts: int = 0,
    timeout_growth: float = 2.0,
    retry_crashes: int = 0,
    crash_backoff_s: float = 0.1,
    completed=None,
    on_record=None,
) -> SuiteResult:
    """Run the full ``problems x algorithms`` suite and return a :class:`SuiteResult`.

    Parameters
    ----------
    problem_names:
        Registered paper-problem names (case-insensitive).
    algorithms:
        Registered ordering-algorithm names (default: the paper's four).
    scale:
        Surrogate scale (``None`` uses the registry default).
    n_jobs:
        Worker processes.  ``1`` (default) runs serially in-process and
        produces bit-identical results to any parallel run; ``None`` uses
        the CPU count.
    algorithm_options:
        Mapping ``algorithm name -> dict of keyword arguments``.
    base_seed:
        Root of the deterministic per-task seeding.
    keep_orderings:
        When false, the permutation objects are dropped from the records
        (smaller in-memory result; the JSON artifact never contains them).
    shard:
        ``(index, count)`` (1-based) to run only one slice of the task
        list — the ``--shard K/N`` distribution primitive.  The result
        records the shard so :func:`repro.batch.results.merge_results`
        can validate and recombine the slices.
    balance:
        How ``shard`` splits the task list: ``"roundrobin"`` (default, the
        stable index-modulo slices) or ``"cost"`` (the greedy LPT plan of
        :func:`repro.batch.sched.plan_shards`, balanced on the cost
        model's estimates — all machines must use the same cost model to
        get disjoint slices).  Either way the merged result is
        byte-identical in canonical form to a single-machine run.
    cost_model:
        :class:`~repro.batch.sched.CostModel` feeding both the
        cost-balanced shard plan and the in-process dispatcher, which
        hands worker pools the expensive cells first so the pool drains
        without tail stragglers.  ``balance="cost"`` without a model uses
        the pure fallback estimator.  Never affects results — only which
        machine/worker computes them when.
    timeout:
        Per-task wall-clock limit in seconds — a float, or a callable
        ``task -> float | None`` for cost-model-derived per-cell limits
        (see :func:`iter_suite` and
        :func:`repro.batch.sched.auto_timeout`); overrunning tasks become
        ``"timeout"`` records.
    retry_timeouts:
        Number of escalation rounds for timed-out cells.  After the suite
        drains, cells with a ``"timeout"`` record are re-enqueued with the
        limit multiplied by ``timeout_growth`` (compounding per round)
        until they complete or the rounds run out.  Each retried attempt
        flows through ``on_record`` — streaming sinks append it as a
        superseding record — and the returned result holds only the final
        attempt per cell.  Records reused from ``completed`` are never
        retried, even if they are timeouts (the ``completed`` contract
        above stands; the CLI's resume path filters reusable timeouts out
        before calling).
    timeout_growth:
        Multiplier applied to the timeout each escalation round
        (default 2.0; must be positive).
    retry_crashes:
        Number of retry rounds for cells whose worker *crashed* (died
        without reporting — SIGKILL, OOM, injected fault).  Crashed cells
        re-run after an exponential backoff with deterministic jitter
        (``crash_backoff_s * 2**round``, jittered up to +50%); like timeout
        escalation, every attempt flows through ``on_record`` as a
        superseding stream record and the result keeps the final attempt
        per cell.  Crash retries share the escalation loop with timeout
        retries, so a cell that times out *and* another that crashed retry
        in the same round.
    crash_backoff_s:
        Base backoff before the first crash-retry round (default 0.1 s;
        must be >= 0, doubling each round).  The jitter sequence derives
        deterministically from ``base_seed``, so retry schedules are
        reproducible.
    completed:
        Already-finished :class:`TaskRecord` s from a previous (killed) run
        of the *same* specification — the resume path.  Matching cells are
        reused **verbatim** (whatever their status) instead of re-executed;
        callers that want to retry ``"timeout"`` or ``"error"`` cells filter
        them out first, as the CLI does for timeouts on ``--resume``.
    on_record:
        Callback ``(record, done, total)`` invoked as each task finishes
        (reused records first), in completion order — the hook for progress
        reporting and incremental sinks.

    Raises
    ------
    ValueError
        On unknown problem/algorithm names, a non-positive ``n_jobs``, an
        out-of-range ``shard`` or a non-positive ``timeout`` (validated up
        front; a task that *raises while running* is captured as a failure
        record instead).
    """
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    n_jobs = int(n_jobs)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be a positive integer or None, got {n_jobs}")
    if balance not in ("roundrobin", "cost"):
        raise ValueError(
            f"balance must be 'roundrobin' or 'cost', got {balance!r}"
        )
    retry_timeouts = int(retry_timeouts)
    if retry_timeouts < 0:
        raise ValueError(f"retry_timeouts must be >= 0, got {retry_timeouts}")
    timeout_growth = float(timeout_growth)
    if timeout_growth <= 0:
        raise ValueError(f"timeout_growth must be positive, got {timeout_growth}")
    retry_crashes = int(retry_crashes)
    if retry_crashes < 0:
        raise ValueError(f"retry_crashes must be >= 0, got {retry_crashes}")
    crash_backoff_s = float(crash_backoff_s)
    if crash_backoff_s < 0:
        raise ValueError(f"crash_backoff_s must be >= 0, got {crash_backoff_s}")

    problems = [str(name).strip().upper() for name in problem_names]
    algorithms = tuple(algorithms)
    tasks = build_tasks(
        problems,
        algorithms,
        scale=scale,
        algorithm_options=algorithm_options,
        base_seed=base_seed,
    )
    if shard is not None:
        shard = (int(shard[0]), int(shard[1]))
        if balance == "cost":
            if not 1 <= shard[0] <= shard[1]:
                raise ValueError(
                    f"shard index {shard[0]} out of range for shard count "
                    f"{shard[1]} (need 1 <= index <= count)"
                )
            plan = plan_shards(tasks, shard[1], cost_model or CostModel())
            tasks = list(plan.shards[shard[0] - 1])
        else:
            tasks = shard_tasks(tasks, *shard)

    reused: dict[tuple, list] = {}
    for record in completed or []:
        reused.setdefault((record.problem, record.algorithm), []).append(record)
    pairs, remaining = [], []
    for task in tasks:
        bucket = reused.get((task.problem, task.algorithm))
        if bucket:
            pairs.append((task, bucket.pop(0)))
        else:
            remaining.append(task)
    # Reused records are honoured verbatim whatever their status — the
    # escalation loop below must not re-run them (callers that want reused
    # timeouts retried filter them out of `completed`, as the CLI does).
    reused_indices = {task.index for task, _record in pairs}

    if cost_model is not None:
        # Dynamic LPT dispatch: expensive cells enter the pool first, cheap
        # ones backfill the stragglers.  Purely a scheduling choice — the
        # records are re-sorted into canonical task order below.
        remaining = order_longest_first(remaining, cost_model)

    total = len(tasks)
    done = 0
    if on_record is not None:
        for _task, record in pairs:
            done += 1
            on_record(record, done, total)
    timer = Timer()
    with timer:
        for task, record in iter_suite(remaining, n_jobs=n_jobs, timeout=timeout):
            pairs.append((task, record))
            done += 1
            if on_record is not None:
                on_record(record, done, total)
        # Retry escalation: re-run timed-out cells with a grown limit and
        # crashed cells after an exponential, deterministically-jittered
        # backoff, replacing their records in place.  Both retry families
        # share one round structure so a mixed failure set recovers in a
        # single sweep per round.  Every new attempt still flows through
        # on_record, so a JSONL sink receives it as a superseding record
        # (last attempt wins on read-back).
        growth = 1.0
        backoff = crash_backoff_s
        jitter_rng = np.random.default_rng(
            derive_seed(base_seed, "__retry__", "backoff"))
        for round_index in range(max(retry_timeouts, retry_crashes)):
            timeout_slots = {} if (timeout is None or round_index >= retry_timeouts) else {
                pair[0].index: slot for slot, pair in enumerate(pairs)
                if pair[1].status == "timeout"
                and pair[0].index not in reused_indices}
            crash_slots = {} if round_index >= retry_crashes else {
                pair[0].index: slot for slot, pair in enumerate(pairs)
                if _is_crash(pair[1]) and pair[0].index not in reused_indices}
            if not timeout_slots and not crash_slots:
                break
            if timeout_slots:
                # Grow the limit only on rounds that actually retry a
                # timeout, preserving the pre-existing escalation schedule.
                growth *= timeout_growth
            if timeout is None:
                attempt_timeout = None
            elif callable(timeout):
                def attempt_timeout(task, _base=timeout, _growth=growth):
                    base_limit = _base(task)
                    return None if base_limit is None else base_limit * _growth
            else:
                attempt_timeout = float(timeout) * growth
            if crash_slots:
                delay = backoff * (1.0 + 0.5 * float(jitter_rng.random()))
                if delay > 0:
                    _sleep(delay)
                backoff *= 2.0
            slots = {**timeout_slots, **crash_slots}
            retry_tasks = [replace(pairs[slot][0], attempt=round_index + 1)
                           for slot in slots.values()]
            if cost_model is not None:
                retry_tasks = order_longest_first(retry_tasks, cost_model)
            if crash_slots and attempt_timeout is None:
                # A cell that just killed its worker must never re-run inside
                # the orchestrator process — a repeat crash (segfault, OOM,
                # injected fault) would take the whole suite down instead of
                # producing another superseding record.  Force the pool even
                # for a single retry task; the timeout path already isolates.
                retry_iter = _iter_pool(retry_tasks, max(int(n_jobs), 1))
            else:
                retry_iter = iter_suite(retry_tasks, n_jobs=n_jobs,
                                        timeout=attempt_timeout)
            for task, record in retry_iter:
                pairs[slots[task.index]] = (task, record)
                if on_record is not None:
                    on_record(record, done, total)
    pairs.sort(key=lambda pair: pair[0].index)
    records = [record for _task, record in pairs]
    if not keep_orderings:
        for record in records:
            record.ordering = None
    from repro import backends

    return SuiteResult(
        problems=problems,
        algorithms=list(algorithms),
        scale=scale,
        n_jobs=n_jobs,
        base_seed=base_seed,
        records=records,
        wall_time_s=float(timer.elapsed),
        shard=shard,
        backend=backends.backend_summary(),
    )
