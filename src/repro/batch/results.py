"""Structured, versioned results of a batch suite run.

A suite run produces one :class:`TaskRecord` per ``(problem, algorithm)``
cell — an ``"ok"`` record carrying the full envelope statistics and the
ordering wall time, an ``"error"`` record carrying the captured exception,
or a ``"timeout"`` record when the task exceeded the per-task limit —
bundled into a :class:`SuiteResult` that can be saved, reloaded,
regression-compared, and merged across machines
(:func:`merge_results`; see ``docs/results-schema.md`` for the full
specification).

JSON schema (version 2)
-----------------------
``SuiteResult.to_json()`` emits::

    {
      "schema_version": 2,
      "engine": "repro.batch",
      "problems": ["CAN1072", ...],
      "algorithms": ["spectral", "gk", "gps", "rcm"],
      "scale": 0.02,
      "base_seed": 0,
      "shard": [2, 3],          # only present for a --shard K/N slice
      "n_jobs": 4,              # timing/run-environment field (optional)
      "wall_time_s": 1.83,      # timing field (optional)
      "records": [
        {
          "problem": "CAN1072",
          "algorithm": "rcm",
          "status": "ok",                # or "error" / "timeout"
          "seed": 2417046638,
          "n": 171,
          "nnz": 1042,
          "metrics": {                   # EnvelopeStatistics.as_dict()
            "n": 171, "nnz": 1042, "bandwidth": 18,
            "envelope_size": 1204, "envelope_work": 13016,
            "one_sum": ..., "two_sum": ...,
            "max_frontwidth": ..., "mean_frontwidth": ..., "rms_frontwidth": ...
          },
          "time_s": 0.004,               # timing field (optional)
          "error": null                  # or {"type", "message", "traceback"}
        },
        ...
      ]
    }

Version 1 (no ``shard`` key, no ``"timeout"`` status) is still read by
:meth:`SuiteResult.from_dict`; an unsupported version raises
:exc:`SchemaVersionError` so callers can distinguish "not our schema" from
"unreadable file".

Passing ``include_timing=False`` to :meth:`SuiteResult.to_dict` /
:meth:`~SuiteResult.to_json` drops ``time_s``, ``wall_time_s`` and
``n_jobs`` — the *canonical* form used by the golden regression tests, which
must be byte-stable across runs, across worker counts, and across shard
boundaries: merging the artifacts of an ``N``-way sharded run reproduces the
single-machine artifact byte for byte in this form.
"""

from __future__ import annotations

import copy
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = [
    "READ_COMPAT_VERSIONS",
    "SCHEMA_VERSION",
    "SchemaVersionError",
    "SuiteResult",
    "TaskRecord",
    "dedupe_records",
    "merge_results",
]

#: Version of the JSON results schema written by :meth:`SuiteResult.to_json`.
SCHEMA_VERSION = 2

#: Schema versions :meth:`SuiteResult.from_dict` can still read.
READ_COMPAT_VERSIONS = frozenset({1, SCHEMA_VERSION})

_ENGINE_NAME = "repro.batch"


class SchemaVersionError(ValueError):
    """A results artifact declares a schema version this build cannot read.

    Subclasses :class:`ValueError` so legacy ``except ValueError`` callers
    keep working, while the CLI can report "schema mismatch" distinctly from
    "unreadable file".
    """


@dataclass
class TaskRecord:
    """Outcome of one ``(problem, algorithm)`` task.

    ``status`` is ``"ok"``, ``"error"`` (the algorithm raised; ``error``
    holds the captured exception) or ``"timeout"`` (the task exceeded the
    per-task limit and its worker was terminated; ``error`` holds a
    synthetic ``TaskTimeout`` entry and ``time_s`` the limit).

    ``ordering`` holds the computed :class:`repro.orderings.base.Ordering`
    when the record travelled in memory (including across the process pool);
    it is never serialized to JSON, so records loaded with
    :meth:`SuiteResult.from_json` have ``ordering=None``.

    >>> record = TaskRecord(problem="POW9", algorithm="rcm", seed=7)
    >>> record.ok
    True
    >>> roundtrip = TaskRecord.from_dict(record.to_dict())
    >>> roundtrip.to_dict() == record.to_dict()
    True
    """

    problem: str
    algorithm: str
    status: str = "ok"
    seed: int = 0
    n: int = 0
    nnz: int = 0
    metrics: dict = field(default_factory=dict)
    time_s: float = 0.0
    error: dict | None = None
    ordering: object | None = None

    @property
    def ok(self) -> bool:
        """Whether the task completed without an exception or timeout."""
        return self.status == "ok"

    @property
    def timed_out(self) -> bool:
        """Whether the task was cut off by the per-task timeout."""
        return self.status == "timeout"

    def to_dict(self, include_timing: bool = True) -> dict:
        """JSON-serializable view (``ordering`` excluded by design)."""
        payload = {
            "problem": self.problem,
            "algorithm": self.algorithm,
            "status": self.status,
            "seed": int(self.seed),
            "n": int(self.n),
            "nnz": int(self.nnz),
            "metrics": copy.deepcopy(self.metrics),
            "error": copy.deepcopy(self.error),
        }
        if include_timing:
            payload["time_s"] = float(self.time_s)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TaskRecord":
        return cls(
            problem=payload["problem"],
            algorithm=payload["algorithm"],
            status=payload.get("status", "ok"),
            seed=int(payload.get("seed", 0)),
            n=int(payload.get("n", 0)),
            nnz=int(payload.get("nnz", 0)),
            metrics=dict(payload.get("metrics", {})),
            time_s=float(payload.get("time_s", 0.0)),
            error=payload.get("error"),
        )


@dataclass
class SuiteResult:
    """Results of a whole suite run, replayable via the JSON schema above.

    ``problems``/``algorithms`` always describe the *full* suite
    specification; for a sharded run ``shard`` is ``(index, count)``
    (1-based) and ``records`` holds only that slice of the cross-product.
    ``shard`` is ``None`` for single-machine and merged artifacts.

    >>> suite = SuiteResult(problems=["POW9"], algorithms=["rcm"],
    ...                     records=[TaskRecord(problem="POW9", algorithm="rcm")])
    >>> SuiteResult.from_json(suite.to_json()).to_dict() == suite.to_dict()
    True
    """

    problems: list
    algorithms: list
    scale: float | None = None
    n_jobs: int = 1
    base_seed: int = 0
    records: list = field(default_factory=list)
    wall_time_s: float = 0.0
    shard: tuple | None = None
    schema_version: int = SCHEMA_VERSION
    #: Data-loss accounting of a lossy read/merge (``--allow-partial``):
    #: e.g. ``{"dropped_lines": 2, "missing_cells": 1}``.  ``None`` (and
    #: absent from the JSON) for every complete artifact, so canonical
    #: byte-identity of clean runs is untouched.
    partial: dict | None = None
    #: Kernel-backend summary of the run (``repro.backends.backend_summary``):
    #: requested tier, numba availability/versions, whether an explicit
    #: ``numba`` request fell back to numpy.  Serialized only in the full
    #: (timing) form — like ``n_jobs`` it describes *how* the run executed,
    #: not *what* it computed, so the canonical form stays byte-identical
    #: across backends.
    backend: dict | None = None

    # ------------------------------------------------------------------ #
    # access helpers
    # ------------------------------------------------------------------ #
    @property
    def ok_records(self) -> list:
        """Records of tasks that completed successfully."""
        return [record for record in self.records if record.ok]

    @property
    def failures(self) -> list:
        """Structured non-ok records (tasks that raised or timed out)."""
        return [record for record in self.records if not record.ok]

    @property
    def timeouts(self) -> list:
        """Records of tasks cut off by the per-task timeout."""
        return [record for record in self.records if record.timed_out]

    def record_for(self, problem: str, algorithm: str) -> TaskRecord:
        """The record of a specific cell (KeyError if absent)."""
        key = str(problem).strip().upper()
        for record in self.records:
            if record.problem.upper() == key and record.algorithm == algorithm:
                return record
        raise KeyError(f"no record for ({problem!r}, {algorithm!r})")

    def winners(self) -> dict:
        """Per problem, the successful algorithm with the smallest envelope."""
        best: dict[str, TaskRecord] = {}
        for record in self.ok_records:
            incumbent = best.get(record.problem)
            if incumbent is None or (
                record.metrics.get("envelope_size", 0)
                < incumbent.metrics.get("envelope_size", 0)
            ):
                best[record.problem] = record
        return {problem: record.algorithm for problem, record in best.items()}

    def to_rows(self):
        """Ranked :class:`repro.analysis.report.ComparisonRow` list (ok tasks)."""
        from repro.analysis.report import rows_from_records

        return rows_from_records(self.records)

    def to_text(self) -> str:
        """Render the suite as a paper-style text table plus failure lines."""
        from repro.analysis.report import format_table

        scale_label = "default" if self.scale is None else f"{self.scale:g}"
        lines = [
            format_table(
                self.to_rows(),
                title=f"Suite results — {len(self.problems)} problem(s), scale={scale_label}",
            )
        ]
        for record in self.failures:
            error = record.error or {}
            label = "TIMEOUT" if record.timed_out else "FAILED"
            lines.append(
                f"{label} {record.problem}/{record.algorithm}: "
                f"{error.get('type', 'Error')}: {error.get('message', '')}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #
    def to_dict(self, include_timing: bool = True) -> dict:
        """JSON-serializable view; see the module docstring for the schema."""
        payload = {
            "schema_version": int(self.schema_version),
            "engine": _ENGINE_NAME,
            "problems": list(self.problems),
            "algorithms": list(self.algorithms),
            "scale": self.scale,
            "base_seed": int(self.base_seed),
            "records": [record.to_dict(include_timing=include_timing) for record in self.records],
        }
        if self.shard is not None:
            payload["shard"] = [int(self.shard[0]), int(self.shard[1])]
        if self.partial:
            payload["partial"] = {k: int(v) for k, v in sorted(self.partial.items())}
        if include_timing:
            payload["n_jobs"] = int(self.n_jobs)
            payload["wall_time_s"] = float(self.wall_time_s)
            if self.backend is not None:
                payload["backend"] = dict(self.backend)
        return payload

    def to_json(self, include_timing: bool = True, indent: int = 2) -> str:
        """Canonical JSON text (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(include_timing=include_timing),
                          indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "SuiteResult":
        """Rebuild a suite from a schema-version 1 or 2 payload.

        Raises
        ------
        SchemaVersionError
            When the payload declares a version outside
            :data:`READ_COMPAT_VERSIONS` (v1 artifacts — no ``shard`` key,
            no ``"timeout"`` status — still load fine).
        """
        if not isinstance(payload, dict):
            raise ValueError(
                f"suite artifact must be a JSON object, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version not in READ_COMPAT_VERSIONS:
            raise SchemaVersionError(
                f"unsupported suite schema version {version!r} "
                f"(this build writes version {SCHEMA_VERSION} and reads "
                f"{sorted(READ_COMPAT_VERSIONS)})"
            )
        shard = payload.get("shard")
        return cls(
            problems=list(payload.get("problems", [])),
            algorithms=list(payload.get("algorithms", [])),
            scale=payload.get("scale"),
            n_jobs=int(payload.get("n_jobs", 1)),
            base_seed=int(payload.get("base_seed", 0)),
            records=[TaskRecord.from_dict(r) for r in payload.get("records", [])],
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            shard=None if shard is None else (int(shard[0]), int(shard[1])),
            schema_version=int(version),
            partial=payload.get("partial"),
            backend=payload.get("backend"),
        )

    @classmethod
    def from_json(cls, text: str) -> "SuiteResult":
        """Inverse of :meth:`to_json` (``ordering`` fields come back ``None``)."""
        return cls.from_dict(json.loads(text))

    def save(self, path) -> Path:
        """Write the full (timed) JSON artifact to *path*; returns the path.

        The write is atomic (tempfile + ``os.replace``), so a kill mid-save
        cannot leave a truncated artifact for a later ``--against`` /
        ``repro merge`` to fail on.
        """
        from repro.utils.atomic import atomic_write_text

        return atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path) -> "SuiteResult":
        """Read a JSON artifact previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------ #
    # regression comparison
    # ------------------------------------------------------------------ #
    def diff(self, other: "SuiteResult", include_timing: bool = False) -> list[str]:
        """Human-readable differences between two suite runs.

        Timing fields (and ``n_jobs``) are ignored by default, so a serial
        run and a parallel run of the same suite diff clean.  Error records
        are compared by exception type and message only — traceback text
        embeds absolute paths and line numbers that legitimately vary across
        machines and unrelated edits.  Returns an empty list when the runs
        agree.
        """
        differences: list[str] = []
        for name in ("problems", "algorithms", "scale", "base_seed", "shard"):
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine != theirs:
                differences.append(f"{name}: {mine!r} != {theirs!r}")

        mine_by_key = {(r.problem, r.algorithm): r for r in self.records}
        other_by_key = {(r.problem, r.algorithm): r for r in other.records}
        for key in sorted(set(mine_by_key) | set(other_by_key)):
            problem, algorithm = key
            label = f"{problem}/{algorithm}"
            a, b = mine_by_key.get(key), other_by_key.get(key)
            if a is None or b is None:
                differences.append(f"{label}: present in only one run")
                continue
            if a.to_dict(include_timing=include_timing) == b.to_dict(include_timing=include_timing):
                continue
            if a.status != b.status:
                differences.append(f"{label}: status {a.status!r} != {b.status!r}")
                continue
            for field_name in sorted(set(a.metrics) | set(b.metrics)):
                va, vb = a.metrics.get(field_name), b.metrics.get(field_name)
                if va != vb:
                    differences.append(f"{label}: metrics.{field_name} {va!r} != {vb!r}")
            for field_name in ("seed", "n", "nnz"):
                va, vb = getattr(a, field_name), getattr(b, field_name)
                if va != vb:
                    differences.append(f"{label}: {field_name} {va!r} != {vb!r}")
            ea = {k: (a.error or {}).get(k) for k in ("type", "message")}
            eb = {k: (b.error or {}).get(k) for k in ("type", "message")}
            if ea != eb:
                differences.append(f"{label}: error {ea!r} != {eb!r}")
            if include_timing and a.time_s != b.time_s:
                differences.append(f"{label}: time_s {a.time_s!r} != {b.time_s!r}")
        return differences


def dedupe_records(records) -> list:
    """Collapse repeated ``(problem, algorithm)`` cells to the *last* attempt.

    Timeout-retry escalation (``--retry-timeouts``) appends a superseding
    record for every retried cell to the same JSONL stream, so a stream can
    legitimately carry several records for one cell.  The supersede rule is
    positional: the last record written wins — a retried cell's final
    ``"ok"`` (or final ``"timeout"``, if every escalation ran out) replaces
    the earlier attempts.  Cells keep their first-appearance order, so a
    stream without retries round-trips unchanged.

    >>> first = TaskRecord(problem="POW9", algorithm="gk", status="timeout")
    >>> second = TaskRecord(problem="POW9", algorithm="gk", status="ok")
    >>> other = TaskRecord(problem="POW9", algorithm="rcm")
    >>> [(r.algorithm, r.status) for r in dedupe_records([first, other, second])]
    [('gk', 'ok'), ('rcm', 'ok')]
    """
    by_cell: dict[tuple, TaskRecord] = {}
    order: list[tuple] = []
    for record in records:
        cell = (record.problem, record.algorithm)
        if cell not in by_cell:
            order.append(cell)
        by_cell[cell] = record
    return [by_cell[cell] for cell in order]


def merge_results(suites, *, allow_missing: bool = False) -> SuiteResult:
    """Recombine shard artifacts into the equivalent single-machine result.

    All inputs must share the same suite specification (``problems``,
    ``algorithms``, ``scale``, ``base_seed``) and together must cover every
    cell of the ``problems x algorithms`` cross-product exactly once.  The
    merged result carries the records in canonical cross-product order with
    ``shard=None``, so its canonical JSON (``to_json(include_timing=False)``)
    is byte-identical to what one machine running the whole suite would have
    written.  Timing fields aggregate: ``wall_time_s`` sums (total compute),
    ``n_jobs`` takes the maximum.

    Merging a single complete artifact is the identity in canonical form,
    which makes ``repro merge`` safe to use as a validation pass.

    >>> a = SuiteResult(problems=["POW9"], algorithms=["rcm", "gps"], shard=(1, 2),
    ...                 records=[TaskRecord(problem="POW9", algorithm="rcm")])
    >>> b = SuiteResult(problems=["POW9"], algorithms=["rcm", "gps"], shard=(2, 2),
    ...                 records=[TaskRecord(problem="POW9", algorithm="gps")])
    >>> merged = merge_results([a, b])
    >>> merged.shard is None, [r.algorithm for r in merged.records]
    (True, ['rcm', 'gps'])

    ``allow_missing=True`` (the ``repro merge --allow-partial`` path) keeps
    going when cells are missing — the inevitable outcome of merging a shard
    stream whose torn tail was trimmed: present cells merge in canonical
    order and the loss is recorded on the result
    (``partial={"missing_cells": N, ...}``, aggregating any per-input
    ``partial`` counters such as the streams' dropped line counts).

    Raises
    ------
    ValueError
        When no artifacts are given, the specifications disagree, a cell is
        recorded more than once (overlapping shards), a record falls outside
        the specification, or — unless ``allow_missing`` — cells are missing
        (incomplete shard set).
    """
    suites = list(suites)
    if not suites:
        raise ValueError("nothing to merge: no suite artifacts given")
    reference = suites[0]
    for position, suite in enumerate(suites[1:], start=2):
        for name in ("problems", "algorithms", "scale", "base_seed"):
            mine, theirs = getattr(reference, name), getattr(suite, name)
            if mine != theirs:
                raise ValueError(
                    f"suite specification mismatch: artifact 1 has {name}="
                    f"{mine!r} but artifact {position} has {name}={theirs!r}"
                )

    expected = [(p, a) for p in reference.problems for a in reference.algorithms]
    expected_set = set(expected)
    if len(expected) != len(expected_set):
        raise ValueError(
            "cannot merge a specification with duplicate (problem, algorithm) "
            "cells"
        )
    by_cell: dict[tuple, TaskRecord] = {}
    duplicates, unexpected = [], []
    for suite in suites:
        for record in suite.records:
            cell = (record.problem, record.algorithm)
            if cell not in expected_set:
                unexpected.append(cell)
            elif cell in by_cell:
                duplicates.append(cell)
            else:
                by_cell[cell] = record
    if unexpected:
        raise ValueError(
            f"record(s) outside the suite specification: "
            f"{sorted(set(unexpected))}"
        )
    if duplicates:
        raise ValueError(
            f"overlapping shards: {len(duplicates)} cell(s) recorded more "
            f"than once, e.g. {sorted(set(duplicates))[:3]}"
        )
    missing = [cell for cell in expected if cell not in by_cell]
    if missing and not allow_missing:
        raise ValueError(
            f"incomplete shard set: {len(missing)} of {len(expected)} "
            f"cell(s) missing, e.g. {missing[:3]}"
        )
    partial: dict = {}
    for suite in suites:
        for key, value in (suite.partial or {}).items():
            partial[key] = partial.get(key, 0) + int(value)
    if missing:
        partial["missing_cells"] = partial.get("missing_cells", 0) + len(missing)
    return SuiteResult(
        problems=list(reference.problems),
        algorithms=list(reference.algorithms),
        scale=reference.scale,
        n_jobs=max(int(suite.n_jobs) for suite in suites),
        base_seed=reference.base_seed,
        records=[by_cell[cell] for cell in expected if cell in by_cell],
        wall_time_s=float(sum(suite.wall_time_s for suite in suites)),
        shard=None,
        schema_version=SCHEMA_VERSION,
        partial=partial or None,
    )
