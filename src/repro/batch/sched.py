"""Cost-aware scheduling of the batch suite — the brain behind
``repro suite --balance cost``.

The paper's ``{problems} x {algorithms}`` cross-product has wildly uneven
per-cell cost: a spectral or multilevel cell can dominate an RCM cell by
orders of magnitude, so the round-robin ``--shard K/N`` split leaves
machines idle while one shard grinds through the expensive cells.  This
module fixes that with two cooperating pieces:

:class:`CostModel`
    A persistent per-cell cost table fit from prior suite results, JSONL
    streams or ``repro bench`` artifacts, keyed by ``(problem, algorithm,
    scale)``.  Cells never observed before fall back to an
    ``n * nnz``-based estimate: per-algorithm cost rates (seconds per
    ``n * nnz``) are fit from whatever *was* observed, and problem sizes
    come from observed records or from the registry's paper sizes scaled
    to the requested surrogate scale.

:func:`plan_shards`
    A greedy LPT (longest processing time first) shard planner.  Tasks are
    assigned, most expensive first, to the currently least-loaded shard.
    The plan is compared against the round-robin split on estimated
    makespan and the better of the two is kept, so a cost-balanced plan is
    **never estimated worse than round-robin** — the property the
    scheduler's tests pin for randomized cost tables.

Scheduling never changes any result: per-task seeds depend only on
``(base_seed, problem, algorithm)``, and :func:`repro.batch.engine.run_suite`
re-sorts records into canonical task order, so a cost-balanced sharded run
merges byte-identically (canonical form) with a round-robin or serial run.

Determinism: the plan is a pure function of the task list and the cost
table.  ``N`` machines given the same specification and the *same cost
model file* compute the same plan and run disjoint slices — exactly like
round-robin sharding, no coordination needed.

>>> from repro.batch.tasks import build_tasks
>>> tasks = build_tasks(["POW9", "CAN1072"], ("rcm", "spectral"), scale=0.02)
>>> model = CostModel()
>>> model.observe("POW9", "rcm", 0.02, time_s=0.004, n=59, nnz=151)
>>> plan = plan_shards(tasks, 2, model)
>>> sorted(t.index for shard in plan.shards for t in shard) == [0, 1, 2, 3]
True
>>> plan.makespan <= plan.round_robin_makespan
True
"""

from __future__ import annotations

import hashlib
import heapq
import json
import statistics
from dataclasses import dataclass
from pathlib import Path

from repro.batch.results import SuiteResult
from repro.batch.tasks import BatchTask, shard_tasks

__all__ = [
    "AUTO_TIMEOUT_FLOOR_S",
    "AUTO_TIMEOUT_SAFETY",
    "COST_MODEL_SCHEMA_VERSION",
    "CostModel",
    "ShardPlan",
    "auto_timeout",
    "order_longest_first",
    "plan_shards",
]

#: Version of the cost-model JSON written by :meth:`CostModel.save`.
COST_MODEL_SCHEMA_VERSION = 1

_KIND = "repro-cost-model"

#: Cost rate (seconds per unit of ``n * nnz``) assumed when *nothing* was
#: ever observed.  The absolute value is irrelevant for balancing — only
#: ratios between cells matter — but it must be fixed for determinism.
_DEFAULT_RATE_S = 5e-8

#: Floor on every estimate so zero-cost tables still order deterministically.
_MIN_ESTIMATE_S = 1e-9

#: ``--timeout auto``: a cell's limit is ``estimate * safety``, floored at
#: one second so micro-cells are not killed by scheduler jitter.
AUTO_TIMEOUT_SAFETY = 10.0
AUTO_TIMEOUT_FLOOR_S = 1.0


def _scale_key(scale) -> float | None:
    return None if scale is None else float(scale)


@dataclass(frozen=True)
class _Observation:
    """One observed (or lower-bounded) cell cost."""

    problem: str
    algorithm: str
    scale: float | None
    time_s: float
    n: int = 0
    nnz: int = 0


class CostModel:
    """Per-cell cost table with an ``n * nnz`` fallback estimator.

    Observations accumulate via :meth:`observe` / :meth:`observe_suite` /
    :meth:`observe_bench`; :meth:`estimate` answers queries for *any* cell,
    seen or unseen.  The model round-trips through JSON
    (:meth:`save` / :meth:`load`) so one machine's timings can balance the
    next run's shards, and :meth:`from_file` additionally accepts suite
    artifacts, JSONL streams and bench artifacts directly.
    """

    def __init__(self, observations=()):
        self._observations: list[_Observation] = []
        # Incremental indexes so estimate() is a few dict lookups plus a
        # median over a small bucket, not a scan of the whole table —
        # plan_shards and the dispatcher query once per task.
        self._direct: dict[tuple, list[float]] = {}
        self._rates: dict[str, list[float]] = {}
        self._all_rates: list[float] = []
        self._sizes: dict[tuple, list[int]] = {}
        self._scaled_sizes: dict[str, list[tuple[float, int]]] = {}
        for obs in observations:
            self.observe(obs.problem, obs.algorithm, obs.scale, obs.time_s,
                         n=obs.n, nnz=obs.nnz)

    def __len__(self) -> int:
        return len(self._observations)

    # ------------------------------------------------------------------ #
    # feeding the model
    # ------------------------------------------------------------------ #
    def observe(self, problem: str, algorithm: str, scale, time_s: float,
                *, n: int = 0, nnz: int = 0) -> None:
        """Record one cell cost (``n``/``nnz`` of 0 mean "size unknown")."""
        obs = _Observation(
            problem=str(problem).strip().upper(),
            algorithm=str(algorithm),
            scale=_scale_key(scale),
            time_s=float(time_s),
            n=int(n),
            nnz=int(nnz),
        )
        self._observations.append(obs)
        self._direct.setdefault(
            (obs.problem, obs.algorithm, obs.scale), []).append(obs.time_s)
        size = obs.n * obs.nnz
        if size > 0:
            self._rates.setdefault(obs.algorithm, []).append(obs.time_s / size)
            self._all_rates.append(obs.time_s / size)
            self._sizes.setdefault((obs.problem, obs.scale), []).append(size)
            if obs.scale:
                self._scaled_sizes.setdefault(obs.problem, []).append(
                    (obs.scale, size))

    def observe_suite(self, suite: SuiteResult) -> None:
        """Fit from a suite run's records.

        ``ok`` records contribute their measured ``time_s``; ``timeout``
        records contribute the limit they hit — a *lower bound*, which is
        exactly the right bias for balancing (a cell that timed out belongs
        on a shard of its own, not wherever round-robin drops it).  Error
        records carry no usable timing and are skipped.
        """
        for record in suite.records:
            if record.status not in ("ok", "timeout") or record.time_s <= 0:
                continue
            self.observe(record.problem, record.algorithm, suite.scale,
                         record.time_s, n=record.n, nnz=record.nnz)

    def observe_bench(self, artifact: dict) -> None:
        """Fit from a ``repro bench`` artifact (see :mod:`repro.bench`).

        Uses the per-cell suite section (problem, algorithm, scale, and —
        for artifacts recorded by this build — ``n``/``nnz``) plus the
        pinned ordering kernels, whose names encode
        ``orderings/{algorithm}/{problem}@{scale}``.
        """
        suite = artifact.get("suite") or {}
        scale = suite.get("scale")
        for cell in suite.get("cells", []):
            # Prefer the best-of-k cell timing recorded by newer artifacts;
            # single-run time_s is the read-compat fallback.
            time_s = float(cell.get("best_s") or cell.get("time_s", 0.0) or 0.0)
            if cell.get("status") != "ok" or time_s <= 0:
                continue
            self.observe(cell["problem"], cell["algorithm"], scale,
                         time_s, n=cell.get("n", 0) or 0, nnz=cell.get("nnz", 0) or 0)
        for kernel in artifact.get("kernels", []):
            name = str(kernel.get("name", ""))
            # {prefix}/{algorithm}/{problem}@{scale} — maxsplit keeps problem
            # names that themselves contain "/" (the RANDOM/* families) whole.
            parts = name.split("/", 2)
            if len(parts) != 3 or parts[0] not in ("orderings", "powerlaw") \
                    or "@" not in parts[2]:
                continue
            problem, scale_text = parts[2].rsplit("@", 1)
            try:
                kernel_scale = float(scale_text)
            except ValueError:
                continue
            best = float(kernel.get("best_s", 0.0))
            if best > 0:
                self.observe(problem, parts[1], kernel_scale, best)

    # ------------------------------------------------------------------ #
    # estimating
    # ------------------------------------------------------------------ #
    def estimate(self, problem: str, algorithm: str, scale=None) -> float:
        """Estimated cost (seconds) of one cell, observed or not.

        Resolution order:

        1. the median of direct observations of ``(problem, algorithm,
           scale)``;
        2. otherwise ``rate(algorithm) * size(problem, scale)`` where the
           rate is the median seconds-per-``n*nnz`` of that algorithm's
           observations (falling back to the all-algorithm median, then to
           a fixed default), and the size comes from observations of the
           same problem (rescaled by ``scale**2`` across scales — both
           ``n`` and ``nnz`` grow roughly linearly with the surrogate
           scale), from the registry's paper sizes, or from the analytic
           ``expected_n``/``expected_nnz`` of the random generator families.
        """
        problem = str(problem).strip().upper()
        scale = _scale_key(scale)
        direct = self._direct.get((problem, algorithm, scale))
        if direct:
            return max(statistics.median(direct), _MIN_ESTIMATE_S)
        return max(self._rate(algorithm) * self._size(problem, scale), _MIN_ESTIMATE_S)

    def estimate_task(self, task: BatchTask) -> float:
        """:meth:`estimate` keyed by a :class:`~repro.batch.tasks.BatchTask`."""
        return self.estimate(task.problem, task.algorithm, task.scale)

    def observed_cell(self, problem: str, algorithm: str, scale=None) -> bool:
        """Whether ``(problem, algorithm, scale)`` was *directly* observed.

        Distinguishes a real measurement from the ``n * nnz`` fallback
        estimate — the ``--timeout auto`` policy only trusts the former
        (an extrapolated rate is no basis for killing a task).
        """
        key = (str(problem).strip().upper(), algorithm, _scale_key(scale))
        return bool(self._direct.get(key))

    def _rate(self, algorithm: str) -> float:
        """Median seconds per unit of ``n * nnz`` for one algorithm."""
        rates = self._rates.get(algorithm) or self._all_rates
        return statistics.median(rates) if rates else _DEFAULT_RATE_S

    def _size(self, problem: str, scale: float | None) -> float:
        """Estimated ``n * nnz`` of a problem at a scale."""
        same_scale = self._sizes.get((problem, scale))
        if same_scale:
            return float(statistics.median(same_scale))
        if scale is not None:
            # n and nnz both grow ~linearly with the surrogate scale, so
            # n * nnz transfers across scales with the square of the ratio.
            rescaled = [size * (scale / other_scale) ** 2
                        for other_scale, size in self._scaled_sizes.get(problem, [])]
            if rescaled:
                return float(statistics.median(rescaled))
        from repro.collections.registry import expected_problem_size

        # Paper problems: the paper's sizes rescaled by scale**2.  Random
        # generator families: their analytic expected_n * expected_nnz.
        # Unknown problems: the neutral weight 1.0.
        return expected_problem_size(problem, scale)

    def fingerprint(self) -> str:
        """Short stable digest of the observation table.

        Recorded in the stream header of a cost-balanced run
        (:func:`repro.batch.stream.stream_header`): the shard plan is a pure
        function of the task list and this table, so ``--resume`` can reject
        a stream written under a *different* cost model — which would cover
        a different task slice — instead of silently mixing slices.
        """
        canonical = json.dumps(
            sorted(
                (obs.problem, obs.algorithm, obs.scale, obs.time_s, obs.n, obs.nnz)
                for obs in self._observations
            ),
            sort_keys=True,
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "kind": _KIND,
            "schema_version": COST_MODEL_SCHEMA_VERSION,
            "entries": [
                {"problem": obs.problem, "algorithm": obs.algorithm,
                 "scale": obs.scale, "time_s": obs.time_s,
                 "n": obs.n, "nnz": obs.nnz}
                for obs in self._observations
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CostModel":
        if not isinstance(payload, dict) or payload.get("kind") != _KIND:
            raise ValueError("not a repro cost-model payload")
        version = payload.get("schema_version")
        if not isinstance(version, int) or version > COST_MODEL_SCHEMA_VERSION:
            raise ValueError(
                f"cost model has schema version {version!r}; this build reads "
                f"versions up to {COST_MODEL_SCHEMA_VERSION}"
            )
        model = cls()
        for entry in payload.get("entries", []):
            model.observe(entry["problem"], entry["algorithm"], entry.get("scale"),
                          entry["time_s"], n=entry.get("n", 0), nnz=entry.get("nnz", 0))
        return model

    def save(self, path) -> Path:
        """Write the model as indented JSON; returns the path.

        The write is atomic (tempfile + ``os.replace``): a run killed
        mid-save leaves the previous complete model, never a truncated file
        that a later ``--cost-model`` load would choke on.
        """
        from repro.utils.atomic import atomic_write_text

        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path) -> "CostModel":
        """Inverse of :meth:`save` (cost-model files only; see :meth:`from_file`)."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    @classmethod
    def from_file(cls, path) -> "CostModel":
        """Build a model from *any* timing-bearing file the repo produces.

        Accepts a cost-model JSON (:meth:`save`), a suite results artifact
        (``repro suite --output``), a ``repro bench`` artifact, or a JSONL
        stream file (``--stream-output``, retried cells deduped to the
        final attempt).

        Raises
        ------
        ValueError
            When the file is none of the recognised formats.
        OSError
            When the file cannot be read.
        """
        path = Path(path)
        text = path.read_text()
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if payload is None or (
            isinstance(payload, dict) and payload.get("kind") == "header"
        ):
            # A JSONL stream — including the degenerate one-line case of a
            # run killed before its first record, which parses as a single
            # JSON object (the header) and must not be mistaken for an
            # (empty) suite artifact.
            from repro.batch.stream import suite_from_stream

            try:
                suite = suite_from_stream(path)
            except ValueError:
                raise ValueError(
                    f"{path} is neither a cost model, a results artifact, a "
                    f"bench artifact nor a JSONL stream"
                ) from None
            model = cls()
            model.observe_suite(suite)
            return model
        if isinstance(payload, dict) and payload.get("kind") == _KIND:
            return cls.from_dict(payload)
        if isinstance(payload, dict) and payload.get("kind") == "repro-bench":
            model = cls()
            model.observe_bench(payload)
            return model
        model = cls()
        model.observe_suite(SuiteResult.from_dict(payload))
        return model


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of every task to exactly one shard.

    ``shards[k]`` holds shard ``k+1``'s tasks in canonical (task-index)
    order; ``loads[k]`` is that shard's total estimated cost.  ``strategy``
    records which split won: ``"lpt"`` (the greedy plan) or ``"roundrobin"``
    (kept when the greedy plan's estimated makespan would be worse — rare,
    but possible on adversarial cost tables, and falling back guarantees
    the planner never loses to the default split).
    """

    shards: tuple
    loads: tuple
    makespan: float
    round_robin_makespan: float
    strategy: str


def auto_timeout(cost_model: CostModel):
    """Per-task timeout policy derived from a cost model (``--timeout auto``).

    Returns a callable ``task -> float | None`` for
    :func:`repro.batch.engine.run_suite`'s ``timeout`` parameter: cells the
    model has *directly* observed get ``max(estimate * AUTO_TIMEOUT_SAFETY,
    AUTO_TIMEOUT_FLOOR_S)`` seconds.  Unseen *paper* cells get ``None`` (no
    limit — an ``n * nnz`` extrapolation from paper tables is no basis for
    killing a task), but unseen cells of the analytic generator families
    (``RANDOM/*``, whose specs carry exact ``expected_n``/``expected_nnz``
    functions) are bounded by the same ``estimate * safety`` formula: their
    size estimate is analytic rather than guessed, and an unbounded cell at
    n~10^6 is precisely the hang the scale-stress tier must never allow.

    >>> from repro.batch.tasks import BatchTask
    >>> model = CostModel()
    >>> model.observe("POW9", "rcm", 0.02, time_s=0.004)
    >>> policy = auto_timeout(model)
    >>> policy(BatchTask(problem="POW9", algorithm="rcm", scale=0.02))
    1.0
    >>> policy(BatchTask(problem="POW9", algorithm="spectral", scale=0.02)) is None
    True
    >>> limit = policy(BatchTask(problem="RANDOM/BA", algorithm="rcm", scale=0.001))
    >>> limit is not None and limit > 0
    True
    """
    from repro.collections.registry import has_analytic_size

    def timeout_for(task) -> float | None:
        observed = cost_model.observed_cell(task.problem, task.algorithm, task.scale)
        if not observed and not has_analytic_size(task.problem):
            return None
        return max(
            AUTO_TIMEOUT_FLOOR_S,
            cost_model.estimate_task(task) * AUTO_TIMEOUT_SAFETY,
        )

    return timeout_for


def order_longest_first(tasks, cost_model: CostModel) -> list:
    """Tasks sorted most-expensive-first (ties by task index).

    The in-process analogue of LPT sharding: handing a worker pool the
    expensive cells first lets the cheap ones backfill the stragglers, so
    the pool drains without a long tail.  Execution order never affects
    results (deterministic per-task seeds; records re-sorted afterwards).
    """
    return sorted(tasks, key=lambda t: (-cost_model.estimate_task(t), t.index))


def _makespan(shards, costs) -> float:
    return max((sum(costs[t.index] for t in shard) for shard in shards),
               default=0.0)


def plan_shards(tasks, shard_count: int, cost_model: CostModel) -> ShardPlan:
    """Split a task list into ``shard_count`` cost-balanced shards.

    Greedy LPT: tasks in decreasing estimated cost, each assigned to the
    least-loaded shard so far (ties: lowest shard number, then lowest task
    index — fully deterministic).  The result is compared with the
    round-robin split on estimated makespan and the better plan is
    returned, so ``plan.makespan <= plan.round_robin_makespan`` always
    holds.

    Raises
    ------
    ValueError
        When ``shard_count`` is not positive.
    """
    shard_count = int(shard_count)
    if shard_count < 1:
        raise ValueError(f"shard count must be positive, got {shard_count}")
    tasks = list(tasks)
    costs = {task.index: max(cost_model.estimate_task(task), _MIN_ESTIMATE_S)
             for task in tasks}

    round_robin = [shard_tasks(tasks, k, shard_count)
                   for k in range(1, shard_count + 1)] if tasks else \
                  [[] for _ in range(shard_count)]
    rr_makespan = _makespan(round_robin, costs)

    heap = [(0.0, k) for k in range(shard_count)]
    heapq.heapify(heap)
    lpt: list[list[BatchTask]] = [[] for _ in range(shard_count)]
    for task in order_longest_first(tasks, cost_model):
        load, k = heapq.heappop(heap)
        lpt[k].append(task)
        heapq.heappush(heap, (load + costs[task.index], k))
    lpt_makespan = _makespan(lpt, costs)

    if lpt_makespan <= rr_makespan:
        chosen, strategy, makespan = lpt, "lpt", lpt_makespan
    else:
        chosen, strategy, makespan = round_robin, "roundrobin", rr_makespan
    shards = tuple(tuple(sorted(shard, key=lambda t: t.index)) for shard in chosen)
    loads = tuple(sum(costs[t.index] for t in shard) for shard in shards)
    return ShardPlan(
        shards=shards,
        loads=loads,
        makespan=makespan,
        round_robin_makespan=rr_makespan,
        strategy=strategy,
    )
