"""Incremental JSONL result streaming — the crash-safe sink behind
``repro suite --stream-output`` / ``--resume``.

A suite run that dies halfway (OOM, preemption, Ctrl-C) loses nothing if its
records were streamed: each completed :class:`~repro.batch.results.TaskRecord`
is appended to a JSON-Lines file and flushed immediately, so the file is
readable at every instant of the run.  Re-running with ``--resume`` loads the
completed cells, validates that they belong to the same suite specification,
and executes only the remainder.

File format
-----------
One JSON object per line.  The first line is a header describing the suite
specification; every following line is one task record::

    {"kind": "header", "schema_version": 2, "engine": "repro.batch",
     "problems": [...], "algorithms": [...], "scale": 0.02, "base_seed": 0,
     "shard": null, "total_tasks": 12}
    {"kind": "record", "problem": "CAN1072", "algorithm": "spectral",
     "status": "ok", ...}

Record lines carry exactly the fields of the artifact schema's ``records``
entries (see ``docs/results-schema.md``), timing included.  A truncated final
line — the signature of a killed run — is ignored on read.

>>> header = stream_header(["POW9"], ["rcm"], scale=0.02, base_seed=0,
...                        shard=None, total_tasks=1)
>>> header["kind"], header["total_tasks"]
('header', 1)
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.batch.results import (
    SCHEMA_VERSION,
    SchemaVersionError,
    SuiteResult,
    TaskRecord,
    dedupe_records,
)

__all__ = [
    "StreamWriter",
    "TruncatedStreamError",
    "read_jsonl_objects",
    "read_jsonl_objects_partial",
    "read_stream",
    "read_stream_partial",
    "stream_header",
    "suite_from_stream",
    "validate_stream_header",
]

_ENGINE_NAME = "repro.batch"


class TruncatedStreamError(ValueError):
    """A stream file holding no complete line — a run killed during the very
    first (header) write, or an empty file.

    This is the *resumable* flavour of stream damage: the file carries no
    records, so a resuming run loses nothing by starting fresh and
    overwriting it.  Distinct from the plain :class:`ValueError` raised for
    genuine corruption (garbage lines, a missing header before real
    records), which must stop a resume rather than silently discard data.
    """


def stream_header(
    problems,
    algorithms,
    *,
    scale: float | None,
    base_seed: int,
    shard: tuple | None,
    total_tasks: int,
    balance: str = "roundrobin",
    cost_fingerprint: str | None = None,
) -> dict:
    """The header object written as the first line of a stream file.

    ``balance`` and ``cost_fingerprint`` pin *how the shard slice was
    chosen*: for a cost-balanced run
    (``--balance cost``), the slice depends on the cost model
    (:meth:`repro.batch.sched.CostModel.fingerprint`), so resuming under a
    different model — which would cover a different slice — must be
    rejected, not silently mixed.  Round-robin runs record
    ``cost_fingerprint=None``.
    """
    return {
        "kind": "header",
        "schema_version": SCHEMA_VERSION,
        "engine": _ENGINE_NAME,
        "problems": list(problems),
        "algorithms": list(algorithms),
        "scale": scale,
        "base_seed": int(base_seed),
        "shard": None if shard is None else [int(shard[0]), int(shard[1])],
        "balance": str(balance),
        "cost_fingerprint": cost_fingerprint,
        "total_tasks": int(total_tasks),
    }


def validate_stream_header(header: dict, expected: dict) -> None:
    """Check that a stream file belongs to the suite about to run.

    ``expected`` is a header built by :func:`stream_header` from the current
    invocation.  Raises :exc:`SchemaVersionError` on an unreadable schema
    version and :exc:`ValueError` on any specification mismatch — resuming a
    different suite (or a different cost-balanced slice of the same suite)
    would silently drop tasks or mix seeds.

    Headers written before the scheduler existed carry no ``balance`` /
    ``cost_fingerprint`` keys; they are treated as round-robin, so old
    stream files still resume.
    """
    version = header.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"stream file has schema version {version!r}; this build "
            f"streams version {SCHEMA_VERSION}"
        )
    for name in ("problems", "algorithms", "scale", "base_seed", "shard"):
        mine, theirs = expected.get(name), header.get(name)
        if mine != theirs:
            raise ValueError(
                f"stream file was written for a different suite: "
                f"{name}={theirs!r} there vs {mine!r} now"
            )
    for name, default in (("balance", "roundrobin"), ("cost_fingerprint", None)):
        mine = expected.get(name, default) or default
        theirs = header.get(name, default) or default
        if mine != theirs:
            raise ValueError(
                f"stream file was written for a different shard plan: "
                f"{name}={theirs!r} there vs {mine!r} now (a cost-balanced "
                f"slice is only resumable under the same --balance and "
                f"cost model)"
            )


class StreamWriter:
    """Append-only JSONL sink; one flushed line per completed record.

    Use as a context manager.  ``append=True`` (the resume case: new records
    joining an existing file) skips the header line; a fresh file always
    starts with one.
    """

    def __init__(self, path, header: dict, append: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if append and self.path.exists():
            # A killed run may have left a truncated final line (no trailing
            # newline); appending after it would corrupt the next record.
            data = self.path.read_bytes()
            if data and not data.endswith(b"\n"):
                self.path.write_bytes(data[: data.rfind(b"\n") + 1])
        self._file = self.path.open("a" if append else "w")
        if not append:
            self._write_line(header)

    def _write_line(self, payload: dict) -> None:
        self._file.write(json.dumps(payload, sort_keys=True) + "\n")
        self._file.flush()

    def write_record(self, record: TaskRecord) -> None:
        """Append one task record (timing included) and flush."""
        self._write_line({"kind": "record", **record.to_dict(include_timing=True)})

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "StreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl_objects(path) -> list[dict]:
    """Parse a JSONL file into its complete object lines, tolerating exactly
    the damage a killed appender can cause.

    The shared tolerant reader behind :func:`read_stream` (``--resume``) and
    the ``repro serve`` job journal.  A killed process's final ``write`` may
    have flushed any prefix of its last line — including, on some
    filesystems, a prefix followed by stray newline bytes from a torn
    buffered write — so the **final non-blank line** being malformed JSON is
    treated as that truncated tail and dropped, wherever trailing blank
    lines put it.  A malformed line with complete lines after it is genuine
    corruption and raises.

    Raises
    ------
    TruncatedStreamError
        When the file holds no complete line at all (empty, or killed
        during its very first write) — the *resumable* flavour of damage.
    ValueError
        When any line other than the final non-blank one is malformed, or a
        complete line is not a JSON object (genuine corruption).
    OSError
        When the file cannot be read at all.
    """
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise TruncatedStreamError(
            f"stream file {path} is empty (no records to resume; "
            f"the previous run was killed before its header write completed)"
        )
    last_content = max(
        (number for number, line in enumerate(lines, start=1) if line.strip()),
        default=0,
    )
    parsed = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if number == last_content:
                break  # truncated final write of a killed run
            raise ValueError(
                f"stream file {path} is corrupt: malformed JSON on line "
                f"{number} (only the final line may be truncated)"
            ) from None
        if not isinstance(payload, dict):
            raise ValueError(
                f"stream file {path} is corrupt: line {number} is not a "
                f"JSON object"
            )
        parsed.append(payload)
    if not parsed:
        # Every line was blank or a truncated final write: the signature of
        # a process killed during its very first write.  Nothing was lost,
        # so report the resumable flavour of damage, not corruption.
        raise TruncatedStreamError(
            f"stream file {path} has no complete line (the previous writer "
            f"was killed during its first write); starting fresh is safe"
        )
    return parsed


def read_jsonl_objects_partial(path) -> tuple[list[dict], int]:
    """Parse a JSONL file salvaging every complete object line:
    ``(objects, dropped)``.

    The *lossy* sibling of :func:`read_jsonl_objects` for callers that asked
    to keep going past damage (``repro merge --allow-partial``, the server
    journal's replay accounting): malformed lines and non-object lines
    anywhere in the file are skipped and **counted** instead of raising, so
    the caller can report exactly how much was lost.

    Raises
    ------
    TruncatedStreamError
        When the file holds no complete object line at all — there is
        nothing to salvage.
    OSError
        When the file cannot be read at all.
    """
    lines = Path(path).read_text().splitlines()
    parsed: list[dict] = []
    dropped = 0
    for line in lines:
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            dropped += 1
            continue
        if not isinstance(payload, dict):
            dropped += 1
            continue
        parsed.append(payload)
    if not parsed:
        raise TruncatedStreamError(
            f"stream file {path} has no complete line to salvage"
        )
    return parsed, dropped


def read_stream(path) -> tuple[dict, list[TaskRecord]]:
    """Read a stream file back: ``(header, records)``.

    Tolerates exactly the damage a killed run can cause — a truncated final
    line, wherever trailing blank lines leave it (see
    :func:`read_jsonl_objects`) — and rejects anything else (missing or
    malformed header, garbage in the middle) as a corrupt file.

    Raises
    ------
    TruncatedStreamError
        When the file holds no complete line at all — empty, or killed
        during the first (header) write.  The file carries no records, so
        callers may treat this as "nothing to resume" and start fresh.
    ValueError
        When the file does not start with a header line or has a malformed
        line anywhere but the end (genuine corruption — not resumable).
    OSError
        When the file cannot be read at all.
    """
    parsed = read_jsonl_objects(path)
    if parsed[0].get("kind") != "header":
        raise ValueError(
            f"stream file {path} does not start with a header line"
        )
    header = parsed[0]
    records = []
    for payload in parsed[1:]:
        if payload.get("kind") != "record":
            raise ValueError(
                f"stream file {path} contains an unknown line kind "
                f"{payload.get('kind')!r}"
            )
        try:
            records.append(TaskRecord.from_dict(payload))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"stream file {path} is corrupt: invalid record line "
                f"({type(exc).__name__}: {exc})"
            ) from None
    return header, records


def read_stream_partial(path) -> tuple[dict, list[TaskRecord], int]:
    """Read a damaged stream file salvaging complete records:
    ``(header, records, dropped)``.

    The ``--allow-partial`` backend: where :func:`read_stream` rejects a
    malformed mid-file line as corruption, this salvages every complete,
    valid record line and counts the rest (malformed JSON, unknown kinds,
    invalid record payloads) as dropped.  The header must still be the first
    parseable object — a stream whose provenance is unreadable cannot be
    merged safely at any tolerance level.

    Raises
    ------
    TruncatedStreamError
        When the file holds no complete line at all.
    ValueError
        When the first parseable line is not a header (unknown provenance).
    OSError
        When the file cannot be read at all.
    """
    parsed, dropped = read_jsonl_objects_partial(path)
    if parsed[0].get("kind") != "header":
        raise ValueError(
            f"stream file {path} does not start with a header line"
        )
    header = parsed[0]
    records = []
    for payload in parsed[1:]:
        if payload.get("kind") != "record":
            dropped += 1
            continue
        try:
            records.append(TaskRecord.from_dict(payload))
        except (KeyError, TypeError, ValueError):
            dropped += 1
    return header, records, dropped


def suite_from_stream(path, *, allow_partial: bool = False) -> SuiteResult:
    """Read a stream file into a :class:`~repro.batch.results.SuiteResult`.

    The specification comes from the header; retried cells — a timeout
    record superseded by a later attempt, the ``--retry-timeouts`` stream
    shape — are deduped to the **final** attempt
    (:func:`repro.batch.results.dedupe_records`).  This is what lets
    ``repro merge`` accept ``.jsonl`` stream files alongside JSON shard
    artifacts: an interrupted or retried stream still reduces to at most
    one record per cell.

    Timing aggregates are stream-level: ``wall_time_s`` sums the retained
    records' ``time_s`` (the per-machine wall time was never recorded in
    the stream).  Raises the same errors as :func:`read_stream`, plus
    :exc:`SchemaVersionError` for a header this build cannot read.

    ``allow_partial=True`` (the ``repro merge --allow-partial`` path)
    salvages a stream with damaged mid-file or torn trailing lines instead
    of raising: complete records are kept, the dropped-line count is
    recorded on the result (``partial={"dropped_lines": N}``) and surfaces
    in the merged artifact.
    """
    if allow_partial:
        header, records, dropped = read_stream_partial(path)
    else:
        header, records = read_stream(path)
        dropped = 0
    version = header.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaVersionError(
            f"stream file {path} has schema version {version!r}; this build "
            f"streams version {SCHEMA_VERSION}"
        )
    shard = header.get("shard")
    records = dedupe_records(records)
    return SuiteResult(
        problems=list(header.get("problems", [])),
        algorithms=list(header.get("algorithms", [])),
        scale=header.get("scale"),
        base_seed=int(header.get("base_seed", 0)),
        records=records,
        wall_time_s=float(sum(record.time_s for record in records)),
        shard=None if shard is None else (int(shard[0]), int(shard[1])),
        partial={"dropped_lines": dropped} if dropped else None,
    )
