"""Task decomposition for the parallel batch-experiment engine.

The paper's whole evaluation (Tables 4.1-4.4) is a cross-product of
``{problems} x {ordering algorithms}``.  Each cell of that product is an
independent unit of work: build (or receive) the matrix structure, run one
ordering algorithm on it, and measure the envelope statistics of the result.
:class:`BatchTask` describes one such cell; :func:`build_tasks` expands a
suite specification into the full task list in a deterministic order.

Seeding
-------
Some algorithms (``spectral``, ``hybrid``, ``random``) accept an ``rng``.  So
that a suite run is reproducible regardless of execution order, worker count
or process boundaries, every task carries its own seed derived *only* from
``(base_seed, problem, algorithm)`` via :func:`derive_seed` — never from
global state or task position.

Sharding
--------
Because seeding is position-independent, the task list can be partitioned
across machines without changing any result: :func:`shard_tasks` selects a
stable round-robin slice ``k/n`` of the full expansion, and the JSON
artifacts of the ``n`` slices recombine (``repro merge`` /
:func:`repro.batch.results.merge_results`) into exactly the artifact a
single-machine run would have produced.  Round-robin is the default
partition; :func:`repro.batch.sched.plan_shards` offers a cost-balanced
alternative (``--balance cost``) over the same expansion, with the same
merge guarantee.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.collections.registry import all_problems, get_problem_spec
from repro.orderings.registry import ORDERING_ALGORITHMS

__all__ = [
    "BatchTask",
    "build_task",
    "build_tasks",
    "derive_seed",
    "parse_shard",
    "shard_tasks",
]


def derive_seed(base_seed: int, problem: str, algorithm: str) -> int:
    """Deterministic 32-bit seed for one ``(problem, algorithm)`` task.

    Stable across processes and Python versions (SHA-256 based, not
    ``hash()``), so serial and parallel runs of the same suite see identical
    seeds.

    >>> derive_seed(0, "POW9", "rcm")
    3565120006
    >>> derive_seed(1, "POW9", "rcm")   # base_seed perturbs every task seed
    2978033378
    """
    text = f"{int(base_seed)}:{problem}:{algorithm}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class BatchTask:
    """One independent ``(problem, algorithm)`` cell of a suite run.

    Attributes
    ----------
    problem:
        Problem name — a registered paper problem for suite runs, or an
        arbitrary label when the pattern is supplied directly to
        :func:`repro.batch.engine.execute_task`.
    algorithm:
        Registered ordering-algorithm name.
    scale:
        Surrogate scale forwarded to the problem generator (``None`` uses
        the registry default).
    seed:
        Per-task seed (see :func:`derive_seed`).
    options:
        Extra keyword arguments for the algorithm.
    index:
        Position of the task in the suite's deterministic expansion order.
    attempt:
        Execution-attempt ordinal (0 for the first run, bumped by the
        engine's crash/timeout retry rounds and the server pool per
        computation).  Never serialized into artifacts and never part of
        seeding — it exists so deterministic fault-injection draws
        (:mod:`repro.faults`) vary across retries of the same cell.
    """

    problem: str
    algorithm: str
    scale: float | None = None
    seed: int = 0
    options: dict = field(default_factory=dict)
    index: int = 0
    attempt: int = 0


def build_task(
    problem: str,
    algorithm: str,
    *,
    scale: float | None = None,
    options: dict | None = None,
    base_seed: int = 0,
    seed: int | None = None,
    index: int = 0,
    check_problem: bool = True,
) -> BatchTask:
    """Build one ``(problem, algorithm)`` cell — the single-cell form of
    :func:`build_tasks`, shared by the suite expansion, ``repro order`` and
    the ``repro serve`` request path.

    The cell is identical to the one :func:`build_tasks` would produce at
    the same position: the problem name is normalized the same way and the
    seed derives from ``(base_seed, problem, algorithm)`` alone, so a server
    answering one cell and a suite run covering it compute byte-identical
    records.  ``seed`` overrides the derivation for callers that carry an
    explicit seed.  ``check_problem=False`` skips the registry check — the
    direct-pattern path, where ``problem`` is an arbitrary case-sensitive label
    (e.g. ``inline:<digest>``) and the structure is supplied to :func:`repro.batch.engine.execute_task`.

    >>> build_task("pow9", "rcm") == build_tasks(["POW9"], ("rcm",))[0]
    True

    Raises
    ------
    ValueError
        On an unknown algorithm, or an unknown problem when
        ``check_problem`` is true.
    """
    problem = str(problem).strip()
    if check_problem:
        problem = problem.upper()
    if check_problem and get_problem_spec(problem) is None:
        raise ValueError(
            f"unknown problem(s) {[problem]}; "
            f"available: {', '.join(sorted(all_problems()))}"
        )
    algorithm = str(algorithm)
    if algorithm not in ORDERING_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm(s) {[algorithm]}; "
            f"available: {sorted(ORDERING_ALGORITHMS)}"
        )
    return BatchTask(
        problem=problem,
        algorithm=algorithm,
        scale=scale,
        seed=derive_seed(base_seed, problem, algorithm) if seed is None else int(seed),
        options=dict(options or {}),
        index=int(index),
    )


def build_tasks(
    problem_names,
    algorithms,
    *,
    scale: float | None = None,
    algorithm_options: dict | None = None,
    base_seed: int = 0,
) -> list[BatchTask]:
    """Expand a suite specification into its deterministic task list.

    Problems iterate in the given order, algorithms within each problem, so
    ``tasks[i].index == i`` always holds and a serial run executes the exact
    sequence a parallel run distributes.

    >>> tasks = build_tasks(["POW9", "CAN1072"], ("rcm", "gps"), scale=0.02)
    >>> [(t.index, t.problem, t.algorithm) for t in tasks]
    [(0, 'POW9', 'rcm'), (1, 'POW9', 'gps'), (2, 'CAN1072', 'rcm'), (3, 'CAN1072', 'gps')]

    Raises
    ------
    ValueError
        When a problem or algorithm name is not registered (checked up
        front so a typo fails fast instead of producing failure records).
    """
    problems = [str(name).strip().upper() for name in problem_names]
    unknown_problems = sorted(set(p for p in problems if get_problem_spec(p) is None))
    if unknown_problems:
        raise ValueError(
            f"unknown problem(s) {unknown_problems}; "
            f"available: {', '.join(sorted(all_problems()))}"
        )
    algorithms = tuple(algorithms)
    unknown_algorithms = sorted(set(a for a in algorithms if a not in ORDERING_ALGORITHMS))
    if unknown_algorithms:
        raise ValueError(
            f"unknown algorithm(s) {unknown_algorithms}; "
            f"available: {sorted(ORDERING_ALGORITHMS)}"
        )
    algorithm_options = algorithm_options or {}
    tasks: list[BatchTask] = []
    for problem in problems:
        for algorithm in algorithms:
            tasks.append(
                build_task(
                    problem,
                    algorithm,
                    scale=scale,
                    options=algorithm_options.get(algorithm, {}),
                    base_seed=base_seed,
                    index=len(tasks),
                    check_problem=False,  # the batch check above ran already
                )
            )
    return tasks


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``"K/N"`` shard specification into ``(K, N)``.

    >>> parse_shard("2/3")
    (2, 3)
    >>> parse_shard("4/3")
    Traceback (most recent call last):
        ...
    ValueError: shard index 4 out of range for 'K/N' with N=3 (need 1 <= K <= N)
    """
    try:
        index_text, count_text = str(text).split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"invalid shard specification {text!r}: expected 'K/N', e.g. '2/3'"
        ) from None
    if count < 1:
        raise ValueError(f"shard count must be positive, got {count}")
    if not 1 <= index <= count:
        raise ValueError(
            f"shard index {index} out of range for 'K/N' with N={count} "
            f"(need 1 <= K <= N)"
        )
    return index, count


def shard_tasks(tasks, shard_index: int, shard_count: int) -> list[BatchTask]:
    """Deterministic round-robin slice ``shard_index/shard_count`` of a task list.

    Task ``i`` of the full expansion belongs to shard ``(i % shard_count) + 1``
    (shards are 1-based, matching the CLI's ``--shard K/N``).  The partition
    is a pure function of the task indices, so ``shard_count`` machines given
    the same suite specification run disjoint slices whose union is exactly
    the full task list — and round-robin keeps each slice's mix of cheap and
    expensive *problems* balanced.  It knows nothing about per-cell cost,
    though: when one algorithm dominates (spectral vs RCM), prefer the
    cost-balanced plan of :func:`repro.batch.sched.plan_shards`.

    >>> tasks = build_tasks(["POW9", "CAN1072"], ("rcm", "gps"), scale=0.02)
    >>> [(t.problem, t.algorithm) for t in shard_tasks(tasks, 1, 3)]
    [('POW9', 'rcm'), ('CAN1072', 'gps')]
    >>> [(t.problem, t.algorithm) for t in shard_tasks(tasks, 3, 3)]
    [('CAN1072', 'rcm')]
    >>> sorted(t.index for shard in (1, 2, 3)
    ...        for t in shard_tasks(tasks, shard, 3)) == [t.index for t in tasks]
    True

    Raises
    ------
    ValueError
        When ``shard_index`` is outside ``1..shard_count``.
    """
    shard_index, shard_count = int(shard_index), int(shard_count)
    if shard_count < 1:
        raise ValueError(f"shard count must be positive, got {shard_count}")
    if not 1 <= shard_index <= shard_count:
        raise ValueError(
            f"shard index {shard_index} out of range for shard count "
            f"{shard_count} (need 1 <= index <= count)"
        )
    return [task for task in tasks if task.index % shard_count == shard_index - 1]
