"""Task decomposition for the parallel batch-experiment engine.

The paper's whole evaluation (Tables 4.1-4.4) is a cross-product of
``{problems} x {ordering algorithms}``.  Each cell of that product is an
independent unit of work: build (or receive) the matrix structure, run one
ordering algorithm on it, and measure the envelope statistics of the result.
:class:`BatchTask` describes one such cell; :func:`build_tasks` expands a
suite specification into the full task list in a deterministic order.

Seeding
-------
Some algorithms (``spectral``, ``hybrid``, ``random``) accept an ``rng``.  So
that a suite run is reproducible regardless of execution order, worker count
or process boundaries, every task carries its own seed derived *only* from
``(base_seed, problem, algorithm)`` via :func:`derive_seed` — never from
global state or task position.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.collections.registry import PAPER_PROBLEMS
from repro.orderings.registry import ORDERING_ALGORITHMS

__all__ = ["BatchTask", "build_tasks", "derive_seed"]


def derive_seed(base_seed: int, problem: str, algorithm: str) -> int:
    """Deterministic 32-bit seed for one ``(problem, algorithm)`` task.

    Stable across processes and Python versions (SHA-256 based, not
    ``hash()``), so serial and parallel runs of the same suite see identical
    seeds.
    """
    text = f"{int(base_seed)}:{problem}:{algorithm}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "little")


@dataclass(frozen=True)
class BatchTask:
    """One independent ``(problem, algorithm)`` cell of a suite run.

    Attributes
    ----------
    problem:
        Problem name — a registered paper problem for suite runs, or an
        arbitrary label when the pattern is supplied directly to
        :func:`repro.batch.engine.execute_task`.
    algorithm:
        Registered ordering-algorithm name.
    scale:
        Surrogate scale forwarded to the problem generator (``None`` uses
        the registry default).
    seed:
        Per-task seed (see :func:`derive_seed`).
    options:
        Extra keyword arguments for the algorithm.
    index:
        Position of the task in the suite's deterministic expansion order.
    """

    problem: str
    algorithm: str
    scale: float | None = None
    seed: int = 0
    options: dict = field(default_factory=dict)
    index: int = 0


def build_tasks(
    problem_names,
    algorithms,
    *,
    scale: float | None = None,
    algorithm_options: dict | None = None,
    base_seed: int = 0,
) -> list[BatchTask]:
    """Expand a suite specification into its deterministic task list.

    Problems iterate in the given order, algorithms within each problem, so
    ``tasks[i].index == i`` always holds and a serial run executes the exact
    sequence a parallel run distributes.

    Raises
    ------
    ValueError
        When a problem or algorithm name is not registered (checked up
        front so a typo fails fast instead of producing failure records).
    """
    problems = [str(name).strip().upper() for name in problem_names]
    unknown_problems = sorted(set(p for p in problems if p not in PAPER_PROBLEMS))
    if unknown_problems:
        raise ValueError(
            f"unknown problem(s) {unknown_problems}; "
            f"available: {', '.join(sorted(PAPER_PROBLEMS))}"
        )
    algorithms = tuple(algorithms)
    unknown_algorithms = sorted(set(a for a in algorithms if a not in ORDERING_ALGORITHMS))
    if unknown_algorithms:
        raise ValueError(
            f"unknown algorithm(s) {unknown_algorithms}; "
            f"available: {sorted(ORDERING_ALGORITHMS)}"
        )
    algorithm_options = algorithm_options or {}
    tasks: list[BatchTask] = []
    for problem in problems:
        for algorithm in algorithms:
            tasks.append(
                BatchTask(
                    problem=problem,
                    algorithm=algorithm,
                    scale=scale,
                    seed=derive_seed(base_seed, problem, algorithm),
                    options=dict(algorithm_options.get(algorithm, {})),
                    index=len(tasks),
                )
            )
    return tasks
