"""Performance tooling: shared timing core and the ``repro bench`` harness.

>>> from repro.bench import measure
>>> stats = measure(lambda: sum(range(100)), repeats=2)
>>> stats["repeats"]
2
>>> 0.0 <= stats["best_s"] <= stats["mean_s"]
True
"""

from repro.bench.core import measure, time_call
from repro.bench.harness import (
    BENCH_SCHEMA_VERSION,
    KernelBench,
    bench_revision,
    default_artifact_path,
    diff_bench,
    format_diff,
    format_trend,
    load_bench,
    machine_info,
    pinned_micro_suite,
    run_bench,
    save_bench,
    trend_bench,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "KernelBench",
    "bench_revision",
    "default_artifact_path",
    "diff_bench",
    "format_diff",
    "format_trend",
    "load_bench",
    "machine_info",
    "measure",
    "pinned_micro_suite",
    "run_bench",
    "save_bench",
    "time_call",
    "trend_bench",
]
