"""The shared timing core of the performance tooling.

Every wall-clock measurement in the repo — the ``repro bench``
perf-regression harness, the ``benchmarks/`` table and ablation scripts, and
ad-hoc profiling — goes through :func:`time_call` / :func:`measure` so the
numbers are produced the same way everywhere: ``time.perf_counter`` around
the bare call, garbage collection left alone, best-of-*k* reported as the
headline figure (the minimum is the least noisy location statistic for
wall-clock micro-benchmarks; the mean is kept alongside for context).
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["time_call", "measure"]


def time_call(func: Callable[..., Any], *args, **kwargs) -> tuple[Any, float]:
    """Call ``func(*args, **kwargs)`` once and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start


def measure(
    func: Callable[[], Any],
    *,
    repeats: int = 3,
    warmup: int = 0,
) -> dict:
    """Run a zero-argument callable *repeats* times and summarize the timings.

    Parameters
    ----------
    func:
        The measured callable.  Its return value is discarded (run it through
        :func:`time_call` instead when the result is needed).
    repeats:
        Timed runs; must be positive.
    warmup:
        Untimed runs executed first (cache warming, lazy imports).

    Returns
    -------
    dict
        ``{"best_s", "mean_s", "times_s", "repeats"}`` — ``best_s`` is the
        minimum over the timed runs, the statistic the regression harness
        compares.
    """
    repeats = int(repeats)
    if repeats < 1:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for _ in range(int(warmup)):
        func()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        times.append(time.perf_counter() - start)
    return {
        "best_s": min(times),
        "mean_s": sum(times) / len(times),
        "times_s": times,
        "repeats": repeats,
    }
