"""The ``repro bench`` perf-regression harness.

Runs a **pinned micro-suite** — named kernel benchmarks over fixed surrogate
problems (orderings, graph kernels, eigensolvers) plus one small
``problems x algorithms`` suite run — and emits a versioned JSON artifact
(``BENCH_<rev>.json``) holding per-kernel and per-cell wall times together
with machine info.  Two artifacts diff with :func:`diff_bench`, which flags
regressions beyond a noise threshold; this is how the repo's bench
trajectory is recorded and how "every PR makes a hot path measurably
faster" gets checked instead of asserted.

Usage (full reference: ``docs/performance.md``)::

    repro bench --output BENCH_abc1234.json          # record a run
    repro bench --against BENCH_abc1234.json         # rerun + diff, exit 1
                                                     # on regressions
    repro bench --quick                              # CI smoke variant

The timing statistic compared across runs is **best-of-k** wall time (see
:mod:`repro.bench.core`); the suite cells additionally record the engine's
own per-task ``time_s``.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.bench.core import measure

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "KernelBench",
    "pinned_micro_suite",
    "run_bench",
    "save_bench",
    "load_bench",
    "diff_bench",
    "format_diff",
    "trend_bench",
    "format_trend",
    "bench_revision",
    "default_artifact_path",
    "machine_info",
]

#: Version of the ``BENCH_*.json`` artifact schema.
BENCH_SCHEMA_VERSION = 1

_KIND = "repro-bench"

#: Baseline timings below this are treated as pure noise by the regression
#: check (a 2x "regression" of a 50 microsecond kernel is jitter, not a bug).
_NOISE_FLOOR_S = 1e-3


def _requested_backend() -> str:
    from repro import backends

    return backends.requested_backend()


@dataclass(frozen=True)
class KernelBench:
    """One named micro-benchmark of the pinned suite.

    ``setup`` builds the inputs (untimed) and returns the zero-argument
    callable that gets measured.
    """

    name: str
    group: str
    setup: Callable[[], Callable[[], object]]
    problem: str = ""
    repeats: int | None = None


def machine_info() -> dict:
    """Platform / library versions recorded into every artifact.

    Includes the active kernel backend tier (``backend``) and — when the
    compiled tier is importable — the numba/llvmlite versions, so a bench
    artifact is self-describing about *which* implementation it timed.
    """
    import scipy

    from repro import backends

    info = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "cpu_count": os.cpu_count(),
        "backend": backends.requested_backend(),
        "numba_available": backends.numba_available(),
    }
    info.update(backends.numba_versions())
    return info


def bench_revision() -> str:
    """Short source revision for artifact naming (``local`` outside git)."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=10, check=True,
        )
        return out.stdout.strip() or "local"
    except (OSError, subprocess.SubprocessError):
        return "local"


def default_artifact_path(rev: str | None = None) -> Path:
    """``BENCH_<rev>.json`` in the current directory."""
    return Path(f"BENCH_{rev or bench_revision()}.json")


# --------------------------------------------------------------------- #
# the pinned micro-suite
# --------------------------------------------------------------------- #
def _fiedler_policy_options(fiedler_policy: str) -> dict:
    """Algorithm options implied by ``--fiedler-policy`` for spectral solvers."""
    if fiedler_policy == "fast":
        return {"tol_policy": "ordering"}
    return {}


def _ordering_bench(problem: str, scale: float, algorithm: str,
                    fiedler_policy: str = "default",
                    group: str = "orderings") -> KernelBench:
    def setup():
        from repro.batch import BatchTask, derive_seed, task_options
        from repro.collections.registry import load_problem
        from repro.orderings.registry import ORDERING_ALGORITHMS

        pattern, _spec = load_problem(problem, scale=scale)
        func = ORDERING_ALGORITHMS[algorithm]
        task = BatchTask(problem=problem, algorithm=algorithm, scale=scale,
                         seed=derive_seed(0, problem, algorithm))
        options = task_options(func, task)
        if algorithm in ("spectral", "hybrid"):
            options.update(_fiedler_policy_options(fiedler_policy))
        return lambda: func(pattern, **options)

    return KernelBench(
        name=f"{group}/{algorithm}/{problem}@{scale:g}",
        group=group, setup=setup, problem=problem,
    )


def _graph_bench(problem: str, scale: float, kernel: str) -> KernelBench:
    def setup():
        from repro.collections.registry import load_problem
        from repro.graph.coarsen import coarsen_graph, maximal_independent_set
        from repro.graph.peripheral import pseudo_diameter
        from repro.graph.traversal import breadth_first_levels

        pattern, _spec = load_problem(problem, scale=scale)
        kernels = {
            "bfs_levels": lambda: breadth_first_levels(pattern, 0),
            "pseudo_diameter": lambda: pseudo_diameter(pattern),
            "mis": lambda: maximal_independent_set(pattern),
            "coarsen": lambda: coarsen_graph(pattern),
        }
        return kernels[kernel]

    return KernelBench(
        name=f"graph/{kernel}/{problem}@{scale:g}",
        group="graph", setup=setup, problem=problem,
    )


def _eigen_bench(problem: str, scale: float, kernel: str,
                 fiedler_policy: str = "default") -> KernelBench:
    def setup():
        from repro.collections.registry import load_problem
        from repro.eigen.lanczos import lanczos_smallest_nontrivial
        from repro.eigen.multilevel import multilevel_fiedler
        from repro.graph.laplacian import laplacian_matrix

        pattern, _spec = load_problem(problem, scale=scale)
        options = _fiedler_policy_options(fiedler_policy)
        if kernel == "lanczos":
            laplacian = laplacian_matrix(pattern)
            return lambda: lanczos_smallest_nontrivial(laplacian, rng=0, **options)
        return lambda: multilevel_fiedler(pattern, rng=0, **options)

    return KernelBench(
        name=f"eigen/{kernel}/{problem}@{scale:g}",
        group="eigen", setup=setup, problem=problem,
    )


def pinned_micro_suite(quick: bool = False,
                       fiedler_policy: str = "default") -> list[KernelBench]:
    """The fixed benchmark list compared across revisions.

    Names are stable identifiers: :func:`diff_bench` joins artifacts on them,
    so renaming or re-scaling an entry breaks the trajectory for that kernel
    (the diff reports it as added/removed rather than silently comparing
    different work).  ``fiedler_policy="fast"`` runs the spectral/eigen
    kernels under ``tol_policy="ordering"`` — the artifact's ``config``
    records the policy, so a fast-path artifact is never silently diffed as
    if it were a default-path run.
    """
    if quick:
        ordering_cases = [("CAN1072", 0.1), ("DWT2680", 0.05)]
        ordering_algorithms = ("rcm", "gps", "gk", "sloan")
        powerlaw_cases = [("RANDOM/BA", 0.002), ("RANDOM/RMAT", 0.002)]
        powerlaw_algorithms = ("rcm", "gk")
        graph_problem, graph_scale = "PWT", 0.03
    else:
        ordering_cases = [("CAN1072", 0.5), ("DWT2680", 0.2)]
        ordering_algorithms = ("rcm", "gps", "gk", "sloan", "king", "spectral")
        powerlaw_cases = [("RANDOM/BA", 0.004), ("RANDOM/RMAT", 0.004)]
        powerlaw_algorithms = ("rcm", "gk", "sloan")
        graph_problem, graph_scale = "PWT", 0.1

    benches = [
        _ordering_bench(problem, scale, algorithm, fiedler_policy)
        for problem, scale in ordering_cases
        for algorithm in ordering_algorithms
    ]
    # The power-law group: same ordering kernels on hub-dominated graphs,
    # where frontier widths behave nothing like the mesh cases above.
    benches += [
        _ordering_bench(problem, scale, algorithm, fiedler_policy,
                        group="powerlaw")
        for problem, scale in powerlaw_cases
        for algorithm in powerlaw_algorithms
    ]
    benches += [
        _graph_bench(graph_problem, graph_scale, kernel)
        for kernel in ("bfs_levels", "pseudo_diameter", "mis", "coarsen")
    ]
    benches += [
        _eigen_bench(graph_problem, graph_scale, kernel, fiedler_policy)
        for kernel in ("lanczos", "multilevel_fiedler")
    ]
    return benches


def _suite_spec(quick: bool) -> dict:
    return {
        "problems": ["CAN1072", "POW9"],
        "algorithms": ["spectral", "gk", "gps", "rcm"],
        "scale": 0.02 if quick else 0.05,
    }


# --------------------------------------------------------------------- #
# running
# --------------------------------------------------------------------- #
def run_bench(
    *,
    quick: bool = False,
    repeats: int | None = None,
    name_filter: str | None = None,
    include_suite: bool = True,
    on_result: Callable[[dict], None] | None = None,
    rev: str | None = None,
    fiedler_policy: str = "default",
) -> dict:
    """Execute the pinned micro-suite and return the artifact dictionary.

    Parameters
    ----------
    quick:
        Smaller problem scales and fewer repeats — the CI smoke variant.
    repeats:
        Timed runs per kernel (default: 2 quick, 3 full; best-of-k is the
        compared statistic, so more repeats mean less noise).  The suite
        section runs the same number of times, so its cells carry best-of-k
        ``best_s`` too.
    name_filter:
        Case-insensitive substring; only matching kernel names run.
    include_suite:
        Also run the small batch-engine suite and record per-cell times.
    on_result:
        Callback invoked with each finished kernel entry (progress hook).
    rev:
        Source revision recorded in the artifact (default: git describe).
    fiedler_policy:
        ``"default"`` or ``"fast"`` — run the spectral/eigen kernels (and
        the suite's spectral cells) under ``tol_policy="ordering"``.
        Recorded in the artifact ``config``.
    """
    if fiedler_policy not in ("default", "fast"):
        raise ValueError(
            f"fiedler_policy must be 'default' or 'fast', got {fiedler_policy!r}"
        )
    if repeats is None:
        repeats = 2 if quick else 3
    start = time.perf_counter()
    kernels = []
    for bench in pinned_micro_suite(quick, fiedler_policy):
        if name_filter and name_filter.lower() not in bench.name.lower():
            continue
        func = bench.setup()
        stats = measure(func, repeats=bench.repeats or repeats, warmup=1)
        entry = {
            "name": bench.name,
            "group": bench.group,
            "problem": bench.problem,
            "best_s": stats["best_s"],
            "mean_s": stats["mean_s"],
            "repeats": stats["repeats"],
        }
        kernels.append(entry)
        if on_result is not None:
            on_result(entry)

    suite_section = None
    if include_suite and not name_filter:
        from repro.batch import run_suite

        spec = _suite_spec(quick)
        policy_options = _fiedler_policy_options(fiedler_policy)
        algorithm_options = (
            {"spectral": dict(policy_options), "hybrid": dict(policy_options)}
            if policy_options else None
        )
        # Best-of-k per cell: the suite runs `repeats` times and each cell
        # records the minimum of its per-run engine timings — the same
        # statistic the kernel rows use — so bench-sourced cost-model
        # observations and suite-cell diffs stop depending on one noisy run.
        best_cells: dict[tuple, float] = {}
        for _run in range(repeats):
            suite = run_suite(spec["problems"], spec["algorithms"],
                              scale=spec["scale"], n_jobs=1,
                              algorithm_options=algorithm_options,
                              keep_orderings=False)
            for record in suite.records:
                if record.status != "ok":
                    continue
                key = (record.problem, record.algorithm)
                previous = best_cells.get(key)
                if previous is None or record.time_s < previous:
                    best_cells[key] = record.time_s
        suite_section = {
            **spec,
            "wall_s": suite.wall_time_s,
            "repeats": repeats,
            "cells": [
                {
                    "problem": record.problem,
                    "algorithm": record.algorithm,
                    "status": record.status,
                    "time_s": record.time_s,
                    "best_s": best_cells.get((record.problem, record.algorithm)),
                    # n/nnz let the scheduler's CostModel fit per-algorithm
                    # cost rates from bench artifacts (additive; older
                    # artifacts without them still load and diff fine).
                    "n": record.n,
                    "nnz": record.nnz,
                }
                for record in suite.records
            ],
        }
        if on_result is not None:
            on_result({"name": "suite", "group": "suite",
                       "best_s": suite.wall_time_s, "mean_s": suite.wall_time_s,
                       "repeats": repeats})

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": _KIND,
        "rev": rev or bench_revision(),
        "created_s": time.time(),
        "machine": machine_info(),
        "config": {"quick": quick, "repeats": repeats,
                   "filter": name_filter, "include_suite": include_suite,
                   "fiedler_policy": fiedler_policy,
                   "backend": _requested_backend()},
        "kernels": kernels,
        "suite": suite_section,
        "total_s": time.perf_counter() - start,
    }


def save_bench(artifact: dict, path) -> Path:
    """Write the artifact as indented JSON, atomically; returns the path."""
    from repro.utils.atomic import atomic_write_text

    return atomic_write_text(
        path, json.dumps(artifact, indent=2, sort_keys=False) + "\n"
    )


def load_bench(path) -> dict:
    """Load and validate a ``BENCH_*.json`` artifact.

    Raises
    ------
    ValueError
        When the file is not a bench artifact or its schema version is newer
        than this build understands.
    """
    path = Path(path)
    try:
        artifact = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(artifact, dict) or artifact.get("kind") != _KIND:
        raise ValueError(f"{path} is not a repro bench artifact")
    version = artifact.get("schema_version")
    if not isinstance(version, int) or version > BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has bench schema version {version!r}; this build reads "
            f"versions up to {BENCH_SCHEMA_VERSION}"
        )
    return artifact


# --------------------------------------------------------------------- #
# diffing two artifacts
# --------------------------------------------------------------------- #
def _cell_rows(artifact: dict) -> dict[str, float]:
    suite = artifact.get("suite")
    if not suite:
        return {}
    # Prefer the best-of-k statistic; artifacts recorded before cells carried
    # ``best_s`` fall back to their single-run ``time_s``.
    return {
        f"suite/{cell['problem']}/{cell['algorithm']}":
            float(cell.get("best_s") or cell["time_s"])
        for cell in suite["cells"]
        if cell.get("status") == "ok"
    }


def diff_bench(baseline: dict, current: dict, *, threshold: float = 0.25) -> dict:
    """Compare two bench artifacts kernel by kernel (and cell by cell).

    Parameters
    ----------
    baseline, current:
        Artifacts from :func:`run_bench` / :func:`load_bench`.
    threshold:
        Relative slowdown treated as a regression: a kernel regresses when
        ``current > baseline * (1 + threshold)`` *and* the baseline is above
        the noise floor.  Timing noise on sub-millisecond kernels is never
        flagged.

    Returns
    -------
    dict
        ``rows`` (one per kernel present in both artifacts: name, base_s,
        new_s, speedup), ``regressions`` (names), ``added`` / ``removed``
        (names only in one artifact), ``geomean_speedup`` over comparable
        rows, ``gate_geomean_speedup`` (geomean over rows above the noise
        floor — the ``--gate geomean`` CI statistic), the two revisions,
        and ``fiedler_policies`` (baseline/current run policies; a mismatch
        means the artifacts timed different solver configurations).
    """
    base_times = {k["name"]: float(k["best_s"]) for k in baseline.get("kernels", [])}
    base_times.update(_cell_rows(baseline))
    new_times = {k["name"]: float(k["best_s"]) for k in current.get("kernels", [])}
    new_times.update(_cell_rows(current))

    rows, regressions, log_speedups, gated_logs = [], [], [], []
    for name in [n for n in base_times if n in new_times]:
        base_s, new_s = base_times[name], new_times[name]
        speedup = base_s / new_s if new_s > 0 else math.inf
        row = {"name": name, "base_s": base_s, "new_s": new_s, "speedup": speedup}
        regressed = new_s > base_s * (1.0 + threshold) and base_s >= _NOISE_FLOOR_S
        row["regressed"] = regressed
        if regressed:
            regressions.append(name)
        if base_s > 0 and new_s > 0:
            log_speedups.append(math.log(speedup))
            if base_s >= _NOISE_FLOOR_S:
                gated_logs.append(math.log(speedup))
        rows.append(row)

    geomean = math.exp(sum(log_speedups) / len(log_speedups)) if log_speedups else 1.0
    # The CI gate statistic: geomean restricted to kernels above the noise
    # floor, so sub-millisecond jitter cannot fail (or save) a gated job.
    gate_geomean = math.exp(sum(gated_logs) / len(gated_logs)) if gated_logs else 1.0
    # Total micro-suite wall time over the pinned kernels present in both
    # artifacts (suite cells excluded: the suite section re-times ordering
    # work the kernel rows already cover).
    kernel_rows = [r for r in rows if not r["name"].startswith("suite/")]
    total_base = sum(r["base_s"] for r in kernel_rows)
    total_new = sum(r["new_s"] for r in kernel_rows)
    return {
        "baseline_rev": baseline.get("rev", "?"),
        "current_rev": current.get("rev", "?"),
        "fiedler_policies": (
            (baseline.get("config") or {}).get("fiedler_policy", "default"),
            (current.get("config") or {}).get("fiedler_policy", "default"),
        ),
        "backends": (
            (baseline.get("config") or {}).get("backend", "auto"),
            (current.get("config") or {}).get("backend", "auto"),
        ),
        "threshold": threshold,
        "rows": rows,
        "regressions": regressions,
        "added": sorted(set(new_times) - set(base_times)),
        "removed": sorted(set(base_times) - set(new_times)),
        "geomean_speedup": geomean,
        "gate_geomean_speedup": gate_geomean,
        "total_base_s": total_base,
        "total_new_s": total_new,
        "total_speedup": total_base / total_new if total_new > 0 else math.inf,
    }


# --------------------------------------------------------------------- #
# trajectory across many artifacts
# --------------------------------------------------------------------- #
def trend_bench(artifacts: list[dict]) -> dict:
    """Kernel-group geomean trajectory across checked-in bench artifacts.

    Sorts the artifacts by their recorded ``created_s`` timestamp, then for
    each consecutive pair computes the per-group geometric-mean speedup over
    the kernel names present in **both** artifacts (suite cells excluded —
    they re-time ordering work the kernel rows already cover).  Speedups are
    chained cumulatively, so the last step's ``cumulative`` column answers
    "how much faster is the newest artifact than the oldest, per group".

    Returns a dict with ``groups`` (sorted union of group names), ``steps``
    (one per consecutive pair: ``base_rev``, ``new_rev``, the two
    ``backend`` tiers, per-group ``speedups``/``cumulative`` maps and
    ``common`` row counts), suitable for :func:`format_trend`.
    """
    if len(artifacts) < 2:
        raise ValueError("trend needs at least two bench artifacts")
    ordered = sorted(artifacts, key=lambda a: float(a.get("created_s", 0.0)))

    def rows(artifact: dict) -> dict[str, tuple[str, float]]:
        return {
            k["name"]: (k.get("group", "?"), float(k["best_s"]))
            for k in artifact.get("kernels", [])
        }

    groups: set[str] = set()
    for artifact in ordered:
        groups.update(group for group, _ in rows(artifact).values())
    group_list = sorted(groups)

    steps = []
    cumulative = {group: 1.0 for group in group_list}
    for base, new in zip(ordered, ordered[1:]):
        base_rows, new_rows = rows(base), rows(new)
        logs: dict[str, list[float]] = {group: [] for group in group_list}
        for name, (group, base_s) in base_rows.items():
            if name not in new_rows:
                continue
            new_s = new_rows[name][1]
            if base_s > 0 and new_s > 0:
                logs[group].append(math.log(base_s / new_s))
        speedups = {
            group: math.exp(sum(values) / len(values)) if values else None
            for group, values in logs.items()
        }
        for group, speedup in speedups.items():
            if speedup is not None:
                cumulative[group] *= speedup
        steps.append({
            "base_rev": base.get("rev", "?"),
            "new_rev": new.get("rev", "?"),
            "backends": (
                (base.get("config") or {}).get("backend", "auto"),
                (new.get("config") or {}).get("backend", "auto"),
            ),
            "speedups": speedups,
            "cumulative": dict(cumulative),
            "common": {group: len(values) for group, values in logs.items()},
        })
    return {"groups": group_list, "steps": steps,
            "revisions": [a.get("rev", "?") for a in ordered]}


def format_trend(trend: dict) -> str:
    """Human-readable table of a :func:`trend_bench` result."""
    groups = trend["groups"]
    lines = [
        "bench trend: " + " -> ".join(trend["revisions"]),
        f"{'step':<28} " + " ".join(f"{group:>12}" for group in groups),
    ]

    def cell(value) -> str:
        return f"{value:>11.2f}x" if value is not None else f"{'-':>12}"

    for step in trend["steps"]:
        label = f"{step['base_rev']} -> {step['new_rev']}"
        if step["backends"][0] != step["backends"][1]:
            label += f" [{step['backends'][0]}->{step['backends'][1]}]"
        lines.append(f"{label:<28} "
                     + " ".join(cell(step["speedups"].get(g)) for g in groups))
    if trend["steps"]:
        final = trend["steps"][-1]["cumulative"]
        lines.append(f"{'cumulative':<28} "
                     + " ".join(cell(final.get(g)) for g in groups))
    return "\n".join(lines)


def format_diff(diff: dict) -> str:
    """Human-readable table of a :func:`diff_bench` result."""
    lines = [
        f"bench diff: baseline {diff['baseline_rev']} -> current {diff['current_rev']}",
        f"{'kernel':<44} {'baseline':>10} {'current':>10} {'speedup':>8}",
    ]
    for row in diff["rows"]:
        flag = "  << REGRESSION" if row["regressed"] else ""
        lines.append(
            f"{row['name']:<44} {row['base_s']:>9.4f}s {row['new_s']:>9.4f}s "
            f"{row['speedup']:>7.2f}x{flag}"
        )
    for name in diff["added"]:
        lines.append(f"{name:<44} {'-':>10} {'new':>10}")
    for name in diff["removed"]:
        lines.append(f"{name:<44} {'gone':>10} {'-':>10}")
    lines.append(f"geometric-mean speedup over {len(diff['rows'])} kernels: "
                 f"{diff['geomean_speedup']:.2f}x "
                 f"(above noise floor: {diff.get('gate_geomean_speedup', 1.0):.2f}x)")
    policies = diff.get("fiedler_policies", ("default", "default"))
    if policies[0] != policies[1]:
        lines.append(f"WARNING: fiedler policies differ (baseline {policies[0]}, "
                     f"current {policies[1]}) — timings are not like-for-like")
    tiers = diff.get("backends", ("auto", "auto"))
    if tiers[0] != tiers[1]:
        # Deliberately a NOTE, not a gate failure: diffing a numpy artifact
        # against a numba artifact is how backend speedups get measured.
        lines.append(f"NOTE: backend tiers differ (baseline {tiers[0]}, "
                     f"current {tiers[1]}) — this diff measures the backend, "
                     f"not the revision")
    lines.append(f"total micro-suite wall time: {diff['total_base_s']:.3f}s -> "
                 f"{diff['total_new_s']:.3f}s ({diff['total_speedup']:.2f}x)")
    if diff["regressions"]:
        lines.append(f"{len(diff['regressions'])} regression(s) beyond "
                     f"{diff['threshold']:.0%}: {', '.join(diff['regressions'])}")
    else:
        lines.append("no regressions")
    return "\n".join(lines)
