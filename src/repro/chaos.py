"""The ``repro chaos`` harness: run the system under injected faults and
assert its resilience invariants.

Two drivers, both built on :mod:`repro.faults`:

``repro chaos suite``
    Run a ``problems x algorithms`` suite through the batch engine with a
    fault spec active (worker crashes, hangs, slow cells, store damage),
    letting the crash/timeout retry machinery absorb the injected failures
    — then run the identical suite fault-free and serial, and require the
    two canonical artifacts (``to_json(include_timing=False)``) to be
    **byte-identical**.  Exit 0 means every injected fault was absorbed
    without changing a single result byte; exit 1 prints the diff.

``repro chaos serve``
    Boot a real ``repro serve`` subprocess with the fault spec active and
    soak it with ordering requests through the retrying client
    (:meth:`~repro.serve.client.ServerClient.order_with_retries`), asserting
    that every request eventually answers ``ok`` with identical canonical
    records across repeats, that the server stays alive the whole time,
    and — the graceful-drain proof — that a SIGTERM sent while a request is
    in flight lets the server answer it, flush its journal (replayable with
    zero skipped lines), and exit 0.

Both drivers accept ``--events PATH.jsonl`` to capture one JSONL event per
fired fault (the CI chaos job uploads it as a build artifact) and print a
summary of what was injected and what was absorbed.  See
``docs/robustness.md`` for the spec grammar and the invariants in detail.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro import faults

__all__ = ["run_chaos_suite", "run_chaos_serve"]

_SPEC_ENV = "REPRO_FAULTS"

#: Default cells for a chaos run: small, fast, and covering both the
#: combinatorial and the spectral code paths.
_DEFAULT_PROBLEMS = ("POW9", "BARTH4")


def _prepare_spec(args) -> "tuple[faults.FaultPlan, str] | int":
    """Validate ``--inject-faults`` and splice in ``--events``; 2 on error."""
    spec = args.inject_faults
    try:
        plan = faults.FaultPlan.parse(spec)
    except ValueError as exc:
        print(f"--inject-faults: {exc}", file=sys.stderr)
        return 2
    if args.events:
        events = Path(args.events)
        events.parent.mkdir(parents=True, exist_ok=True)
        events.write_text("")  # fresh event log per chaos run
        spec = f"{spec};log={events}"
    return plan, spec


def _event_summary(events_path) -> str:
    """Per-site fired-fault counts from an event log, for the summary line."""
    counts: dict[str, int] = {}
    try:
        lines = Path(events_path).read_text().splitlines()
    except OSError:
        return ""
    for line in lines:
        try:
            site = json.loads(line).get("site")
        except (json.JSONDecodeError, AttributeError):
            continue
        if site:
            counts[site] = counts.get(site, 0) + 1
    return ", ".join(f"{site}: {counts[site]}" for site in sorted(counts))


# ---------------------------------------------------------------------- #
# chaos suite
# ---------------------------------------------------------------------- #
def run_chaos_suite(args) -> int:
    """Faulty suite run -> clean serial run -> byte-compare the artifacts."""
    from repro.batch import run_suite
    from repro.orderings.registry import PAPER_ALGORITHMS

    prepared = _prepare_spec(args)
    if isinstance(prepared, int):
        return prepared
    plan, spec = prepared

    problems = list(args.problems) or list(_DEFAULT_PROBLEMS)
    algorithms = (tuple(args.algorithms.split(","))
                  if args.algorithms else PAPER_ALGORITHMS)
    print(f"chaos suite: injecting {plan.describe()}", file=sys.stderr)
    print(f"chaos suite: {len(problems)} problem(s) x {len(algorithms)} "
          f"algorithm(s), jobs={args.jobs}, retry-crashes={args.retry_crashes}, "
          f"retry-timeouts={args.retry_timeouts}", file=sys.stderr)

    # Per-attempt records as they stream in, including superseded ones —
    # this is the count of faults the retry machinery absorbed.
    absorbed = {"crashed": 0, "timeout": 0}

    def on_record(record, done, total):
        if record.status == "timeout":
            absorbed["timeout"] += 1
        elif (record.error or {}).get("type") == "WorkerCrashed":
            absorbed["crashed"] += 1

    os.environ[_SPEC_ENV] = spec
    faults.reset_fault_plan()
    faults.protect_current_process()  # the coordinator observes, never dies
    try:
        faulty = run_suite(
            problems,
            algorithms,
            scale=args.scale,
            n_jobs=args.jobs,
            base_seed=args.seed,
            timeout=args.timeout,
            retry_timeouts=args.retry_timeouts,
            retry_crashes=args.retry_crashes,
            crash_backoff_s=args.retry_backoff,
            on_record=on_record,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        os.environ.pop(_SPEC_ENV, None)
        faults.reset_fault_plan()

    print(f"chaos suite: faulty run done in {faulty.wall_time_s:.2f} s — "
          f"{absorbed['crashed']} crash(es) and {absorbed['timeout']} "
          f"timeout(s) absorbed by retries", file=sys.stderr)
    if args.events:
        fired = _event_summary(args.events)
        if fired:
            print(f"chaos suite: faults fired — {fired}", file=sys.stderr)

    # The ground truth: the same suite, serial, no faults, no retries.
    clean = run_suite(problems, algorithms, scale=args.scale, n_jobs=1,
                      base_seed=args.seed)

    faulty_canonical = faulty.to_json(include_timing=False)
    clean_canonical = clean.to_json(include_timing=False)
    if args.output:
        from repro.utils.atomic import atomic_write_text

        atomic_write_text(Path(args.output), faulty_canonical)
        print(f"chaos suite: canonical artifact written to {args.output}",
              file=sys.stderr)

    if faulty_canonical != clean_canonical:
        differences = clean.diff(faulty)
        print(f"chaos suite: FAILED — canonical artifact differs from the "
              f"fault-free run ({len(differences)} difference(s)):",
              file=sys.stderr)
        for line in differences[:20]:
            print(f"  {line}", file=sys.stderr)
        if len(differences) > 20:
            print(f"  ... and {len(differences) - 20} more", file=sys.stderr)
        return 1

    survivors = [r for r in faulty.records if not r.ok]
    if survivors:
        # Identical artifacts containing non-ok records means the *clean*
        # run failed too — a real bug, not an injection artifact.
        print(f"chaos suite: FAILED — {len(survivors)} cell(s) not ok even "
              f"without faults", file=sys.stderr)
        return 1
    if not absorbed["crashed"] and not absorbed["timeout"]:
        print("chaos suite: warning — no fault was absorbed (rates too low "
              "for this suite?); the identity check was vacuous",
              file=sys.stderr)
    print(f"chaos suite: OK — final artifact byte-identical to the "
          f"fault-free run ({len(faulty.records)} record(s))")
    return 0


# ---------------------------------------------------------------------- #
# chaos serve
# ---------------------------------------------------------------------- #
_BOOT_RE = re.compile(r"listening on http://([\d.]+):(\d+)")


def _boot_server(cmd) -> "tuple[subprocess.Popen, str]":
    """Start a ``repro serve`` subprocess, return it and its base URL."""
    process = subprocess.Popen(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True
    )
    deadline = time.monotonic() + 60.0
    lines = []
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        lines.append(line.rstrip())
        match = _BOOT_RE.search(line)
        if match:
            return process, f"http://{match.group(1)}:{match.group(2)}"
    process.kill()
    process.wait()
    boot_log = "\n".join(lines) or "<no output>"
    raise RuntimeError(f"server failed to boot:\n{boot_log}")


def _soak_request(client, payload, *, retries, backoff_s):
    """One soak cell: keep asking until the server answers ``ok``.

    ``order_with_retries`` already absorbs 429/503/connection failures; this
    outer loop additionally re-asks after a 5xx *answer* (a worker crash or
    timeout surfaced as a structured record) — a fresh request is a fresh
    computation with a fresh fault draw, so under any crash rate < 1 it
    converges.  Returns ``(record, attempts)``.
    """
    from repro.serve.client import ServerError

    last_error = None
    for attempt in range(retries + 1):
        try:
            body = client.order_with_retries(
                payload, retries=retries, backoff_s=backoff_s, max_backoff_s=5.0
            )
        except ServerError as exc:  # a non-retryable answer (e.g. 500 crash)
            last_error = exc
            continue
        except OSError as exc:  # dropped response after client retries ran out
            last_error = exc
            continue
        record = body.get("record") or {}
        if record.get("status") == "ok":
            return record, attempt + 1
        last_error = RuntimeError(f"non-ok record: {record.get('status')}")
    raise RuntimeError(
        f"cell {payload['problem']}/{payload['algorithm']} never answered ok "
        f"after {retries + 1} request round(s): {last_error}"
    )


def run_chaos_serve(args) -> int:
    """Soak a faulty ``repro serve`` subprocess, then prove graceful drain."""
    from repro.orderings.registry import PAPER_ALGORITHMS
    from repro.serve.client import ServerClient
    from repro.serve.jobs import JobJournal

    prepared = _prepare_spec(args)
    if isinstance(prepared, int):
        return prepared
    plan, spec = prepared

    problems = list(args.problems) or list(_DEFAULT_PROBLEMS)
    algorithms = (tuple(args.algorithms.split(","))
                  if args.algorithms else PAPER_ALGORITHMS)
    print(f"chaos serve: injecting {plan.describe()}", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
        journal = Path(args.journal) if args.journal else Path(scratch) / "journal.jsonl"
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--workers", str(args.workers),
            "--timeout", "60",
            "--journal", str(journal),
            "--inject-faults", spec,
            "--breaker-threshold", str(args.breaker_threshold),
            "--breaker-cooldown", str(args.breaker_cooldown),
            "--drain-grace", str(args.drain_grace),
        ]
        process, base_url = _boot_server(cmd)
        client = ServerClient(base_url, timeout=30.0)
        exit_code = 1
        try:
            exit_code = _run_soak(args, client, process, problems, algorithms,
                                  journal, JobJournal)
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
            process.wait()
        return exit_code


def _run_soak(args, client, process, problems, algorithms, journal,
              journal_cls) -> int:
    """The soak + drain body; the caller guarantees process cleanup."""
    # -------------------------------------------------------------- soak
    cells = [(p, a) for p in problems for a in algorithms]
    canonical: dict[tuple, dict] = {}
    total_rounds = 0
    for index in range(args.requests):
        problem, algorithm = cells[index % len(cells)]
        payload = {"problem": problem, "algorithm": algorithm,
                   "scale": args.scale, "base_seed": 0}
        record, rounds = _soak_request(client, payload, retries=args.retries,
                                       backoff_s=args.retry_backoff)
        total_rounds += rounds
        record.pop("time_s", None)  # canonical form: timing-free
        cell = (problem, algorithm)
        if cell in canonical and canonical[cell] != record:
            print(f"chaos serve: FAILED — {problem}/{algorithm} answered "
                  f"different canonical records across repeats",
                  file=sys.stderr)
            return 1
        canonical[cell] = record
        if process.poll() is not None:
            print(f"chaos serve: FAILED — server died mid-soak "
                  f"(exit {process.returncode})", file=sys.stderr)
            return 1
    health = client.health()
    if health.get("status") not in ("ok", "degraded"):
        print(f"chaos serve: FAILED — unexpected health after soak: {health}",
              file=sys.stderr)
        return 1
    stats = client.stats()
    jobs_stats = stats.get("jobs", {})
    requests_stats = stats.get("requests", {})
    print(f"chaos serve: soak done — {args.requests} request(s) in "
          f"{total_rounds} round(s); server counters: "
          f"{requests_stats.get('total')} total, "
          f"{requests_stats.get('shed')} shed, "
          f"{requests_stats.get('breaker_rejected')} breaker-rejected, "
          f"{requests_stats.get('dropped_responses')} dropped response(s), "
          f"{jobs_stats.get('journaled')} journaled", file=sys.stderr)
    if args.events:
        fired = _event_summary(args.events)
        if fired:
            print(f"chaos serve: faults fired — {fired}", file=sys.stderr)
    journaled_before = int(jobs_stats.get("journaled") or 0)

    # ------------------------------------------------------- drain proof
    # Post a deliberately slow request, SIGTERM the server while it is in
    # flight, and require: exit code 0, the slow request answered, and a
    # clean journal (every admitted job recorded done, no torn tail).
    slow_result: dict = {}

    def slow_order():
        payload = {"problem": problems[0], "algorithm": algorithms[0],
                   "scale": args.scale, "base_seed": 0, "debug_delay_s": 1.0}
        try:
            status, _headers, body = client.request("POST", "/v1/order", payload)
            slow_result["status"] = status
            slow_result["body"] = body
        except OSError as exc:  # an injected http.drop eats the response
            slow_result["error"] = str(exc)

    thread = threading.Thread(target=slow_order, daemon=True)
    thread.start()
    time.sleep(0.3)  # let the slow request be admitted and start computing
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=args.drain_grace + 30.0)
    except subprocess.TimeoutExpired:
        print(f"chaos serve: FAILED — server did not exit within "
              f"{args.drain_grace + 30:.0f} s of SIGTERM", file=sys.stderr)
        return 1
    thread.join(timeout=10.0)
    if process.returncode != 0:
        print(f"chaos serve: FAILED — SIGTERM drain exited "
              f"{process.returncode}, want 0", file=sys.stderr)
        return 1

    replayed = journal_cls.replay(journal)
    not_done = [job for job in replayed if job.get("state") != "done"]
    if getattr(replayed, "skipped", 0):
        print(f"chaos serve: FAILED — journal replay skipped "
              f"{replayed.skipped} line(s) after a graceful drain",
              file=sys.stderr)
        return 1
    if not_done:
        print(f"chaos serve: FAILED — {len(not_done)} journaled job(s) never "
              f"finished", file=sys.stderr)
        return 1
    if "status" in slow_result:
        answered = True
    else:
        # The response bytes were dropped by an injected http.drop; the
        # journal is then the proof the server answered before exiting.
        answered = len(replayed) >= journaled_before + 1
    if not answered:
        print(f"chaos serve: FAILED — the in-flight request was not answered "
              f"before exit (client saw {slow_result.get('error')!r}, journal "
              f"has {len(replayed)} job(s), {journaled_before} pre-drain)",
              file=sys.stderr)
        return 1
    print(f"chaos serve: OK — {args.requests} request(s) converged, drain "
          f"answered the in-flight request and exited 0, journal replays "
          f"{len(replayed)} job(s) with 0 skipped")
    return 0
