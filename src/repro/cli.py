"""Command-line interface: ``python -m repro <command> ...``.

Four subcommands cover the workflows a downstream user of an envelope solver
actually runs:

``reorder``
    Read a matrix (Matrix Market or Harwell-Boeing), compute an
    envelope-reducing ordering, report the envelope statistics and optionally
    write the permutation and/or the reordered matrix to disk.

``compare``
    Run several ordering algorithms on a matrix (or on a named surrogate
    problem from the paper's test sets) and print a Table 4.1-style ranked
    comparison.

``spy``
    Print an ASCII structure plot of a matrix under a chosen ordering
    (the Figure 4.1-4.5 view).

``fiedler``
    Compute the second Laplacian eigenvalue/eigenvector (algebraic
    connectivity) of a matrix and print solver diagnostics.

All commands accept either a file path or ``problem:NAME[@SCALE]`` to use one
of the registered synthetic surrogates, e.g. ``problem:BARTH4@0.05``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.runner import run_comparison
from repro.analysis.spy import ascii_spy, band_profile
from repro.collections.registry import available_problems, load_problem
from repro.core.pipeline import reorder
from repro.eigen.fiedler import FIEDLER_METHODS, fiedler_vector
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS
from repro.sparse.io_hb import read_harwell_boeing, write_harwell_boeing
from repro.sparse.io_mm import read_matrix_market, write_matrix_market
from repro.sparse.ops import permute_symmetric, structure_from_matrix

__all__ = ["main", "build_parser"]


def _load_input(source: str):
    """Load a matrix from a file path or a ``problem:NAME[@SCALE]`` reference.

    Returns ``(pattern, matrix_or_none, label)``: the structure, the
    values-carrying matrix when one exists (file inputs), and a display label.
    """
    if source.startswith("problem:"):
        reference = source[len("problem:") :]
        if "@" in reference:
            name, scale_text = reference.split("@", 1)
            scale = float(scale_text)
        else:
            name, scale = reference, None
        pattern, spec = load_problem(name, scale=scale)
        return pattern, None, f"{spec.name} surrogate (n={pattern.n})"
    lower = source.lower()
    if lower.endswith((".mtx", ".mm", ".mtx.gz")):
        matrix = read_matrix_market(source)
    elif lower.endswith((".rsa", ".psa", ".rua", ".pua", ".hb", ".rb")):
        matrix = read_harwell_boeing(source)
    else:
        # Try Matrix Market first, then Harwell-Boeing.
        try:
            matrix = read_matrix_market(source)
        except (ValueError, OSError):
            matrix = read_harwell_boeing(source)
    pattern = structure_from_matrix(matrix)
    return pattern, matrix, f"{source} (n={pattern.n})"


def _write_matrix(path: str, matrix) -> None:
    if path.lower().endswith((".rsa", ".psa", ".hb")):
        write_harwell_boeing(path, matrix)
    else:
        write_matrix_market(path, matrix)


def _cmd_reorder(args) -> int:
    pattern, matrix, label = _load_input(args.input)
    report = reorder(pattern, algorithm=args.algorithm, **_algorithm_options(args))
    stats_before, stats_after = report.original, report.statistics
    print(f"{label}: ordering algorithm = {args.algorithm}")
    print(f"  envelope size : {stats_before.envelope_size:,} -> {stats_after.envelope_size:,}")
    print(f"  envelope work : {stats_before.envelope_work:,} -> {stats_after.envelope_work:,}")
    print(f"  bandwidth     : {stats_before.bandwidth:,} -> {stats_after.bandwidth:,}")
    print(f"  ordering time : {report.run_time:.3f} s")
    if args.output_permutation:
        np.savetxt(args.output_permutation, report.ordering.perm, fmt="%d")
        print(f"  permutation written to {args.output_permutation}")
    if args.output_matrix:
        if matrix is None:
            matrix = pattern.to_scipy("pattern")
        _write_matrix(args.output_matrix, permute_symmetric(matrix, report.ordering.perm))
        print(f"  reordered matrix written to {args.output_matrix}")
    return 0


def _cmd_compare(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    algorithms = tuple(args.algorithms.split(",")) if args.algorithms else PAPER_ALGORITHMS
    unknown = [a for a in algorithms if a not in ORDERING_ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {unknown}; available: {sorted(ORDERING_ALGORITHMS)}",
              file=sys.stderr)
        return 2
    result = run_comparison(pattern, algorithms=algorithms, problem=label)
    print(format_table(result.rows, title=f"Ordering comparison — {label}"))
    print(f"\nSmallest envelope: {result.winner.upper()}")
    return 0


def _cmd_spy(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    perm = None
    if args.algorithm != "original":
        perm = ORDERING_ALGORITHMS[args.algorithm](pattern).perm
    profile = band_profile(pattern, perm)
    print(f"{label} — {args.algorithm.upper()} ordering")
    print(
        f"envelope={profile['envelope_size']:,}  bandwidth={profile['bandwidth']:,}  "
        f"mean row width={profile['mean_row_width']:.1f}"
    )
    print(ascii_spy(pattern, perm, resolution=args.resolution))
    return 0


def _cmd_fiedler(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    result = fiedler_vector(pattern, method=args.method, tol=args.tol)
    print(f"{label}")
    print(f"  method              : {result.method}")
    print(f"  algebraic connectivity (lambda_2): {result.eigenvalue:.6e}")
    print(f"  residual            : {result.residual_norm:.2e}")
    print(f"  converged           : {result.converged}")
    if args.output_vector:
        np.savetxt(args.output_vector, result.eigenvector)
        print(f"  eigenvector written to {args.output_vector}")
    return 0


def _cmd_problems(_args) -> int:
    print("Registered surrogate problems (use as problem:NAME[@SCALE]):")
    for table in ("4.1", "4.2", "4.3"):
        names = ", ".join(available_problems(table))
        print(f"  Table {table}: {names}")
    return 0


def _algorithm_options(args) -> dict:
    options = {}
    if getattr(args, "method", None) and args.algorithm in ("spectral", "hybrid"):
        options["method"] = args.method
    return options


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spectral envelope reduction of sparse matrices (Barnard, Pothen & Simon, SC'93)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reorder_parser = sub.add_parser("reorder", help="compute an envelope-reducing ordering")
    reorder_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    reorder_parser.add_argument(
        "--algorithm", default="spectral", choices=sorted(ORDERING_ALGORITHMS)
    )
    reorder_parser.add_argument("--method", default=None, choices=FIEDLER_METHODS,
                                help="eigensolver for the spectral/hybrid algorithms")
    reorder_parser.add_argument("--output-permutation", default=None,
                                help="write the new-to-old permutation to this file")
    reorder_parser.add_argument("--output-matrix", default=None,
                                help="write the reordered matrix (MatrixMarket or Harwell-Boeing)")
    reorder_parser.set_defaults(func=_cmd_reorder)

    compare_parser = sub.add_parser("compare", help="compare ordering algorithms (Table 4.x style)")
    compare_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    compare_parser.add_argument("--algorithms", default=None,
                                help="comma-separated list (default: spectral,gk,gps,rcm)")
    compare_parser.set_defaults(func=_cmd_compare)

    spy_parser = sub.add_parser("spy", help="ASCII structure plot under an ordering")
    spy_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    spy_parser.add_argument("--algorithm", default="original",
                            choices=["original"] + sorted(ORDERING_ALGORITHMS))
    spy_parser.add_argument("--resolution", type=int, default=48)
    spy_parser.set_defaults(func=_cmd_spy)

    fiedler_parser = sub.add_parser("fiedler", help="compute the Fiedler value/vector")
    fiedler_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    fiedler_parser.add_argument("--method", default="auto", choices=FIEDLER_METHODS)
    fiedler_parser.add_argument("--tol", type=float, default=1e-8)
    fiedler_parser.add_argument("--output-vector", default=None)
    fiedler_parser.set_defaults(func=_cmd_fiedler)

    problems_parser = sub.add_parser("problems", help="list the registered surrogate problems")
    problems_parser.set_defaults(func=_cmd_problems)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
