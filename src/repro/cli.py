"""Command-line interface: ``python -m repro <command> ...``.

The subcommands cover the workflows a downstream user of an envelope solver
actually runs (full reference: ``docs/running.md``):

``reorder``
    Read a matrix (Matrix Market or Harwell-Boeing), compute an
    envelope-reducing ordering, report the envelope statistics and optionally
    write the permutation and/or the reordered matrix to disk.

``compare``
    Run several ordering algorithms on a matrix (or on a named surrogate
    problem from the paper's test sets) and print a Table 4.1-style ranked
    comparison.

``suite``
    Drive the whole ``problems x algorithms`` cross-product through the
    parallel batch engine (:mod:`repro.batch`), e.g.::

        repro suite --jobs 4 --output results.json
        repro suite POW9 BARTH4 --algorithms rcm,spectral --scale 0.05 \\
            --baseline results.json
        repro suite --shard 2/3 --balance cost --cost-model costs.json \\
            --timeout 120 --retry-timeouts 2 \\
            --stream-output shard2.jsonl --output shard2.json

    ``--output`` saves a versioned JSON artifact (see
    :mod:`repro.batch.results` for the schema); ``--baseline`` diffs the run
    against a saved artifact, ignoring timing fields, and exits nonzero on
    drift.  ``--shard K/N`` runs the k-th of N disjoint slices (one machine
    each) — round-robin by default, or balanced on estimated per-cell cost
    with ``--balance cost`` (see :mod:`repro.batch.sched`).  ``--timeout``
    bounds every task, ``--retry-timeouts`` re-runs timed-out cells with
    escalating limits, and ``--stream-output`` / ``--resume`` make a killed
    run restartable from its JSONL record stream.

``merge``
    Recombine the shard artifacts of a distributed suite run::

        repro merge shard1.json shard2.json shard3.json --output full.json
        repro merge shard1.jsonl shard2.json --output full.json

    Validates schema versions, specification compatibility and
    duplicate/missing cells; the merged artifact is byte-identical in
    canonical form to a single-machine run.  ``.jsonl`` stream files are
    accepted alongside JSON artifacts, with retried cells deduped to the
    final attempt.

``bench``
    Run the pinned perf micro-suite and write a versioned ``BENCH_<rev>.json``
    artifact (per-kernel and per-cell wall times, machine info)::

        repro bench --output BENCH_abc1234.json
        repro bench --against BENCH_abc1234.json   # rerun + diff; exit 1 on
                                                   # perf regressions
        repro bench --quick                        # CI smoke variant
        repro bench --export-cost-model costs.json # also fit a scheduler
                                                   # cost model from the run

    See ``docs/performance.md`` for the artifact schema and how to read a
    regression diff.

``cache``
    Inspect and manage the persistent artifact store shared by ``suite`` and
    ``bench`` runs (``--store DIR`` or the ``REPRO_STORE`` environment
    variable)::

        repro cache ls --store ./cache           # one row per entry
        repro cache info --store ./cache --json  # per-kind counts and bytes
        repro cache prewarm POW9 --store ./cache # build + store ahead of time
        repro cache clear --store ./cache        # delete every entry

    The store is pure: warm-from-disk results are byte-identical to cold,
    and corrupt or stale entries read back as misses (see
    ``docs/performance.md`` for the content-addressing scheme).

``serve``
    Run the resident ordering-as-a-service HTTP/JSON API (see
    ``docs/serving.md``)::

        repro serve --port 8741 --workers 4 --queue-depth 16 \\
            --timeout 120 --store ./cache --journal jobs.jsonl

    Requests coalesce when identical, the queue is bounded (429 +
    ``Retry-After`` past ``--queue-depth``), every cell gets the per-task
    timeout treatment of the batch engine, and ``--store`` keeps warm
    requests near cache speed across worker processes and restarts.

``order``
    Request one ordering — from a running server (``--server URL``) or, as
    a fallback, computed in-process through the identical single-cell
    core::

        repro order problem:POW9@0.05 --algorithm rcm \\
            --server http://127.0.0.1:8741
        repro order matrix.mtx --algorithm spectral --json

    Both paths produce byte-identical canonical records for the same
    input, seed and algorithm — the server is the same engine, resident.

``chaos``
    Run the suite or a live server soak under deterministic fault
    injection (:mod:`repro.faults`) and assert the resilience invariants
    (see ``docs/robustness.md``)::

        repro chaos suite --inject-faults "seed=7;worker.crash@0.25,point=start"
        repro chaos serve --requests 12 --inject-faults "seed=7;worker.crash@0.2"

    ``chaos suite`` requires the faulty run's canonical artifact to be
    byte-identical to a fault-free serial run; ``chaos serve`` soaks a real
    server subprocess and proves the SIGTERM graceful drain.

``spy``
    Print an ASCII structure plot of a matrix under a chosen ordering
    (the Figure 4.1-4.5 view).

``fiedler``
    Compute the second Laplacian eigenvalue/eigenvector (algebraic
    connectivity) of a matrix and print solver diagnostics.

All commands accept either a file path or ``problem:NAME[@SCALE]`` to use one
of the registered synthetic surrogates, e.g. ``problem:BARTH4@0.05``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.runner import run_comparison
from repro.batch import (
    CostModel,
    SchemaVersionError,
    StreamWriter,
    SuiteResult,
    TruncatedStreamError,
    build_tasks,
    dedupe_records,
    merge_results,
    parse_shard,
    plan_shards,
    read_stream,
    run_suite,
    stream_header,
    suite_from_stream,
    validate_stream_header,
)
from repro.utils.atomic import atomic_write_text
from repro.analysis.spy import ascii_spy, band_profile
from repro.collections.registry import (
    UnknownProblemError,
    available_problems,
    load_problem,
    resolve_problems,
)
from repro.core.pipeline import reorder
from repro.eigen.fiedler import FIEDLER_METHODS, fiedler_vector
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS
from repro.sparse.io_hb import read_harwell_boeing, write_harwell_boeing
from repro.sparse.io_mm import read_matrix_market, write_matrix_market
from repro.sparse.ops import permute_symmetric, structure_from_matrix

__all__ = ["main", "build_parser"]


def _load_input(source: str):
    """Load a matrix from a file path or a ``problem:NAME[@SCALE]`` reference.

    Returns ``(pattern, matrix_or_none, label)``: the structure, the
    values-carrying matrix when one exists (file inputs), and a display label.
    """
    if source.startswith("problem:"):
        reference = source[len("problem:") :]
        if "@" in reference:
            name, scale_text = reference.split("@", 1)
            scale = float(scale_text)
        else:
            name, scale = reference, None
        pattern, spec = load_problem(name, scale=scale)
        return pattern, None, f"{spec.name} surrogate (n={pattern.n})"
    lower = source.lower()
    if lower.endswith((".mtx", ".mm", ".mtx.gz")):
        matrix = read_matrix_market(source)
    elif lower.endswith((".rsa", ".psa", ".rua", ".pua", ".hb", ".rb")):
        matrix = read_harwell_boeing(source)
    else:
        # Try Matrix Market first, then Harwell-Boeing.
        try:
            matrix = read_matrix_market(source)
        except (ValueError, OSError):
            matrix = read_harwell_boeing(source)
    pattern = structure_from_matrix(matrix)
    return pattern, matrix, f"{source} (n={pattern.n})"


def _write_matrix(path: str, matrix) -> None:
    if path.lower().endswith((".rsa", ".psa", ".hb")):
        write_harwell_boeing(path, matrix)
    else:
        write_matrix_market(path, matrix)


def _cmd_reorder(args) -> int:
    pattern, matrix, label = _load_input(args.input)
    report = reorder(pattern, algorithm=args.algorithm, **_algorithm_options(args))
    stats_before, stats_after = report.original, report.statistics
    print(f"{label}: ordering algorithm = {args.algorithm}")
    print(f"  envelope size : {stats_before.envelope_size:,} -> {stats_after.envelope_size:,}")
    print(f"  envelope work : {stats_before.envelope_work:,} -> {stats_after.envelope_work:,}")
    print(f"  bandwidth     : {stats_before.bandwidth:,} -> {stats_after.bandwidth:,}")
    print(f"  ordering time : {report.run_time:.3f} s")
    if args.output_permutation:
        np.savetxt(args.output_permutation, report.ordering.perm, fmt="%d")
        print(f"  permutation written to {args.output_permutation}")
    if args.output_matrix:
        if matrix is None:
            matrix = pattern.to_scipy("pattern")
        _write_matrix(args.output_matrix, permute_symmetric(matrix, report.ordering.perm))
        print(f"  reordered matrix written to {args.output_matrix}")
    return 0


def _cmd_compare(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    algorithms = tuple(args.algorithms.split(",")) if args.algorithms else PAPER_ALGORITHMS
    unknown = [a for a in algorithms if a not in ORDERING_ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {unknown}; available: {sorted(ORDERING_ALGORITHMS)}",
              file=sys.stderr)
        return 2
    result = run_comparison(pattern, algorithms=algorithms, problem=label)
    print(format_table(result.rows, title=f"Ordering comparison — {label}"))
    print(f"\nSmallest envelope: {result.winner.upper()}")
    return 0


class _ProgressLine:
    """Live per-task progress on stderr: an updating ``\\r`` line on a TTY,
    one line per completed task otherwise."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self.is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._width = 0

    def update(self, record, done: int, total: int) -> None:
        line = (
            f"[{done}/{total}] {record.problem}/{record.algorithm}: "
            f"{record.status} ({record.time_s:.2f} s)"
        )
        if self.is_tty:
            padding = " " * max(0, self._width - len(line))
            self._width = len(line)
            self.stream.write(f"\r{line}{padding}")
            self.stream.flush()
        else:
            print(line, file=self.stream)

    def finish(self) -> None:
        if self.is_tty and self._width:
            self.stream.write("\n")
            self.stream.flush()
            self._width = 0


def _load_artifact(path: str, role: str) -> "SuiteResult | int":
    """Load a results artifact for the CLI, or return exit code 2.

    The three failure modes get distinct messages: an unreadable file, a
    file that is not a results artifact at all, and a results artifact whose
    schema version this build cannot read.
    """
    try:
        return SuiteResult.load(path)
    except SchemaVersionError as exc:
        print(f"{role} {path}: results-schema mismatch: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read {role} file {path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"{role} {path} is not a valid results artifact: {exc}", file=sys.stderr)
        return 2


def _activate_store(store_arg):
    """Resolve the persistent artifact store for a run, or ``None``.

    ``--store DIR`` is exported as ``REPRO_STORE`` (not just set in-process)
    so that suite worker processes inherit it and share the same cache
    directory; without the flag, an inherited ``REPRO_STORE`` still applies.
    """
    import os

    if store_arg:
        os.environ["REPRO_STORE"] = str(Path(store_arg))
    from repro.store import get_default_store

    return get_default_store()


def _store_stats_line(store) -> str:
    """One summary line of this process's store traffic (CI greps it)."""
    stats = store.stats
    line = (f"store {store.root}: {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es), {stats['writes']} write(s), "
            f"{stats['corrupt']} corrupt evicted")
    if stats.get("quarantined"):
        line += f" ({stats['quarantined']} quarantined)"
    return line


def _activate_faults(spec_arg) -> "int | None":
    """Validate and activate ``--inject-faults SPEC``, or return exit code 2.

    The spec is exported as ``REPRO_FAULTS`` so worker processes inherit it,
    and the current process is protected from process-fatal sites (crash,
    hang) — a coordinator must observe worker deaths, not die of them.
    """
    if not spec_arg:
        return None
    import os

    from repro import faults

    try:
        plan = faults.FaultPlan.parse(spec_arg)
    except ValueError as exc:
        print(f"--inject-faults: {exc}", file=sys.stderr)
        return 2
    os.environ["REPRO_FAULTS"] = str(spec_arg)
    faults.reset_fault_plan()
    faults.protect_current_process()
    print(f"fault injection active: {plan.describe()}", file=sys.stderr)
    return None


def _activate_backend(backend_arg) -> "int | None":
    """Validate and activate ``--backend NAME``, or return exit code 2.

    The choice is exported as ``REPRO_BACKEND`` so suite worker processes
    inherit it (same pattern as ``REPRO_STORE`` / ``REPRO_FAULTS``).  An
    explicit request for an unavailable tier (``--backend numba`` without
    numba installed) is rejected up front with a structured message —
    in-process dispatch would otherwise silently fall back per kernel,
    which is the right behavior for an *inherited* environment variable
    but not for a flag the user just typed.
    """
    import os

    from repro import backends

    if backend_arg is None:
        # No flag: an inherited REPRO_BACKEND still applies; validate it the
        # same way so a typo'd explicit tier fails loudly here rather than
        # being silently treated as auto inside workers.
        inherited = os.environ.get("REPRO_BACKEND", "").strip().lower()
        if inherited and inherited in backends.REQUESTABLE:
            try:
                backends.require_backend(inherited)
            except backends.BackendUnavailableError as exc:
                print(f"REPRO_BACKEND: {exc}", file=sys.stderr)
                return 2
        return None
    try:
        choice = backends.require_backend(backend_arg)
    except ValueError as exc:
        print(f"--backend: {exc}", file=sys.stderr)
        return 2
    except backends.BackendUnavailableError as exc:
        print(f"--backend: {exc}", file=sys.stderr)
        return 2
    os.environ["REPRO_BACKEND"] = choice
    backends.set_backend(choice)
    if choice != "auto":
        print(f"kernel backend: {choice}", file=sys.stderr)
    return None


def _cmd_suite(args) -> int:
    failed_backend = _activate_backend(args.backend)
    if failed_backend is not None:
        return failed_backend
    store = _activate_store(args.store)
    failed_faults = _activate_faults(args.inject_faults)
    if failed_faults is not None:
        return failed_faults
    if args.table and args.problems:
        print("give either problem names or --table, not both", file=sys.stderr)
        return 2
    if args.table:
        problems = available_problems(args.table, paper_order=True)
    elif args.problems:
        # Names or fnmatch globs ('RANDOM/*', 'BCSSTK?[13]'); an unknown name
        # raises UnknownProblemError, which main() turns into exit code 2.
        problems = resolve_problems(args.problems)
    else:
        problems = available_problems()
    algorithms = tuple(args.algorithms.split(",")) if args.algorithms else PAPER_ALGORITHMS

    shard = None
    if args.shard:
        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2

    if args.retry_timeouts and args.timeout is None:
        print("--retry-timeouts needs --timeout (nothing can time out without "
              "a per-task limit)", file=sys.stderr)
        return 2

    timeout_auto = isinstance(args.timeout, str) and args.timeout.strip().lower() == "auto"
    timeout: "float | None" = None
    if args.timeout is not None and not timeout_auto:
        try:
            timeout = float(args.timeout)
        except ValueError:
            print(f"--timeout must be a number of seconds or 'auto', got "
                  f"{args.timeout!r}", file=sys.stderr)
            return 2

    cost_model = None
    if args.cost_model:
        try:
            cost_model = CostModel.from_file(args.cost_model)
        except OSError as exc:
            print(f"cannot read cost-model file {args.cost_model}: {exc}",
                  file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"cost model {args.cost_model}: {exc}", file=sys.stderr)
            return 2
    if args.balance == "cost" and cost_model is None:
        # No prior timings: the pure n*nnz fallback estimator still beats
        # round-robin on mixed-cost suites and stays deterministic.
        cost_model = CostModel()

    if timeout_auto:
        # Cost-model-derived per-cell limits: estimate x safety factor with a
        # 1 s floor; paper cells the model never directly observed get no
        # limit, while the analytic RANDOM/* families are always bounded.
        from repro.batch import auto_timeout

        auto_model = cost_model or CostModel()
        timeout = auto_timeout(auto_model)
        if len(auto_model) == 0:
            detail = (f"the cost model {args.cost_model} holds no usable timings"
                      if args.cost_model else "no cost model given (use --cost-model)")
            print(f"--timeout auto: {detail}; only analytic-size problems "
                  f"(RANDOM/*) get limits", file=sys.stderr)

    algorithm_options = None
    if args.fiedler_policy == "fast":
        # The rank-stability fast path of the spectral solvers; combinatorial
        # algorithms are unaffected.
        algorithm_options = {"spectral": {"tol_policy": "ordering"},
                             "hybrid": {"tol_policy": "ordering"}}

    normalized = [str(name).strip().upper() for name in problems]
    total_tasks = len(normalized) * len(algorithms)
    if shard is not None:
        index, count = shard
        if args.balance == "cost":
            try:
                full_tasks = build_tasks(normalized, algorithms,
                                         scale=args.scale, base_seed=args.seed)
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            plan = plan_shards(full_tasks, count, cost_model)
            total_tasks = len(plan.shards[index - 1])
            print(f"cost balance ({plan.strategy} plan, "
                  f"{len(cost_model)} observation(s)): shard {index}/{count} gets "
                  f"{total_tasks} of {len(full_tasks)} task(s); estimated "
                  f"makespan {plan.makespan:.2f} s vs round-robin "
                  f"{plan.round_robin_makespan:.2f} s", file=sys.stderr)
        else:
            total_tasks = len(range(index - 1, total_tasks, count))
    expected_header = stream_header(
        normalized,
        list(algorithms),
        scale=args.scale,
        base_seed=args.seed,
        shard=shard,
        total_tasks=total_tasks,
        # The header pins how the *slice* was chosen, not the dispatch
        # flags: without --shard there is no slice selection, and plain
        # dispatch ordering never changes which cells run, so an unsharded
        # stream stays resumable whatever --balance/--cost-model say.
        balance=args.balance if shard is not None else "roundrobin",
        cost_fingerprint=(cost_model.fingerprint()
                          if shard is not None and args.balance == "cost"
                          else None),
    )

    stream_path = Path(args.stream_output) if args.stream_output else None
    resume_path = Path(args.resume) if args.resume else None
    completed = []
    if resume_path is not None:
        if not resume_path.exists() and resume_path == stream_path:
            # Idempotent first run: --resume pointing at the sink that does
            # not exist yet simply starts fresh.
            print(f"resume file {resume_path} not found; starting fresh",
                  file=sys.stderr)
        else:
            header = None
            try:
                header, completed = read_stream(resume_path)
            except OSError as exc:
                print(f"cannot read resume file {resume_path}: {exc}", file=sys.stderr)
                return 2
            except TruncatedStreamError as exc:
                # A run killed during its very first (header) write: no
                # records exist, so nothing is lost by starting fresh.
                print(f"{exc}", file=sys.stderr)
                completed = []
            except ValueError as exc:
                print(exc, file=sys.stderr)
                return 2
            if header is not None:
                try:
                    validate_stream_header(header, expected_header)
                except ValueError as exc:
                    print(f"cannot resume from {resume_path}: {exc}", file=sys.stderr)
                    return 2
                # Retried cells appear several times in an escalated stream;
                # only the final attempt counts (supersede semantics).
                completed = dedupe_records(completed)
                # Timeout records are machine/limit artifacts, not results:
                # retry those cells (possibly under a new --timeout) instead of
                # carrying the timeout forward.
                retry = [r for r in completed if r.timed_out]
                if retry:
                    completed = [r for r in completed if not r.timed_out]
                    print(f"retrying {len(retry)} timed-out cell(s) from {resume_path}",
                          file=sys.stderr)

    writer = None
    append = bool(completed) and resume_path == stream_path
    if stream_path is not None:
        writer = StreamWriter(stream_path, expected_header, append=append)
    progress = None
    if args.progress or (args.progress is None and sys.stderr.isatty()):
        progress = _ProgressLine()

    # run_suite replays reused records through on_record first; when
    # appending to the very file they came from, don't write them twice.
    skip_writes = {"remaining": len(completed) if append else 0}

    def on_record(record, done, total):
        if progress is not None:
            progress.update(record, done, total)
        if writer is not None:
            if skip_writes["remaining"] > 0:
                skip_writes["remaining"] -= 1
            else:
                writer.write_record(record)

    try:
        suite = run_suite(
            problems,
            algorithms,
            scale=args.scale,
            n_jobs=args.jobs,
            base_seed=args.seed,
            algorithm_options=algorithm_options,
            shard=shard,
            balance=args.balance,
            cost_model=cost_model,
            timeout=timeout,
            retry_timeouts=args.retry_timeouts,
            timeout_growth=args.timeout_growth,
            retry_crashes=args.retry_crashes,
            crash_backoff_s=args.retry_backoff,
            completed=completed,
            on_record=on_record,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    finally:
        if progress is not None:
            progress.finish()
        if writer is not None:
            writer.close()

    print(suite.to_text())
    ok, failed = len(suite.ok_records), len(suite.failures)
    timed_out = len(suite.timeouts)
    crashed = sum(1 for r in suite.records
                  if (r.error or {}).get("type") == "WorkerCrashed")
    shard_label = f" (shard {shard[0]}/{shard[1]})" if shard else ""
    summary = (
        f"\n{ok + failed} task(s){shard_label} in {suite.wall_time_s:.2f} s "
        f"with {suite.n_jobs} job(s): {ok} ok, {failed} failed"
    )
    if timed_out:
        summary += f" ({timed_out} timed out)"
    if crashed:
        summary += f" ({crashed} crashed)"
    if completed:
        summary += f"; {len(completed)} reused from {resume_path}"
    print(summary)
    if store is not None:
        # Per-process counters: with --jobs > 1 the workers' hits/writes
        # accrue in the worker processes, not here.
        print(_store_stats_line(store))
    if args.output:
        suite.save(args.output)
        print(f"results written to {args.output}")
    if args.baseline:
        baseline = _load_artifact(args.baseline, "baseline")
        if isinstance(baseline, int):
            return baseline
        differences = baseline.diff(suite)
        if differences:
            print(f"{len(differences)} difference(s) vs baseline {args.baseline}:",
                  file=sys.stderr)
            for line in differences:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"matches baseline {args.baseline} (timing fields excluded)")
    return 1 if suite.failures else 0


def _load_stream_input(path: str, *, allow_partial: bool = False) -> "SuiteResult | int":
    """Load a JSONL stream file as a merge input, or return exit code 2.

    Retried cells (timeout records superseded by a later attempt) are
    deduped to the final attempt, so a stream written under
    ``--retry-timeouts`` merges cleanly.  With ``allow_partial`` a stream
    damaged mid-file (a torn shard, an injected ``store.torn``) loads
    anyway: the unreadable lines are dropped, counted, and warned about.
    """
    try:
        suite = suite_from_stream(path, allow_partial=allow_partial)
        if suite.partial:
            dropped = suite.partial.get("dropped_lines", 0)
            print(f"warning: shard stream {path}: dropped {dropped} "
                  f"damaged line(s) (--allow-partial)", file=sys.stderr)
        return suite
    except SchemaVersionError as exc:
        print(f"shard stream {path}: results-schema mismatch: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot read shard stream file {path}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"shard stream {path} is not a valid stream file: {exc}", file=sys.stderr)
        return 2


def _load_merge_input(path: str, *, allow_partial: bool = False) -> "SuiteResult | int":
    """Load one merge input — artifact or stream, detected by content.

    A stream is whatever is not a single JSON document, or whose single
    document is a stream header (a run killed before its first record) —
    the same sniffing :meth:`CostModel.from_file` uses, so any file the
    suite wrote merges regardless of its extension.
    """
    import json

    try:
        text = Path(path).read_text()
    except OSError as exc:
        print(f"cannot read shard artifact file {path}: {exc}", file=sys.stderr)
        return 2
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if payload is None or (isinstance(payload, dict) and payload.get("kind") == "header"):
        return _load_stream_input(path, allow_partial=allow_partial)
    return _load_artifact(path, "shard artifact")


def _cmd_merge(args) -> int:
    suites = []
    for path in args.inputs:
        suite = _load_merge_input(path, allow_partial=args.allow_partial)
        if isinstance(suite, int):
            return suite
        suites.append(suite)
    try:
        merged = merge_results(suites, allow_missing=args.allow_partial)
    except ValueError as exc:
        print(f"merge failed: {exc}", file=sys.stderr)
        return 2
    output = Path(args.output)
    atomic_write_text(output, merged.to_json(include_timing=not args.canonical))
    form = "canonical (timing-free)" if args.canonical else "full"
    print(
        f"merged {len(merged.records)} record(s) from {len(suites)} artifact(s) "
        f"into {output} ({form} form)"
    )
    if merged.partial:
        losses = ", ".join(f"{k}={v}" for k, v in sorted(merged.partial.items()))
        print(f"warning: merged artifact is partial ({losses}); rerun the "
              f"affected shards and merge again for a complete suite",
              file=sys.stderr)
    failed = len(merged.failures)
    if failed:
        print(f"warning: {failed} non-ok record(s) in the merged suite",
              file=sys.stderr)
    return 0


def _cmd_bench(args) -> int:
    from repro.bench import (
        bench_revision,
        default_artifact_path,
        diff_bench,
        format_diff,
        format_trend,
        load_bench,
        run_bench,
        save_bench,
        trend_bench,
    )

    if args.trend is not None:
        # Pure artifact analysis: no kernels run, no store or backend needed.
        if len(args.trend) < 2:
            print("--trend needs at least two bench artifacts", file=sys.stderr)
            return 2
        artifacts = []
        for path in args.trend:
            try:
                artifacts.append(load_bench(path))
            except OSError as exc:
                print(f"cannot read bench artifact {path}: {exc}", file=sys.stderr)
                return 2
            except ValueError as exc:
                print(str(exc), file=sys.stderr)
                return 2
        print(format_trend(trend_bench(artifacts)))
        return 0

    failed_backend = _activate_backend(args.backend)
    if failed_backend is not None:
        return failed_backend
    store = _activate_store(args.store)
    if args.repeats is not None and args.repeats < 1:
        print(f"--repeats must be a positive integer, got {args.repeats}",
              file=sys.stderr)
        return 2
    baseline = None
    if args.against:
        try:
            baseline = load_bench(args.against)
        except OSError as exc:
            print(f"cannot read baseline file {args.against}: {exc}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    def on_result(entry):
        print(f"  {entry['name']:<44} best {entry['best_s']:.4f} s "
              f"(mean {entry['mean_s']:.4f} s over {entry['repeats']})",
              file=sys.stderr)

    rev = bench_revision()
    mode = "quick" if args.quick else "full"
    print(f"repro bench ({mode} micro-suite, rev {rev})", file=sys.stderr)
    artifact = run_bench(
        quick=args.quick,
        repeats=args.repeats,
        name_filter=args.filter,
        include_suite=not args.no_suite,
        on_result=on_result,
        rev=rev,
        fiedler_policy=args.fiedler_policy,
    )
    output = Path(args.output) if args.output else default_artifact_path(rev)
    save_bench(artifact, output)
    print(f"bench artifact written to {output} "
          f"({len(artifact['kernels'])} kernels, {artifact['total_s']:.1f} s total)")
    if store is not None:
        print(_store_stats_line(store))

    if args.export_cost_model:
        model = CostModel()
        model.observe_bench(artifact)
        model.save(args.export_cost_model)
        print(f"cost model ({len(model)} observation(s)) written to "
              f"{args.export_cost_model} — feed it to "
              f"'repro suite --balance cost --cost-model {args.export_cost_model}'")

    if baseline is not None:
        diff = diff_bench(baseline, artifact, threshold=args.threshold)
        print(format_diff(diff))
        policies = diff["fiedler_policies"]
        if policies[0] != policies[1]:
            print(f"cannot gate: baseline was recorded with --fiedler-policy "
                  f"{policies[0]} but this run used {policies[1]} — the "
                  f"timings are not like-for-like (rerun with a matching "
                  f"policy or record a new baseline)", file=sys.stderr)
            return 2
        if args.gate == "geomean":
            floor = 1.0 / (1.0 + args.threshold)
            if diff["gate_geomean_speedup"] < floor:
                print(f"geomean gate failed: {diff['gate_geomean_speedup']:.2f}x "
                      f"< {floor:.2f}x (threshold {args.threshold:.0%})",
                      file=sys.stderr)
                return 1
        elif diff["regressions"]:
            return 1
    return 0


def _cmd_cache(args) -> int:
    from repro.store import ArtifactStore, set_default_store

    if args.store:
        store = ArtifactStore(args.store)
    else:
        store = _activate_store(None)
    if store is None:
        print("no store configured: pass --store DIR or set REPRO_STORE",
              file=sys.stderr)
        return 2

    if args.cache_command == "clear":
        removed = store.clear(include_quarantine=args.quarantine)
        scope = " (incl. quarantine)" if args.quarantine else ""
        print(f"cleared {removed} entr{'y' if removed == 1 else 'ies'} "
              f"from {store.root}{scope}")
        return 0

    if args.cache_command == "ls":
        rows = store.entries()
        if not rows:
            print(f"store {store.root}: empty")
            return 0
        print(f"{'KEY':<14} {'KIND':<12} {'VER':>3} {'BYTES':>10}  DIGEST")
        for row in rows:
            version = "?" if row["builder_version"] is None else row["builder_version"]
            print(f"{row['key'][:12]:<14} {row['kind']:<12} {version!s:>3} "
                  f"{row['bytes']:>10,}  {row['pattern_digest'][:12]}")
        print(f"{len(rows)} entr{'y' if len(rows) == 1 else 'ies'}")
        return 0

    if args.cache_command == "info":
        import json

        info = store.info()
        if args.json:
            print(json.dumps(info, indent=2, sort_keys=True))
            return 0
        print(f"store {info['root']} (schema v{info['store_schema']}): "
              f"{info['entries']} entr{'y' if info['entries'] == 1 else 'ies'}, "
              f"{info['bytes']:,} bytes")
        for kind in sorted(info["kinds"]):
            bucket = info["kinds"][kind]
            print(f"  {kind:<12} {bucket['entries']:>5} entr"
                  f"{'y' if bucket['entries'] == 1 else 'ies'} "
                  f"{bucket['bytes']:>12,} bytes")
        quarantine = info.get("quarantine") or {}
        if quarantine.get("entries"):
            print(f"  quarantine   {quarantine['entries']:>5} entr"
                  f"{'y' if quarantine['entries'] == 1 else 'ies'} "
                  f"{quarantine['bytes']:>12,} bytes "
                  f"(corrupt entries moved aside; "
                  f"'repro cache clear --quarantine' removes them)")
        return 0

    # prewarm: build each problem's structural plan into the store so a
    # later suite/bench run starts warm.  Fiedler/hierarchy entries key on
    # solver configuration and rng state, so they populate on first real use.
    from repro.eigen.workspace import spectral_workspace
    from repro.store import spectral as codecs

    names = args.problems or available_problems()
    set_default_store(store)
    failures = 0
    for name in names:
        try:
            pattern, spec = load_problem(name, scale=args.scale)
        except (KeyError, ValueError) as exc:
            print(f"  {name}: {exc}", file=sys.stderr)
            failures += 1
            continue
        try:
            codecs.save_pattern(store, spec.name, args.scale, pattern)
        except OSError as exc:
            print(f"cannot write to store {store.root}: {exc}", file=sys.stderr)
            return 2
        workspace = spectral_workspace(pattern)
        workspace.laplacian()
        workspace.components()
        workspace.component_split()
        # Per-component subpatterns carry their own workspaces; warm the
        # nontrivial ones too (they are what the spectral ordering solves).
        for _vertices, sub in workspace.component_split():
            if sub is not None and sub is not pattern:
                sub_ws = spectral_workspace(sub)
                sub_ws.laplacian()
                sub_ws.components()
        print(f"  {spec.name}: n={pattern.n} prewarmed "
              f"(pattern, laplacian, components, split)")
    print(_store_stats_line(store))
    return 1 if failures else 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.serve import ServeConfig

    failed_backend = _activate_backend(args.backend)
    if failed_backend is not None:
        return failed_backend
    _activate_store(args.store)
    failed_faults = _activate_faults(args.inject_faults)
    if failed_faults is not None:
        return failed_faults
    try:
        kwargs = {} if args.max_inline_n is None else {"max_inline_n": args.max_inline_n}
        config = ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_queue=args.queue_depth,
            timeout=args.timeout,
            worker_mode=args.worker_mode,
            journal=args.journal,
            retry_after_s=args.retry_after,
            read_timeout_s=args.read_timeout,
            allow_delay=not args.no_debug_delay,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_s=args.breaker_cooldown,
            drain_grace_s=args.drain_grace,
            **kwargs,
        )
        asyncio.run(_serve_main(config))
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"cannot serve on {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        pass
    return 0


async def _serve_main(config) -> None:
    import asyncio
    import signal as _signal

    from repro.serve import OrderingServer

    server = OrderingServer(config)
    await server.start()
    # The listening line is the boot handshake: tests and scripts that
    # start the server with --port 0 parse the real port out of it.
    print(f"repro serve: listening on http://{config.host}:{server.port} "
          f"(workers={config.workers}, queue-depth={config.max_queue}, "
          f"mode={config.worker_mode})", flush=True)
    if config.journal:
        print(f"repro serve: job journal at {config.journal} "
              f"({server.replayed_jobs} finished job(s) replayed, "
              f"{server.replay_skipped} line(s) skipped)", flush=True)
    loop = asyncio.get_running_loop()
    drain_handler = False
    try:
        # SIGTERM means graceful drain: stop admitting orders, answer
        # everything in flight, flush the journal, exit 0.  SIGINT keeps its
        # default KeyboardInterrupt (immediate stop for interactive use).
        loop.add_signal_handler(_signal.SIGTERM, server.begin_drain)
        drain_handler = True
    except (NotImplementedError, RuntimeError):
        pass  # platforms without loop signal handlers keep default SIGTERM
    try:
        await server.run_until_drained()
        print(f"repro serve: drained ({server.counters['computations']} "
              f"computation(s) served); exiting", flush=True)
    finally:
        if drain_handler:
            loop.remove_signal_handler(_signal.SIGTERM)
        await server.close()


def _order_request_payload(args) -> dict:
    """The ``/v1/order`` JSON document of one ``repro order`` invocation.

    ``problem:`` references travel as registry names (so the server's
    problem cache and coalescing see them); file inputs are loaded locally
    and travel as inline CSR — the exact structure, whatever the file
    format, so the server computes on identical input.
    """
    payload: dict = {
        "algorithm": args.algorithm,
        "base_seed": args.base_seed,
        "options": _algorithm_options(args),
        "include_permutation": True,
    }
    if args.timeout_s is not None:
        payload["timeout_s"] = args.timeout_s
    if args.input.startswith("problem:"):
        reference = args.input[len("problem:"):]
        if "@" in reference:
            name, scale_text = reference.split("@", 1)
            payload["scale"] = float(scale_text)
        else:
            name = reference
        payload["problem"] = name.strip().upper()
    else:
        pattern, _matrix, _label = _load_input(args.input)
        payload["csr"] = {
            "n": int(pattern.n),
            "indptr": [int(i) for i in pattern.indptr],
            "indices": [int(i) for i in pattern.indices],
        }
    return payload


def _order_result_json(record_dict: dict, permutation) -> str:
    import json

    return json.dumps({"record": record_dict, "permutation": permutation},
                      sort_keys=True)


def _print_order_result(record_dict: dict, source: str) -> None:
    metrics = record_dict.get("metrics") or {}
    print(f"{record_dict['problem']}: {record_dict['algorithm']} ordering "
          f"({source})")
    print(f"  status        : {record_dict['status']}")
    if record_dict["status"] == "ok":
        print(f"  n / nnz       : {record_dict['n']:,} / {record_dict['nnz']:,}")
        print(f"  envelope size : {metrics.get('envelope_size', 0):,}")
        print(f"  envelope work : {metrics.get('envelope_work', 0):,}")
        print(f"  bandwidth     : {metrics.get('bandwidth', 0):,}")
        if "time_s" in record_dict:
            print(f"  ordering time : {record_dict['time_s']:.3f} s")
    else:
        error = record_dict.get("error") or {}
        print(f"  error         : {error.get('type')}: {error.get('message')}")


def _cmd_order(args) -> int:
    import numpy as _np

    if args.server:
        from repro.serve import ServerClient, ServerError

        try:
            payload = _order_request_payload(args)
        except (OSError, ValueError) as exc:
            print(f"cannot load {args.input}: {exc}", file=sys.stderr)
            return 2
        client = ServerClient(args.server, timeout=args.client_timeout)
        try:
            if args.retries:
                response = client.order_with_retries(
                    payload, retries=args.retries, backoff_s=args.retry_backoff
                )
            else:
                response = client.order(payload)
        except ServerError as exc:
            print(exc, file=sys.stderr)
            return 1
        except OSError as exc:
            print(f"cannot reach server {args.server}: {exc}", file=sys.stderr)
            return 2
        record_dict = response["record"]
        permutation = response.get("permutation")
        source = f"server {args.server}"
    else:
        from repro.batch import build_task, execute_task
        from repro.serve import inline_label
        from repro.store.spectral import pattern_digest

        scale = None
        if args.input.startswith("problem:"):
            reference = args.input[len("problem:"):]
            name, _, scale_text = reference.partition("@")
            scale = float(scale_text) if scale_text else None
            label, pattern = name.strip().upper(), None
            registered = True
        else:
            try:
                pattern, _matrix, _label = _load_input(args.input)
            except (OSError, ValueError) as exc:
                print(f"cannot load {args.input}: {exc}", file=sys.stderr)
                return 2
            label, registered = inline_label(pattern_digest(pattern)), False
        try:
            task = build_task(label, args.algorithm, scale=scale,
                              options=_algorithm_options(args),
                              base_seed=args.base_seed,
                              check_problem=registered)
        except ValueError as exc:
            print(exc, file=sys.stderr)
            return 2
        record = execute_task(task, pattern=pattern)
        record_dict = record.to_dict(include_timing=True)
        permutation = ([int(p) for p in record.ordering.perm]
                       if record.ok and record.ordering is not None else None)
        source = "in-process"

    if args.json:
        print(_order_result_json(record_dict, permutation))
    else:
        _print_order_result(record_dict, source)
    if args.output_permutation and permutation is not None:
        _np.savetxt(args.output_permutation, _np.asarray(permutation), fmt="%d")
        if not args.json:
            print(f"  permutation written to {args.output_permutation}")
    return 0 if record_dict.get("status") == "ok" else 1


def _cmd_chaos(args) -> int:
    from repro import chaos

    if args.chaos_command == "suite":
        return chaos.run_chaos_suite(args)
    try:
        return chaos.run_chaos_serve(args)
    except RuntimeError as exc:
        print(f"chaos serve: {exc}", file=sys.stderr)
        return 1


def _cmd_spy(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    perm = None
    if args.algorithm != "original":
        perm = ORDERING_ALGORITHMS[args.algorithm](pattern).perm
    profile = band_profile(pattern, perm)
    print(f"{label} — {args.algorithm.upper()} ordering")
    print(
        f"envelope={profile['envelope_size']:,}  bandwidth={profile['bandwidth']:,}  "
        f"mean row width={profile['mean_row_width']:.1f}"
    )
    print(ascii_spy(pattern, perm, resolution=args.resolution))
    return 0


def _cmd_fiedler(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    result = fiedler_vector(pattern, method=args.method, tol=args.tol)
    print(f"{label}")
    print(f"  method              : {result.method}")
    print(f"  algebraic connectivity (lambda_2): {result.eigenvalue:.6e}")
    print(f"  residual            : {result.residual_norm:.2e}")
    print(f"  converged           : {result.converged}")
    if args.output_vector:
        np.savetxt(args.output_vector, result.eigenvector)
        print(f"  eigenvector written to {args.output_vector}")
    return 0


def _cmd_fetch(args) -> int:
    from repro.collections.external import fetch_url, ingest_file, suitesparse_url
    from repro.store.download import DownloadCache

    cache = DownloadCache(args.cache)
    if args.register and args.no_ingest:
        print("--register needs the ingest step; drop --no-ingest", file=sys.stderr)
        return 2
    try:
        url = args.ref if "://" in args.ref else suitesparse_url(args.ref, fmt=args.fmt)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    try:
        record = fetch_url(url, cache=cache, force=args.force)
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    except OSError as exc:  # URLError subclasses OSError
        print(f"cannot fetch {url}: {exc}", file=sys.stderr)
        return 1
    print(f"fetched {record['url']}")
    print(f"  cached: {record['path']}")
    print(f"  sha256: {record['sha256']}")
    print(f"  size:   {record['size']} bytes")
    if args.no_ingest:
        return 0
    try:
        pattern, meta = ingest_file(record["path"], filename=record["filename"])
    except (ValueError, OSError) as exc:
        print(f"cannot ingest {record['path']}: {exc}", file=sys.stderr)
        return 1
    print(f"  matrix: {meta['member']} ({meta['format']})")
    print(f"  n={pattern.n} nnz={pattern.nnz} max_degree={pattern.max_degree()}")
    if args.output:
        write_matrix_market(args.output, pattern.to_scipy(), field="pattern")
        print(f"  wrote pattern to {args.output}")
    if args.register:
        from repro.collections.external import register_external

        try:
            spec = register_external(
                args.register, pattern,
                meta={**meta, "source_url": record["url"],
                      "sha256": record["sha256"]},
            )
        except ValueError as exc:
            print(f"--register: {exc}", file=sys.stderr)
            return 2
        print(f"  registered as {spec.name} — run it with e.g. "
              f"\"repro suite '{spec.name}'\" or "
              f"\"repro reorder 'problem:{spec.name}'\"")
    return 0


def _cmd_problems(_args) -> int:
    print("Registered surrogate problems (use as problem:NAME[@SCALE]):")
    for table in ("4.1", "4.2", "4.3"):
        names = ", ".join(available_problems(table))
        print(f"  Table {table}: {names}")
    names = ", ".join(available_problems("random"))
    print(f"  Random families: {names}")
    external = available_problems("external")
    if external:
        print(f"  External (fetched): {', '.join(external)}")
    print("Suite problem arguments accept globs, e.g. repro suite 'RANDOM/*'.")
    print("External matrices: repro fetch Group/Name --register NAME "
          "(SuiteSparse collection) makes them suite problems as EXT/NAME.")
    return 0


def _algorithm_options(args) -> dict:
    options = {}
    if getattr(args, "method", None) and args.algorithm in ("spectral", "hybrid"):
        options["method"] = args.method
    return options


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spectral envelope reduction of sparse matrices (Barnard, Pothen & Simon, SC'93)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reorder_parser = sub.add_parser("reorder", help="compute an envelope-reducing ordering")
    reorder_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    reorder_parser.add_argument(
        "--algorithm", default="spectral", choices=sorted(ORDERING_ALGORITHMS)
    )
    reorder_parser.add_argument("--method", default=None, choices=FIEDLER_METHODS,
                                help="eigensolver for the spectral/hybrid algorithms")
    reorder_parser.add_argument("--output-permutation", default=None,
                                help="write the new-to-old permutation to this file")
    reorder_parser.add_argument("--output-matrix", default=None,
                                help="write the reordered matrix (MatrixMarket or Harwell-Boeing)")
    reorder_parser.set_defaults(func=_cmd_reorder)

    compare_parser = sub.add_parser("compare", help="compare ordering algorithms (Table 4.x style)")
    compare_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    compare_parser.add_argument("--algorithms", default=None,
                                help="comma-separated list (default: spectral,gk,gps,rcm)")
    compare_parser.set_defaults(func=_cmd_compare)

    suite_parser = sub.add_parser(
        "suite", help="run the problems x algorithms batch suite (parallel engine)"
    )
    suite_parser.add_argument("problems", nargs="*",
                              help="registered problem names or globs, e.g. "
                                   "'RANDOM/*' (default: all paper problems)")
    suite_parser.add_argument("--table", default=None,
                              choices=["4.1", "4.2", "4.3", "random"],
                              help="run every problem of one paper table, or "
                                   "every random-graph family")
    suite_parser.add_argument("--algorithms", default=None,
                              help="comma-separated list (default: spectral,gk,gps,rcm)")
    suite_parser.add_argument("--scale", type=float, default=None,
                              help="surrogate scale (default: registry default)")
    suite_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes (1 = serial, identical results)")
    suite_parser.add_argument("--seed", type=int, default=0,
                              help="base seed of the deterministic per-task seeding")
    suite_parser.add_argument("--shard", default=None, metavar="K/N",
                              help="run only the k-th of N disjoint task slices "
                                   "(merge the artifacts with 'repro merge')")
    suite_parser.add_argument("--balance", default="roundrobin",
                              choices=["roundrobin", "cost"],
                              help="how --shard splits the task list: stable "
                                   "round-robin slices, or the greedy LPT plan "
                                   "balanced on estimated per-cell cost")
    suite_parser.add_argument("--cost-model", default=None, metavar="COSTS.json",
                              help="per-cell cost table feeding --balance cost and "
                                   "the longest-first dispatcher; accepts a cost "
                                   "model, results artifact, bench artifact or "
                                   "JSONL stream")
    suite_parser.add_argument("--timeout", default=None, metavar="SECONDS|auto",
                              help="per-task wall-clock limit; overrunning tasks are "
                                   "terminated and recorded with status 'timeout'. "
                                   "'auto' derives per-cell limits from the cost "
                                   "model (estimate x 10, floor 1 s; cells without "
                                   "a prior observation get no limit)")
    suite_parser.add_argument("--retry-timeouts", type=int, default=0, metavar="R",
                              help="escalation rounds for timed-out cells: re-run "
                                   "them with the limit grown by --timeout-growth, "
                                   "appending superseding records to the stream")
    suite_parser.add_argument("--timeout-growth", type=float, default=2.0, metavar="G",
                              help="timeout multiplier per escalation round "
                                   "(default 2.0)")
    suite_parser.add_argument("--retry-crashes", type=int, default=0, metavar="R",
                              help="re-run cells whose worker process died "
                                   "(OOM kill, segfault, injected crash) up to "
                                   "R times with exponential backoff, appending "
                                   "superseding records to the stream")
    suite_parser.add_argument("--retry-backoff", type=float, default=0.1,
                              metavar="SECONDS",
                              help="initial crash-retry backoff; doubles per "
                                   "round with jitter (default 0.1)")
    suite_parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                              help="activate deterministic fault injection "
                                   "(exported as REPRO_FAULTS; see "
                                   "docs/robustness.md for the grammar)")
    suite_parser.add_argument("--output", default=None,
                              help="write the versioned JSON results artifact here")
    suite_parser.add_argument("--stream-output", default=None, metavar="PATH.jsonl",
                              help="append each record to this JSONL file as it "
                                   "completes (crash-safe incremental sink)")
    suite_parser.add_argument("--resume", default=None, metavar="PATH.jsonl",
                              help="reuse the completed records of a killed run's "
                                   "--stream-output file and run only the rest")
    suite_parser.add_argument("--fiedler-policy", default="default",
                              choices=["default", "fast"],
                              help="'fast' runs the spectral/hybrid cells with the "
                                   "rank-stability stopping rule (tol_policy="
                                   "'ordering'): same ordering quality class, much "
                                   "cheaper eigensolves; results on large problems "
                                   "are not byte-comparable with default-policy "
                                   "baselines")
    suite_parser.add_argument("--store", default=None, metavar="DIR",
                              help="persistent artifact store directory: spill "
                                   "Laplacians, component splits, hierarchies and "
                                   "converged Fiedler vectors there and reload them "
                                   "across runs and worker processes (exported as "
                                   "REPRO_STORE; results are byte-identical with "
                                   "the store on or off)")
    suite_parser.add_argument("--backend", default=None,
                              choices=["auto", "numpy", "python", "numba"],
                              help="kernel backend tier (exported as "
                                   "REPRO_BACKEND so workers inherit it): "
                                   "'auto' engages the compiled tier above the "
                                   "cost-model size threshold when numba is "
                                   "installed; 'numba' without numba exits 2; "
                                   "results are bit-identical across tiers")
    suite_parser.add_argument("--baseline", default=None,
                              help="diff against a saved results.json (exit 1 on drift)")
    suite_parser.add_argument("--progress", default=None, action=argparse.BooleanOptionalAction,
                              help="live per-task progress on stderr "
                                   "(default: only when stderr is a terminal)")
    suite_parser.set_defaults(func=_cmd_suite)

    merge_parser = sub.add_parser(
        "merge", help="recombine shard artifacts of a distributed suite run"
    )
    merge_parser.add_argument("inputs", nargs="+", metavar="SHARD.json",
                              help="shard artifacts written by 'repro suite --shard "
                                   "K/N', or .jsonl stream files (retried cells "
                                   "deduped to the final attempt)")
    merge_parser.add_argument("--output", required=True,
                              help="write the merged JSON results artifact here")
    merge_parser.add_argument("--canonical", action="store_true",
                              help="write the canonical (timing-free) form, the one "
                                   "golden tests compare byte-for-byte")
    merge_parser.add_argument("--allow-partial", action="store_true",
                              help="tolerate torn/damaged shard streams and "
                                   "missing cells: drop what cannot be read, "
                                   "warn, and record the losses under the "
                                   "merged artifact's 'partial' key")
    merge_parser.set_defaults(func=_cmd_merge)

    bench_parser = sub.add_parser(
        "bench", help="run the pinned perf micro-suite (BENCH_<rev>.json artifact)"
    )
    bench_parser.add_argument("--quick", action="store_true",
                              help="smaller scales, one repeat (CI smoke variant)")
    bench_parser.add_argument("--repeats", type=int, default=None,
                              help="timed runs per kernel (default: 3, or 2 with --quick)")
    bench_parser.add_argument("--filter", default=None, metavar="SUBSTR",
                              help="run only kernels whose name contains SUBSTR "
                                   "(skips the suite section)")
    bench_parser.add_argument("--no-suite", action="store_true",
                              help="skip the per-cell suite timing section")
    bench_parser.add_argument("--output", default=None,
                              help="artifact path (default: BENCH_<rev>.json)")
    bench_parser.add_argument("--export-cost-model", default=None, metavar="COSTS.json",
                              help="also write a per-cell cost model fit from this "
                                   "run, for 'repro suite --balance cost'")
    bench_parser.add_argument("--against", default=None, metavar="BENCH.json",
                              help="diff this run against a saved artifact; "
                                   "exit 1 on regressions beyond --threshold")
    bench_parser.add_argument("--threshold", type=float, default=0.25,
                              help="relative slowdown flagged as a regression "
                                   "(default 0.25 = 25%%)")
    bench_parser.add_argument("--gate", default="kernel", choices=["kernel", "geomean"],
                              help="what fails a --against run: any per-kernel "
                                   "regression beyond --threshold (default), or "
                                   "only a geomean slowdown beyond --threshold "
                                   "over kernels above the noise floor (the CI "
                                   "smoke gate — robust to single-kernel jitter)")
    bench_parser.add_argument("--fiedler-policy", default="default",
                              choices=["default", "fast"],
                              help="'fast' times the spectral/eigen kernels under "
                                   "the rank-stability stopping rule; recorded in "
                                   "the artifact config")
    bench_parser.add_argument("--store", default=None, metavar="DIR",
                              help="persistent artifact store directory shared "
                                   "across repeats/runs (exported as REPRO_STORE); "
                                   "note: warm structural artifacts change what a "
                                   "timed kernel measures, so compare like against "
                                   "like")
    bench_parser.add_argument("--backend", default=None,
                              choices=["auto", "numpy", "python", "numba"],
                              help="kernel backend tier to time (recorded in the "
                                   "artifact config; diff a numpy artifact "
                                   "--against a numba one to measure the "
                                   "compiled-tier speedup)")
    bench_parser.add_argument("--trend", default=None, nargs="+",
                              metavar="BENCH.json",
                              help="no bench run: chart the kernel-group geomean "
                                   "speedup trajectory across two or more saved "
                                   "artifacts (sorted by their recorded creation "
                                   "time) and exit")
    bench_parser.set_defaults(func=_cmd_bench)

    cache_parser = sub.add_parser(
        "cache", help="inspect and manage the persistent artifact store"
    )
    cache_sub = cache_parser.add_subparsers(dest="cache_command", required=True)

    def _cache_store_option(sub_parser):
        sub_parser.add_argument("--store", default=None, metavar="DIR",
                                help="store directory (default: $REPRO_STORE)")

    cache_ls = cache_sub.add_parser("ls", help="list the store's entries")
    _cache_store_option(cache_ls)
    cache_ls.set_defaults(func=_cmd_cache)
    cache_info = cache_sub.add_parser(
        "info", help="aggregate per-kind entry counts/bytes and process stats"
    )
    _cache_store_option(cache_info)
    cache_info.add_argument("--json", action="store_true",
                            help="machine-readable output (CI stats artifact)")
    cache_info.set_defaults(func=_cmd_cache)
    cache_prewarm = cache_sub.add_parser(
        "prewarm", help="build problems' structural plans into the store"
    )
    cache_prewarm.add_argument("problems", nargs="*",
                               help="registered problem names (default: all)")
    cache_prewarm.add_argument("--scale", type=float, default=None,
                               help="surrogate scale (default: registry default)")
    _cache_store_option(cache_prewarm)
    cache_prewarm.set_defaults(func=_cmd_cache)
    cache_clear = cache_sub.add_parser("clear", help="delete every store entry")
    _cache_store_option(cache_clear)
    cache_clear.add_argument("--quarantine", action="store_true",
                             help="also delete quarantined (corrupt) entries")
    cache_clear.set_defaults(func=_cmd_cache)

    chaos_parser = sub.add_parser(
        "chaos", help="run the suite or a server soak under injected faults "
                      "and assert the resilience invariants"
    )
    chaos_sub = chaos_parser.add_subparsers(dest="chaos_command", required=True)

    chaos_suite = chaos_sub.add_parser(
        "suite", help="faulty suite run, then byte-compare against a "
                      "fault-free serial run"
    )
    chaos_suite.add_argument("problems", nargs="*",
                             help="registered problem names "
                                  "(default: POW9 BARTH4)")
    chaos_suite.add_argument("--algorithms", default=None,
                             help="comma-separated list (default: paper set)")
    chaos_suite.add_argument("--scale", type=float, default=0.05,
                             help="surrogate scale (default 0.05 — chaos runs "
                                  "exercise machinery, not problem size)")
    chaos_suite.add_argument("--jobs", type=int, default=2,
                             help="worker processes for the faulty run")
    chaos_suite.add_argument("--seed", type=int, default=0,
                             help="suite base seed (both runs)")
    chaos_suite.add_argument("--timeout", type=float, default=30.0,
                             help="per-task limit of the faulty run (catches "
                                  "injected hangs)")
    chaos_suite.add_argument("--retry-timeouts", type=int, default=2,
                             help="timeout escalation rounds")
    chaos_suite.add_argument("--retry-crashes", type=int, default=5,
                             help="crash retry rounds")
    chaos_suite.add_argument("--retry-backoff", type=float, default=0.05,
                             metavar="SECONDS",
                             help="initial crash-retry backoff")
    chaos_suite.add_argument("--inject-faults", required=True, metavar="SPEC",
                             help="the fault spec to run under (required; see "
                                  "docs/robustness.md)")
    chaos_suite.add_argument("--events", default=None, metavar="PATH.jsonl",
                             help="write one JSONL event per fired fault here "
                                  "(truncated first; CI uploads it)")
    chaos_suite.add_argument("--output", default=None,
                             help="also write the faulty run's canonical "
                                  "artifact here")
    chaos_suite.set_defaults(func=_cmd_chaos)

    chaos_serve = chaos_sub.add_parser(
        "serve", help="soak a faulty 'repro serve' subprocess, then prove "
                      "the SIGTERM graceful drain"
    )
    chaos_serve.add_argument("problems", nargs="*",
                             help="registered problem names the soak rotates "
                                  "through (default: POW9 BARTH4)")
    chaos_serve.add_argument("--algorithms", default=None,
                             help="comma-separated list (default: paper set)")
    chaos_serve.add_argument("--requests", type=int, default=12,
                             help="soak requests to drive to an ok answer")
    chaos_serve.add_argument("--workers", type=int, default=2,
                             help="server worker pool size")
    chaos_serve.add_argument("--scale", type=float, default=0.05,
                             help="surrogate scale of the soak cells")
    chaos_serve.add_argument("--retries", type=int, default=6,
                             help="client retry budget per request (both the "
                                  "transport retries and the outer "
                                  "crashed-answer rounds)")
    chaos_serve.add_argument("--retry-backoff", type=float, default=0.2,
                             metavar="SECONDS",
                             help="initial client retry backoff")
    chaos_serve.add_argument("--breaker-threshold", type=int, default=3,
                             help="server circuit-breaker crash threshold")
    chaos_serve.add_argument("--breaker-cooldown", type=float, default=1.5,
                             metavar="SECONDS",
                             help="server breaker cooldown (kept short so the "
                                  "soak rides through open/half-open cycles)")
    chaos_serve.add_argument("--drain-grace", type=float, default=20.0,
                             metavar="SECONDS",
                             help="server drain grace period")
    chaos_serve.add_argument("--inject-faults", required=True, metavar="SPEC",
                             help="the fault spec the server runs under")
    chaos_serve.add_argument("--events", default=None, metavar="PATH.jsonl",
                             help="fired-fault event log (truncated first)")
    chaos_serve.add_argument("--journal", default=None, metavar="PATH.jsonl",
                             help="server job journal path (default: a "
                                  "temporary file; the drain proof replays it)")
    chaos_serve.set_defaults(func=_cmd_chaos)

    spy_parser = sub.add_parser("spy", help="ASCII structure plot under an ordering")
    spy_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    spy_parser.add_argument("--algorithm", default="original",
                            choices=["original"] + sorted(ORDERING_ALGORITHMS))
    spy_parser.add_argument("--resolution", type=int, default=48)
    spy_parser.set_defaults(func=_cmd_spy)

    fiedler_parser = sub.add_parser("fiedler", help="compute the Fiedler value/vector")
    fiedler_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    fiedler_parser.add_argument("--method", default="auto", choices=FIEDLER_METHODS)
    fiedler_parser.add_argument("--tol", type=float, default=1e-8)
    fiedler_parser.add_argument("--output-vector", default=None)
    fiedler_parser.set_defaults(func=_cmd_fiedler)

    problems_parser = sub.add_parser("problems", help="list the registered surrogate problems")
    problems_parser.set_defaults(func=_cmd_problems)

    fetch_parser = sub.add_parser(
        "fetch",
        help="download an external matrix (SuiteSparse collection) through the "
             "content-addressed cache and ingest it",
    )
    fetch_parser.add_argument("ref",
                              help="collection reference 'Group/Name' "
                                   "(e.g. HB/bcsstk13) or a full URL")
    fetch_parser.add_argument("--format", dest="fmt", default="mm",
                              choices=["mm", "rb"],
                              help="collection packaging: Matrix Market or "
                                   "Rutherford-Boeing (default: mm)")
    fetch_parser.add_argument("--cache", default=None,
                              help="download cache directory (default: "
                                   "REPRO_FETCH_CACHE or ~/.cache/repro/fetch)")
    fetch_parser.add_argument("--force", action="store_true",
                              help="re-download even when the URL is cached")
    fetch_parser.add_argument("--no-ingest", action="store_true",
                              help="only download and cache, skip parsing")
    fetch_parser.add_argument("--output", default=None,
                              help="write the ingested pattern to this Matrix "
                                   "Market file")
    fetch_parser.add_argument("--register", default=None, metavar="NAME",
                              help="register the ingested pattern as the "
                                   "first-class suite problem EXT/NAME "
                                   "(persisted under REPRO_EXTERNAL_DIR or the "
                                   "fetch cache; usable anywhere a problem name "
                                   "is: repro suite, reorder, compare, cache "
                                   "prewarm)")
    fetch_parser.set_defaults(func=_cmd_fetch)

    serve_parser = sub.add_parser(
        "serve", help="run the resident ordering-as-a-service HTTP/JSON API"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8741,
                              help="TCP port (0 = pick an ephemeral port)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="bounded worker pool size")
    serve_parser.add_argument("--queue-depth", type=int, default=8,
                              help="admission limit; beyond it requests shed with 429")
    serve_parser.add_argument("--timeout", type=float, default=None,
                              help="per-task wall-clock cap in seconds")
    serve_parser.add_argument("--worker-mode", default="subprocess",
                              choices=["subprocess", "inline"],
                              help="subprocess = killable isolation (default); "
                                   "inline = warm in-process threads")
    serve_parser.add_argument("--journal", default=None, metavar="PATH.jsonl",
                              help="append finished jobs to this crash-tolerant JSONL journal")
    serve_parser.add_argument("--store", default=None, metavar="DIR",
                              help="persistent artifact store shared with the workers")
    serve_parser.add_argument("--retry-after", type=int, default=1,
                              help="Retry-After header value on 429 responses")
    serve_parser.add_argument("--read-timeout", type=float, default=30.0,
                              help="seconds to wait for a complete request before 408")
    serve_parser.add_argument("--max-inline-n", type=int, default=None,
                              help="largest accepted inline/uploaded matrix order")
    serve_parser.add_argument("--no-debug-delay", action="store_true",
                              help="reject requests carrying the debug_delay_s test knob")
    serve_parser.add_argument("--breaker-threshold", type=int, default=3,
                              help="consecutive worker crashes per algorithm "
                                   "before its circuit breaker opens (503 + "
                                   "Retry-After; 0 disables breaking)")
    serve_parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                              metavar="SECONDS",
                              help="seconds an open breaker sheds requests "
                                   "before admitting a half-open probe")
    serve_parser.add_argument("--drain-grace", type=float, default=30.0,
                              metavar="SECONDS",
                              help="upper bound on how long a SIGTERM graceful "
                                   "drain waits for in-flight work")
    serve_parser.add_argument("--inject-faults", default=None, metavar="SPEC",
                              help="activate deterministic fault injection "
                                   "(exported as REPRO_FAULTS; see "
                                   "docs/robustness.md)")
    serve_parser.add_argument("--backend", default=None,
                              choices=["auto", "numpy", "python", "numba"],
                              help="kernel backend tier for served orderings "
                                   "(exported as REPRO_BACKEND so subprocess "
                                   "workers inherit it; reported by /statsz)")
    serve_parser.set_defaults(func=_cmd_serve)

    order_parser = sub.add_parser(
        "order", help="request one ordering from a repro serve instance (or in-process)"
    )
    order_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    order_parser.add_argument(
        "--algorithm", default="spectral", choices=sorted(ORDERING_ALGORITHMS)
    )
    order_parser.add_argument("--method", default=None, choices=FIEDLER_METHODS,
                              help="eigensolver for the spectral/hybrid algorithms")
    order_parser.add_argument("--server", default=None, metavar="URL",
                              help="base URL of a running repro serve "
                                   "(omit to compute in-process)")
    order_parser.add_argument("--base-seed", type=int, default=0,
                              help="suite-level base seed (per-task seed is derived)")
    order_parser.add_argument("--timeout-s", type=float, default=None,
                              help="per-request compute budget forwarded to the server")
    order_parser.add_argument("--client-timeout", type=float, default=60.0,
                              help="HTTP client socket timeout in seconds")
    order_parser.add_argument("--retries", type=int, default=0,
                              help="retry transient failures (connection "
                                   "refused/reset, read timeout, 429/503) up "
                                   "to N times, honoring Retry-After and "
                                   "otherwise backing off exponentially")
    order_parser.add_argument("--retry-backoff", type=float, default=0.5,
                              metavar="SECONDS",
                              help="initial retry backoff (doubles per "
                                   "attempt, capped at 30 s)")
    order_parser.add_argument("--json", action="store_true",
                              help="print the canonical record + permutation as JSON")
    order_parser.add_argument("--output-permutation", default=None,
                              help="write the new-to-old permutation to this file")
    order_parser.set_defaults(func=_cmd_order)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except UnknownProblemError as exc:
        # Structured unknown-problem errors (with near-miss suggestions)
        # exit 2 like every other usage error, never as a traceback.
        print(exc, file=sys.stderr)
        return 2
