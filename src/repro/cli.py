"""Command-line interface: ``python -m repro <command> ...``.

Five subcommands cover the workflows a downstream user of an envelope solver
actually runs:

``reorder``
    Read a matrix (Matrix Market or Harwell-Boeing), compute an
    envelope-reducing ordering, report the envelope statistics and optionally
    write the permutation and/or the reordered matrix to disk.

``compare``
    Run several ordering algorithms on a matrix (or on a named surrogate
    problem from the paper's test sets) and print a Table 4.1-style ranked
    comparison.

``suite``
    Drive the whole ``problems x algorithms`` cross-product through the
    parallel batch engine (:mod:`repro.batch`), e.g.::

        repro suite --jobs 4 --output results.json
        repro suite POW9 BARTH4 --algorithms rcm,spectral --scale 0.05 \\
            --baseline results.json

    ``--output`` saves a versioned JSON artifact (see
    :mod:`repro.batch.results` for the schema); ``--baseline`` diffs the run
    against a saved artifact, ignoring timing fields, and exits nonzero on
    drift.

``spy``
    Print an ASCII structure plot of a matrix under a chosen ordering
    (the Figure 4.1-4.5 view).

``fiedler``
    Compute the second Laplacian eigenvalue/eigenvector (algebraic
    connectivity) of a matrix and print solver diagnostics.

All commands accept either a file path or ``problem:NAME[@SCALE]`` to use one
of the registered synthetic surrogates, e.g. ``problem:BARTH4@0.05``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.runner import run_comparison
from repro.batch import SuiteResult, run_suite
from repro.analysis.spy import ascii_spy, band_profile
from repro.collections.registry import available_problems, load_problem
from repro.core.pipeline import reorder
from repro.eigen.fiedler import FIEDLER_METHODS, fiedler_vector
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS
from repro.sparse.io_hb import read_harwell_boeing, write_harwell_boeing
from repro.sparse.io_mm import read_matrix_market, write_matrix_market
from repro.sparse.ops import permute_symmetric, structure_from_matrix

__all__ = ["main", "build_parser"]


def _load_input(source: str):
    """Load a matrix from a file path or a ``problem:NAME[@SCALE]`` reference.

    Returns ``(pattern, matrix_or_none, label)``: the structure, the
    values-carrying matrix when one exists (file inputs), and a display label.
    """
    if source.startswith("problem:"):
        reference = source[len("problem:") :]
        if "@" in reference:
            name, scale_text = reference.split("@", 1)
            scale = float(scale_text)
        else:
            name, scale = reference, None
        pattern, spec = load_problem(name, scale=scale)
        return pattern, None, f"{spec.name} surrogate (n={pattern.n})"
    lower = source.lower()
    if lower.endswith((".mtx", ".mm", ".mtx.gz")):
        matrix = read_matrix_market(source)
    elif lower.endswith((".rsa", ".psa", ".rua", ".pua", ".hb", ".rb")):
        matrix = read_harwell_boeing(source)
    else:
        # Try Matrix Market first, then Harwell-Boeing.
        try:
            matrix = read_matrix_market(source)
        except (ValueError, OSError):
            matrix = read_harwell_boeing(source)
    pattern = structure_from_matrix(matrix)
    return pattern, matrix, f"{source} (n={pattern.n})"


def _write_matrix(path: str, matrix) -> None:
    if path.lower().endswith((".rsa", ".psa", ".hb")):
        write_harwell_boeing(path, matrix)
    else:
        write_matrix_market(path, matrix)


def _cmd_reorder(args) -> int:
    pattern, matrix, label = _load_input(args.input)
    report = reorder(pattern, algorithm=args.algorithm, **_algorithm_options(args))
    stats_before, stats_after = report.original, report.statistics
    print(f"{label}: ordering algorithm = {args.algorithm}")
    print(f"  envelope size : {stats_before.envelope_size:,} -> {stats_after.envelope_size:,}")
    print(f"  envelope work : {stats_before.envelope_work:,} -> {stats_after.envelope_work:,}")
    print(f"  bandwidth     : {stats_before.bandwidth:,} -> {stats_after.bandwidth:,}")
    print(f"  ordering time : {report.run_time:.3f} s")
    if args.output_permutation:
        np.savetxt(args.output_permutation, report.ordering.perm, fmt="%d")
        print(f"  permutation written to {args.output_permutation}")
    if args.output_matrix:
        if matrix is None:
            matrix = pattern.to_scipy("pattern")
        _write_matrix(args.output_matrix, permute_symmetric(matrix, report.ordering.perm))
        print(f"  reordered matrix written to {args.output_matrix}")
    return 0


def _cmd_compare(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    algorithms = tuple(args.algorithms.split(",")) if args.algorithms else PAPER_ALGORITHMS
    unknown = [a for a in algorithms if a not in ORDERING_ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {unknown}; available: {sorted(ORDERING_ALGORITHMS)}",
              file=sys.stderr)
        return 2
    result = run_comparison(pattern, algorithms=algorithms, problem=label)
    print(format_table(result.rows, title=f"Ordering comparison — {label}"))
    print(f"\nSmallest envelope: {result.winner.upper()}")
    return 0


def _cmd_suite(args) -> int:
    if args.table and args.problems:
        print("give either problem names or --table, not both", file=sys.stderr)
        return 2
    if args.table:
        problems = available_problems(args.table, paper_order=True)
    elif args.problems:
        problems = args.problems
    else:
        problems = available_problems()
    algorithms = tuple(args.algorithms.split(",")) if args.algorithms else PAPER_ALGORITHMS
    try:
        suite = run_suite(
            problems,
            algorithms,
            scale=args.scale,
            n_jobs=args.jobs,
            base_seed=args.seed,
        )
    except ValueError as exc:
        print(exc, file=sys.stderr)
        return 2
    print(suite.to_text())
    ok, failed = len(suite.ok_records), len(suite.failures)
    print(
        f"\n{ok + failed} task(s) in {suite.wall_time_s:.2f} s "
        f"with {suite.n_jobs} job(s): {ok} ok, {failed} failed"
    )
    if args.output:
        suite.save(args.output)
        print(f"results written to {args.output}")
    if args.baseline:
        try:
            baseline = SuiteResult.load(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
        differences = baseline.diff(suite)
        if differences:
            print(f"{len(differences)} difference(s) vs baseline {args.baseline}:",
                  file=sys.stderr)
            for line in differences:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(f"matches baseline {args.baseline} (timing fields excluded)")
    return 1 if suite.failures else 0


def _cmd_spy(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    perm = None
    if args.algorithm != "original":
        perm = ORDERING_ALGORITHMS[args.algorithm](pattern).perm
    profile = band_profile(pattern, perm)
    print(f"{label} — {args.algorithm.upper()} ordering")
    print(
        f"envelope={profile['envelope_size']:,}  bandwidth={profile['bandwidth']:,}  "
        f"mean row width={profile['mean_row_width']:.1f}"
    )
    print(ascii_spy(pattern, perm, resolution=args.resolution))
    return 0


def _cmd_fiedler(args) -> int:
    pattern, _matrix, label = _load_input(args.input)
    result = fiedler_vector(pattern, method=args.method, tol=args.tol)
    print(f"{label}")
    print(f"  method              : {result.method}")
    print(f"  algebraic connectivity (lambda_2): {result.eigenvalue:.6e}")
    print(f"  residual            : {result.residual_norm:.2e}")
    print(f"  converged           : {result.converged}")
    if args.output_vector:
        np.savetxt(args.output_vector, result.eigenvector)
        print(f"  eigenvector written to {args.output_vector}")
    return 0


def _cmd_problems(_args) -> int:
    print("Registered surrogate problems (use as problem:NAME[@SCALE]):")
    for table in ("4.1", "4.2", "4.3"):
        names = ", ".join(available_problems(table))
        print(f"  Table {table}: {names}")
    return 0


def _algorithm_options(args) -> dict:
    options = {}
    if getattr(args, "method", None) and args.algorithm in ("spectral", "hybrid"):
        options["method"] = args.method
    return options


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spectral envelope reduction of sparse matrices (Barnard, Pothen & Simon, SC'93)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    reorder_parser = sub.add_parser("reorder", help="compute an envelope-reducing ordering")
    reorder_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    reorder_parser.add_argument(
        "--algorithm", default="spectral", choices=sorted(ORDERING_ALGORITHMS)
    )
    reorder_parser.add_argument("--method", default=None, choices=FIEDLER_METHODS,
                                help="eigensolver for the spectral/hybrid algorithms")
    reorder_parser.add_argument("--output-permutation", default=None,
                                help="write the new-to-old permutation to this file")
    reorder_parser.add_argument("--output-matrix", default=None,
                                help="write the reordered matrix (MatrixMarket or Harwell-Boeing)")
    reorder_parser.set_defaults(func=_cmd_reorder)

    compare_parser = sub.add_parser("compare", help="compare ordering algorithms (Table 4.x style)")
    compare_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    compare_parser.add_argument("--algorithms", default=None,
                                help="comma-separated list (default: spectral,gk,gps,rcm)")
    compare_parser.set_defaults(func=_cmd_compare)

    suite_parser = sub.add_parser(
        "suite", help="run the problems x algorithms batch suite (parallel engine)"
    )
    suite_parser.add_argument("problems", nargs="*",
                              help="registered problem names (default: all)")
    suite_parser.add_argument("--table", default=None, choices=["4.1", "4.2", "4.3"],
                              help="run every problem of one paper table")
    suite_parser.add_argument("--algorithms", default=None,
                              help="comma-separated list (default: spectral,gk,gps,rcm)")
    suite_parser.add_argument("--scale", type=float, default=None,
                              help="surrogate scale (default: registry default)")
    suite_parser.add_argument("--jobs", type=int, default=1,
                              help="worker processes (1 = serial, identical results)")
    suite_parser.add_argument("--seed", type=int, default=0,
                              help="base seed of the deterministic per-task seeding")
    suite_parser.add_argument("--output", default=None,
                              help="write the versioned JSON results artifact here")
    suite_parser.add_argument("--baseline", default=None,
                              help="diff against a saved results.json (exit 1 on drift)")
    suite_parser.set_defaults(func=_cmd_suite)

    spy_parser = sub.add_parser("spy", help="ASCII structure plot under an ordering")
    spy_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    spy_parser.add_argument("--algorithm", default="original",
                            choices=["original"] + sorted(ORDERING_ALGORITHMS))
    spy_parser.add_argument("--resolution", type=int, default=48)
    spy_parser.set_defaults(func=_cmd_spy)

    fiedler_parser = sub.add_parser("fiedler", help="compute the Fiedler value/vector")
    fiedler_parser.add_argument("input", help="matrix file or problem:NAME[@SCALE]")
    fiedler_parser.add_argument("--method", default="auto", choices=FIEDLER_METHODS)
    fiedler_parser.add_argument("--tol", type=float, default=1e-8)
    fiedler_parser.add_argument("--output-vector", default=None)
    fiedler_parser.set_defaults(func=_cmd_fiedler)

    problems_parser = sub.add_parser("problems", help="list the registered surrogate problems")
    problems_parser.set_defaults(func=_cmd_problems)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
