"""Problem collections: synthetic surrogates for the paper's test matrices.

The paper evaluates on Boeing-Harwell matrices (structural analysis and
miscellaneous sets) and on NASA structural/CFD matrices.  Those files are not
redistributable with this repository, so this subpackage generates synthetic
matrices from the same structural families:

* regular 2-D and 3-D finite-element meshes, optionally with several degrees
  of freedom per node (:mod:`repro.collections.meshes`) — surrogates for the
  BCSSTK solid/shell models;
* unstructured triangulations (airfoil-style), annuli, plates with holes,
  cylindrical shells, power networks (:mod:`repro.collections.generators`) —
  surrogates for BARTH4, DWT2680, BLKHOLE, the shell models and POW9;
* random-graph families — Barabási–Albert, Erdős–Rényi G(n,p)/G(n,m),
  Watts–Strogatz, R-MAT (:mod:`repro.collections.random_graphs`) — power-law
  and small-world stress workloads far outside the paper's mesh regime;
* a registry keyed by the paper's matrix names (plus the ``RANDOM/*``
  families) with configurable size scaling
  (:mod:`repro.collections.registry`), used by every benchmark harness;
* a fetch/ingest path for real external matrices, e.g. from the SuiteSparse
  collection, with a content-addressed download cache
  (:mod:`repro.collections.external`).

Real Boeing-Harwell / Matrix Market files can be substituted at any time via
:func:`repro.sparse.read_harwell_boeing` / :func:`repro.sparse.read_matrix_market`.
"""

from repro.collections.meshes import (
    grid2d_pattern,
    grid3d_pattern,
    multi_dof_pattern,
    path_pattern,
    cycle_pattern,
    star_pattern,
    complete_pattern,
    binary_tree_pattern,
)
from repro.collections.generators import (
    airfoil_pattern,
    annulus_pattern,
    cylinder_shell_pattern,
    plate_with_holes_pattern,
    power_network_pattern,
    random_geometric_pattern,
)
from repro.collections.random_graphs import (
    RANDOM_PROBLEMS,
    GeneratorSpec,
    barabasi_albert_pattern,
    erdos_renyi_gnm_pattern,
    erdos_renyi_gnp_pattern,
    rmat_pattern,
    watts_strogatz_pattern,
)
from repro.collections.external import (
    DownloadCache,
    fetch_problem,
    fetch_url,
    ingest_file,
    suitesparse_url,
)
from repro.collections.registry import (
    PAPER_PROBLEMS,
    ProblemSpec,
    UnknownProblemError,
    all_problems,
    available_problems,
    expected_problem_size,
    get_problem_spec,
    has_analytic_size,
    load_problem,
    resolve_problems,
)

__all__ = [
    "grid2d_pattern",
    "grid3d_pattern",
    "multi_dof_pattern",
    "path_pattern",
    "cycle_pattern",
    "star_pattern",
    "complete_pattern",
    "binary_tree_pattern",
    "airfoil_pattern",
    "annulus_pattern",
    "cylinder_shell_pattern",
    "plate_with_holes_pattern",
    "power_network_pattern",
    "random_geometric_pattern",
    "RANDOM_PROBLEMS",
    "GeneratorSpec",
    "barabasi_albert_pattern",
    "erdos_renyi_gnp_pattern",
    "erdos_renyi_gnm_pattern",
    "watts_strogatz_pattern",
    "rmat_pattern",
    "DownloadCache",
    "fetch_problem",
    "fetch_url",
    "ingest_file",
    "suitesparse_url",
    "PAPER_PROBLEMS",
    "ProblemSpec",
    "UnknownProblemError",
    "all_problems",
    "available_problems",
    "expected_problem_size",
    "get_problem_spec",
    "has_analytic_size",
    "load_problem",
    "resolve_problems",
]
