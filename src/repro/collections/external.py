"""Fetch and ingest real matrices from external collections.

The registry's surrogates imitate the paper's matrices; this module brings in
the *real thing* (or any other externally hosted matrix) through the repo's
existing readers:

* :func:`suitesparse_url` — the download URL of a SuiteSparse Matrix
  Collection entry (``"HB/bcsstk13"``) in Matrix Market or Rutherford-Boeing
  packaging;
* :func:`fetch_url` — download any ``http(s)``/``file`` URL through the
  content-addressed :class:`repro.store.download.DownloadCache` (a repeated
  fetch is a local read, verified by sha256);
* :func:`ingest_file` — turn a downloaded file (``.tar.gz`` collection
  archive, plain or gzipped Matrix Market, Harwell-Boeing / Rutherford-Boeing)
  into a :class:`repro.sparse.SymmetricPattern` via
  :func:`repro.sparse.ops.structure_from_matrix`;
* :func:`fetch_problem` — the two composed: collection reference or URL in,
  ``(pattern, meta)`` out.  Exposed on the command line as ``repro fetch``.

Fetched matrices can additionally be **registered** as first-class suite
problems (``repro fetch HB/bcsstk13 --register BCSSTK13``):
:func:`register_external` persists the ingested pattern (``.npz`` + JSON
sidecar) under the registration directory and the problem registry resolves
it as ``EXT/BCSSTK13`` — usable anywhere a registry name is
(``repro suite 'EXT/*'``, ``problem:EXT/BCSSTK13``, the server's problem
cache).  External problems are fixed-size: the ``scale`` argument is ignored
(the real matrix *is* the size), and the registry reports their exact
``n * nnz`` to the scheduler's cost model.  The directory defaults to
``<fetch cache>/registered`` and follows ``REPRO_EXTERNAL_DIR`` /
``REPRO_FETCH_CACHE``, both of which suite worker processes inherit.

Tests exercise the full path offline by pointing ``fetch_url`` at ``file://``
fixture URLs — the network is only touched for genuinely remote URLs.
"""

from __future__ import annotations

import gzip
import io
import json
import os
import re
import tarfile
import urllib.request
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.sparse.io_hb import read_harwell_boeing
from repro.sparse.io_mm import read_matrix_market
from repro.sparse.ops import structure_from_matrix
from repro.sparse.pattern import SymmetricPattern
from repro.store.download import DownloadCache, default_fetch_cache_root

__all__ = [
    "DEFAULT_COLLECTION_URL",
    "EXTERNAL_PREFIX",
    "ExternalSpec",
    "suitesparse_url",
    "fetch_url",
    "ingest_file",
    "fetch_problem",
    "external_dir",
    "register_external",
    "registered_externals",
    "get_external_spec",
    "DownloadCache",
]

#: Base URL of the SuiteSparse Matrix Collection.
DEFAULT_COLLECTION_URL = "https://sparse.tamu.edu"

_MM_SUFFIXES = (".mtx", ".mm")
_HB_SUFFIXES = (".rsa", ".rua", ".psa", ".pua", ".rb", ".hb")
_TAR_SUFFIXES = (".tar.gz", ".tgz", ".tar")


def suitesparse_url(ref: str, fmt: str = "mm", base_url: str | None = None) -> str:
    """Download URL of a SuiteSparse collection entry.

    ``ref`` is the collection's ``"Group/Name"`` identifier (for the paper's
    matrices, e.g. ``"HB/bcsstk29"`` or ``"Nasa/barth4"``); ``fmt`` selects
    Matrix Market (``"mm"``) or Rutherford-Boeing (``"rb"``) packaging.
    """
    group, sep, name = ref.strip().strip("/").partition("/")
    if not sep or not group or not name or "/" in name:
        raise ValueError(f"collection reference must look like 'Group/Name', got {ref!r}")
    folder = {"mm": "MM", "rb": "RB"}.get(fmt.lower())
    if folder is None:
        raise ValueError(f"format must be 'mm' or 'rb', got {fmt!r}")
    return f"{(base_url or DEFAULT_COLLECTION_URL).rstrip('/')}/{folder}/{group}/{name}.tar.gz"


def _default_opener(url: str, timeout: float):
    scheme = url.partition(":")[0].lower()
    if scheme not in ("http", "https", "file"):
        raise ValueError(f"unsupported URL scheme {scheme!r} in {url!r}")
    return urllib.request.urlopen(url, timeout=timeout)  # noqa: S310 — scheme-checked


def fetch_url(
    url: str,
    cache: DownloadCache | None = None,
    opener=None,
    force: bool = False,
    timeout: float = 60.0,
) -> dict:
    """Download a URL through the content-addressed cache.

    Returns the cache meta record (``url``, ``sha256``, ``size``,
    ``filename``, ``path``).  A cached URL is served locally (after digest
    verification) unless ``force`` is set.  ``opener`` may replace
    ``urllib.request.urlopen`` — tests inject counters, and ``file://``
    fixture URLs keep the whole path offline.
    """
    cache = cache or DownloadCache()
    if not force:
        meta = cache.lookup(url)
        if meta is not None:
            return meta
    open_url = opener or (lambda target: _default_opener(target, timeout))
    with open_url(url) as response:
        data = response.read()
    return cache.store(url, data)


def _parse_text(name: str, text: str):
    lower = name.lower()
    if lower.endswith(_MM_SUFFIXES):
        return read_matrix_market(io.StringIO(text)), "matrix-market"
    if lower.endswith(_HB_SUFFIXES):
        return read_harwell_boeing(io.StringIO(text)), "harwell-boeing"
    # No recognized suffix: try Matrix Market first, then Harwell-Boeing.
    try:
        return read_matrix_market(io.StringIO(text)), "matrix-market"
    except (ValueError, OSError):
        return read_harwell_boeing(io.StringIO(text)), "harwell-boeing"


def _matrix_from_archive(path: Path):
    """Extract the matrix member of a collection ``.tar.gz`` archive."""
    with tarfile.open(path, mode="r:*") as archive:
        members = [
            member for member in archive.getmembers()
            if member.isfile()
            and member.name.lower().endswith(_MM_SUFFIXES + _HB_SUFFIXES)
        ]
        if not members:
            raise ValueError(f"no Matrix Market / Harwell-Boeing member found in {path}")
        # SuiteSparse archives hold name/name.mtx plus coordinate files for
        # aux data; the primary matrix is the shortest matching member name.
        member = min(members, key=lambda item: (len(item.name), item.name))
        handle = archive.extractfile(member)
        if handle is None:  # pragma: no cover — isfile() filtered above
            raise ValueError(f"cannot extract {member.name} from {path}")
        text = handle.read().decode("utf-8", errors="replace")
    matrix, fmt = _parse_text(member.name, text)
    return matrix, fmt, member.name


def ingest_file(path: str | Path, filename: str = "") -> tuple[SymmetricPattern, dict]:
    """Read a downloaded matrix file into a symmetric pattern.

    ``filename`` overrides format detection for cache objects, whose on-disk
    name is a bare digest.  Accepts collection ``.tar.gz`` archives, plain or
    gzipped Matrix Market files, and Harwell-Boeing / Rutherford-Boeing files.
    Returns ``(pattern, meta)`` with the source format and member name.
    """
    path = Path(path)
    name = (filename or path.name).lower()
    member = filename or path.name
    if name.endswith(_TAR_SUFFIXES):
        matrix, fmt, member = _matrix_from_archive(path)
    elif name.endswith(".gz"):
        text = gzip.decompress(path.read_bytes()).decode("utf-8", errors="replace")
        matrix, fmt = _parse_text(name[: -len(".gz")], text)
    else:
        text = path.read_bytes().decode("utf-8", errors="replace")
        matrix, fmt = _parse_text(name, text)
    pattern = structure_from_matrix(matrix)
    meta = {
        "source": str(path),
        "member": member,
        "format": fmt,
        "n": pattern.n,
        "nnz": pattern.nnz,
    }
    return pattern, meta


def fetch_problem(
    ref: str,
    fmt: str = "mm",
    cache: DownloadCache | None = None,
    opener=None,
    force: bool = False,
    base_url: str | None = None,
) -> tuple[SymmetricPattern, dict]:
    """Fetch and ingest an external matrix.

    ``ref`` is either a full URL (any scheme :func:`fetch_url` accepts) or a
    SuiteSparse ``"Group/Name"`` reference resolved via
    :func:`suitesparse_url`.  Returns ``(pattern, meta)`` where ``meta``
    merges the download record (URL, sha256, cached path) with the ingest
    record (format, member, n, nnz).
    """
    url = ref if "://" in ref else suitesparse_url(ref, fmt=fmt, base_url=base_url)
    record = fetch_url(url, cache=cache, opener=opener, force=force)
    pattern, meta = ingest_file(record["path"], filename=record["filename"])
    return pattern, {**record, **meta}


# --------------------------------------------------------------------------- #
# Registered external problems (``EXT/<NAME>``).
# --------------------------------------------------------------------------- #

#: Registry namespace of registered external matrices.
EXTERNAL_PREFIX = "EXT/"

_NAME_RE = re.compile(r"^[A-Z0-9][A-Z0-9_.\-]*$")


def external_dir(directory: str | os.PathLike | None = None) -> Path:
    """The directory holding registered external problems.

    Resolution order: explicit *directory* argument, the
    ``REPRO_EXTERNAL_DIR`` environment variable, else ``registered/`` inside
    the download cache root (which itself follows ``REPRO_FETCH_CACHE``).
    Environment-based so suite worker processes resolve the same problems
    as the coordinator that spawned them.
    """
    if directory is not None:
        return Path(directory)
    env = os.environ.get("REPRO_EXTERNAL_DIR", "")
    if env:
        return Path(env)
    return default_fetch_cache_root() / "registered"


def _normalize_external_name(name: str) -> str:
    key = str(name).strip().upper()
    if key.startswith(EXTERNAL_PREFIX):
        key = key[len(EXTERNAL_PREFIX):]
    if not _NAME_RE.match(key):
        raise ValueError(
            f"invalid external problem name {name!r}: use letters, digits, "
            "'_', '.', '-' (the registry stores it upper-case as "
            f"{EXTERNAL_PREFIX}<NAME>)"
        )
    return key


@dataclass(frozen=True)
class ExternalSpec:
    """A registered external matrix, resolvable as a suite problem.

    The external twin of :class:`repro.collections.registry.ProblemSpec`:
    instead of a scalable surrogate generator it wraps a real, fixed-size
    pattern persisted on disk.  ``build(scale)`` ignores *scale* — the
    matrix is whatever was fetched — and the registry reports the exact
    ``n * nnz`` to the cost model (``table == "external"``).
    """

    name: str
    path: Path
    n: int
    nnz: int
    description: str = ""
    meta: dict = field(default_factory=dict)
    table: str = "external"

    def build(self, scale: float | None = None) -> SymmetricPattern:
        """Load the registered pattern (*scale* is ignored: fixed size)."""
        with np.load(self.path) as payload:
            n = int(payload["n"])
            pattern = SymmetricPattern(
                n,
                payload["indptr"].astype(np.intp),
                payload["indices"].astype(np.intp),
            )
        return pattern


def register_external(
    name: str,
    pattern: SymmetricPattern,
    meta: dict | None = None,
    directory: str | os.PathLike | None = None,
) -> ExternalSpec:
    """Persist *pattern* as the registered external problem ``EXT/<NAME>``.

    Writes ``<dir>/<NAME>.npz`` (the CSR structure) and ``<dir>/<NAME>.json``
    (sizes plus the fetch/ingest *meta*: source URL, sha256, format),
    atomically.  Re-registering a name overwrites it.  Returns the spec.
    """
    from repro.utils.atomic import atomic_output_file, atomic_write_text

    key = _normalize_external_name(name)
    root = external_dir(directory)
    root.mkdir(parents=True, exist_ok=True)
    npz_path = root / f"{key}.npz"
    with atomic_output_file(npz_path, suffix=".npz") as tmp:
        np.savez(tmp, n=pattern.n, indptr=pattern.indptr, indices=pattern.indices)
    record = {
        "name": f"{EXTERNAL_PREFIX}{key}",
        "n": int(pattern.n),
        "nnz": int(pattern.nnz),
        "meta": dict(meta or {}),
    }
    atomic_write_text(root / f"{key}.json", json.dumps(record, indent=2) + "\n")
    return get_external_spec(key, directory=directory)


def _spec_from_sidecar(side: Path) -> ExternalSpec | None:
    npz_path = side.with_suffix(".npz")
    if not npz_path.exists():
        return None
    try:
        record = json.loads(side.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(record, dict) or "n" not in record or "nnz" not in record:
        return None
    meta = record.get("meta") or {}
    source = meta.get("url") or meta.get("source") or ""
    description = f"registered external matrix ({source})" if source else \
        "registered external matrix"
    return ExternalSpec(
        name=f"{EXTERNAL_PREFIX}{side.stem}",
        path=npz_path,
        n=int(record["n"]),
        nnz=int(record["nnz"]),
        description=description,
        meta=meta,
    )


def registered_externals(
    directory: str | os.PathLike | None = None,
) -> dict[str, ExternalSpec]:
    """Name → spec of every registered external problem, sorted by name."""
    root = external_dir(directory)
    if not root.is_dir():
        return {}
    specs = {}
    for side in sorted(root.glob("*.json")):
        spec = _spec_from_sidecar(side)
        if spec is not None:
            specs[spec.name] = spec
    return specs


def get_external_spec(
    name: str, directory: str | os.PathLike | None = None
) -> ExternalSpec | None:
    """The spec registered under *name* (with or without ``EXT/``), or None."""
    try:
        key = _normalize_external_name(name)
    except ValueError:
        return None
    side = external_dir(directory) / f"{key}.json"
    if not side.exists():
        return None
    return _spec_from_sidecar(side)
