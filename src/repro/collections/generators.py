"""Unstructured and application-flavoured graph generators.

Each generator mimics the structural family of one of the paper's test
matrices (see :mod:`repro.collections.registry` for the mapping):

* :func:`airfoil_pattern` — unstructured planar triangulation around an
  airfoil-shaped hole (Delaunay of graded random points), the BARTH4 family;
* :func:`annulus_pattern` — structured polar mesh on an annulus (the DWT wheel
  / disc models);
* :func:`cylinder_shell_pattern` — quadrilateral shell mesh wrapped around a
  cylinder, optionally with stiffening rings (shell models such as BCSSTK29 or
  the SHUTTLE/SKIRT geometries);
* :func:`plate_with_holes_pattern` — rectangular plate mesh with removed
  circular regions (the BLKHOLE family);
* :func:`power_network_pattern` — a tree-plus-loops network with very low
  average degree (the POW9 power-flow family);
* :func:`random_geometric_pattern` — points in the unit square connected
  within a radius (a generic unstructured surrogate).

All generators are deterministic given a seed and always return a *connected*
:class:`repro.sparse.SymmetricPattern` (the largest component is extracted if
the construction leaves stragglers).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import Delaunay, cKDTree

from repro.graph.components import largest_component
from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng
from repro.utils.validation import require_positive_int

__all__ = [
    "airfoil_pattern",
    "annulus_pattern",
    "cylinder_shell_pattern",
    "plate_with_holes_pattern",
    "power_network_pattern",
    "random_geometric_pattern",
    "shell_assembly_pattern",
    "perforated_solid_pattern",
]


def _pattern_from_triangulation(points: np.ndarray) -> SymmetricPattern:
    """Delaunay-triangulate *points* and return the edge graph."""
    tri = Delaunay(points)
    edges = set()
    for simplex in tri.simplices:
        a, b, c = (int(v) for v in simplex)
        edges.add((min(a, b), max(a, b)))
        edges.add((min(a, c), max(a, c)))
        edges.add((min(b, c), max(b, c)))
    return SymmetricPattern.from_edges(points.shape[0], edges)


def _ensure_connected(pattern: SymmetricPattern) -> SymmetricPattern:
    """Return the induced pattern on the largest connected component."""
    vertices = largest_component(pattern)
    if vertices.size == pattern.n:
        return pattern
    return pattern.subpattern(vertices)


def airfoil_pattern(n_points: int = 800, seed=None) -> SymmetricPattern:
    """Unstructured triangular mesh around an airfoil-shaped hole (BARTH4 family).

    Points are sampled with strong grading toward the airfoil surface (as a
    CFD mesh would be), a thin elliptic hole is cut out, and the Delaunay
    triangulation of the remaining points forms the graph.  Average degree is
    about 6, like any planar triangulation.
    """
    n_points = require_positive_int(n_points, "n_points", minimum=16)
    rng = default_rng(seed)
    # Graded radial sampling around the origin, plus a ring of points hugging
    # the airfoil surface to mimic boundary-layer refinement.
    n_far = n_points // 2
    n_near = n_points - n_far
    radii = 0.08 + 1.5 * rng.random(n_far) ** 2.0
    angles = 2.0 * np.pi * rng.random(n_far)
    far = np.column_stack([radii * np.cos(angles), 0.9 * radii * np.sin(angles)])

    t = 2.0 * np.pi * rng.random(n_near)
    thickness = 0.02 + 0.08 * rng.random(n_near)
    near = np.column_stack([
        (0.35 + thickness) * np.cos(t) - 0.15,
        (0.06 + 0.4 * thickness) * np.sin(t),
    ])
    points = np.vstack([far, near])

    # Remove points falling inside the airfoil (a thin ellipse).
    inside = ((points[:, 0] + 0.15) / 0.33) ** 2 + (points[:, 1] / 0.055) ** 2 < 1.0
    points = points[~inside]
    if points.shape[0] < 8:  # pragma: no cover - tiny inputs only
        points = np.vstack([points, rng.random((8, 2)) + 1.5])
    pattern = _pattern_from_triangulation(points)
    return _ensure_connected(pattern)


def annulus_pattern(n_rings: int = 20, n_around: int = 134) -> SymmetricPattern:
    """Structured quadrilateral mesh on an annulus (DWT2680 'wheel' family).

    ``n_rings * n_around`` vertices; each vertex connects to its angular
    neighbours (periodically) and its radial neighbours, plus one cell
    diagonal so the elements behave like quads.
    """
    n_rings = require_positive_int(n_rings, "n_rings", minimum=2)
    n_around = require_positive_int(n_around, "n_around", minimum=3)
    idx = lambda r, a: r * n_around + a
    edges = []
    for r in range(n_rings):
        for a in range(n_around):
            edges.append((idx(r, a), idx(r, (a + 1) % n_around)))
            if r + 1 < n_rings:
                edges.append((idx(r, a), idx(r + 1, a)))
                edges.append((idx(r, a), idx(r + 1, (a + 1) % n_around)))
    return SymmetricPattern.from_edges(n_rings * n_around, edges)


def cylinder_shell_pattern(
    n_axial: int = 40,
    n_around: int = 60,
    dofs_per_node: int = 1,
    stiffener_every: int = 0,
) -> SymmetricPattern:
    """Quadrilateral shell mesh wrapped around a cylinder (BCSSTK29 / SHUTTLE family).

    Parameters
    ----------
    n_axial, n_around:
        Mesh dimensions along and around the cylinder (the circumferential
        direction is periodic).
    dofs_per_node:
        Degrees of freedom per node; values around 4-6 reproduce the row
        densities of real shell models.
    stiffener_every:
        If positive, every that-many axial stations receives a stiffening ring
        of long-range braces (connecting each node to the node a quarter turn
        away), which mimics the ring frames of launch-vehicle models and makes
        the graph harder for purely local orderings.
    """
    n_axial = require_positive_int(n_axial, "n_axial", minimum=2)
    n_around = require_positive_int(n_around, "n_around", minimum=3)
    idx = lambda i, a: i * n_around + a
    edges = []
    for i in range(n_axial):
        for a in range(n_around):
            edges.append((idx(i, a), idx(i, (a + 1) % n_around)))
            if i + 1 < n_axial:
                edges.append((idx(i, a), idx(i + 1, a)))
                edges.append((idx(i, a), idx(i + 1, (a + 1) % n_around)))
        if stiffener_every and i % stiffener_every == 0:
            quarter = max(1, n_around // 4)
            for a in range(n_around):
                edges.append((idx(i, a), idx(i, (a + quarter) % n_around)))
    base = SymmetricPattern.from_edges(n_axial * n_around, edges)
    if dofs_per_node > 1:
        from repro.collections.meshes import multi_dof_pattern

        return multi_dof_pattern(base, dofs_per_node)
    return base


def plate_with_holes_pattern(
    nx: int = 60, ny: int = 40, holes: int = 2, seed=None
) -> SymmetricPattern:
    """Rectangular plate mesh with circular holes removed (BLKHOLE family)."""
    nx = require_positive_int(nx, "nx", minimum=4)
    ny = require_positive_int(ny, "ny", minimum=4)
    rng = default_rng(seed)
    keep = np.ones((nx, ny), dtype=bool)
    for _ in range(max(0, holes)):
        cx = rng.uniform(0.2 * nx, 0.8 * nx)
        cy = rng.uniform(0.2 * ny, 0.8 * ny)
        radius = rng.uniform(0.08, 0.16) * min(nx, ny)
        ii, jj = np.meshgrid(np.arange(nx), np.arange(ny), indexing="ij")
        keep &= (ii - cx) ** 2 + (jj - cy) ** 2 > radius**2
    index = -np.ones((nx, ny), dtype=np.intp)
    index[keep] = np.arange(int(keep.sum()), dtype=np.intp)
    edges = []
    for i in range(nx):
        for j in range(ny):
            if not keep[i, j]:
                continue
            for di, dj in ((1, 0), (0, 1), (1, 1), (1, -1)):
                ii, jj = i + di, j + dj
                if 0 <= ii < nx and 0 <= jj < ny and keep[ii, jj]:
                    edges.append((int(index[i, j]), int(index[ii, jj])))
    pattern = SymmetricPattern.from_edges(int(keep.sum()), edges)
    return _ensure_connected(pattern)


def power_network_pattern(n: int = 1723, extra_edge_fraction: float = 0.18, seed=None) -> SymmetricPattern:
    """Power-transmission-network graph (POW9 family).

    A random tree grown with preferential attachment to *nearby* indices
    (giving the long stringy feeders typical of transmission networks) plus a
    small fraction of extra loop-closing edges.  Average degree stays close to
    2.4, matching POW9's 4117 nonzeros on 1723 equations.
    """
    n = require_positive_int(n, "n", minimum=2)
    rng = default_rng(seed)
    edges = []
    for v in range(1, n):
        # Attach to a recent vertex most of the time (stringy feeders), to a
        # uniformly random earlier vertex occasionally (subtransmission ties).
        if rng.random() < 0.75:
            lo = max(0, v - 20)
            parent = int(rng.integers(lo, v))
        else:
            parent = int(rng.integers(0, v))
        edges.append((parent, v))
    n_extra = int(extra_edge_fraction * n)
    for _ in range(n_extra):
        a = int(rng.integers(0, n))
        b = int(rng.integers(max(0, a - 50), min(n, a + 50)))
        if a != b:
            edges.append((a, b))
    return _ensure_connected(SymmetricPattern.from_edges(n, edges))


def random_geometric_pattern(n: int = 500, radius: float | None = None, seed=None) -> SymmetricPattern:
    """Random geometric graph: *n* points in the unit square, edges within *radius*.

    The default radius is chosen so the expected degree is about 7, giving a
    connected, locally clustered graph similar to an unstructured 2-D mesh.
    """
    n = require_positive_int(n, "n", minimum=2)
    rng = default_rng(seed)
    points = rng.random((n, 2))
    if radius is None:
        radius = float(np.sqrt(7.0 / (np.pi * n)))
    tree = cKDTree(points)
    pairs = tree.query_pairs(radius, output_type="ndarray")
    pattern = SymmetricPattern.from_edges(n, [(int(a), int(b)) for a, b in pairs])
    return _ensure_connected(pattern)


def shell_assembly_pattern(
    segments=((20, 40), (16, 56), (24, 48)),
    dofs_per_node: int = 1,
    cutouts: int = 2,
    panels: int = 2,
    stiffener_every: int = 0,
    seed=None,
) -> SymmetricPattern:
    """Irregular shell *assembly*: cylinder segments, cutouts and attached panels.

    Real launch-vehicle and engine-nacelle models (BCSSTK29, SHUTTLE, SKIRT)
    are not single clean cylinders: they are assemblies of shell segments with
    different circumferential resolutions, access cutouts, ring frames and
    attached panels.  That irregularity is what defeats purely local
    (level-structure) orderings on the real matrices, so the surrogate has to
    include it.

    Parameters
    ----------
    segments:
        Sequence of ``(n_axial, n_around)`` pairs; consecutive segments are
        joined ring-to-ring by nearest circumferential angle.
    dofs_per_node:
        Degrees of freedom per node (block expansion).
    cutouts:
        Number of rectangular cutouts (in axial/angular index space) removed
        from the interior of segments.
    panels:
        Number of small rectangular panels attached along one edge to a run of
        consecutive ring nodes (equipment panels / fins).
    stiffener_every:
        As in :func:`cylinder_shell_pattern`: add quarter-circumference braces
        on every that-many axial stations of each segment.
    seed:
        Deterministic seed for cutout/panel placement.
    """
    rng = default_rng(seed)
    edges: list[tuple[int, int]] = []
    removed: set[int] = set()
    offset = 0
    segment_meta = []  # (offset, n_axial, n_around)

    for n_axial, n_around in segments:
        n_axial = require_positive_int(n_axial, "n_axial", minimum=2)
        n_around = require_positive_int(n_around, "n_around", minimum=3)
        idx = lambda i, a, off=offset, na=n_around: off + i * na + a
        for i in range(n_axial):
            for a in range(n_around):
                edges.append((idx(i, a), idx(i, (a + 1) % n_around)))
                if i + 1 < n_axial:
                    edges.append((idx(i, a), idx(i + 1, a)))
                    edges.append((idx(i, a), idx(i + 1, (a + 1) % n_around)))
            if stiffener_every and i % stiffener_every == 0:
                quarter = max(1, n_around // 4)
                for a in range(n_around):
                    edges.append((idx(i, a), idx(i, (a + quarter) % n_around)))
        segment_meta.append((offset, n_axial, n_around))
        offset += n_axial * n_around

    # Join consecutive segments ring-to-ring by nearest angle.
    for (off_a, ax_a, around_a), (off_b, ax_b, around_b) in zip(segment_meta, segment_meta[1:]):
        last_ring = [off_a + (ax_a - 1) * around_a + a for a in range(around_a)]
        first_ring = [off_b + a for a in range(around_b)]
        for b_pos, b_vertex in enumerate(first_ring):
            angle = b_pos / around_b
            a_pos = int(round(angle * around_a)) % around_a
            edges.append((last_ring[a_pos], b_vertex))
            edges.append((last_ring[(a_pos + 1) % around_a], b_vertex))

    # Rectangular cutouts inside segments (never touching the joining rings).
    for _ in range(max(0, cutouts)):
        off, n_axial, n_around = segment_meta[int(rng.integers(0, len(segment_meta)))]
        if n_axial < 6 or n_around < 8:
            continue
        ax0 = int(rng.integers(1, max(2, n_axial - 4)))
        ax1 = min(n_axial - 2, ax0 + int(rng.integers(2, max(3, n_axial // 3))))
        an0 = int(rng.integers(0, n_around))
        width = int(rng.integers(2, max(3, n_around // 4)))
        for i in range(ax0, ax1):
            for da in range(width):
                removed.add(off + i * n_around + (an0 + da) % n_around)

    # Attached panels: small grids glued along one edge to consecutive ring nodes.
    extra_offset = offset
    for _ in range(max(0, panels)):
        off, n_axial, n_around = segment_meta[int(rng.integers(0, len(segment_meta)))]
        px = int(rng.integers(3, 7))
        py = int(rng.integers(3, 7))
        ring = int(rng.integers(0, n_axial))
        start_angle = int(rng.integers(0, n_around))
        panel_idx = lambda i, j, off2=extra_offset, w=py: off2 + i * w + j
        for i in range(px):
            for j in range(py):
                if i + 1 < px:
                    edges.append((panel_idx(i, j), panel_idx(i + 1, j)))
                if j + 1 < py:
                    edges.append((panel_idx(i, j), panel_idx(i, j + 1)))
        for j in range(py):
            shell_vertex = off + ring * n_around + (start_angle + j) % n_around
            edges.append((panel_idx(0, j), shell_vertex))
        extra_offset += px * py

    n_total = extra_offset
    keep = np.ones(n_total, dtype=bool)
    keep[list(removed)] = False
    kept_edges = [(u, v) for u, v in edges if keep[u] and keep[v]]
    remap = -np.ones(n_total, dtype=np.intp)
    remap[keep] = np.arange(int(keep.sum()), dtype=np.intp)
    pattern = SymmetricPattern.from_edges(
        int(keep.sum()), [(int(remap[u]), int(remap[v])) for u, v in kept_edges]
    )
    pattern = _ensure_connected(pattern)
    if dofs_per_node > 1:
        from repro.collections.meshes import multi_dof_pattern

        pattern = multi_dof_pattern(pattern, dofs_per_node)
    return pattern


def perforated_solid_pattern(
    nx: int = 18,
    ny: int = 12,
    nz: int = 10,
    cavities: int = 3,
    appendages: int = 1,
    dofs_per_node: int = 1,
    stencil: int = 27,
    seed=None,
) -> SymmetricPattern:
    """Irregular 3-D solid: a hexahedral brick with cavities and attached blocks.

    The large structural solids of the Boeing-Harwell set (BCSSTK30-33, FLAP)
    are machined parts and assemblies, not perfect bricks; bores, pockets and
    bolted-on appendages give them the irregular geometry on which the
    spectral ordering outperforms level-structure methods.  This generator
    removes ellipsoidal cavities from a brick mesh and glues smaller bricks
    onto randomly chosen faces.
    """
    from repro.collections.meshes import grid3d_pattern, multi_dof_pattern

    nx = require_positive_int(nx, "nx", minimum=3)
    ny = require_positive_int(ny, "ny", minimum=3)
    nz = require_positive_int(nz, "nz", minimum=3)
    rng = default_rng(seed)

    base = grid3d_pattern(nx, ny, nz, stencil=stencil)
    coords = np.array(
        [(i, j, k) for i in range(nx) for j in range(ny) for k in range(nz)], dtype=float
    )
    keep = np.ones(base.n, dtype=bool)
    dims = np.array([nx, ny, nz], dtype=float)
    for _ in range(max(0, cavities)):
        centre = rng.uniform(0.25, 0.75, size=3) * dims
        radii = rng.uniform(0.10, 0.22, size=3) * dims
        inside = np.sum(((coords - centre) / np.maximum(radii, 1e-9)) ** 2, axis=1) < 1.0
        keep &= ~inside

    kept_index = -np.ones(base.n, dtype=np.intp)
    kept_index[keep] = np.arange(int(keep.sum()), dtype=np.intp)
    edges = [
        (int(kept_index[u]), int(kept_index[v]))
        for u, v in base.edges()
        if keep[u] and keep[v]
    ]
    n_total = int(keep.sum())

    # Attach smaller bricks ("appendages") onto the x = nx-1 face.
    for _ in range(max(0, appendages)):
        ax = int(rng.integers(3, 6))
        ay = int(rng.integers(3, max(4, ny // 2)))
        az = int(rng.integers(3, max(4, nz // 2)))
        sub = grid3d_pattern(ax, ay, az, stencil=stencil)
        offset = n_total
        for u, v in sub.edges():
            edges.append((offset + int(u), offset + int(v)))
        j0 = int(rng.integers(0, max(1, ny - ay)))
        k0 = int(rng.integers(0, max(1, nz - az)))
        for j in range(ay):
            for k in range(az):
                host = kept_index[((nx - 1) * ny + (j0 + j)) * nz + (k0 + k)]
                if host >= 0:
                    edges.append((int(host), offset + (0 * ay + j) * az + k))
        n_total += sub.n

    pattern = _ensure_connected(SymmetricPattern.from_edges(n_total, edges))
    if dofs_per_node > 1:
        pattern = multi_dof_pattern(pattern, dofs_per_node)
    return pattern
