"""Structured meshes and elementary graphs.

These are the deterministic building blocks of the synthetic test collection:
regular 2-D/3-D grids with selectable stencils (the classic finite-difference
and finite-element discretizations), block expansion to several degrees of
freedom per node (which reproduces the row densities of structural-analysis
matrices), and the elementary graphs (paths, cycles, stars, complete graphs,
binary trees) the unit and property tests reason about analytically.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.pattern import SymmetricPattern
from repro.utils.validation import require_positive_int

__all__ = [
    "grid2d_pattern",
    "grid3d_pattern",
    "multi_dof_pattern",
    "path_pattern",
    "cycle_pattern",
    "star_pattern",
    "complete_pattern",
    "binary_tree_pattern",
]


def path_pattern(n: int) -> SymmetricPattern:
    """Path graph ``P_n`` (tridiagonal matrix).

    The minimum-envelope ordering of a path is the natural one with
    ``Esize = n - 1`` and bandwidth 1 — used as an analytic oracle in tests.
    """
    n = require_positive_int(n, "n")
    edges = [(i, i + 1) for i in range(n - 1)]
    return SymmetricPattern.from_edges(n, edges)


def cycle_pattern(n: int) -> SymmetricPattern:
    """Cycle graph ``C_n`` (periodic tridiagonal matrix)."""
    n = require_positive_int(n, "n", minimum=3)
    edges = [(i, (i + 1) % n) for i in range(n)]
    return SymmetricPattern.from_edges(n, edges)


def star_pattern(n: int) -> SymmetricPattern:
    """Star graph ``S_n``: vertex 0 adjacent to all others (arrowhead matrix)."""
    n = require_positive_int(n, "n", minimum=2)
    edges = [(0, i) for i in range(1, n)]
    return SymmetricPattern.from_edges(n, edges)


def complete_pattern(n: int) -> SymmetricPattern:
    """Complete graph ``K_n`` (dense matrix); every ordering has the same envelope."""
    n = require_positive_int(n, "n", minimum=1)
    edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    return SymmetricPattern.from_edges(n, edges)


def binary_tree_pattern(depth: int) -> SymmetricPattern:
    """Complete binary tree of the given depth (``2^(depth+1) - 1`` vertices)."""
    depth = require_positive_int(depth, "depth", minimum=0) if depth != 0 else 0
    n = 2 ** (depth + 1) - 1
    edges = []
    for child in range(1, n):
        parent = (child - 1) // 2
        edges.append((parent, child))
    return SymmetricPattern.from_edges(n, edges)


def grid2d_pattern(nx: int, ny: int, stencil: int = 5) -> SymmetricPattern:
    """Regular ``nx x ny`` grid.

    Parameters
    ----------
    nx, ny:
        Grid dimensions; vertex ``(i, j)`` has index ``i * ny + j``.
    stencil:
        ``5`` — 5-point stencil (bilinear FD Laplacian);
        ``9`` — 9-point stencil (bilinear quadrilateral finite elements,
        includes the diagonals of each cell).

    The natural (row-by-row) ordering of the 5-point grid has bandwidth
    ``ny`` and envelope size close to ``nx * ny * ny`` — the classic example
    where ordering matters.
    """
    nx = require_positive_int(nx, "nx")
    ny = require_positive_int(ny, "ny")
    if stencil not in (5, 9):
        raise ValueError(f"stencil must be 5 or 9, got {stencil}")
    idx = lambda i, j: i * ny + j
    edges = []
    for i in range(nx):
        for j in range(ny):
            if i + 1 < nx:
                edges.append((idx(i, j), idx(i + 1, j)))
            if j + 1 < ny:
                edges.append((idx(i, j), idx(i, j + 1)))
            if stencil == 9:
                if i + 1 < nx and j + 1 < ny:
                    edges.append((idx(i, j), idx(i + 1, j + 1)))
                if i + 1 < nx and j - 1 >= 0:
                    edges.append((idx(i, j), idx(i + 1, j - 1)))
    return SymmetricPattern.from_edges(nx * ny, edges)


def grid3d_pattern(nx: int, ny: int, nz: int, stencil: int = 7) -> SymmetricPattern:
    """Regular ``nx x ny x nz`` brick grid.

    Parameters
    ----------
    nx, ny, nz:
        Grid dimensions; vertex ``(i, j, k)`` has index ``(i*ny + j)*nz + k``.
    stencil:
        ``7`` — face neighbours only (FD Laplacian);
        ``27`` — all neighbours of the surrounding cube (trilinear hexahedral
        finite elements), which matches the row densities of 3-D structural
        models.
    """
    nx = require_positive_int(nx, "nx")
    ny = require_positive_int(ny, "ny")
    nz = require_positive_int(nz, "nz")
    if stencil not in (7, 27):
        raise ValueError(f"stencil must be 7 or 27, got {stencil}")
    idx = lambda i, j, k: (i * ny + j) * nz + k
    if stencil == 7:
        offsets = [(1, 0, 0), (0, 1, 0), (0, 0, 1)]
    else:
        offsets = [
            (di, dj, dk)
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
            for dk in (-1, 0, 1)
            if (di, dj, dk) > (0, 0, 0)
        ]
    edges = []
    for i in range(nx):
        for j in range(ny):
            for k in range(nz):
                for di, dj, dk in offsets:
                    ii, jj, kk = i + di, j + dj, k + dk
                    if 0 <= ii < nx and 0 <= jj < ny and 0 <= kk < nz:
                        edges.append((idx(i, j, k), idx(ii, jj, kk)))
    return SymmetricPattern.from_edges(nx * ny * nz, edges)


def multi_dof_pattern(pattern: SymmetricPattern, dofs_per_node: int) -> SymmetricPattern:
    """Expand every graph vertex into ``dofs_per_node`` fully coupled unknowns.

    This is how structural-analysis matrices arise from meshes: each mesh node
    carries several displacement/rotation degrees of freedom, and two nodes
    connected by an element couple all their degrees of freedom.  Expanding a
    mesh with ``d`` degrees of freedom per node multiplies the matrix order by
    ``d`` and the typical row density by roughly ``d`` as well, which matches
    the nonzeros-per-row of the BCSSTK matrices (20-35).
    """
    d = require_positive_int(dofs_per_node, "dofs_per_node")
    if d == 1:
        return pattern.copy()
    n = pattern.n
    edges = []
    for i in range(n):
        # Intra-node coupling between the d unknowns of node i.
        for a in range(d):
            for b in range(a + 1, d):
                edges.append((i * d + a, i * d + b))
        for j in pattern.neighbors(i):
            if j < i:
                continue
            for a in range(d):
                for b in range(d):
                    edges.append((i * d + a, int(j) * d + b))
    return SymmetricPattern.from_edges(n * d, edges)
