"""Random-graph families: power-law and small-world stress workloads.

The paper's evaluation is confined to finite-element and structural
surrogates, so every kernel, cost model and timeout heuristic in this repo
grew up on mesh-like patterns: bounded degree, large diameter, good
separators.  The families here are the opposite regime — power-law degree
tails, tiny diameters, no useful separators — and exist to stress the
spectral machinery on graphs it was never tuned for:

* :func:`barabasi_albert_pattern` — preferential attachment (Batagelj-Brandes
  construction), power-law degree tail;
* :func:`erdos_renyi_gnp_pattern` — the classic G(n, p) Bernoulli model;
* :func:`erdos_renyi_gnm_pattern` — G(n, m): exactly ``m`` uniformly random
  distinct edges;
* :func:`watts_strogatz_pattern` — small-world ring lattice with random
  rewiring;
* :func:`rmat_pattern` — recursive-matrix (R-MAT / stochastic Kronecker)
  generator with Graph500-style quadrant probabilities.

All generators are deterministic given a seed, vectorized (numpy array ops
throughout — the only Python-level loops are over recursion *levels* or
top-up *rounds*, never over vertices or edges), and return a connected
:class:`repro.sparse.SymmetricPattern` (largest component extracted, as the
mesh generators do).

Registry integration
--------------------
:data:`RANDOM_PROBLEMS` registers one pinned configuration per family as a
first-class problem next to the paper matrices (``repro suite RANDOM/BA``,
``repro suite 'RANDOM/*'``).  Each :class:`GeneratorSpec` carries *analytic*
``expected_n(scale)`` / ``expected_nnz(scale)`` functions, so the scheduler's
:class:`repro.batch.sched.CostModel` can plan (and ``--timeout auto`` can
bound) cells it has never observed — unlike the paper problems, whose sizes
come from the paper's tables.

Scale semantics: ``scale=1.0`` targets ``2**20`` (~10^6) vertices and the
registry default (0.125) about 131k, so ``repro suite RANDOM/BA --scale 1.0``
is the n~10^6 acceptance cell of ROADMAP item 4.  The R-MAT vertex count is
rounded to the nearest power of two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.collections.generators import _ensure_connected
from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng
from repro.utils.validation import require_positive_int

__all__ = [
    "GeneratorSpec",
    "RANDOM_PROBLEMS",
    "barabasi_albert_pattern",
    "erdos_renyi_gnp_pattern",
    "erdos_renyi_gnm_pattern",
    "watts_strogatz_pattern",
    "rmat_pattern",
]


# --------------------------------------------------------------------------- #
# generators
# --------------------------------------------------------------------------- #
def barabasi_albert_pattern(n: int, m: int = 4, seed=None) -> SymmetricPattern:
    """Preferential-attachment graph (Barabási-Albert model).

    Uses the Batagelj-Brandes linear-time construction: the edge list is a
    flat array ``M`` of ``2 n m`` endpoint slots where slot ``2e`` holds the
    attaching vertex ``e // m`` and slot ``2e + 1`` copies the value of a
    uniformly random earlier (or current) slot — choosing a uniform *slot*
    is exactly choosing a vertex with probability proportional to its
    current multigraph degree.  The copy chain is resolved by vectorized
    pointer chasing (each round follows every unresolved pointer one step;
    chain lengths are geometric, so the expected round count is O(log n m)),
    keeping the whole construction free of per-vertex Python loops.

    Self-loops and parallel edges of the multigraph are collapsed by the
    pattern constructor, and the largest component is extracted (the
    occasional early vertex whose every stub self-looped).
    """
    n = require_positive_int(n, "n", minimum=2)
    m = require_positive_int(m, "m", minimum=1)
    if m >= n:
        raise ValueError(f"m must be smaller than n, got m={m}, n={n}")
    rng = default_rng(seed)
    stubs = n * m
    e = np.arange(stubs, dtype=np.int64)
    heads = e // m
    # Uniform over the 2e already-written slots plus the just-written head
    # (the inclusive upper end is what makes early self-loops possible, as in
    # the original construction).
    r = rng.integers(0, 2 * e + 1)
    ptr = r.copy()
    odd = (ptr & 1).astype(bool)
    while odd.any():
        # Odd slot 2k+1 copies slot r[k]; follow until an even (head) slot.
        ptr = np.where(odd, r[ptr >> 1], ptr)
        odd = (ptr & 1).astype(bool)
    tails = (ptr >> 1) // m
    pattern = SymmetricPattern.from_edge_arrays(n, heads, tails)
    return _ensure_connected(pattern)


def _decode_pair_indices(n: int, k: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map linear indices of the strict upper triangle to ``(i, j)`` pairs.

    Row-major enumeration of pairs ``0 <= i < j < n``:
    ``k = i (2n - i - 1) / 2 + (j - i - 1)``.  The inverse is computed in
    float64 (exact well past ``n = 10^6``: the discriminant stays below
    2^53) and corrected by one integer step each way against rounding.
    """
    k = np.asarray(k, dtype=np.int64)

    def row_offset(i: np.ndarray) -> np.ndarray:
        return i * (2 * n - i - 1) // 2

    b = 2.0 * n - 1.0
    i = np.floor((b - np.sqrt(b * b - 8.0 * k.astype(np.float64))) / 2.0)
    i = np.clip(i.astype(np.int64), 0, n - 2)
    i = np.where(row_offset(i) > k, i - 1, i)
    i = np.where(row_offset(i + 1) <= k, i + 1, i)
    j = k - row_offset(i) + i + 1
    return i, j


def erdos_renyi_gnp_pattern(
    n: int, p: float | None = None, avg_degree: float = 8.0, seed=None
) -> SymmetricPattern:
    """Erdős–Rényi G(n, p): each of the ``n (n-1) / 2`` pairs is an edge
    independently with probability ``p`` (default: ``avg_degree / (n - 1)``).

    Sampled without materializing the pair space: the edge *count* is drawn
    from the exact Binomial, then that many pair indices are drawn uniformly
    and deduplicated.  The with-replacement draw loses a vanishing fraction
    of edges to birthday collisions (~``E^2 / n^2 (n-1)``, under 0.1% for
    every registered configuration), a bias far inside the model's own
    standard deviation.
    """
    n = require_positive_int(n, "n", minimum=2)
    if p is None:
        p = min(1.0, float(avg_degree) / (n - 1))
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    rng = default_rng(seed)
    n_pairs = n * (n - 1) // 2
    n_edges = int(rng.binomial(n_pairs, p))
    k = np.unique(rng.integers(0, n_pairs, size=n_edges))
    rows, cols = _decode_pair_indices(n, k)
    return _ensure_connected(SymmetricPattern.from_edge_arrays(n, rows, cols))


def erdos_renyi_gnm_pattern(n: int, n_edges: int | None = None, seed=None) -> SymmetricPattern:
    """Erdős–Rényi G(n, m): exactly ``n_edges`` distinct uniformly random
    edges (default ``4 n``, average degree 8).

    Pair indices are drawn with replacement and deduplicated *in first-draw
    order* — sequential sampling without replacement, so the kept prefix of
    ``n_edges`` indices is a uniform random subset.  The top-up loop runs a
    constant expected number of rounds (not per-edge).
    """
    n = require_positive_int(n, "n", minimum=2)
    n_pairs = n * (n - 1) // 2
    if n_edges is None:
        n_edges = min(4 * n, n_pairs)
    n_edges = require_positive_int(n_edges, "n_edges", minimum=1)
    if n_edges > n_pairs:
        raise ValueError(f"n_edges must not exceed {n_pairs} for n={n}, got {n_edges}")
    rng = default_rng(seed)
    chosen = np.empty(0, dtype=np.int64)
    while chosen.size < n_edges:
        missing = n_edges - chosen.size
        batch = rng.integers(0, n_pairs, size=missing + missing // 8 + 16)
        combined = np.concatenate([chosen, batch])
        _, first = np.unique(combined, return_index=True)
        chosen = combined[np.sort(first)]
    rows, cols = _decode_pair_indices(n, chosen[:n_edges])
    return _ensure_connected(SymmetricPattern.from_edge_arrays(n, rows, cols))


def watts_strogatz_pattern(n: int, k: int = 6, beta: float = 0.1, seed=None) -> SymmetricPattern:
    """Watts–Strogatz small world: ring lattice (each vertex joined to its
    ``k // 2`` nearest neighbours on each side) with every edge rewired to a
    uniformly random endpoint with probability ``beta``.

    Rewiring keeps the source endpoint, as in the original model; rewired
    edges that land on their source or duplicate an existing edge are
    collapsed by the pattern constructor (an O(beta k / n) loss).
    """
    n = require_positive_int(n, "n", minimum=4)
    k = require_positive_int(k, "k", minimum=2)
    if k % 2 != 0:
        raise ValueError(f"k must be even (k//2 neighbours per side), got {k}")
    if k >= n:
        raise ValueError(f"k must be smaller than n, got k={k}, n={n}")
    if not 0.0 <= beta <= 1.0:
        raise ValueError(f"beta must lie in [0, 1], got {beta}")
    rng = default_rng(seed)
    base = np.arange(n, dtype=np.int64)
    rows = np.concatenate([base for _ in range(k // 2)])
    cols = np.concatenate([(base + d) % n for d in range(1, k // 2 + 1)])
    rewire = rng.random(rows.size) < beta
    targets = rng.integers(0, n, size=rows.size)
    cols = np.where(rewire, targets, cols)
    return _ensure_connected(SymmetricPattern.from_edge_arrays(n, rows, cols))


def rmat_pattern(
    levels: int,
    edge_factor: int = 8,
    probabilities: tuple[float, float, float, float] = (0.57, 0.19, 0.19, 0.05),
    seed=None,
) -> SymmetricPattern:
    """R-MAT / stochastic-Kronecker graph on ``2**levels`` vertices.

    Each of the ``edge_factor * 2**levels`` edge draws descends the adjacency
    matrix one quadrant per level with probabilities ``(a, b, c, d)`` (the
    Graph500 defaults), accumulating one row and one column bit per level —
    a loop over *levels* (= log2 n), with every level a single vectorized
    draw over all edges.  The result is symmetrized, duplicate edges and
    self-loops are collapsed, and the largest component is extracted; the
    skewed quadrant probabilities make both the duplicate fraction and the
    isolated-vertex fraction substantial, which is exactly the hub-heavy
    structure this family exists to stress.
    """
    levels = require_positive_int(levels, "levels", minimum=2)
    edge_factor = require_positive_int(edge_factor, "edge_factor", minimum=1)
    a, b, c, d = (float(x) for x in probabilities)
    if min(a, b, c, d) < 0 or abs(a + b + c + d - 1.0) > 1e-9:
        raise ValueError(
            f"quadrant probabilities must be non-negative and sum to 1, got {probabilities}"
        )
    rng = default_rng(seed)
    n = 1 << levels
    n_draws = edge_factor * n
    rows = np.zeros(n_draws, dtype=np.int64)
    cols = np.zeros(n_draws, dtype=np.int64)
    for _ in range(levels):
        u = rng.random(n_draws)
        row_bit = u >= a + b
        col_bit = ((u >= a) & (u < a + b)) | (u >= a + b + c)
        rows = (rows << 1) | row_bit
        cols = (cols << 1) | col_bit
    pattern = SymmetricPattern.from_edge_arrays(n, rows, cols)
    return _ensure_connected(pattern)


# --------------------------------------------------------------------------- #
# registry specs
# --------------------------------------------------------------------------- #
#: Vertex-count target at ``scale=1.0`` (the n~10^6 regime of ROADMAP item 4).
BASE_N = 1 << 20

#: Smallest vertex count a scaled-down family drops to.
MIN_N = 64


def _scaled_n(scale: float) -> int:
    return max(MIN_N, int(round(BASE_N * float(scale))))


def _rmat_levels(scale: float) -> int:
    return max(1, int(round(np.log2(_scaled_n(scale)))))


@dataclass(frozen=True)
class GeneratorSpec:
    """One registered random-graph family configuration.

    The random twin of :class:`repro.collections.registry.ProblemSpec`:
    where a paper problem carries the paper's reported sizes, a generator
    family carries *analytic* size functions — ``expected_n(scale)`` and
    ``expected_nnz(scale)`` (pattern nonzeros including the implicit
    diagonal) — derived from the model's parameters.  The scheduler's cost
    model uses them to plan, and ``--timeout auto`` to bound, cells that
    were never observed; the property tests pin the measured nonzero count
    of every family to its analytic estimate within ``nnz_rtol``.
    """

    name: str
    family: str
    description: str
    generator: Callable[[float], SymmetricPattern]
    expected_n: Callable[[float], int]
    expected_nnz: Callable[[float], int]
    params: dict = field(default_factory=dict)
    #: Relative tolerance of ``expected_nnz`` vs the measured count.  Tight
    #: for the models with exact edge accounting, loose for R-MAT, whose
    #: duplicate-edge and isolated-vertex fractions drift with size.
    nnz_rtol: float = 0.10
    table: str = "random"

    def build(self, scale: float | None = None) -> SymmetricPattern:
        """Build the family instance at the given (or default) scale."""
        from repro.collections.registry import default_scale

        if scale is None:
            scale = default_scale()
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return self.generator(scale)


def _ba_nnz(scale: float) -> int:
    # m new multigraph edges per vertex; self-loop/duplicate collapse costs
    # well under 1% (the uniform-slot draw rarely lands on the current head).
    n = _scaled_n(scale)
    return int(n + 2 * 4 * n)


def _gnp_nnz(scale: float) -> int:
    # Binomial mean: n(n-1)/2 pairs at p = 8/(n-1) gives 4n edges.
    n = _scaled_n(scale)
    return int(n + 8 * n)


def _gnm_nnz(scale: float) -> int:
    # Exactly 4n distinct edges by construction.
    n = _scaled_n(scale)
    return int(n + 8 * n)


def _ws_nnz(scale: float) -> int:
    # Ring lattice carries exactly n k / 2 = 3n edges; rewiring collapses an
    # O(beta k / n) fraction into self-loops and duplicates.
    n = _scaled_n(scale)
    return int(n + 6 * n * 0.995)


def _rmat_nnz(scale: float) -> int:
    # 8 n edge draws; after symmetrization/dedup and the largest-component
    # trim, roughly 84% survive as distinct off-diagonal pairs and about 75%
    # of the vertices remain (measured across levels 8-17 at the Graph500
    # quadrant mix; see the calibration test in
    # tests/test_collections_generators.py, which pins a wide tolerance).
    n = 1 << _rmat_levels(scale)
    return int(0.75 * n + 2 * 8 * n * 0.84)


RANDOM_PROBLEMS: dict[str, GeneratorSpec] = {
    spec.name: spec
    for spec in [
        GeneratorSpec(
            name="RANDOM/BA",
            family="barabasi-albert",
            description="Preferential attachment (power-law tail), m=4, seed 101",
            generator=lambda scale: barabasi_albert_pattern(_scaled_n(scale), m=4, seed=101),
            expected_n=_scaled_n,
            expected_nnz=_ba_nnz,
            params={"m": 4, "seed": 101},
        ),
        GeneratorSpec(
            name="RANDOM/GNP",
            family="erdos-renyi-gnp",
            description="Erdos-Renyi G(n,p), expected degree 8, seed 102",
            generator=lambda scale: erdos_renyi_gnp_pattern(
                _scaled_n(scale), avg_degree=8.0, seed=102
            ),
            expected_n=_scaled_n,
            expected_nnz=_gnp_nnz,
            params={"avg_degree": 8.0, "seed": 102},
        ),
        GeneratorSpec(
            name="RANDOM/GNM",
            family="erdos-renyi-gnm",
            description="Erdos-Renyi G(n,m), exactly 4n edges, seed 103",
            generator=lambda scale: erdos_renyi_gnm_pattern(_scaled_n(scale), seed=103),
            expected_n=_scaled_n,
            expected_nnz=_gnm_nnz,
            params={"edges_per_vertex": 4, "seed": 103},
        ),
        GeneratorSpec(
            name="RANDOM/WS",
            family="watts-strogatz",
            description="Watts-Strogatz small world, k=6, beta=0.1, seed 104",
            generator=lambda scale: watts_strogatz_pattern(
                _scaled_n(scale), k=6, beta=0.1, seed=104
            ),
            expected_n=_scaled_n,
            expected_nnz=_ws_nnz,
            params={"k": 6, "beta": 0.1, "seed": 104},
        ),
        GeneratorSpec(
            name="RANDOM/RMAT",
            family="rmat",
            description="R-MAT (Graph500 quadrants), edge factor 8, seed 105",
            generator=lambda scale: rmat_pattern(_rmat_levels(scale), edge_factor=8, seed=105),
            expected_n=lambda scale: int(0.75 * (1 << _rmat_levels(scale))),
            expected_nnz=_rmat_nnz,
            params={"edge_factor": 8, "probabilities": (0.57, 0.19, 0.19, 0.05), "seed": 105},
            nnz_rtol=0.25,
        ),
    ]
}
