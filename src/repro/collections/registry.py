"""Registry of surrogate problems keyed by the paper's matrix names.

Tables 4.1-4.3 of the paper evaluate 18 matrices.  For each of them this
registry records the paper's size (equations and nonzeros), the envelope sizes
the paper reports for each ordering algorithm (used by ``EXPERIMENTS.md`` to
compare shapes), and a generator that builds a synthetic surrogate from the
same structural family.

Surrogate sizes
---------------
Real problems have tens of thousands of equations; a pure-Python envelope
solver and eigensolver handle those, but not in a benchmark loop.  Every
surrogate therefore accepts a ``scale`` argument: ``scale=1.0`` approximates
the paper's size, the default ``scale=0.125`` shrinks the mesh dimensions so
that the vertex count is roughly ``scale`` times the paper's (and the suite
runs in minutes).  Set the environment variable ``REPRO_BENCH_SCALE`` to
change the default used by the benchmark harnesses.
"""

from __future__ import annotations

import difflib
import fnmatch
import os
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.collections.generators import (
    airfoil_pattern,
    annulus_pattern,
    cylinder_shell_pattern,
    perforated_solid_pattern,
    plate_with_holes_pattern,
    power_network_pattern,
    random_geometric_pattern,
    shell_assembly_pattern,
)
from repro.collections.meshes import grid2d_pattern, grid3d_pattern, multi_dof_pattern
from repro.collections.random_graphs import RANDOM_PROBLEMS, GeneratorSpec
from repro.sparse.pattern import SymmetricPattern

__all__ = [
    "ProblemSpec",
    "PAPER_PROBLEMS",
    "RANDOM_PROBLEMS",
    "UnknownProblemError",
    "available_problems",
    "all_problems",
    "get_problem_spec",
    "resolve_problems",
    "expected_problem_size",
    "has_analytic_size",
    "load_problem",
    "default_scale",
]


@dataclass(frozen=True)
class ProblemSpec:
    """One test problem of the paper and its synthetic surrogate.

    Attributes
    ----------
    name:
        The paper's matrix name (e.g. ``"BCSSTK29"``).
    table:
        Which paper table the matrix appears in (``"4.1"``, ``"4.2"``, ``"4.3"``).
    paper_n:
        Number of equations reported by the paper.
    paper_nnz:
        Number of nonzeros reported by the paper.
    description:
        What the matrix is (as far as the collections document it).
    paper_envelopes:
        The envelope sizes the paper reports, keyed by algorithm name
        (``spectral``, ``gk``, ``gps``, ``rcm``).
    paper_bandwidths:
        The bandwidths the paper reports, same keys.
    generator:
        Callable ``generator(scale) -> SymmetricPattern`` building the
        surrogate.
    """

    name: str
    table: str
    paper_n: int
    paper_nnz: int
    description: str
    paper_envelopes: dict = field(default_factory=dict)
    paper_bandwidths: dict = field(default_factory=dict)
    generator: Callable[[float], SymmetricPattern] = None

    def build(self, scale: float | None = None) -> SymmetricPattern:
        """Build the surrogate pattern at the given (or default) scale."""
        if scale is None:
            scale = default_scale()
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return self.generator(scale)


def default_scale() -> float:
    """Default surrogate scale (``REPRO_BENCH_SCALE`` env var, else 0.125)."""
    value = os.environ.get("REPRO_BENCH_SCALE", "")
    if not value:
        return 0.125
    try:
        return float(value)
    except ValueError as exc:
        raise ValueError(f"REPRO_BENCH_SCALE must be a float, got {value!r}") from exc


def _linear(scale: float, paper_value: int, minimum: int) -> int:
    """Scale a linear mesh dimension: ``round(paper_value * scale**(1/d))`` ~ handled by caller."""
    return max(minimum, int(round(paper_value * scale)))


def _dim2(scale: float, value: int, minimum: int = 4) -> int:
    """Scale one dimension of a 2-D mesh so the vertex count scales by ``scale``."""
    return max(minimum, int(round(value * np.sqrt(scale))))


def _dim3(scale: float, value: int, minimum: int = 3) -> int:
    """Scale one dimension of a 3-D mesh so the vertex count scales by ``scale``."""
    return max(minimum, int(round(value * scale ** (1.0 / 3.0))))


# --------------------------------------------------------------------------- #
# Surrogate generators, one per paper matrix.
# --------------------------------------------------------------------------- #

def _bcsstk13(scale: float) -> SymmetricPattern:
    # Fluid flow generalized eigenproblem structure: moderate 3-D block mesh.
    base = grid3d_pattern(_dim3(scale, 14), _dim3(scale, 12), _dim3(scale, 12), stencil=27)
    return base


def _bcsstk29(scale: float) -> SymmetricPattern:
    # Buckling model of an aircraft engine nacelle: shell assembly with
    # several segments, access cutouts, ring frames and equipment panels.
    s = np.sqrt(scale)
    return shell_assembly_pattern(
        segments=(
            (max(3, int(35 * s)), max(6, int(40 * s))),
            (max(3, int(30 * s)), max(6, int(34 * s))),
            (max(3, int(25 * s)), max(6, int(46 * s))),
        ),
        dofs_per_node=4,
        cutouts=3,
        panels=3,
        stiffener_every=6,
        seed=29,
    )


def _bcsstk30(scale: float) -> SymmetricPattern:
    # Off-shore platform / solid model: perforated brick with appendages.
    return perforated_solid_pattern(
        nx=_dim3(scale, 36), ny=_dim3(scale, 18), nz=_dim3(scale, 15),
        cavities=3, appendages=2, dofs_per_node=3, seed=30,
    )


def _bcsstk31(scale: float) -> SymmetricPattern:
    # Automobile component model: elongated irregular 3-D solid.
    return perforated_solid_pattern(
        nx=_dim3(scale, 60), ny=_dim3(scale, 20), nz=_dim3(scale, 10),
        cavities=4, appendages=2, dofs_per_node=3, seed=31,
    )


def _bcsstk32(scale: float) -> SymmetricPattern:
    # Automobile chassis: plate-dominated model with openings, 3 dofs per node.
    base = plate_with_holes_pattern(
        nx=_dim2(scale, 170), ny=_dim2(scale, 90), holes=5, seed=32
    )
    return multi_dof_pattern(base, 3)


def _bcsstk33(scale: float) -> SymmetricPattern:
    # Pin boss (solid) model: compact perforated 3-D solid with high row density.
    return perforated_solid_pattern(
        nx=_dim3(scale, 20), ny=_dim3(scale, 16), nz=_dim3(scale, 9),
        cavities=2, appendages=1, dofs_per_node=3, seed=33,
    )


def _can1072(scale: float) -> SymmetricPattern:
    # CANnes structural dummy matrices: unstructured 2-D finite element mesh.
    return random_geometric_pattern(max(64, int(1072 * scale * 8)), seed=1072)


def _pow9(scale: float) -> SymmetricPattern:
    return power_network_pattern(max(32, int(1723 * scale * 8)), seed=9)


def _blkhole(scale: float) -> SymmetricPattern:
    side = _dim2(scale * 8, 52)
    return plate_with_holes_pattern(nx=side, ny=max(4, int(side * 0.8)), holes=3, seed=2132)


def _dwt2680(scale: float) -> SymmetricPattern:
    rings = max(3, int(round(20 * np.sqrt(scale * 8))))
    around = max(8, int(round(134 * np.sqrt(scale * 8))))
    return annulus_pattern(n_rings=rings, n_around=around)


def _sstmodel(scale: float) -> SymmetricPattern:
    # Supersonic transport structural model: stiffened shell assembly.
    s = np.sqrt(scale * 8)
    return shell_assembly_pattern(
        segments=(
            (max(3, int(26 * s)), max(6, int(20 * s))),
            (max(3, int(20 * s)), max(6, int(26 * s))),
        ),
        dofs_per_node=1,
        cutouts=2,
        panels=3,
        stiffener_every=5,
        seed=3345,
    )


def _barth4(scale: float) -> SymmetricPattern:
    return airfoil_pattern(max(200, int(6019 * scale)), seed=4)


def _shuttle(scale: float) -> SymmetricPattern:
    # Shuttle rocket booster model: long segmented shell with frames.
    s = np.sqrt(scale)
    return shell_assembly_pattern(
        segments=(
            (max(3, int(60 * s)), max(6, int(48 * s))),
            (max(3, int(55 * s)), max(6, int(56 * s))),
            (max(3, int(40 * s)), max(6, int(44 * s))),
        ),
        dofs_per_node=1,
        cutouts=2,
        panels=3,
        stiffener_every=8,
        seed=9205,
    )


def _skirt(scale: float) -> SymmetricPattern:
    # Aft skirt of the shuttle booster: conical shell assembly, denser rows.
    s = np.sqrt(scale)
    return shell_assembly_pattern(
        segments=(
            (max(3, int(40 * s)), max(6, int(52 * s))),
            (max(3, int(30 * s)), max(6, int(40 * s))),
        ),
        dofs_per_node=3,
        cutouts=2,
        panels=2,
        stiffener_every=4,
        seed=12598,
    )


def _pwt(scale: float) -> SymmetricPattern:
    # Pressurized wind tunnel model: large unstructured surface mesh.
    return airfoil_pattern(max(400, int(36519 * scale)), seed=36519)


def _body(scale: float) -> SymmetricPattern:
    # Automobile body-in-white surface mesh: large plate with many openings.
    return plate_with_holes_pattern(
        nx=_dim2(scale, 320), ny=_dim2(scale, 140), holes=6, seed=45087
    )


def _flap(scale: float) -> SymmetricPattern:
    # Actuator flap model: irregular solid + shell mix, high row density.
    return perforated_solid_pattern(
        nx=_dim3(scale, 48), ny=_dim3(scale, 28), nz=_dim3(scale, 13),
        cavities=3, appendages=2, dofs_per_node=3, seed=51537,
    )


def _in3c(scale: float) -> SymmetricPattern:
    # Largest NASA problem (262620 equations): very large unstructured mesh.
    return airfoil_pattern(max(600, int(262620 * scale * 0.25)), seed=262620)


PAPER_PROBLEMS: dict[str, ProblemSpec] = {
    spec.name: spec
    for spec in [
        # ---- Table 4.1: Boeing-Harwell structural analysis ---------------- #
        ProblemSpec(
            "BCSSTK13", "4.1", 2003, 11973,
            "Fluid flow generalized eigenvalue problem (structural set)",
            paper_envelopes={"spectral": 64486, "gk": 58542, "gps": 57501, "rcm": 56299},
            paper_bandwidths={"spectral": 455, "gk": 223, "gps": 145, "rcm": 198},
            generator=_bcsstk13,
        ),
        ProblemSpec(
            "BCSSTK29", "4.1", 13992, 316740,
            "Buckling model of an aircraft engine nacelle (shell)",
            paper_envelopes={"spectral": 3067004, "gk": 6948091, "gps": 7040998, "rcm": 7374140},
            paper_bandwidths={"spectral": 882, "gk": 1505, "gps": 869, "rcm": 914},
            generator=_bcsstk29,
        ),
        ProblemSpec(
            "BCSSTK30", "4.1", 28924, 1036208,
            "Off-shore generator platform (3-D solid)",
            paper_envelopes={"spectral": 9135742, "gk": 15686968, "gps": 23242990, "rcm": 23242990},
            paper_bandwidths={"spectral": 4769, "gk": 16947, "gps": 2515, "rcm": 2512},
            generator=_bcsstk30,
        ),
        ProblemSpec(
            "BCSSTK31", "4.1", 35588, 608502,
            "Automobile component model (3-D solid)",
            paper_envelopes={"spectral": 19574992, "gk": 22330987, "gps": 23416579, "rcm": 23641124},
            paper_bandwidths={"spectral": 4763, "gk": 1880, "gps": 1104, "rcm": 1176},
            generator=_bcsstk31,
        ),
        ProblemSpec(
            "BCSSTK32", "4.1", 44609, 1029655,
            "Automobile chassis model (plates + solids)",
            paper_envelopes={"spectral": 27614531, "gk": 49457764, "gps": 50067390, "rcm": 52170122},
            paper_bandwidths={"spectral": 13792, "gk": 3761, "gps": 2339, "rcm": 2390},
            generator=_bcsstk32,
        ),
        ProblemSpec(
            "BCSSTK33", "4.1", 8738, 300321,
            "Pin boss model (3-D solid, dense rows)",
            paper_envelopes={"spectral": 3788702, "gk": 3571395, "gps": 3717032, "rcm": 3799285},
            paper_bandwidths={"spectral": 1199, "gk": 932, "gps": 519, "rcm": 749},
            generator=_bcsstk33,
        ),
        # ---- Table 4.2: Boeing-Harwell miscellaneous ---------------------- #
        ProblemSpec(
            "CAN1072", "4.2", 1072, 6758,
            "Cannes structural dummy matrix (unstructured 2-D mesh)",
            paper_envelopes={"spectral": 55228, "gk": 48538, "gps": 74067, "rcm": 56361},
            paper_bandwidths={"spectral": 301, "gk": 234, "gps": 159, "rcm": 175},
            generator=_can1072,
        ),
        ProblemSpec(
            "POW9", "4.2", 1723, 4117,
            "Power network (very sparse, tree-like)",
            paper_envelopes={"spectral": 29149, "gk": 64788, "gps": 69446, "rcm": 79260},
            paper_bandwidths={"spectral": 264, "gk": 201, "gps": 116, "rcm": 133},
            generator=_pow9,
        ),
        ProblemSpec(
            "BLKHOLE", "4.2", 2132, 8502,
            "Plate with holes (2-D finite elements)",
            paper_envelopes={"spectral": 120767, "gk": 169219, "gps": 173243, "rcm": 171437},
            paper_bandwidths={"spectral": 426, "gk": 134, "gps": 106, "rcm": 105},
            generator=_blkhole,
        ),
        ProblemSpec(
            "DWT2680", "4.2", 2680, 13853,
            "DTNSRDC wheel/disc mesh (annulus)",
            paper_envelopes={"spectral": 93907, "gk": 96591, "gps": 101769, "rcm": 102983},
            paper_bandwidths={"spectral": 142, "gk": 92, "gps": 65, "rcm": 69},
            generator=_dwt2680,
        ),
        ProblemSpec(
            "SSTMODEL", "4.2", 3345, 13047,
            "Supersonic transport structural model (stiffened shell)",
            paper_envelopes={"spectral": 86635, "gk": 104562, "gps": 110936, "rcm": 105421},
            paper_bandwidths={"spectral": 228, "gk": 125, "gps": 83, "rcm": 88},
            generator=_sstmodel,
        ),
        # ---- Table 4.3: NASA ------------------------------------------------ #
        ProblemSpec(
            "BARTH4", "4.3", 6019, 23492,
            "Unstructured airfoil CFD mesh (Barth)",
            paper_envelopes={"spectral": 345623, "gk": 658181, "gps": 669239, "rcm": 725950},
            paper_bandwidths={"spectral": 593, "gk": 280, "gps": 213, "rcm": 215},
            generator=_barth4,
        ),
        ProblemSpec(
            "SHUTTLE", "4.3", 9205, 45966,
            "Shuttle solid rocket booster shell model",
            paper_envelopes={"spectral": 566496, "gk": 531420, "gps": 531422, "rcm": 567887},
            paper_bandwidths={"spectral": 631, "gk": 92, "gps": 92, "rcm": 150},
            generator=_shuttle,
        ),
        ProblemSpec(
            "SKIRT", "4.3", 12598, 104559,
            "Shuttle booster aft skirt model",
            paper_envelopes={"spectral": 688924, "gk": 1013423, "gps": 1039544, "rcm": 1068993},
            paper_bandwidths={"spectral": 1021, "gk": 425, "gps": 309, "rcm": 314},
            generator=_skirt,
        ),
        ProblemSpec(
            "PWT", "4.3", 36519, 181313,
            "Pressurized wind tunnel model",
            paper_envelopes={"spectral": 5101527, "gk": 5520603, "gps": 5638855, "rcm": 5652184},
            paper_bandwidths={"spectral": 1627, "gk": 450, "gps": 340, "rcm": 340},
            generator=_pwt,
        ),
        ProblemSpec(
            "BODY", "4.3", 45087, 208821,
            "Automobile body surface mesh",
            paper_envelopes={"spectral": 6706747, "gk": 10526446, "gps": 10658164, "rcm": 11470411},
            paper_bandwidths={"spectral": 2496, "gk": 1081, "gps": 667, "rcm": 756},
            generator=_body,
        ),
        ProblemSpec(
            "FLAP", "4.3", 51537, 531157,
            "Actuator flap model (solid + shell)",
            paper_envelopes={"spectral": 10471456, "gk": 12367171, "gps": 12339642, "rcm": 12598705},
            paper_bandwidths={"spectral": 1784, "gk": 1019, "gps": 743, "rcm": 874},
            generator=_flap,
        ),
        ProblemSpec(
            "IN3C", "4.3", 262620, 1026888,
            "Largest NASA mesh (262k equations)",
            paper_envelopes={"spectral": 425232466, "gk": 519316395, "gps": 526302263, "rcm": 581700745},
            paper_bandwidths={"spectral": 9504, "gk": 3780, "gps": 2473, "rcm": 2746},
            generator=_in3c,
        ),
    ]
}


class UnknownProblemError(KeyError):
    """A problem name (or glob) that matches nothing in the registry.

    Subclasses :class:`KeyError` for backward compatibility, but carries the
    failing ``name``, near-miss ``suggestions`` and the full ``available``
    name list so callers (the CLI exits 2 on it) can print a structured
    message instead of a bare repr.
    """

    def __init__(self, name: str, suggestions: list[str], available: list[str]):
        self.name = name
        self.suggestions = list(suggestions)
        self.available = list(available)
        hint = f" did you mean: {', '.join(self.suggestions)}?" if self.suggestions else ""
        self.message = (
            f"unknown problem {name!r};{hint} available: {', '.join(self.available)}"
        )
        super().__init__(self.message)

    def __str__(self) -> str:  # KeyError would quote the message
        return self.message


def _external_problems() -> dict:
    """Registered external matrices (``EXT/<NAME>``), name → spec.

    Imported lazily: the external module pulls in the matrix readers and the
    download cache, none of which the surrogate-only paths need.
    """
    from repro.collections.external import registered_externals

    return registered_externals()


def available_problems(table: str | None = None, paper_order: bool = False) -> list[str]:
    """Names of the registered problems, optionally restricted to one table.

    ``table`` may be a paper table (``"4.1"``, ``"4.2"``, ``"4.3"``),
    ``"random"`` for the generated random-graph families, or ``"external"``
    for matrices registered via ``repro fetch --register``; ``None`` keeps
    the historical default of the 18 paper matrices (the other tables are
    opt-in via explicit names, globs, or ``table=...`` so that the default
    suite matches the paper's).

    ``paper_order=True`` returns the names in the row order of the paper's
    tables (the registration order) instead of alphabetically — the order the
    benchmark result files use for side-by-side comparison with the paper.
    """
    if table == "random":
        names = list(RANDOM_PROBLEMS)
    elif table == "external":
        names = list(_external_problems())
    else:
        names = [
            name for name, spec in PAPER_PROBLEMS.items()
            if table is None or spec.table == table
        ]
    return names if paper_order else sorted(names)


def all_problems() -> list[str]:
    """Every registered problem name: paper matrices, random families, then
    registered external matrices (``EXT/*``)."""
    return list(PAPER_PROBLEMS) + list(RANDOM_PROBLEMS) + list(_external_problems())


def get_problem_spec(name: str) -> "ProblemSpec | GeneratorSpec | None":
    """The spec registered under ``name`` (case-insensitive), or ``None``.

    ``EXT/``-prefixed names resolve against the registered external matrices
    (:func:`repro.collections.external.registered_externals`).
    """
    key = str(name).strip().upper()
    spec = PAPER_PROBLEMS.get(key) or RANDOM_PROBLEMS.get(key)
    if spec is None and key.startswith("EXT/"):
        from repro.collections.external import get_external_spec

        spec = get_external_spec(key)
    return spec


def _lookup(name: str) -> ProblemSpec | GeneratorSpec:
    spec = get_problem_spec(name)
    if spec is None:
        key = str(name).strip().upper()
        names = all_problems()
        suggestions = difflib.get_close_matches(key, names, n=3, cutoff=0.6)
        raise UnknownProblemError(name, suggestions, sorted(names))
    return spec


def resolve_problems(patterns: list[str]) -> list[str]:
    """Expand a mix of problem names and ``fnmatch`` globs to registry names.

    Each entry is normalized (case-insensitive) and either matched exactly or,
    when it contains a glob metacharacter (``*``, ``?``, ``[``), expanded
    against every registered name in registration order (paper tables first,
    then random families).  Duplicates are dropped while preserving order.

    Raises
    ------
    UnknownProblemError
        For a name that is not registered (with near-miss suggestions) or a
        glob that matches nothing.
    """
    names = all_problems()
    resolved: list[str] = []
    for pattern in patterns:
        key = str(pattern).strip().upper()
        if any(ch in key for ch in "*?["):
            matches = [name for name in names if fnmatch.fnmatchcase(name, key)]
            if not matches:
                raise UnknownProblemError(pattern, [], sorted(names))
            resolved.extend(matches)
        else:
            resolved.append(_lookup(key).name)
    seen: set[str] = set()
    return [name for name in resolved if not (name in seen or seen.add(name))]


def expected_problem_size(problem: str, scale: float | None = None) -> float:
    """Estimated ``n * nnz`` of a problem cell, for cost planning.

    Paper problems use the paper's reported sizes rescaled by ``scale**2``
    (vertex count and nonzeros both scale roughly linearly with ``scale``);
    random-graph families use their analytic ``expected_n``/``expected_nnz``;
    registered external matrices (``EXT/*``) are fixed-size and report their
    exact ``n * nnz`` regardless of *scale*.  Unknown problems return the
    neutral weight 1.0 — the historical fallback of
    :class:`repro.batch.sched.CostModel`.
    """
    from repro.collections.external import ExternalSpec

    spec = get_problem_spec(problem)
    effective = default_scale() if scale is None else float(scale)
    if isinstance(spec, ProblemSpec):
        return float(spec.paper_n) * float(spec.paper_nnz) * effective**2
    if isinstance(spec, GeneratorSpec):
        return float(spec.expected_n(effective)) * float(spec.expected_nnz(effective))
    if isinstance(spec, ExternalSpec):
        return float(spec.n) * float(spec.nnz)
    return 1.0


def has_analytic_size(problem: str) -> bool:
    """True when the problem's size is known without building it (analytic
    random family, or a fixed-size registered external matrix)."""
    from repro.collections.external import ExternalSpec

    return isinstance(get_problem_spec(problem), (GeneratorSpec, ExternalSpec))


def load_problem(
    name: str, scale: float | None = None
) -> tuple[SymmetricPattern, ProblemSpec | GeneratorSpec]:
    """Build the surrogate for the named problem.

    Parameters
    ----------
    name:
        Registered problem name, case-insensitive: a paper matrix
        (e.g. ``"barth4"``) or a random-graph family (e.g. ``"random/ba"``).
    scale:
        Surrogate scale; ``None`` uses :func:`default_scale`.

    Returns
    -------
    (pattern, spec)

    Raises
    ------
    UnknownProblemError
        If the name is not registered (lists near-miss suggestions).
    """
    spec = _lookup(name)
    return spec.build(scale), spec
