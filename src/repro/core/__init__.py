"""High-level pipeline: the public face of the library.

:func:`repro.core.pipeline.reorder` is the one-call entry point — structure in,
ordering plus envelope statistics out — and
:func:`repro.core.pipeline.compare_orderings` reproduces a full paper-table row
set for a single matrix.
"""

from repro.core.pipeline import EnvelopeReport, compare_orderings, reorder

__all__ = ["reorder", "compare_orderings", "EnvelopeReport"]
