"""The user-facing pipeline of the library.

Typical use::

    import scipy.sparse as sp
    from repro import reorder

    report = reorder(matrix, algorithm="spectral")
    reordered = report.apply(matrix)          # P^T A P
    print(report.statistics.envelope_size)    # down from report.original.envelope_size

or, to reproduce a row block of the paper's tables for your own matrix::

    from repro import compare_orderings
    result = compare_orderings(matrix)
    print(result.to_text())
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.runner import ExperimentResult, run_comparison
from repro.envelope.metrics import EnvelopeStatistics, envelope_statistics
from repro.orderings.base import Ordering
from repro.orderings.registry import PAPER_ALGORITHMS, get_ordering_algorithm
from repro.sparse.ops import permute_symmetric, structure_from_matrix
from repro.sparse.pattern import SymmetricPattern
from repro.utils.timing import Timer

__all__ = ["EnvelopeReport", "reorder", "compare_orderings"]


@dataclass(frozen=True)
class EnvelopeReport:
    """Result of :func:`reorder`.

    Attributes
    ----------
    ordering:
        The computed :class:`Ordering`.
    original:
        Envelope statistics of the matrix in its natural order.
    statistics:
        Envelope statistics after reordering.
    run_time:
        Wall-clock seconds spent computing the ordering.
    """

    ordering: Ordering
    original: EnvelopeStatistics
    statistics: EnvelopeStatistics
    run_time: float

    @property
    def envelope_reduction(self) -> float:
        """Ratio ``original envelope / reordered envelope`` (>1 means improvement)."""
        if self.statistics.envelope_size == 0:
            return float("inf") if self.original.envelope_size > 0 else 1.0
        return self.original.envelope_size / self.statistics.envelope_size

    def apply(self, matrix):
        """Return ``P^T A P`` for a values-carrying matrix (or a permuted pattern)."""
        if isinstance(matrix, SymmetricPattern):
            return matrix.permute(self.ordering.perm)
        return permute_symmetric(matrix, self.ordering.perm)


def reorder(matrix, algorithm: str = "spectral", **options) -> EnvelopeReport:
    """Compute an envelope-reducing ordering of a symmetric matrix.

    Parameters
    ----------
    matrix:
        Symmetric SciPy sparse matrix, dense array, or
        :class:`repro.sparse.SymmetricPattern` (structure only is used).
    algorithm:
        Registered algorithm name: ``"spectral"`` (default, Algorithm 1 of the
        paper), ``"rcm"``, ``"gps"``, ``"gk"``, ``"sloan"``, ``"hybrid"``, ...
    **options:
        Forwarded to the algorithm (e.g. ``method="multilevel"`` for the
        spectral ordering).

    Returns
    -------
    EnvelopeReport
    """
    pattern = structure_from_matrix(matrix)
    func = get_ordering_algorithm(algorithm)
    timer = Timer()
    with timer:
        ordering = func(pattern, **options)
    original = envelope_statistics(pattern)
    stats = envelope_statistics(pattern, ordering.perm)
    return EnvelopeReport(
        ordering=ordering,
        original=original,
        statistics=stats,
        run_time=timer.elapsed,
    )


def compare_orderings(
    matrix,
    algorithms: tuple = PAPER_ALGORITHMS,
    problem: str = "problem",
    **algorithm_options,
) -> ExperimentResult:
    """Run several ordering algorithms on one matrix and rank them.

    This reproduces one problem block of the paper's Tables 4.1-4.3 for an
    arbitrary user matrix.  See :func:`repro.analysis.runner.run_comparison`.
    """
    pattern = structure_from_matrix(matrix)
    return run_comparison(
        pattern,
        algorithms=algorithms,
        problem=problem,
        algorithm_options=algorithm_options or None,
    )
