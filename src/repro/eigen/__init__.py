"""Eigen-solver substrate for the second Laplacian eigenvector (Fiedler vector).

The spectral ordering (Algorithm 1 of the paper) needs an eigenvector for the
smallest *positive* Laplacian eigenvalue.  This subpackage provides every
solver discussed in the paper plus standard alternatives used as ablations:

* :mod:`repro.eigen.lanczos` — Lanczos with full reorthogonalization and
  deflation of the constant null vector (the paper's "standard algorithm");
* :mod:`repro.eigen.rqi` — Rayleigh Quotient Iteration with MINRES inner
  solves (the refinement step of the multilevel scheme);
* :mod:`repro.eigen.multilevel` — the Barnard-Simon multilevel algorithm:
  contraction, coarse solve, interpolation, RQI refinement (Section 3);
* :mod:`repro.eigen.fiedler` — the :func:`fiedler_vector` front end with
  method selection (``auto``, ``lanczos``, ``multilevel``, ``lobpcg``,
  ``eigsh``, ``dense``).
"""

from repro.eigen.lanczos import LanczosResult, lanczos_smallest_nontrivial
from repro.eigen.rqi import RQIResult, rayleigh_quotient_iteration
from repro.eigen.multilevel import MultilevelResult, multilevel_fiedler
from repro.eigen.fiedler import FiedlerResult, fiedler_vector
from repro.eigen.workspace import SpectralWorkspace, spectral_workspace

__all__ = [
    "LanczosResult",
    "lanczos_smallest_nontrivial",
    "RQIResult",
    "rayleigh_quotient_iteration",
    "MultilevelResult",
    "multilevel_fiedler",
    "FiedlerResult",
    "fiedler_vector",
    "SpectralWorkspace",
    "spectral_workspace",
]
