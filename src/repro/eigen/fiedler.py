"""Uniform front end for computing a second Laplacian eigenvector (Fiedler vector).

The paper computes the eigenvector either with Lanczos or with the multilevel
scheme; modern SciPy offers additional robust options (``eigsh`` / ARPACK with
a small shift, and LOBPCG).  :func:`fiedler_vector` exposes them all behind a
single ``method`` switch, and ``method="auto"`` picks a sensible solver based
on problem size:

=============  =====================================================
``dense``      full ``numpy.linalg.eigh`` on the dense Laplacian
               (exact; only for small graphs)
``lanczos``    :func:`repro.eigen.lanczos.lanczos_smallest_nontrivial`
``multilevel`` :func:`repro.eigen.multilevel.multilevel_fiedler`
``eigsh``      ``scipy.sparse.linalg.eigsh`` (shifted, smallest-magnitude)
``lobpcg``     ``scipy.sparse.linalg.lobpcg`` with constant-vector constraint
``auto``       dense for ``n <= 96``, lanczos for ``n <= 4000``,
               multilevel above
=============  =====================================================

All solvers return a vector orthogonal to the constant vector with a
deterministic sign convention (the entry of largest magnitude is positive),
so orderings derived from it are reproducible across solvers up to the
sort-direction choice Algorithm 1 makes anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse.linalg as spla

from repro.eigen.lanczos import deflate_constant, lanczos_smallest_nontrivial
from repro.eigen.multilevel import multilevel_fiedler
from repro.eigen.workspace import spectral_workspace
from repro.sparse.ops import structure_from_matrix
from repro.utils.rng import default_rng

__all__ = ["FiedlerResult", "fiedler_vector", "FIEDLER_METHODS"]

#: Methods accepted by :func:`fiedler_vector`.
FIEDLER_METHODS = ("auto", "dense", "lanczos", "multilevel", "eigsh", "lobpcg")


@dataclass(frozen=True)
class FiedlerResult:
    """A computed second Laplacian eigenpair.

    Attributes
    ----------
    eigenvalue:
        The algebraic connectivity estimate ``lambda_2``.
    eigenvector:
        Unit-norm Fiedler vector, orthogonal to the constant vector, with the
        largest-magnitude entry positive.
    method:
        The solver actually used (after ``auto`` resolution).
    residual_norm:
        ``||Q x - lambda x||_2``.
    converged:
        Whether the requested tolerance was met.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    method: str
    residual_norm: float
    converged: bool


def _canonical_sign(x: np.ndarray) -> np.ndarray:
    """Flip the sign so the entry of largest magnitude is positive (ties: first)."""
    idx = int(np.argmax(np.abs(x)))
    if x[idx] < 0:
        return -x
    return x


def _resolve_auto(n: int) -> str:
    if n <= 96:
        return "dense"
    if n <= 4000:
        return "lanczos"
    return "multilevel"


def fiedler_vector(
    pattern,
    *,
    method: str = "auto",
    tol: float = 1e-8,
    rng=None,
    check_connected: bool = True,
    tol_policy: str = "residual",
    **solver_options,
) -> FiedlerResult:
    """Compute a second Laplacian eigenvector of the adjacency graph of *pattern*.

    Parameters
    ----------
    pattern:
        :class:`repro.sparse.SymmetricPattern`, SciPy sparse matrix, or dense
        array (structure only is used).
    method:
        One of :data:`FIEDLER_METHODS`.
    tol:
        Residual tolerance.
    rng:
        Seed or generator for the iterative solvers.
    check_connected:
        If true (default), raise :class:`ValueError` when the graph is
        disconnected — the Fiedler value of a disconnected graph is 0 and its
        eigenvector carries no ordering information.  Callers that handle
        components themselves (the spectral ordering does) pass ``False``.
    tol_policy:
        ``"residual"`` (default) or ``"ordering"`` — the spectral-ordering
        fast path of the ``lanczos`` and ``multilevel`` solvers: stop
        refining once the eigenvector's induced vertex *ranking* is stable,
        which orderings (the only consumers of ranks) hit far earlier than
        the eigen-residual tolerance.  Ignored by the ``dense``, ``eigsh``
        and ``lobpcg`` solvers, and a no-op on graphs with at most
        :data:`repro.eigen.lanczos.ORDERING_EXACT_MAX_N` vertices.
    **solver_options:
        Extra keyword arguments forwarded to the chosen solver
        (e.g. ``coarsest_size=...`` for the multilevel method).

    Returns
    -------
    FiedlerResult
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    if n < 2:
        raise ValueError("the Fiedler vector is defined only for graphs with >= 2 vertices")
    if method not in FIEDLER_METHODS:
        raise ValueError(f"method must be one of {FIEDLER_METHODS}, got {method!r}")
    if tol_policy not in ("residual", "ordering"):
        raise ValueError(
            f"tol_policy must be 'residual' or 'ordering', got {tol_policy!r}"
        )
    workspace = spectral_workspace(pattern)
    if check_connected and workspace.components()[0] != 1:
        raise ValueError(
            "the adjacency graph is disconnected; order each connected component "
            "separately (the spectral ordering does this automatically)"
        )

    resolved = _resolve_auto(n) if method == "auto" else method
    rng = default_rng(rng)

    # Persistent-store fast path: a converged eigensolve is cached keyed by
    # the structure digest, the full solver configuration AND the rng state
    # before the solve; the entry replays the solver's rng consumption on
    # load, so a warm run returns the bit-identical vector and leaves the
    # caller's random stream exactly where a cold run would.  Restricted to
    # the repo-owned deterministic iterations (lanczos / multilevel).
    store_slot = None
    if resolved in ("lanczos", "multilevel"):
        from repro.store import spectral as codecs
        from repro.store.core import get_default_store

        store = get_default_store()
        if store is not None:
            state_before = codecs.rng_state_json(rng)
            if state_before is not None:
                params = codecs.fiedler_params(
                    resolved, tol, tol_policy, solver_options, state_before
                )
                if params is not None:
                    digest = workspace.digest()
                    cached = codecs.load_fiedler(store, digest, params, rng)
                    if cached is not None:
                        return cached
                    store_slot = (store, digest, params)

    laplacian = workspace.laplacian()

    if resolved == "dense":
        values, vectors = np.linalg.eigh(laplacian.toarray())
        eigenvalue = float(values[1])
        vector = deflate_constant(vectors[:, 1])
        vector /= np.linalg.norm(vector)
        residual = float(np.linalg.norm(laplacian @ vector - eigenvalue * vector))
        converged = True
    elif resolved == "lanczos":
        result = lanczos_smallest_nontrivial(
            laplacian, tol=tol, rng=rng, tol_policy=tol_policy, **solver_options
        )
        eigenvalue, vector = result.eigenvalue, result.eigenvector
        residual, converged = result.residual_norm, result.converged
    elif resolved == "multilevel":
        result = multilevel_fiedler(
            pattern, tol=tol, rng=rng, tol_policy=tol_policy, **solver_options
        )
        eigenvalue, vector = result.eigenvalue, result.eigenvector
        residual, converged = result.residual_norm, result.converged
    elif resolved == "eigsh":
        eigenvalue, vector, residual, converged = _fiedler_eigsh(
            laplacian, tol=tol, rng=rng, **solver_options
        )
    elif resolved == "lobpcg":
        eigenvalue, vector, residual, converged = _fiedler_lobpcg(
            laplacian, tol=tol, rng=rng, **solver_options
        )
    else:  # pragma: no cover - guarded by FIEDLER_METHODS check
        raise AssertionError(resolved)

    vector = _canonical_sign(vector)
    result = FiedlerResult(
        eigenvalue=float(eigenvalue),
        eigenvector=vector,
        method=resolved,
        residual_norm=float(residual),
        converged=bool(converged),
    )
    if store_slot is not None and result.converged:
        from repro.store import spectral as codecs

        store, digest, params = store_slot
        state_after = codecs.rng_state_json(rng)
        if state_after is not None:
            try:
                codecs.save_fiedler(store, digest, params, result, state_after)
            except OSError:
                pass  # a read-only/full store must not fail the solve
    return result


def _fiedler_eigsh(laplacian, *, tol: float, rng, maxiter: int | None = None):
    """Second-smallest eigenpair via ARPACK shift-invert around zero.

    A small positive diagonal shift keeps the factorization nonsingular; the
    two smallest eigenpairs are requested and the nontrivial one selected.
    """
    n = laplacian.shape[0]
    v0 = default_rng(rng).standard_normal(n)
    k = 2
    try:
        values, vectors = spla.eigsh(
            laplacian, k=k, sigma=0.0, which="LM", v0=v0, maxiter=maxiter, tol=tol
        )
    except (RuntimeError, spla.ArpackError, ValueError):
        # Shift-invert can fail on tiny/singular systems; fall back to SM mode.
        values, vectors = spla.eigsh(
            laplacian, k=k, which="SM", v0=v0, maxiter=maxiter, tol=max(tol, 1e-10)
        )
    order = np.argsort(values)
    values, vectors = values[order], vectors[:, order]
    vector = deflate_constant(vectors[:, 1])
    norm = np.linalg.norm(vector)
    if norm < 1e-300:
        vector = deflate_constant(vectors[:, 0])
        norm = np.linalg.norm(vector)
    vector /= norm
    eigenvalue = float(values[1])
    residual = float(np.linalg.norm(laplacian @ vector - eigenvalue * vector))
    return eigenvalue, vector, residual, residual <= max(tol, 1e-6) * max(1.0, eigenvalue)


def _fiedler_lobpcg(laplacian, *, tol: float, rng, maxiter: int = 500):
    """Second-smallest eigenpair via LOBPCG with the constant vector constrained out."""
    n = laplacian.shape[0]
    generator = default_rng(rng)
    x0 = generator.standard_normal((n, 1))
    x0 -= x0.mean(axis=0, keepdims=True)
    ones = np.ones((n, 1)) / np.sqrt(n)
    import warnings

    with warnings.catch_warnings():
        # LOBPCG warns when postprocessing stops slightly above the requested
        # tolerance; the residual is checked and reported explicitly below.
        warnings.simplefilter("ignore")
        values, vectors = spla.lobpcg(
            laplacian, x0, Y=ones, largest=False, tol=tol, maxiter=maxiter
        )
    vector = deflate_constant(vectors[:, 0])
    vector /= np.linalg.norm(vector)
    eigenvalue = float(values[0])
    residual = float(np.linalg.norm(laplacian @ vector - eigenvalue * vector))
    return eigenvalue, vector, residual, residual <= max(tol, 1e-6) * max(1.0, eigenvalue)
