"""Lanczos iteration for the smallest nontrivial Laplacian eigenpair.

"The standard algorithm for computing a few eigenvalues and eigenvectors of
large sparse symmetric matrices is the Lanczos algorithm." (Section 3.)

The Laplacian ``Q`` is positive semidefinite with a known null vector — the
constant vector ``u = (1, ..., 1)`` when the graph is connected.  We therefore
run Lanczos on ``Q`` restricted to the orthogonal complement of ``u``
(deflation by projection) and extract the *smallest* Ritz pair, which then
approximates ``(lambda_2, x_2)``.

Full reorthogonalization is used: the matrices of interest here have at most a
few hundred thousand rows and the Krylov bases stay short (tens of vectors),
so the O(n·k²) cost of full reorthogonalization is negligible next to the
robustness it buys (no ghost eigenvalues).  This follows Parlett's advice for
small subspace dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils.rng import default_rng

__all__ = ["LanczosResult", "lanczos_smallest_nontrivial", "deflate_constant"]


@dataclass(frozen=True)
class LanczosResult:
    """Result of a Lanczos run.

    Attributes
    ----------
    eigenvalue:
        Converged Ritz value approximating ``lambda_2``.
    eigenvector:
        Unit-norm Ritz vector orthogonal to the constant vector.
    residual_norm:
        ``||Q x - lambda x||_2`` at exit.
    iterations:
        Number of Lanczos steps performed.
    converged:
        Whether the residual tolerance was met.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool


def deflate_constant(x: np.ndarray) -> np.ndarray:
    """Project *x* onto the orthogonal complement of the constant vector."""
    return x - x.mean()


def _as_operator(matrix):
    if sp.issparse(matrix):
        return matrix.tocsr(), matrix.shape[0]
    if isinstance(matrix, spla.LinearOperator):
        return matrix, matrix.shape[0]
    matrix = np.asarray(matrix, dtype=np.float64)
    return matrix, matrix.shape[0]


def lanczos_smallest_nontrivial(
    laplacian,
    *,
    tol: float = 1e-8,
    max_iter: int | None = None,
    start: np.ndarray | None = None,
    rng=None,
    restarts: int = 3,
) -> LanczosResult:
    """Smallest nontrivial eigenpair of a graph Laplacian by Lanczos.

    Parameters
    ----------
    laplacian:
        Sparse/dense Laplacian matrix or a symmetric positive semidefinite
        linear operator with a constant null vector.
    tol:
        Relative residual tolerance ``||Qx - λx|| <= tol * max(1, λ)``.
    max_iter:
        Maximum Krylov dimension per restart (default ``min(n, max(2, 10·log2 n + 30))``).
    start:
        Optional start vector (will be deflated and normalized).  A good start
        vector — such as an interpolated coarse eigenvector — dramatically
        reduces the iteration count, which is what the multilevel scheme
        exploits.
    rng:
        Seed or generator for the random start vector.
    restarts:
        Number of thick-restart style outer restarts (restart from the current
        best Ritz vector) before giving up on the tolerance.

    Returns
    -------
    LanczosResult
    """
    op, n = _as_operator(laplacian)
    if n < 2:
        raise ValueError("Laplacian must be at least 2 x 2")
    matvec = (lambda v: op @ v) if not isinstance(op, spla.LinearOperator) else op.matvec

    if max_iter is None:
        max_iter = int(min(n - 1, max(30, 10 * np.log2(max(n, 2)) + 30)))
    max_iter = max(1, min(max_iter, n - 1))

    rng = default_rng(rng)
    if start is None:
        q = rng.standard_normal(n)
    else:
        q = np.asarray(start, dtype=np.float64).copy()
    q = deflate_constant(q)
    norm = np.linalg.norm(q)
    if norm < 1e-300:
        q = deflate_constant(rng.standard_normal(n))
        norm = np.linalg.norm(q)
    q /= norm

    best = None
    total_iters = 0
    # Workspace is allocated once and reused across restarts: every slot read
    # below (basis[:k_used], alphas[:k_used], betas[:k_used-1]) is written
    # first within each restart, so reuse cannot leak state between restarts.
    basis = np.zeros((max_iter + 1, n))
    alphas = np.zeros(max_iter)
    betas = np.zeros(max_iter)
    for _restart in range(max(1, restarts)):
        basis[0] = q
        k_used = 0
        for k in range(max_iter):
            w = matvec(basis[k])
            w = deflate_constant(w)
            alphas[k] = float(np.dot(basis[k], w))
            w -= alphas[k] * basis[k]
            if k > 0:
                w -= betas[k - 1] * basis[k - 1]
            # Full reorthogonalization against the basis built so far, and an
            # explicit re-deflation of the constant null vector: rounding
            # reintroduces a component along it, and because 0 is an extreme
            # eigenvalue of Q the Lanczos process would amplify that component
            # into a spurious zero Ritz value.
            coeffs = basis[: k + 1] @ w
            w -= basis[: k + 1].T @ coeffs
            w = deflate_constant(w)
            beta = float(np.linalg.norm(w))
            k_used = k + 1
            if beta < 1e-14:
                break
            betas[k] = beta
            basis[k + 1] = w / beta

        total_iters += k_used
        theta, s = la.eigh_tridiagonal(alphas[:k_used], betas[: k_used - 1])
        ritz_value = float(theta[0])
        ritz_vector = basis[:k_used].T @ s[:, 0]
        ritz_vector = deflate_constant(ritz_vector)
        ritz_norm = np.linalg.norm(ritz_vector)
        if ritz_norm < 1e-300:  # degenerate; retry with a fresh random vector
            q = deflate_constant(rng.standard_normal(n))
            q /= np.linalg.norm(q)
            continue
        ritz_vector /= ritz_norm
        residual = matvec(ritz_vector) - ritz_value * ritz_vector
        residual_norm = float(np.linalg.norm(residual))
        candidate = LanczosResult(
            eigenvalue=ritz_value,
            eigenvector=ritz_vector,
            residual_norm=residual_norm,
            iterations=total_iters,
            converged=residual_norm <= tol * max(1.0, abs(ritz_value)),
        )
        if best is None or candidate.residual_norm < best.residual_norm:
            best = candidate
        if candidate.converged:
            return candidate
        # Restart from the best Ritz vector found so far.
        q = best.eigenvector.copy()

    if best is None:  # pragma: no cover - requires repeatedly degenerate Ritz vectors
        raise RuntimeError("Lanczos failed to produce a nontrivial Ritz vector")
    return best
