"""Lanczos iteration for the smallest nontrivial Laplacian eigenpair.

"The standard algorithm for computing a few eigenvalues and eigenvectors of
large sparse symmetric matrices is the Lanczos algorithm." (Section 3.)

The Laplacian ``Q`` is positive semidefinite with a known null vector — the
constant vector ``u = (1, ..., 1)`` when the graph is connected.  We therefore
run Lanczos on ``Q`` restricted to the orthogonal complement of ``u``
(deflation by projection) and extract the *smallest* Ritz pair, which then
approximates ``(lambda_2, x_2)``.

Reorthogonalization policy
--------------------------
Finite-precision Lanczos loses orthogonality exactly as Ritz pairs converge,
and because ``0`` is an extreme eigenvalue of ``Q`` the lost orthogonality
shows up as *ghost* copies of converged Ritz values (and of the deflated null
vector).  Two defenses are provided:

* ``reorth="selective"`` (default) — Simon's ω-recurrence estimates the
  worst-case loss of orthogonality of the incoming basis vector each step and
  triggers a full Gram–Schmidt pass against the stored basis only when the
  estimate crosses ``sqrt(eps)``.  That maintains *semiorthogonality*, which
  is sufficient for the computed Ritz values to be exact eigenvalues of a
  nearby matrix (Grcar/Simon) — i.e. no ghosts — at a fraction of the
  ``O(n·k²)`` cost of reorthogonalizing every step.
* ``reorth="full"`` — the escape hatch: reorthogonalize on every step, the
  pre-selective behaviour, for callers who want the belt-and-braces variant.

Either way the constant null vector is re-deflated on **every** step (the
projection is ``O(n)`` and the zero eigenvalue is the one direction selective
bookkeeping must never be allowed to miss), and the returned residual
``||Qx - λx||`` is computed explicitly from the Ritz pair — a ghost pair
cannot fake that check, which is what the convergence flag is based on.

Early-stopping policy
---------------------
``tol_policy="ordering"`` serves the spectral *ordering* use case: orderings
consume only the ranking of the eigenvector's components, which typically
freezes long before the eigen-residual meets ``tol``.  Under this policy the
iteration periodically forms the current Ritz vector and stops as soon as the
induced ranking is unchanged across consecutive checks.  The default
``tol_policy="residual"`` keeps the classical residual test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg as la
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.utils.rng import default_rng

__all__ = ["LanczosResult", "lanczos_smallest_nontrivial", "deflate_constant"]

#: Machine epsilon and the semiorthogonality threshold of the ω-recurrence.
_EPS = float(np.finfo(np.float64).eps)
_SQRT_EPS = float(np.sqrt(_EPS))

#: ``tol_policy="ordering"``: steps between ranking checks, and how many
#: consecutive stable rankings stop the iteration.
_ORDERING_CHECK_EVERY = 8
_ORDERING_STABLE_CHECKS = 2

#: Below this problem size the ordering policy accepts only *exact* ranking
#: equality between checks — the regime the differential sweep test pins to
#: byte-identical envelope/bandwidth metrics.  Above it, near-tied components
#: jitter in their last bits indefinitely, so stability is additionally
#: detected by stagnation of the Ritz vector itself (rotation per check below
#: :data:`ORDERING_STAGNATION_RTOL`), trading exact reproduction of the
#: default path's ordering for the early stop — orderings consume only ranks,
#: and the envelope/bandwidth quality difference is at the noise level (see
#: ``docs/performance.md``).
ORDERING_EXACT_MAX_N = 2000
ORDERING_STAGNATION_RTOL = 1e-3

#: Initial Krylov-block capacity; the preallocated block doubles on demand up
#: to ``max_iter + 1`` rows, so short runs never pay for the worst case.
_INITIAL_BLOCK_ROWS = 48


@dataclass(frozen=True)
class LanczosResult:
    """Result of a Lanczos run.

    Attributes
    ----------
    eigenvalue:
        Converged Ritz value approximating ``lambda_2``.
    eigenvector:
        Unit-norm Ritz vector orthogonal to the constant vector.
    residual_norm:
        ``||Q x - lambda x||_2`` at exit.
    iterations:
        Number of Lanczos steps performed.
    converged:
        Whether the stopping criterion was met (the residual tolerance, or a
        stable ranking under ``tol_policy="ordering"``).
    reorth_count:
        Full reorthogonalization passes actually performed (every step under
        ``reorth="full"``).
    stopped_on:
        ``"residual"`` or ``"ordering"`` — which criterion ended the run.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool
    reorth_count: int = 0
    stopped_on: str = "residual"


def deflate_constant(x: np.ndarray) -> np.ndarray:
    """Project *x* onto the orthogonal complement of the constant vector."""
    return x - x.mean()


def _as_operator(matrix):
    if sp.issparse(matrix):
        return matrix.tocsr(), matrix.shape[0]
    if isinstance(matrix, spla.LinearOperator):
        return matrix, matrix.shape[0]
    matrix = np.asarray(matrix, dtype=np.float64)
    return matrix, matrix.shape[0]


def _canonical_ritz(vector: np.ndarray) -> np.ndarray:
    """Sign-normalized unit Ritz vector (largest-magnitude entry positive).

    The eigensolver's sign is arbitrary step to step; fix it the same way
    :func:`repro.eigen.fiedler.fiedler_vector` does before comparing rankings
    or rotations across checks.
    """
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector = vector / norm
    idx = int(np.argmax(np.abs(vector)))
    if vector[idx] < 0:
        vector = -vector
    return vector


def _grown(basis: np.ndarray, rows_needed: int, max_rows: int) -> np.ndarray:
    """Return *basis* with capacity for ``rows_needed`` rows (geometric growth)."""
    if rows_needed <= basis.shape[0]:
        return basis
    new_rows = min(max_rows, max(rows_needed, 2 * basis.shape[0]))
    grown = np.zeros((new_rows, basis.shape[1]))
    grown[: basis.shape[0]] = basis
    return grown


def lanczos_smallest_nontrivial(
    laplacian,
    *,
    tol: float = 1e-8,
    max_iter: int | None = None,
    start: np.ndarray | None = None,
    rng=None,
    restarts: int = 3,
    reorth: str = "selective",
    tol_policy: str = "residual",
) -> LanczosResult:
    """Smallest nontrivial eigenpair of a graph Laplacian by Lanczos.

    Parameters
    ----------
    laplacian:
        Sparse/dense Laplacian matrix or a symmetric positive semidefinite
        linear operator with a constant null vector.
    tol:
        Relative residual tolerance ``||Qx - λx|| <= tol * max(1, λ)``.
    max_iter:
        Maximum Krylov dimension per restart (default ``min(n, max(2, 10·log2 n + 30))``).
    start:
        Optional start vector (will be deflated and normalized).  A good start
        vector — such as an interpolated coarse eigenvector — dramatically
        reduces the iteration count, which is what the multilevel scheme
        exploits.
    rng:
        Seed or generator for the random start vector.
    restarts:
        Number of thick-restart style outer restarts (restart from the current
        best Ritz vector) before giving up on the tolerance.
    reorth:
        ``"selective"`` (default; ω-recurrence-triggered reorthogonalization)
        or ``"full"`` (every step) — see the module docstring.
    tol_policy:
        ``"residual"`` (default) or ``"ordering"`` (stop when the ranking of
        the Ritz vector's components is stable across consecutive checks —
        the spectral-ordering fast path).

    Returns
    -------
    LanczosResult
    """
    if reorth not in ("selective", "full"):
        raise ValueError(f"reorth must be 'selective' or 'full', got {reorth!r}")
    if tol_policy not in ("residual", "ordering"):
        raise ValueError(
            f"tol_policy must be 'residual' or 'ordering', got {tol_policy!r}"
        )
    op, n = _as_operator(laplacian)
    if n < 2:
        raise ValueError("Laplacian must be at least 2 x 2")
    if isinstance(op, spla.LinearOperator):
        matvec = op.matvec
    else:
        # Backend dispatch for the CSR matvec under the Lanczos recurrence:
        # the compiled kernel keeps scipy's in-row summation order, so the
        # recurrence (and every Ritz value) is bit-identical.
        from repro import backends

        matvec = backends.spmv_operator(op) or (lambda v: op @ v)

    if max_iter is None:
        max_iter = int(min(n - 1, max(30, 10 * np.log2(max(n, 2)) + 30)))
    max_iter = max(1, min(max_iter, n - 1))

    rng = default_rng(rng)
    if start is None:
        q = rng.standard_normal(n)
    else:
        q = np.asarray(start, dtype=np.float64).copy()
    q = deflate_constant(q)
    norm = np.linalg.norm(q)
    if norm < 1e-300:
        q = deflate_constant(rng.standard_normal(n))
        norm = np.linalg.norm(q)
    q /= norm

    best = None
    total_iters = 0
    reorth_count = 0
    selective = reorth == "selective"
    # The Krylov block is preallocated and grown geometrically; every slot
    # read below (basis[:k_used], alphas[:k_used], betas[:k_used-1]) is
    # written first within each restart, so reuse cannot leak state between
    # restarts.
    basis = np.zeros((min(_INITIAL_BLOCK_ROWS, max_iter + 1), n))
    alphas = np.zeros(max_iter)
    betas = np.zeros(max_iter)
    # ω-recurrence state (selective mode): omega[j] estimates
    # |basis[k]·basis[j]|, omega_prev the same one step earlier.
    omega = np.zeros(max_iter + 1)
    omega_prev = np.zeros(max_iter + 1)
    for _restart in range(max(1, restarts)):
        basis[0] = q
        k_used = 0
        if selective:
            omega[:] = _EPS
            omega_prev[:] = _EPS
        ranking = None
        ranking_vec = None
        ranking_stable = 0
        stopped_on = "residual"
        exact_only = n <= ORDERING_EXACT_MAX_N
        for k in range(max_iter):
            basis = _grown(basis, k + 2, max_iter + 1)
            w = matvec(basis[k])
            w = deflate_constant(w)
            alphas[k] = float(np.dot(basis[k], w))
            w -= alphas[k] * basis[k]
            if k > 0:
                w -= betas[k - 1] * basis[k - 1]
            if selective:
                # Re-deflate the constant null vector every step: rounding
                # reintroduces a component along it, and because 0 is an
                # extreme eigenvalue of Q the iteration would amplify it into
                # a spurious zero Ritz value.
                w = deflate_constant(w)
                beta = float(np.linalg.norm(w))
                k_used = k + 1
                if beta < 1e-14:
                    break
                # Simon's ω-recurrence: estimate the loss of orthogonality of
                # the incoming vector against every stored basis vector and
                # reorthogonalize only when semiorthogonality (sqrt(eps)) is
                # about to be violated.
                omega_next = np.full(max_iter + 1, _EPS)
                if k > 0:
                    j = np.arange(k)
                    recur = (
                        betas[j] * omega[j + 1]
                        + (alphas[j] - alphas[k]) * omega[j]
                        - betas[k - 1] * omega_prev[j]
                    )
                    recur[1:] += betas[j[1:] - 1] * omega[j[1:] - 1]
                    omega_next[:k] = (
                        np.abs(recur) + 2.0 * _EPS * np.hypot(alphas[k], beta)
                    ) / beta
                if float(np.max(omega_next[: k + 1])) > _SQRT_EPS:
                    coeffs = basis[: k + 1] @ w
                    w -= basis[: k + 1].T @ coeffs
                    w = deflate_constant(w)
                    beta = float(np.linalg.norm(w))
                    reorth_count += 1
                    omega_next[: k + 1] = _EPS
                    if beta < 1e-14:
                        break
                omega_prev, omega = omega, omega_next
            else:
                # Full reorthogonalization against the basis built so far,
                # and an explicit re-deflation of the constant null vector.
                coeffs = basis[: k + 1] @ w
                w -= basis[: k + 1].T @ coeffs
                w = deflate_constant(w)
                reorth_count += 1
                beta = float(np.linalg.norm(w))
                k_used = k + 1
                if beta < 1e-14:
                    break
            betas[k] = beta
            basis[k + 1] = w / beta
            if (
                tol_policy == "ordering"
                and k_used >= 2 * _ORDERING_CHECK_EVERY
                and k_used % _ORDERING_CHECK_EVERY == 0
            ):
                theta, s = la.eigh_tridiagonal(alphas[:k_used], betas[: k_used - 1])
                vec = _canonical_ritz(deflate_constant(basis[:k_used].T @ s[:, 0]))
                current = np.argsort(vec, kind="stable")
                stable = False
                if ranking is not None:
                    stable = bool(np.array_equal(current, ranking))
                    if not stable and not exact_only:
                        stable = (
                            float(np.linalg.norm(vec - ranking_vec))
                            <= ORDERING_STAGNATION_RTOL
                        )
                if stable:
                    ranking_stable += 1
                    if ranking_stable >= _ORDERING_STABLE_CHECKS:
                        stopped_on = "ordering"
                        break
                else:
                    ranking_stable = 0
                ranking, ranking_vec = current, vec

        total_iters += k_used
        theta, s = la.eigh_tridiagonal(alphas[:k_used], betas[: k_used - 1])
        ritz_value = float(theta[0])
        ritz_vector = basis[:k_used].T @ s[:, 0]
        ritz_vector = deflate_constant(ritz_vector)
        ritz_norm = np.linalg.norm(ritz_vector)
        if ritz_norm < 1e-300:  # degenerate; retry with a fresh random vector
            q = deflate_constant(rng.standard_normal(n))
            q /= np.linalg.norm(q)
            continue
        ritz_vector /= ritz_norm
        residual = matvec(ritz_vector) - ritz_value * ritz_vector
        residual_norm = float(np.linalg.norm(residual))
        residual_ok = residual_norm <= tol * max(1.0, abs(ritz_value))
        candidate = LanczosResult(
            eigenvalue=ritz_value,
            eigenvector=ritz_vector,
            residual_norm=residual_norm,
            iterations=total_iters,
            converged=residual_ok or stopped_on == "ordering",
            reorth_count=reorth_count,
            stopped_on=stopped_on if not residual_ok else "residual",
        )
        if best is None or candidate.residual_norm < best.residual_norm:
            best = candidate
        if candidate.converged:
            return candidate
        # Restart from the best Ritz vector found so far.
        q = best.eigenvector.copy()

    if best is None:  # pragma: no cover - requires repeatedly degenerate Ritz vectors
        raise RuntimeError("Lanczos failed to produce a nontrivial Ritz vector")
    if selective and not best.converged:
        # Semiorthogonality bounds the attainable Ritz residual at roughly
        # sqrt(eps) * ||Q||; tolerances tighter than that can stall under
        # selective reorthogonalization.  Self-heal with one full-reorth
        # restart from the best vector — the rare hard case pays for the
        # accuracy it asked for, every other caller keeps the cheap path.
        fallback = lanczos_smallest_nontrivial(
            laplacian, tol=tol, max_iter=max_iter, start=best.eigenvector,
            rng=rng, restarts=1, reorth="full", tol_policy=tol_policy,
        )
        if fallback.residual_norm < best.residual_norm:
            best = fallback
        from dataclasses import replace

        best = replace(
            best,
            iterations=total_iters + fallback.iterations,
            reorth_count=reorth_count + fallback.reorth_count,
        )
    return best
