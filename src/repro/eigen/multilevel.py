"""The multilevel Fiedler-vector algorithm (Barnard & Simon; paper Section 3).

The three ingredients added to Lanczos are:

* **Contraction** — build a series of smaller graphs by maximal independent
  sets and breadth-first domain growing
  (:func:`repro.graph.coarsen.coarsening_hierarchy`), stopping when the graph
  has at most ``coarsest_size`` vertices (the paper uses "typically 100");
* **Interpolation** — prolong a coarse second eigenvector to the next finer
  graph (:func:`repro.graph.coarsen.interpolate_vector`);
* **Refinement** — polish the interpolated vector with Rayleigh Quotient
  Iteration (:func:`repro.eigen.rqi.rayleigh_quotient_iteration`), which
  "usually requires only one or perhaps two iterations".

Robustness addition (documented deviation from the paper): RQI converges to
the eigenpair *nearest its starting Rayleigh quotient*, which on graphs with
clustered low eigenvalues (unstructured meshes, random geometric graphs) can
be ``lambda_3`` or higher when the piecewise-constant interpolation is rough.
To keep the solver reliable on such graphs a small *block* of the lowest
coarse eigenvectors (``block_size``, default 3) is carried up the hierarchy
and refined with a few warm-started LOBPCG iterations per level, with the
constant vector constrained out.  The leading refined vector is still passed
through RQI exactly as the paper describes; the block is the safety net that
keeps it attached to the bottom of the spectrum.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse.linalg as spla

from repro.eigen.lanczos import deflate_constant, lanczos_smallest_nontrivial
from repro.eigen.rqi import rayleigh_quotient, rayleigh_quotient_iteration
from repro.graph.coarsen import coarsening_hierarchy, interpolate_vector
from repro.graph.laplacian import laplacian_matrix
from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng

__all__ = ["MultilevelResult", "multilevel_fiedler"]


@dataclass(frozen=True)
class MultilevelResult:
    """Result of the multilevel Fiedler computation.

    Attributes
    ----------
    eigenvalue:
        Estimate of ``lambda_2`` on the original graph.
    eigenvector:
        Unit-norm Fiedler-vector estimate, orthogonal to the constant vector.
    residual_norm:
        Laplacian eigen-residual on the original graph.
    levels:
        Number of contraction levels used (0 means the graph was already
        small enough for a direct coarse solve).
    level_sizes:
        Vertex counts of every graph in the hierarchy, finest first.
    coarse_iterations:
        Lanczos iterations spent on the coarsest graph (0 when it was solved
        densely).
    refinement_iterations:
        Total RQI steps summed over all refinement sweeps.
    converged:
        Whether the final residual met the tolerance.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    residual_norm: float
    levels: int
    level_sizes: list = field(default_factory=list)
    coarse_iterations: int = 0
    refinement_iterations: int = 0
    converged: bool = False


def _orthonormal_block(block: np.ndarray, rng) -> np.ndarray:
    """Deflate the constant vector from every column and orthonormalize."""
    block = np.atleast_2d(np.asarray(block, dtype=np.float64))
    if block.ndim == 1:
        block = block[:, None]
    block = block - block.mean(axis=0, keepdims=True)
    n, k = block.shape
    # Replace (numerically) zero columns with random deflated vectors.
    norms = np.linalg.norm(block, axis=0)
    for j in np.flatnonzero(norms < 1e-12):
        block[:, j] = deflate_constant(rng.standard_normal(n))
    q, _ = np.linalg.qr(block)
    return q


def _coarse_block_solve(pattern: SymmetricPattern, block_size: int, tol: float, rng):
    """Smallest nontrivial eigenpairs of the coarsest graph.

    The coarsest graph normally has at most ``coarsest_size`` (about 100)
    vertices and is solved densely.  If the contraction stalled early (for
    example on star-like graphs whose maximal independent set is almost the
    whole vertex set) the coarsest graph can still be large; then a
    constrained LOBPCG solve from a random block is used instead.
    """
    lap = laplacian_matrix(pattern)
    n = pattern.n
    k = int(min(block_size, max(1, n - 1)))
    if n <= 600:
        values, vectors = np.linalg.eigh(lap.toarray())
        block = vectors[:, 1 : 1 + k]
        leading = float(values[1]) if n > 1 else 0.0
    else:
        start = _orthonormal_block(rng.standard_normal((n, k)), rng)
        values, block = _lobpcg_refine(lap, start, tol=tol, maxiter=300)
        leading = float(values[0])
    if block.shape[1] < k:  # pad with random deflated columns for tiny graphs
        pad = rng.standard_normal((n, k - block.shape[1]))
        block = np.hstack([block, pad])
    return leading, _orthonormal_block(block, rng)


def _lobpcg_refine(laplacian, block: np.ndarray, tol: float, maxiter: int):
    """Warm-started LOBPCG sweep with the constant vector constrained out."""
    n = laplacian.shape[0]
    k = block.shape[1]
    if n < 5 * k + 2 or k < 1:
        # LOBPCG is unreliable on very small problems; fall back to dense.
        values, vectors = np.linalg.eigh(laplacian.toarray())
        return values[1 : 1 + k], vectors[:, 1 : 1 + k]
    ones = np.ones((n, 1)) / np.sqrt(n)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        values, vectors = spla.lobpcg(
            laplacian, block, Y=ones, largest=False, tol=tol, maxiter=maxiter
        )
    order = np.argsort(values)
    return np.asarray(values)[order], np.asarray(vectors)[:, order]


def multilevel_fiedler(
    pattern: SymmetricPattern,
    *,
    coarsest_size: int = 100,
    tol: float = 1e-8,
    rqi_steps: int = 2,
    block_size: int = 3,
    lobpcg_steps: int = 20,
    max_levels: int = 50,
    rng=None,
    mis_strategy: str = "degree",
) -> MultilevelResult:
    """Compute the Fiedler vector with the multilevel contract/interpolate/refine scheme.

    Parameters
    ----------
    pattern:
        Adjacency structure of a *connected* graph (callers split components
        first; see :func:`repro.orderings.spectral.spectral_ordering`).
    coarsest_size:
        Contraction stops once the coarse graph has at most this many
        vertices ("typically 100" in the paper).
    tol:
        Residual tolerance for the refinements and the final result.
    rqi_steps:
        Maximum RQI steps applied to the leading vector at each level ("one or
        perhaps two" usually suffice).
    block_size:
        Number of low eigenvector approximations carried up the hierarchy
        (robustness block; 1 reproduces the paper's single-vector scheme).
    lobpcg_steps:
        Warm-started LOBPCG iterations per level used to refine the block.
    max_levels:
        Safety cap on the number of contraction levels.
    rng:
        Seed or generator for random fallbacks and the MIS strategy.
    mis_strategy:
        Vertex scan order used by the maximal-independent-set coarsener.

    Returns
    -------
    MultilevelResult
    """
    n = pattern.n
    if n < 2:
        raise ValueError("the graph must have at least 2 vertices")
    rng = default_rng(rng)
    block_size = int(max(1, block_size))

    hierarchy = coarsening_hierarchy(
        pattern,
        coarsest_size=coarsest_size,
        max_levels=max_levels,
        rng=rng,
        strategy=mis_strategy,
    )
    coarsest_pattern = hierarchy[-1].coarse_pattern if hierarchy else pattern
    level_sizes = [pattern.n] + [lvl.coarse_pattern.n for lvl in hierarchy]

    # --- coarse solve --------------------------------------------------- #
    _coarse_value, block = _coarse_block_solve(coarsest_pattern, block_size, tol, rng)
    coarse_iterations = 0  # dense coarse solve: no Lanczos iterations to report

    # --- interpolate + refine up the hierarchy --------------------------- #
    # The finest-level Laplacian is needed both by the last refinement sweep
    # and by the final polish below; build the CSR matrix once and share it.
    full_lap = laplacian_matrix(pattern)
    refinement_iterations = 0
    for idx in range(len(hierarchy) - 1, -1, -1):
        level = hierarchy[idx]
        fine_lap = full_lap if idx == 0 else laplacian_matrix(hierarchy[idx - 1].coarse_pattern)

        block = np.column_stack(
            [interpolate_vector(level, block[:, j]) for j in range(block.shape[1])]
        )
        block = _orthonormal_block(block, rng)

        # Paper-faithful step: Rayleigh Quotient Iteration on the leading vector.
        refined = rayleigh_quotient_iteration(
            fine_lap, block[:, 0], tol=tol, max_iter=rqi_steps
        )
        refinement_iterations += refined.iterations
        block[:, 0] = refined.eigenvector
        block = _orthonormal_block(block, rng)

        # Robustness step: a short warm-started LOBPCG sweep on the block.
        _values, block = _lobpcg_refine(fine_lap, block, tol=tol, maxiter=lobpcg_steps)
        block = _orthonormal_block(block, rng)

    # --- final polish / bookkeeping on the original graph ----------------- #
    if not hierarchy:
        vector = deflate_constant(block[:, 0])
        vector /= np.linalg.norm(vector)
    else:
        _values, block = _lobpcg_refine(full_lap, block, tol=tol, maxiter=lobpcg_steps)
        vector = deflate_constant(block[:, 0])
        vector /= np.linalg.norm(vector)

    rho = rayleigh_quotient(full_lap, vector)
    residual = float(np.linalg.norm(full_lap @ vector - rho * vector))
    if residual > tol * max(1.0, abs(rho)):
        # Last resort: warm-started Lanczos from the multilevel vector.
        guard = lanczos_smallest_nontrivial(
            full_lap, start=vector, tol=tol, max_iter=40, restarts=2, rng=rng
        )
        coarse_iterations += guard.iterations
        if guard.eigenvalue <= rho + tol and guard.residual_norm <= residual:
            vector, rho, residual = guard.eigenvector, guard.eigenvalue, guard.residual_norm

    return MultilevelResult(
        eigenvalue=float(rho),
        eigenvector=vector,
        residual_norm=residual,
        levels=len(hierarchy),
        level_sizes=level_sizes,
        coarse_iterations=coarse_iterations,
        refinement_iterations=refinement_iterations,
        converged=residual <= tol * max(1.0, abs(rho)),
    )
