"""The multilevel Fiedler-vector algorithm (Barnard & Simon; paper Section 3).

The three ingredients added to Lanczos are:

* **Contraction** — build a series of smaller graphs by maximal independent
  sets and breadth-first domain growing
  (:func:`repro.graph.coarsen.coarsening_hierarchy`), stopping when the graph
  has at most ``coarsest_size`` vertices (the paper uses "typically 100");
* **Interpolation** — prolong a coarse second eigenvector to the next finer
  graph (:func:`repro.graph.coarsen.interpolate_block`);
* **Refinement** — polish the interpolated vector with Rayleigh Quotient
  Iteration (:func:`repro.eigen.rqi.rayleigh_quotient_iteration`), which
  "usually requires only one or perhaps two iterations".

Robustness addition (documented deviation from the paper): RQI converges to
the eigenpair *nearest its starting Rayleigh quotient*, which on graphs with
clustered low eigenvalues (unstructured meshes, random geometric graphs) can
be ``lambda_3`` or higher when the piecewise-constant interpolation is rough.
To keep the solver reliable on such graphs a small *block* of the lowest
coarse eigenvectors (``block_size``, default 3) is carried up the hierarchy
and refined with a few warm-started LOBPCG iterations per level, with the
constant vector constrained out.  The leading refined vector is still passed
through RQI exactly as the paper describes; the block is the safety net that
keeps it attached to the bottom of the spectrum.

Hot-path layout: the Laplacian, the component split and the coarsening
hierarchy (plus one prebuilt Laplacian per level) come from the shared
:class:`repro.eigen.workspace.SpectralWorkspace` plan attached to the
pattern, so repeated solves — ``spectral`` and ``hybrid`` cells of one suite
problem, bench repeats, the two sort directions of Algorithm 1 — never
re-coarsen or re-assemble a matrix.  Per-level refinement bounds the RQI
inner MINRES sweep (``rqi_inner_iter``, default 80 — the tail of a long
MINRES sweep polishes digits the next level's interpolation throws away) and
relaxes the intermediate-level LOBPCG tolerance to ``1e-6`` so converged
levels exit early; the finest level and the final polish still run at the
caller's ``tol``, and a warm-started Lanczos guard backstops the residual
contract, so accuracy is unchanged where it matters.

``tol_policy="ordering"`` (the spectral-ordering fast path) additionally
stops the finest-level polish as soon as the leading vector's induced vertex
ranking stagnates between LOBPCG chunks, and skips the Lanczos guard when it
does — orderings consume only ranks.  On graphs with at most
:data:`repro.eigen.lanczos.ORDERING_EXACT_MAX_N` vertices the policy is a
no-op (byte-identical to the default path; pinned by the differential sweep
test).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np
import scipy.sparse.linalg as spla

from repro.eigen.lanczos import (
    ORDERING_EXACT_MAX_N,
    ORDERING_STAGNATION_RTOL,
    _canonical_ritz,
    deflate_constant,
    lanczos_smallest_nontrivial,
)
from repro.eigen.rqi import rayleigh_quotient, rayleigh_quotient_iteration
from repro.eigen.workspace import spectral_workspace
from repro.graph.coarsen import interpolate_block
from repro.graph.laplacian import laplacian_matrix
from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng

__all__ = ["MultilevelResult", "multilevel_fiedler"]

#: Intermediate hierarchy levels refine to this tolerance (or the caller's
#: ``tol`` if looser): the next interpolation re-introduces O(1e-2) error, so
#: polishing coarse levels to 1e-8 is wasted work.  The finest level and the
#: final polish always use the caller's ``tol``.
_INTERMEDIATE_TOL = 1e-6

#: Default cap on MINRES iterations inside each per-level RQI refinement.
_RQI_INNER_CAP = 80

#: LOBPCG sweep budget at *intermediate* levels (the finest level and the
#: final polish run the caller's full ``lobpcg_steps``): the next
#: interpolation discards most of the extra accuracy, and the finest-level
#: sweep + polish + guard own the residual contract.
_INTERMEDIATE_LOBPCG_STEPS = 10

#: Fast-path (``tol_policy="ordering"``) variants of the above.
_FAST_INTERMEDIATE_TOL = 1e-5
_FAST_RQI_INNER_CAP = 40
_FAST_LOBPCG_CHUNK = 5

#: The warm-started Lanczos guard only runs when the residual is within this
#: factor of the tolerance: its bounded budget (40 steps x 2 restarts)
#: reliably closes gaps of a few orders of magnitude but cannot rescue a
#: residual thousands of times above tol (measured on the bench problems —
#: it burns its whole budget and returns the start vector's residual), so
#: such results are returned unconverged without the wasted sweep, exactly
#: as they were when the guard ran and failed.
_GUARD_RESIDUAL_WINDOW = 1e3


@dataclass(frozen=True)
class MultilevelResult:
    """Result of the multilevel Fiedler computation.

    Attributes
    ----------
    eigenvalue:
        Estimate of ``lambda_2`` on the original graph.
    eigenvector:
        Unit-norm Fiedler-vector estimate, orthogonal to the constant vector.
    residual_norm:
        Laplacian eigen-residual on the original graph.
    levels:
        Number of contraction levels used (0 means the graph was already
        small enough for a direct coarse solve).
    level_sizes:
        Vertex counts of every graph in the hierarchy, finest first.
    coarse_iterations:
        Lanczos iterations spent on the coarsest graph (0 when it was solved
        densely).
    refinement_iterations:
        Total RQI steps summed over all refinement sweeps.
    converged:
        Whether the final residual met the tolerance (or, under
        ``tol_policy="ordering"``, the ranking stagnated).
    """

    eigenvalue: float
    eigenvector: np.ndarray
    residual_norm: float
    levels: int
    level_sizes: list = field(default_factory=list)
    coarse_iterations: int = 0
    refinement_iterations: int = 0
    converged: bool = False


def _orthonormal_block(block: np.ndarray, rng) -> np.ndarray:
    """Deflate the constant vector from every column and orthonormalize."""
    block = np.atleast_2d(np.asarray(block, dtype=np.float64))
    if block.ndim == 1:
        block = block[:, None]
    block = block - block.mean(axis=0, keepdims=True)
    n, k = block.shape
    # Replace (numerically) zero columns with random deflated vectors.
    norms = np.linalg.norm(block, axis=0)
    for j in np.flatnonzero(norms < 1e-12):
        block[:, j] = deflate_constant(rng.standard_normal(n))
    q, _ = np.linalg.qr(block)
    return q


def _coarse_block_solve(pattern: SymmetricPattern, block_size: int, tol: float,
                        rng, lap=None):
    """Smallest nontrivial eigenpairs of the coarsest graph.

    The coarsest graph normally has at most ``coarsest_size`` (about 100)
    vertices and is solved densely.  If the contraction stalled early (for
    example on star-like graphs whose maximal independent set is almost the
    whole vertex set) the coarsest graph can still be large; then a
    constrained LOBPCG solve from a random block is used instead.  *lap* is
    the prebuilt Laplacian from the workspace plan (built here otherwise).
    """
    if lap is None:
        lap = laplacian_matrix(pattern)
    n = pattern.n
    k = int(min(block_size, max(1, n - 1)))
    if n <= 600:
        values, vectors = np.linalg.eigh(lap.toarray())
        block = vectors[:, 1 : 1 + k]
        leading = float(values[1]) if n > 1 else 0.0
    else:
        start = _orthonormal_block(rng.standard_normal((n, k)), rng)
        values, block = _lobpcg_refine(lap, start, tol=tol, maxiter=300)
        leading = float(values[0])
    if block.shape[1] < k:  # pad with random deflated columns for tiny graphs
        pad = rng.standard_normal((n, k - block.shape[1]))
        block = np.hstack([block, pad])
    return leading, _orthonormal_block(block, rng)


def _lobpcg_refine(laplacian, block: np.ndarray, tol: float, maxiter: int):
    """Warm-started LOBPCG sweep with the constant vector constrained out."""
    n = laplacian.shape[0]
    k = block.shape[1]
    if n < 5 * k + 2 or k < 1:
        # LOBPCG is unreliable on very small problems; fall back to dense.
        values, vectors = np.linalg.eigh(laplacian.toarray())
        return values[1 : 1 + k], vectors[:, 1 : 1 + k]
    ones = np.ones((n, 1)) / np.sqrt(n)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        values, vectors = spla.lobpcg(
            laplacian, block, Y=ones, largest=False, tol=tol, maxiter=maxiter
        )
    order = np.argsort(values)
    return np.asarray(values)[order], np.asarray(vectors)[:, order]


def _leading_residual(lap, block: np.ndarray):
    """``(vector, rho, residual)`` of the block's leading column on *lap*."""
    vector = deflate_constant(block[:, 0])
    vector /= np.linalg.norm(vector)
    rho = rayleigh_quotient(lap, vector)
    residual = float(np.linalg.norm(lap @ vector - rho * vector))
    return vector, rho, residual


def multilevel_fiedler(
    pattern: SymmetricPattern,
    *,
    coarsest_size: int = 100,
    tol: float = 1e-8,
    rqi_steps: int = 2,
    block_size: int = 3,
    lobpcg_steps: int = 20,
    max_levels: int = 50,
    rng=None,
    mis_strategy: str = "degree",
    rqi_inner_iter: int | None = None,
    tol_policy: str = "residual",
) -> MultilevelResult:
    """Compute the Fiedler vector with the multilevel contract/interpolate/refine scheme.

    Parameters
    ----------
    pattern:
        Adjacency structure of a *connected* graph (callers split components
        first; see :func:`repro.orderings.spectral.spectral_ordering`).
    coarsest_size:
        Contraction stops once the coarse graph has at most this many
        vertices ("typically 100" in the paper).
    tol:
        Residual tolerance for the finest-level refinement and the final
        result (intermediate levels use ``max(tol, 1e-6)``; see module
        docstring).
    rqi_steps:
        Maximum RQI steps applied to the leading vector at each level ("one or
        perhaps two" usually suffice).
    block_size:
        Number of low eigenvector approximations carried up the hierarchy
        (robustness block; 1 reproduces the paper's single-vector scheme).
    lobpcg_steps:
        Warm-started LOBPCG iterations per level used to refine the block.
    max_levels:
        Safety cap on the number of contraction levels.
    rng:
        Seed or generator for random fallbacks and the MIS strategy.
    mis_strategy:
        Vertex scan order used by the maximal-independent-set coarsener.
    rqi_inner_iter:
        Cap on MINRES iterations inside each RQI refinement (default
        ``min(n, 80)`` per level).
    tol_policy:
        ``"residual"`` (default) or ``"ordering"`` — the spectral-ordering
        fast path (see module docstring).  A no-op on graphs with at most
        :data:`~repro.eigen.lanczos.ORDERING_EXACT_MAX_N` vertices.

    Returns
    -------
    MultilevelResult
    """
    n = pattern.n
    if n < 2:
        raise ValueError("the graph must have at least 2 vertices")
    if tol_policy not in ("residual", "ordering"):
        raise ValueError(
            f"tol_policy must be 'residual' or 'ordering', got {tol_policy!r}"
        )
    rng = default_rng(rng)
    block_size = int(max(1, block_size))
    fast = tol_policy == "ordering" and n > ORDERING_EXACT_MAX_N

    workspace = spectral_workspace(pattern)
    hierarchy, level_laps = workspace.hierarchy(
        coarsest_size, max_levels, mis_strategy, rng
    )
    coarsest_pattern = hierarchy[-1].coarse_pattern if hierarchy else pattern
    level_sizes = [pattern.n] + [lvl.coarse_pattern.n for lvl in hierarchy]

    # The finest-level Laplacian is shared by every refinement sweep, the
    # final polish and the residual bookkeeping below — and, through the
    # workspace, with every other solve on this pattern.
    full_lap = workspace.laplacian()
    coarsest_lap = level_laps[-1] if hierarchy else full_lap

    inner_cap = rqi_inner_iter
    if inner_cap is None:
        inner_cap = _FAST_RQI_INNER_CAP if fast else _RQI_INNER_CAP
    mid_tol = max(tol, _FAST_INTERMEDIATE_TOL if fast else _INTERMEDIATE_TOL)
    mid_steps = min(lobpcg_steps, _INTERMEDIATE_LOBPCG_STEPS)

    # --- coarse solve --------------------------------------------------- #
    _coarse_value, block = _coarse_block_solve(
        coarsest_pattern, block_size, tol, rng, lap=coarsest_lap
    )
    coarse_iterations = 0  # dense coarse solve: no Lanczos iterations to report

    # --- interpolate + refine up the hierarchy --------------------------- #
    refinement_iterations = 0
    for idx in range(len(hierarchy) - 1, -1, -1):
        level = hierarchy[idx]
        fine_lap = full_lap if idx == 0 else level_laps[idx - 1]
        fine_n = level.fine_n
        level_tol = tol if idx == 0 else mid_tol

        block = _orthonormal_block(interpolate_block(level, block), rng)

        # Paper-faithful step: Rayleigh Quotient Iteration on the leading
        # vector — "usually requires only one or perhaps two iterations".
        # One step suffices at intermediate levels (the next interpolation
        # re-roughens the vector anyway); the finest level gets the caller's
        # full ``rqi_steps`` budget.
        refined = rayleigh_quotient_iteration(
            fine_lap, block[:, 0], tol=level_tol,
            max_iter=rqi_steps if idx == 0 else min(rqi_steps, 1),
            inner_iter=min(fine_n, inner_cap),
        )
        refinement_iterations += refined.iterations
        block[:, 0] = refined.eigenvector
        block = _orthonormal_block(block, rng)

        # Robustness step: a short warm-started LOBPCG sweep on the block —
        # full budget at the finest level (it owns the residual contract
        # together with the polish below), reduced budget at intermediate
        # levels whose extra digits the next interpolation discards.
        level_steps = lobpcg_steps if idx == 0 and not fast else mid_steps
        _values, block = _lobpcg_refine(
            fine_lap, block, tol=level_tol, maxiter=level_steps
        )
        block = _orthonormal_block(block, rng)

    # --- final polish / bookkeeping on the original graph ----------------- #
    ranking_stagnated = False
    if not hierarchy:
        vector = deflate_constant(block[:, 0])
        vector /= np.linalg.norm(vector)
        rho = rayleigh_quotient(full_lap, vector)
        residual = float(np.linalg.norm(full_lap @ vector - rho * vector))
    else:
        vector, rho, residual = _leading_residual(full_lap, block)
        if residual > tol * max(1.0, abs(rho)):
            if fast:
                # Chunked polish with a ranking-stagnation stop: orderings
                # consume only the ranking, which freezes well before the
                # eigen-residual meets tol.
                previous = _canonical_ritz(vector)
                for _chunk in range(max(1, lobpcg_steps // _FAST_LOBPCG_CHUNK)):
                    _values, block = _lobpcg_refine(
                        full_lap, block, tol=tol, maxiter=_FAST_LOBPCG_CHUNK
                    )
                    current = _canonical_ritz(deflate_constant(block[:, 0]))
                    delta = float(np.linalg.norm(current - previous))
                    previous = current
                    if delta <= ORDERING_STAGNATION_RTOL:
                        ranking_stagnated = True
                        break
            else:
                _values, block = _lobpcg_refine(
                    full_lap, block, tol=tol, maxiter=lobpcg_steps
                )
            vector, rho, residual = _leading_residual(full_lap, block)

    tol_bar = tol * max(1.0, abs(rho))
    if tol_bar < residual <= _GUARD_RESIDUAL_WINDOW * tol_bar and not ranking_stagnated:
        # Last resort: warm-started Lanczos from the multilevel vector.
        guard = lanczos_smallest_nontrivial(
            full_lap, start=vector, tol=tol, max_iter=40, restarts=2, rng=rng,
            tol_policy=tol_policy if fast else "residual",
        )
        coarse_iterations += guard.iterations
        if guard.eigenvalue <= rho + tol and guard.residual_norm <= residual:
            vector, rho, residual = guard.eigenvector, guard.eigenvalue, guard.residual_norm

    return MultilevelResult(
        eigenvalue=float(rho),
        eigenvector=vector,
        residual_norm=residual,
        levels=len(hierarchy),
        level_sizes=level_sizes,
        coarse_iterations=coarse_iterations,
        refinement_iterations=refinement_iterations,
        converged=residual <= tol * max(1.0, abs(rho)) or ranking_stagnated,
    )
