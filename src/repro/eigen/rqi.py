"""Rayleigh Quotient Iteration (RQI) for refining approximate eigenvectors.

The multilevel scheme of Section 3 interpolates a coarse-graph eigenvector to
the fine graph and then refines it: "The approximation is then refined using
the Rayleigh Quotient Iteration algorithm, which, because of its cubic
convergence, usually requires only one or perhaps two iterations to obtain an
acceptable result."

One RQI step for the Laplacian ``Q`` restricted to ``span{1}^⊥``:

1. ``rho = x^T Q x / x^T x`` (the Rayleigh quotient),
2. solve ``(Q - rho I) y = x`` approximately — the system is symmetric
   indefinite, so MINRES is the right inner solver,
3. project ``y`` against the constant vector and normalize.

The shifted system becomes singular exactly at convergence; MINRES copes with
that (the solution blows up in the direction of the sought eigenvector, which
is precisely what we want before normalizing), and we cap the inner iteration
count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.eigen.lanczos import deflate_constant

__all__ = ["RQIResult", "rayleigh_quotient_iteration", "rayleigh_quotient"]


@dataclass(frozen=True)
class RQIResult:
    """Result of a Rayleigh Quotient Iteration run.

    Attributes
    ----------
    eigenvalue:
        Final Rayleigh quotient.
    eigenvector:
        Unit-norm refined vector, orthogonal to the constant vector.
    residual_norm:
        ``||Q x - rho x||`` at exit.
    iterations:
        Number of outer RQI steps taken.
    converged:
        Whether the residual tolerance was met.
    """

    eigenvalue: float
    eigenvector: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool


def _shift_scratch(q: sp.csr_matrix):
    """Per-call scratch for building ``Q - rho I`` without sparse arithmetic.

    When every row of ``q`` stores an explicit diagonal entry (true of the
    Laplacians the multilevel scheme feeds in — isolated vertices never reach
    a per-component solver), the shifted matrix differs from ``q`` only at
    those ``n`` data slots.  Returns the flat positions of the diagonal
    entries, or ``None`` when some row lacks one (fall back to ``q - rho*I``).
    The values produced are identical to the sparse subtraction — same
    canonical structure, same ``q_ii - rho`` arithmetic — just without
    allocating and merging two intermediate matrices per RQI step.
    """
    n = q.shape[0]
    if not q.has_sorted_indices:
        q.sort_indices()
    counts = np.diff(q.indptr)
    if counts.min(initial=1) < 1:
        return None
    rows = np.repeat(np.arange(n, dtype=np.intp), counts)
    below = np.add.reduceat((q.indices < rows).astype(np.intp), q.indptr[:-1])
    diag_pos = q.indptr[:-1] + below
    if not np.array_equal(q.indices[diag_pos], np.arange(n, dtype=q.indices.dtype)):
        return None
    return diag_pos


def _shifted(q, rho: float, scratch):
    """``Q - rho I`` via the precomputed scratch (diagonal positions, or the
    hoisted identity matrix in the dense fallback)."""
    if not sp.issparse(q):
        return q - rho * scratch
    if scratch is None:
        return (q - rho * sp.eye(q.shape[0], format="csr")).tocsr()
    data = q.data.copy()
    data[scratch] -= rho
    shifted = sp.csr_matrix((data, q.indices, q.indptr), shape=q.shape)
    shifted.has_sorted_indices = True
    return shifted


def rayleigh_quotient(matrix, x: np.ndarray) -> float:
    """Rayleigh quotient ``x^T A x / x^T x`` (matrix may be sparse or dense)."""
    x = np.asarray(x, dtype=np.float64)
    denom = float(np.dot(x, x))
    if denom == 0.0:
        raise ValueError("cannot form a Rayleigh quotient of the zero vector")
    return float(np.dot(x, matrix @ x) / denom)


def rayleigh_quotient_iteration(
    laplacian,
    x0: np.ndarray,
    *,
    tol: float = 1e-8,
    max_iter: int = 10,
    inner_iter: int | None = None,
    deflate: bool = True,
) -> RQIResult:
    """Refine an approximate Laplacian eigenvector with RQI.

    Parameters
    ----------
    laplacian:
        Symmetric (sparse) matrix ``Q``.
    x0:
        Starting vector (e.g. an interpolated coarse eigenvector).
    tol:
        Residual tolerance ``||Qx - rho x|| <= tol * max(1, rho)``.
    max_iter:
        Maximum number of outer RQI steps.
    inner_iter:
        Cap on MINRES iterations per step (default ``min(n, 200)``).
    deflate:
        Keep iterates orthogonal to the constant vector (required for the
        Laplacian; disable only when refining eigenvectors of a general
        symmetric matrix).

    Returns
    -------
    RQIResult
    """
    if sp.issparse(laplacian):
        q = laplacian.tocsr()
        n = q.shape[0]
    else:
        q = np.asarray(laplacian, dtype=np.float64)
        n = q.shape[0]
    x = np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ValueError(f"x0 must have shape ({n},), got {x.shape}")
    if deflate:
        x = deflate_constant(x)
    norm = np.linalg.norm(x)
    if norm < 1e-300:
        raise ValueError("x0 is (numerically) a constant vector; cannot refine")
    x /= norm

    if inner_iter is None:
        inner_iter = int(min(n, 200))

    shift_scratch = _shift_scratch(q) if sp.issparse(q) else np.eye(n)
    rho = rayleigh_quotient(q, x)
    residual_norm = float(np.linalg.norm(q @ x - rho * x))
    iterations = 0
    for iterations in range(1, max_iter + 1):
        if residual_norm <= tol * max(1.0, abs(rho)):
            return RQIResult(rho, x, residual_norm, iterations - 1, True)
        shifted = _shifted(q, rho, shift_scratch)
        if sp.issparse(shifted):
            # Route MINRES's matvec through the backend registry when a
            # compiled tier is selected (bit-identical to `shifted @ v`).
            from repro import backends

            compiled = backends.spmv_operator(shifted)
            operator = shifted if compiled is None else spla.LinearOperator(
                shifted.shape, matvec=compiled, dtype=shifted.dtype
            )
            y, _info = spla.minres(operator, x, maxiter=inner_iter, rtol=1e-10)
        else:
            # Dense fallback: least-squares solve handles the (near-)singular shift.
            y, *_ = np.linalg.lstsq(shifted, x, rcond=None)
        if deflate:
            y = deflate_constant(y)
        y_norm = np.linalg.norm(y)
        if not np.isfinite(y_norm) or y_norm < 1e-300:
            break  # inner solve failed to produce a usable direction
        x_new = y / y_norm
        rho_new = rayleigh_quotient(q, x_new)
        residual_new = float(np.linalg.norm(q @ x_new - rho_new * x_new))
        if residual_new > residual_norm and iterations > 1:
            # RQI can jump to a different eigenpair; keep the better iterate.
            break
        x, rho, residual_norm = x_new, rho_new, residual_new

    converged = residual_norm <= tol * max(1.0, abs(rho))
    return RQIResult(rho, x, residual_norm, iterations, converged)
