"""Per-pattern spectral execution plan: shared, memoized Fiedler scaffolding.

The spectral ordering pipeline keeps recomputing pure functions of the matrix
structure: the graph Laplacian, the connected-component split, and (for the
multilevel solver) the whole coarsening hierarchy with one Laplacian per
level.  A suite run asks for them once per algorithm per problem, a bench run
once per repeat, and the hybrid ordering twice per cell — all identical work.

:class:`SpectralWorkspace` memoizes those artifacts *on the pattern object
itself* (a ``_workspace`` slot on
:class:`~repro.sparse.pattern.SymmetricPattern`), so sharing falls out of the
existing object flow with no new plumbing:

* the per-worker problem cache (:func:`repro.batch.engine._cached_pattern`)
  hands every task of a problem the same pattern object, so ``spectral`` and
  ``hybrid`` cells reuse one plan, as do repeated bench/suite invocations in
  the same process;
* :func:`repro.orderings.base.order_by_components` reuses the cached
  component split (and the cached per-component subpatterns) for *every*
  ordering algorithm, and the subpatterns carry their own workspaces, so
  per-component Laplacians and hierarchies are shared too.

Everything memoized here is a deterministic pure function of the immutable
structure: Laplacian assembly, the component split, and the coarsening
hierarchy under the deterministic MIS strategies (``"degree"``/``"natural"``).
The one stochastic case — ``mis_strategy="random"`` — draws from the caller's
rng, so it is computed fresh on every call and never cached: a warm run must
consume exactly the random stream a cold run does.  Warm-vs-cold
byte-identity for every registered spectral/hybrid algorithm is pinned by
``tests/test_spectral_workspace.py``.

Memory: a workspace lives exactly as long as its pattern.  Hierarchy levels
shrink geometrically, so the cached plan is a small constant factor of the
pattern itself; dropping the pattern (e.g.
:func:`repro.batch.engine.clear_problem_cache`) drops the plan with it.

Persistence: when a default :mod:`repro.store` is configured (``--store`` /
``REPRO_STORE``), each artifact is loaded from disk on first touch and
spilled to disk on first build, so suite workers, bench repeats and future
server processes share warm state across process boundaries.  Loaded
artifacts are byte-identical to built ones (deterministic pure functions of
the structure), so the warm-vs-cold identity above extends across processes;
store I/O failures and corrupt entries silently fall back to building.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SpectralWorkspace", "spectral_workspace"]

#: MIS scan strategies that never draw from the rng — only their hierarchies
#: may be cached (see module docstring).
_DETERMINISTIC_MIS = ("degree", "natural")


class SpectralWorkspace:
    """Memoized spectral scaffolding of one :class:`SymmetricPattern`.

    Create via :func:`spectral_workspace` (which attaches the instance to the
    pattern) rather than directly.  ``info`` counts cache hits and builds per
    artifact kind — the warm-path tests assert on it.
    """

    __slots__ = ("pattern", "info", "_laplacian", "_components", "_split",
                 "_hierarchies", "_digest")

    def __init__(self, pattern):
        self.pattern = pattern
        self.info = {
            "laplacian_builds": 0, "laplacian_hits": 0,
            "components_builds": 0, "components_hits": 0,
            "split_builds": 0, "split_hits": 0,
            "hierarchy_builds": 0, "hierarchy_hits": 0,
            "hierarchy_uncached": 0,
            "store_loads": 0, "store_spills": 0,
        }
        self._laplacian = None
        self._components = None
        self._split = None
        self._hierarchies = {}
        self._digest = None

    # ------------------------------------------------------------------ #
    # persistent store plumbing
    # ------------------------------------------------------------------ #
    def digest(self) -> str:
        """Structural content digest of the pattern (memoized — it is the
        address prefix of every persistent artifact of this workspace)."""
        if self._digest is None:
            from repro.store.spectral import pattern_digest

            self._digest = pattern_digest(self.pattern)
        return self._digest

    def _store(self):
        """The ambient :class:`repro.store.ArtifactStore`, or ``None``."""
        from repro.store.core import get_default_store

        return get_default_store()

    def _spill(self, save, *args) -> None:
        """Persist one artifact, swallowing I/O failures (a read-only or
        full store directory must never fail the computation itself)."""
        try:
            save(*args)
        except OSError:
            return
        self.info["store_spills"] += 1

    # ------------------------------------------------------------------ #
    # Laplacian
    # ------------------------------------------------------------------ #
    def laplacian(self):
        """The (unweighted) graph Laplacian CSR, built once per pattern.

        Callers must treat the returned matrix as immutable — it is shared
        across every solver invocation on this pattern.
        """
        if self._laplacian is None:
            store = self._store()
            if store is not None:
                from repro.store import spectral as codecs

                loaded = codecs.load_laplacian(store, self.digest())
                if loaded is not None:
                    self._laplacian = loaded
                    self.info["store_loads"] += 1
                    return self._laplacian
            from repro.graph.laplacian import laplacian_matrix

            self._laplacian = laplacian_matrix(self.pattern)
            self.info["laplacian_builds"] += 1
            if store is not None:
                from repro.store import spectral as codecs

                self._spill(codecs.save_laplacian, store, self.digest(),
                            self._laplacian)
        else:
            self.info["laplacian_hits"] += 1
        return self._laplacian

    # ------------------------------------------------------------------ #
    # connected components
    # ------------------------------------------------------------------ #
    def components(self):
        """``(num_components, labels)`` of the adjacency graph (cached)."""
        if self._components is None:
            store = self._store()
            if store is not None:
                from repro.store import spectral as codecs

                loaded = codecs.load_components(store, self.digest())
                if loaded is not None:
                    self._components = loaded
                    self.info["store_loads"] += 1
                    return self._components
            from repro.graph.components import connected_components

            self._components = connected_components(self.pattern)
            self.info["components_builds"] += 1
            if store is not None:
                from repro.store import spectral as codecs

                self._spill(codecs.save_components, store, self.digest(),
                            self._components[0], self._components[1])
        else:
            self.info["components_hits"] += 1
        return self._components

    def component_split(self):
        """Cached per-component ``(vertices, subpattern)`` list.

        ``subpattern`` is ``None`` for singleton components (no ordering work
        to do there).  The subpattern objects are shared across calls, so
        their own workspaces (and degree caches) warm up across algorithms.
        """
        if self._split is None:
            store = self._store()
            if store is not None:
                from repro.store import spectral as codecs

                loaded = codecs.load_split(store, self.digest())
                if loaded is not None:
                    self._split = loaded
                    self.info["store_loads"] += 1
                    return self._split
            num_components, labels = self.components()
            split = []
            for c in range(num_components):
                vertices = np.flatnonzero(labels == c).astype(np.intp)
                sub = self.pattern.subpattern(vertices) if vertices.size > 1 else None
                split.append((vertices, sub))
            self._split = split
            self.info["split_builds"] += 1
            if store is not None:
                from repro.store import spectral as codecs

                self._spill(codecs.save_split, store, self.digest(), split)
        else:
            self.info["split_hits"] += 1
        return self._split

    # ------------------------------------------------------------------ #
    # coarsening hierarchy
    # ------------------------------------------------------------------ #
    def hierarchy(self, coarsest_size: int, max_levels: int, strategy: str, rng):
        """``(levels, level_laplacians)`` of the contraction hierarchy.

        ``levels`` is :func:`repro.graph.coarsen.coarsening_hierarchy`'s
        output; ``level_laplacians[i]`` is the Laplacian of
        ``levels[i].coarse_pattern`` (so the coarse solve and every
        interpolation → refinement sweep reuse one prebuilt CSR per level
        instead of re-assembling and re-symmetrizing).

        Deterministic MIS strategies are memoized per
        ``(coarsest_size, max_levels, strategy)``; ``"random"`` consumes the
        caller's rng and is rebuilt on every call (cold-path identity).
        """
        from repro.graph.coarsen import coarsening_hierarchy
        from repro.graph.laplacian import laplacian_matrix

        key = (int(coarsest_size), int(max_levels), str(strategy))
        if strategy not in _DETERMINISTIC_MIS:
            self.info["hierarchy_uncached"] += 1
            levels = coarsening_hierarchy(
                self.pattern, coarsest_size=coarsest_size,
                max_levels=max_levels, rng=rng, strategy=strategy,
            )
            return levels, [laplacian_matrix(lvl.coarse_pattern) for lvl in levels]
        cached = self._hierarchies.get(key)
        if cached is None:
            store = self._store()
            if store is not None:
                from repro.store import spectral as codecs

                levels = codecs.load_hierarchy(store, self.digest(), *key)
                if levels is not None:
                    cached = (levels,
                              [laplacian_matrix(lvl.coarse_pattern) for lvl in levels])
                    self._hierarchies[key] = cached
                    self.info["store_loads"] += 1
                    return cached
            levels = coarsening_hierarchy(
                self.pattern, coarsest_size=coarsest_size,
                max_levels=max_levels, rng=rng, strategy=strategy,
            )
            cached = (levels, [laplacian_matrix(lvl.coarse_pattern) for lvl in levels])
            self._hierarchies[key] = cached
            self.info["hierarchy_builds"] += 1
            if store is not None:
                from repro.store import spectral as codecs

                self._spill(codecs.save_hierarchy, store, self.digest(),
                            key[0], key[1], key[2], levels)
        else:
            self.info["hierarchy_hits"] += 1
        return cached


def spectral_workspace(pattern) -> SpectralWorkspace:
    """The :class:`SpectralWorkspace` attached to *pattern* (created on first use).

    Patterns are structurally immutable, so the workspace — a pure function
    of the structure — stays valid for the pattern's lifetime.  Derived
    patterns (``copy``/``permute``/``subpattern``) start with a fresh, empty
    workspace.
    """
    ws = pattern._workspace
    if ws is None:
        ws = SpectralWorkspace(pattern)
        pattern._workspace = ws
    return ws
