"""Envelope parameters, p-sums, spectral bounds and ordering theory (paper Section 2).

* :mod:`repro.envelope.metrics` — row widths, bandwidth, envelope size,
  envelope work, frontwidths/wavefront (Section 2.1 and 2.4 definitions);
* :mod:`repro.envelope.sums` — the 1-sum and 2-sum (and general p-sums)
  linking the envelope problem to the quadratic assignment formulation;
* :mod:`repro.envelope.bounds` — the inequalities of Theorem 2.1 and the
  Laplacian-eigenvalue bounds of Theorem 2.2;
* :mod:`repro.envelope.theory` — closest permutation vectors (Theorem 2.3 /
  Lemma 2.4), the permutation-vector set ``P``, and adjacency-ordering checks
  (Section 2.4, Theorem 2.5).
"""

from repro.envelope.metrics import (
    EnvelopeStatistics,
    bandwidth,
    envelope_size,
    envelope_statistics,
    envelope_work,
    first_nonzero_columns,
    frontwidths,
    row_widths,
)
from repro.envelope.sums import one_sum, p_sum, two_sum
from repro.envelope.bounds import (
    envelope_size_bounds,
    envelope_work_bounds,
    theorem_2_1_relations,
    two_sum_lower_bound,
)
from repro.envelope.theory import (
    centered_permutation_values,
    closest_permutation_vector,
    is_adjacency_ordering,
    permutation_vector_from_ordering,
)
from repro.envelope.optimal import (
    ExactEnvelopeResult,
    minimum_bandwidth,
    minimum_envelope_size,
)

__all__ = [
    "EnvelopeStatistics",
    "row_widths",
    "first_nonzero_columns",
    "bandwidth",
    "envelope_size",
    "envelope_work",
    "frontwidths",
    "envelope_statistics",
    "one_sum",
    "two_sum",
    "p_sum",
    "envelope_size_bounds",
    "envelope_work_bounds",
    "two_sum_lower_bound",
    "theorem_2_1_relations",
    "closest_permutation_vector",
    "centered_permutation_values",
    "permutation_vector_from_ordering",
    "is_adjacency_ordering",
    "ExactEnvelopeResult",
    "minimum_envelope_size",
    "minimum_bandwidth",
]
