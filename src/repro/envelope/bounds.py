"""Relations and spectral bounds on envelope parameters (Theorems 2.1 and 2.2).

Theorem 2.1 (George & Pothen) relates the minimum values of the envelope
size, the envelope-work estimate, the 1-sum and the 2-sum:

* ``Esize_min(A) <= sigma_{1,min}(A) <= Delta * Esize_min(A)``
* ``Ework_min(A) <= sigma^2_{2,min}(A) <= Delta * Ework_min(A)``
* ``sigma^2_{2,min}(A) <= sigma^2_{1,min}(A) <= |E| * sigma^2_{2,min}(A)``

where ``Delta`` is the maximum number of off-diagonal nonzeros in a row.
Because the minima are NP-hard to compute, the library exposes the theorem as
a *relation checker on any single ordering* — for every ordering ``alpha`` the
non-minimum analogues ``Esize(alpha) <= sigma_1(alpha) <= Delta*Esize(alpha)``
and ``Ework(alpha) <= sigma_2^2(alpha) <= Delta*Ework(alpha)`` hold, and the
property-based tests exercise exactly that.

Theorem 2.2 bounds the *minimum* envelope size and work in terms of the
second and largest Laplacian eigenvalues:

* ``lambda_2/(6*Delta) * (n^2 - 1) <= Esize_min(A) <= lambda_n/6 * (n^2 - 1)``  (approximately; see note)
* ``lambda_2/(12*Delta) * (n^2 - 1) <= Ework_min(A) <= lambda_n/12 * (n^2 - 1)``

The OCR of the paper garbles the exact constants of the upper bounds; the
lower bounds (the ones used to judge how close computed orderings are to
optimal) follow from the quadratic-assignment analysis in the companion paper
[George & Pothen 1993]: ``sigma_2^2 >= lambda_2 * n(n^2-1)/12 / n`` for
permutation vectors centered to zero mean, which combined with Theorem 2.1
gives the expressions implemented here.  The test suite verifies that the
lower bounds never exceed the value achieved by any computed ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.envelope.metrics import envelope_size, envelope_work
from repro.envelope.sums import one_sum, two_sum
from repro.sparse.ops import structure_from_matrix

__all__ = [
    "two_sum_lower_bound",
    "envelope_size_bounds",
    "envelope_work_bounds",
    "theorem_2_1_relations",
    "Theorem21Relations",
]


def _lambda_extremes(pattern, lambda2=None, lambda_max=None):
    """Second-smallest and largest Laplacian eigenvalues (computed if not given)."""
    from repro.graph.laplacian import laplacian_matrix

    pattern = structure_from_matrix(pattern)
    if lambda2 is not None and lambda_max is not None:
        return float(lambda2), float(lambda_max)
    lap = laplacian_matrix(pattern)
    n = pattern.n
    if n <= 400:
        values = np.linalg.eigvalsh(lap.toarray())
        l2 = float(values[1]) if n > 1 else 0.0
        lmax = float(values[-1])
    else:
        from repro.eigen.fiedler import fiedler_vector
        import scipy.sparse.linalg as spla

        l2 = (
            float(lambda2)
            if lambda2 is not None
            else fiedler_vector(pattern, check_connected=False).eigenvalue
        )
        if lambda_max is not None:
            lmax = float(lambda_max)
        else:
            lmax = float(
                spla.eigsh(lap, k=1, which="LA", return_eigenvectors=False)[0]
            )
    return (float(lambda2) if lambda2 is not None else l2,
            float(lambda_max) if lambda_max is not None else lmax)


def two_sum_lower_bound(pattern, lambda2: float | None = None) -> float:
    """Spectral lower bound on the minimum squared 2-sum.

    For any ordering, center the position vector to zero mean:
    ``q = positions - (n-1)/2``.  Then ``q^T u = 0`` and
    ``q^T q = l = n(n^2-1)/12`` (for every ``n``; this coincides with the
    paper's integer-valued set ``P`` when ``n`` is odd), hence

    ``sigma_2^2(alpha) = q^T Q q >= lambda_2 * l``

    for every ordering ``alpha``.  This is the bound the paper says "appears
    to be reasonably tight".
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    if n < 2:
        return 0.0
    lambda2, _ = _lambda_extremes(pattern, lambda2=lambda2, lambda_max=0.0)
    l = n * (n * n - 1) / 12.0
    return float(lambda2 * l)


def envelope_work_bounds(
    pattern, lambda2: float | None = None, lambda_max: float | None = None
) -> tuple[float, float]:
    """Lower and upper bounds on ``Ework_min`` from Theorem 2.2.

    With ``l = n(n^2-1)/12`` the squared norm of the zero-mean position
    vector (see :func:`two_sum_lower_bound`):

    ``lambda_2 * l / Delta <= Ework_min <= lambda_n * l``

    The lower bound combines the 2-sum bound ``sigma_2^2 >= lambda_2 * l``
    with Theorem 2.1 (``Ework >= sigma_2^2 / Delta``); the upper bound uses
    ``Ework <= sigma_2^2 <= lambda_n * l`` for any ordering.
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    if n < 2:
        return 0.0, 0.0
    delta = max(1, pattern.max_degree())
    lambda2, lambda_max = _lambda_extremes(pattern, lambda2, lambda_max)
    l = n * (n * n - 1) / 12.0
    lower = lambda2 * l / delta
    upper = lambda_max * l
    return float(lower), float(upper)


def envelope_size_bounds(
    pattern, lambda2: float | None = None, lambda_max: float | None = None
) -> tuple[float, float]:
    """Lower and upper bounds on ``Esize_min`` in the spirit of Theorem 2.2.

    Derivation (valid for every ordering ``alpha``, hence for the optimum):

    * position differences over edges are at least 1, so
      ``sigma_1(alpha) >= sigma_2^2(alpha) / (n - 1) >= lambda_2 * l / (n - 1)``
      with ``l = p^T p`` the centered-permutation norm of Section 2.3, and
      Theorem 2.1 gives ``Esize >= sigma_1 / Delta``, hence the lower bound
      ``lambda_2 * l / (Delta (n-1))``;
    * position differences are at least 1 also gives
      ``Esize(alpha) <= sigma_1(alpha) <= sigma_2^2(alpha) <= lambda_n * l``,
      hence the upper bound ``lambda_n * l`` on the optimum.

    These constants are slightly looser than the theorem's printed form but
    are proved by the same quadratic-assignment argument; only their validity
    (never their tightness) is relied upon elsewhere.
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    if n < 2:
        return 0.0, 0.0
    delta = max(1, pattern.max_degree())
    lambda2, lambda_max = _lambda_extremes(pattern, lambda2, lambda_max)
    l = n * (n * n - 1) / 12.0
    lower = lambda2 * l / (delta * max(1, n - 1))
    upper = lambda_max * l
    return float(lower), float(upper)


@dataclass(frozen=True)
class Theorem21Relations:
    """Evaluation of the Theorem 2.1 inequality chain for one ordering.

    The attributes store the measured quantities and the booleans state
    whether each inequality (in its per-ordering form) holds.
    """

    envelope_size: int
    envelope_work: int
    one_sum: int
    two_sum: int
    max_degree: int
    esize_le_sigma1: bool
    sigma1_le_delta_esize: bool
    ework_le_sigma2sq: bool
    sigma2sq_le_delta_ework: bool

    @property
    def all_hold(self) -> bool:
        """Whether every inequality of the chain holds for this ordering."""
        return (
            self.esize_le_sigma1
            and self.sigma1_le_delta_esize
            and self.ework_le_sigma2sq
            and self.sigma2sq_le_delta_ework
        )


def theorem_2_1_relations(pattern, perm=None) -> Theorem21Relations:
    """Evaluate the Theorem 2.1 inequalities for a specific ordering.

    For any single ordering the per-ordering analogues hold:
    ``Esize <= sigma_1 <= Delta * Esize`` and
    ``Ework <= sigma_2^2 <= Delta * Ework``
    because every row contributes its maximum (respectively squared maximum)
    to the envelope quantity and at most ``Delta`` terms each bounded by that
    maximum to the sums.
    """
    pattern = structure_from_matrix(pattern)
    esize = envelope_size(pattern, perm)
    ework = envelope_work(pattern, perm)
    s1 = one_sum(pattern, perm)
    s2 = two_sum(pattern, perm)
    delta = max(1, pattern.max_degree())
    return Theorem21Relations(
        envelope_size=esize,
        envelope_work=ework,
        one_sum=s1,
        two_sum=s2,
        max_degree=delta,
        esize_le_sigma1=esize <= s1,
        sigma1_le_delta_esize=s1 <= delta * esize,
        ework_le_sigma2sq=ework <= s2,
        sigma2sq_le_delta_ework=s2 <= delta * ework,
    )
