"""Envelope parameters of a symmetric matrix (paper Section 2.1 and 2.4).

For an ``n x n`` symmetric matrix ``A`` with nonzero diagonal and for row
``i`` (0-based internally, 1-based in the paper):

* ``f_i`` — column index of the first nonzero in row ``i``;
* ``r_i = i - f_i`` — the *row width*;
* ``bw(A) = max_i r_i`` — the bandwidth;
* ``Esize(A) = sum_i r_i`` — the envelope size, equivalently the number of
  (strictly sub-diagonal) positions between the first nonzero and the
  diagonal of every row;
* ``Ework(A) = sum_i r_i^2`` — the paper's upper-bound estimate of the work in
  an envelope Cholesky factorization;
* ``|adj(V_j)|`` — the ``j``-th *frontwidth* (wavefront), where ``V_j`` is the
  set of the first ``j`` vertices in the ordering; ``Esize = sum_j |adj(V_j)|``
  (Section 2.4).

All quantities are computed for the matrix *as reordered by* an optional
permutation, without ever forming the permuted matrix explicitly: the metrics
only depend on the positions assigned to the vertices.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.sparse.ops import structure_from_matrix
from repro.sparse.pattern import SymmetricPattern
from repro.utils.validation import check_permutation

__all__ = [
    "EnvelopeStatistics",
    "first_nonzero_columns",
    "row_widths",
    "bandwidth",
    "envelope_size",
    "envelope_work",
    "frontwidths",
    "envelope_statistics",
]


def _positions_from_perm(n: int, perm) -> np.ndarray:
    """Return ``position[old_vertex] = new_index`` for a new-to-old permutation.

    ``perm=None`` means the identity (natural) ordering.
    """
    if perm is None:
        return np.arange(n, dtype=np.intp)
    perm = check_permutation(perm, n)
    positions = np.empty(n, dtype=np.intp)
    positions[perm] = np.arange(n, dtype=np.intp)
    return positions


def _min_neighbor_positions(pattern: SymmetricPattern, positions: np.ndarray) -> np.ndarray:
    """For every vertex, the smallest position among itself and its neighbours.

    In the reordered matrix, row ``p = positions[v]`` has its first nonzero in
    column ``min(p, min_{w in adj(v)} positions[w])`` (the diagonal is
    structurally nonzero).  Vectorized with ``np.minimum.reduceat``.
    """
    n = pattern.n
    counts = np.diff(pattern.indptr)
    own = positions.copy()
    if pattern.indices.size == 0:
        return own
    neighbor_positions = positions[pattern.indices]
    has_neighbors = counts > 0
    starts = pattern.indptr[:-1][has_neighbors]
    mins = np.minimum.reduceat(neighbor_positions, starts)
    result = own
    result[has_neighbors] = np.minimum(own[has_neighbors], mins)
    return result


def first_nonzero_columns(pattern, perm=None) -> np.ndarray:
    """Column index of the first nonzero of every row of the (re)ordered matrix.

    Returned in *new* row order: entry ``p`` is ``f_p`` of the permuted matrix
    (0-based).  With a nonzero diagonal, ``f_p <= p`` always holds.
    """
    pattern = structure_from_matrix(pattern)
    positions = _positions_from_perm(pattern.n, perm)
    firsts_old = _min_neighbor_positions(pattern, positions)
    firsts_new = np.empty(pattern.n, dtype=np.intp)
    firsts_new[positions] = np.minimum(firsts_old, positions)
    return firsts_new


def row_widths(pattern, perm=None) -> np.ndarray:
    """Row widths ``r_p = p - f_p`` of the (re)ordered matrix, in new row order."""
    pattern = structure_from_matrix(pattern)
    firsts = first_nonzero_columns(pattern, perm)
    return np.arange(pattern.n, dtype=np.intp) - firsts


def bandwidth(pattern, perm=None) -> int:
    """Bandwidth ``max_i r_i`` of the (re)ordered matrix (0 for a diagonal matrix)."""
    widths = row_widths(pattern, perm)
    return int(widths.max(initial=0))


def envelope_size(pattern, perm=None) -> int:
    """Envelope size ``Esize = sum_i r_i`` of the (re)ordered matrix."""
    widths = row_widths(pattern, perm)
    return int(widths.sum())


def envelope_work(pattern, perm=None) -> int:
    """Envelope-work estimate ``Ework = sum_i r_i^2`` (paper Section 2.1)."""
    widths = row_widths(pattern, perm).astype(np.int64)
    return int(np.dot(widths, widths))


def frontwidths(pattern, perm=None) -> np.ndarray:
    """The frontwidth (wavefront) sequence ``|adj(V_j)|`` for ``j = 1..n``.

    ``V_j`` is the set of the first ``j`` vertices of the ordering and
    ``adj(V_j)`` the set of vertices outside ``V_j`` adjacent to it.  The
    identity ``Esize = sum_j |adj(V_j)|`` (Section 2.4) is verified by the
    test suite.

    Returns
    -------
    numpy.ndarray
        Array of length ``n``; entry ``j-1`` is ``|adj(V_j)|``.
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    positions = _positions_from_perm(n, perm)
    if n == 0:
        return np.empty(0, dtype=np.intp)
    min_nbr = _min_neighbor_positions(pattern, positions.copy())
    # Vertex v (position p_v) belongs to adj(V_j) exactly for
    # j in [min_nbr(v) + 1, p_v]  (1-based j), provided min_nbr(v) < p_v.
    # Accumulate the count with a difference array.
    diff = np.zeros(n + 2, dtype=np.int64)
    p = positions
    lo = min_nbr + 1
    active = lo <= p  # vertices that are ever in a front
    np.add.at(diff, lo[active], 1)
    np.add.at(diff, p[active] + 1, -1)
    counts = np.cumsum(diff)[1 : n + 1]
    return counts.astype(np.intp)


@dataclass(frozen=True)
class EnvelopeStatistics:
    """Bundle of every envelope parameter of a (re)ordered matrix.

    Attributes mirror the columns of the paper's result tables plus the
    quantities used by the theory section.
    """

    n: int
    nnz: int
    bandwidth: int
    envelope_size: int
    envelope_work: int
    one_sum: int
    two_sum: int
    max_frontwidth: int
    mean_frontwidth: float
    rms_frontwidth: float

    def as_dict(self) -> dict:
        """Plain-``dict`` view (useful for tabulation and JSON output)."""
        return asdict(self)


def envelope_statistics(pattern, perm=None) -> EnvelopeStatistics:
    """Compute every envelope parameter of the (re)ordered matrix in one pass."""
    from repro.envelope.sums import one_sum as _one_sum, two_sum as _two_sum

    pattern = structure_from_matrix(pattern)
    widths = row_widths(pattern, perm).astype(np.int64)
    fronts = frontwidths(pattern, perm).astype(np.float64)
    n = pattern.n
    max_front = int(fronts.max(initial=0))
    mean_front = float(fronts.mean()) if n else 0.0
    rms_front = float(np.sqrt(np.mean(fronts**2))) if n else 0.0
    return EnvelopeStatistics(
        n=n,
        nnz=pattern.nnz,
        bandwidth=int(widths.max(initial=0)),
        envelope_size=int(widths.sum()),
        envelope_work=int(np.dot(widths, widths)),
        one_sum=_one_sum(pattern, perm),
        two_sum=_two_sum(pattern, perm),
        max_frontwidth=max_front,
        mean_frontwidth=mean_front,
        rms_frontwidth=rms_front,
    )
