"""Exact (exhaustive) minimum envelope parameters for tiny matrices.

Minimizing the envelope size, bandwidth, 1-sum or 2-sum is NP-hard
(Section 2.1), so the library's algorithms are heuristics.  For *tiny*
matrices, however, the minima can be computed exactly by enumerating
permutations with branch-and-bound pruning.  These exact values serve two
purposes:

* they are the oracle the test suite uses to check that the heuristic
  orderings come close to (and the spectral bounds stay below) the true
  optimum on small graphs;
* they let a user verify Theorem 2.1 / 2.2 statements about the *minima*
  (not just the per-ordering relations) on problems small enough to afford it.

The key observation making the search exact and incremental: when a vertex is
assigned position ``p``, all still-unassigned vertices will receive positions
``> p``, so the width of row ``p`` is already final — it is determined by the
already-assigned neighbours only.  The accumulated cost therefore never
decreases along a branch, which makes simple branch-and-bound pruning
admissible.  Practical up to roughly ``n = 11``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.ops import structure_from_matrix

__all__ = ["ExactEnvelopeResult", "minimum_envelope_size", "minimum_bandwidth"]

_MAX_EXACT_N = 11


@dataclass(frozen=True)
class ExactEnvelopeResult:
    """Exact optimum of an envelope parameter and one ordering attaining it.

    Attributes
    ----------
    value:
        The exact minimum of the objective over all ``n!`` orderings.
    perm:
        One new-to-old permutation attaining it.
    evaluated:
        Number of complete orderings reached by the pruned search (a measure
        of how much work the branch-and-bound saved).
    """

    value: int
    perm: np.ndarray
    evaluated: int


def _exact_search(pattern, objective: str) -> ExactEnvelopeResult:
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    if n > _MAX_EXACT_N:
        raise ValueError(
            f"exact search is limited to n <= {_MAX_EXACT_N}; got n = {n}. "
            "Use the heuristic orderings for larger problems."
        )
    if n == 0:
        return ExactEnvelopeResult(0, np.empty(0, dtype=np.intp), 0)

    neighbors = [pattern.neighbors(v) for v in range(n)]
    positions = np.full(n, -1, dtype=np.intp)
    placed = np.zeros(n, dtype=bool)
    current = np.empty(n, dtype=np.intp)

    best = {"value": None, "perm": None, "evaluated": 0}

    def row_width(v: int, p: int) -> int:
        """Final width of row p when vertex v is placed there (see module docstring)."""
        nbr_pos = positions[neighbors[v]]
        nbr_pos = nbr_pos[nbr_pos >= 0]
        if nbr_pos.size == 0:
            return 0
        return p - min(int(nbr_pos.min()), p)

    def recurse(depth: int, cost: int) -> None:
        # For the envelope the accumulated sum only grows; for the bandwidth
        # the accumulated max only grows; either way a branch whose partial
        # cost already reaches the incumbent cannot strictly improve on it.
        if best["value"] is not None and cost >= best["value"]:
            return
        if depth == n:
            best["evaluated"] += 1
            if best["value"] is None or cost < best["value"]:
                best["value"] = cost
                best["perm"] = current.copy()
            return
        for v in range(n):
            if placed[v]:
                continue
            width = row_width(v, depth)
            new_cost = cost + width if objective == "envelope" else max(cost, width)
            placed[v] = True
            positions[v] = depth
            current[depth] = v
            recurse(depth + 1, new_cost)
            placed[v] = False
            positions[v] = -1

    recurse(0, 0)
    return ExactEnvelopeResult(int(best["value"]), best["perm"], best["evaluated"])


def minimum_envelope_size(pattern) -> ExactEnvelopeResult:
    """Exact ``Esize_min`` of a tiny matrix, with an optimal ordering."""
    return _exact_search(pattern, "envelope")


def minimum_bandwidth(pattern) -> ExactEnvelopeResult:
    """Exact ``bw_min`` of a tiny matrix, with an optimal ordering."""
    return _exact_search(pattern, "bandwidth")
