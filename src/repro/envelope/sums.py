"""The 1-sum, 2-sum and general p-sums of a symmetric matrix (Section 2.1, 2.3).

With ``row(i) = { j : a_ij != 0, j <= i }`` (lower triangle, diagonal
included — the diagonal contributes ``i - i = 0``):

* ``sigma_1(A)   = sum_i sum_{j in row(i)} (i - j)``  — the 1-sum,
* ``sigma_2^2(A) = sum_i sum_{j in row(i)} (i - j)^2`` — the squared 2-sum,
* more generally the p-sum is ``sum |i - j|^p`` over the same index set.

Equivalently, over the *edges* of the adjacency graph and an ordering
``alpha``: ``sigma_1 = sum_{(u,v) in E} |alpha(u) - alpha(v)|`` and
``sigma_2^2 = sum_{(u,v) in E} (alpha(u) - alpha(v))^2``.  The latter equals
the Laplacian quadratic form ``p^T Q p`` evaluated at the permutation vector
``p`` — the key identity behind the spectral algorithm (Section 2.3).

Following the paper's tables and theorems, :func:`two_sum` returns the *sum of
squares* ``sigma_2^2`` (an integer), not its square root.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.ops import structure_from_matrix
from repro.utils.validation import check_permutation

__all__ = ["one_sum", "two_sum", "p_sum"]


def _edge_position_differences(pattern, perm) -> np.ndarray:
    """|position difference| over every undirected edge of the graph."""
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    if perm is None:
        positions = np.arange(n, dtype=np.int64)
    else:
        perm = check_permutation(perm, n)
        positions = np.empty(n, dtype=np.int64)
        positions[perm] = np.arange(n, dtype=np.int64)
    if pattern.indices.size == 0:
        return np.empty(0, dtype=np.int64)
    rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(pattern.indptr))
    cols = pattern.indices
    mask = rows < cols  # each undirected edge once
    return np.abs(positions[rows[mask]] - positions[cols[mask]])


def one_sum(pattern, perm=None) -> int:
    """The 1-sum ``sigma_1`` of the (re)ordered matrix."""
    diffs = _edge_position_differences(pattern, perm)
    return int(diffs.sum())


def two_sum(pattern, perm=None) -> int:
    """The squared 2-sum ``sigma_2^2`` of the (re)ordered matrix."""
    diffs = _edge_position_differences(pattern, perm)
    return int(np.dot(diffs, diffs))


def p_sum(pattern, p: float, perm=None) -> float:
    """The p-sum ``sum_{(u,v) in E} |alpha(u) - alpha(v)|^p`` (Juvan & Mohar).

    ``p = 1`` and ``p = 2`` reduce to :func:`one_sum` and :func:`two_sum`;
    ``p = inf`` (``numpy.inf``) gives the bandwidth.
    """
    if p <= 0:
        raise ValueError(f"p must be positive, got {p}")
    diffs = _edge_position_differences(pattern, perm).astype(np.float64)
    if diffs.size == 0:
        return 0.0
    if np.isinf(p):
        return float(diffs.max())
    return float(np.sum(diffs**p))
