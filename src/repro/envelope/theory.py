"""Permutation vectors, closest-permutation construction, adjacency orderings.

This module implements the objects of Sections 2.3 and 2.4 of the paper:

* the set ``P`` of *centered permutation vectors* — vectors whose components
  are a permutation of ``{-(n-1)/2, ..., -1, 0, 1, ..., (n-1)/2}`` for odd
  ``n`` and of ``{-n/2, ..., -1, +1, ..., n/2}`` for even ``n``
  (:func:`centered_permutation_values`, :func:`permutation_vector_from_ordering`);
* the *closest permutation vector* to a given real vector ``x``
  (Theorem 2.3): assign the sorted centered values to the components of ``x``
  in sorted order (:func:`closest_permutation_vector`);
* *adjacency orderings* (Section 2.4): an ordering ``v_1, ..., v_n`` such that
  every ``v_{j+1}`` is adjacent to the set of already-numbered vertices
  (:func:`is_adjacency_ordering`), plus the partial adjacency property that
  Theorem 2.5 guarantees for spectral orderings
  (:func:`spectral_adjacency_violations`).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.ops import structure_from_matrix
from repro.utils.validation import check_permutation

__all__ = [
    "centered_permutation_values",
    "permutation_vector_from_ordering",
    "closest_permutation_vector",
    "is_adjacency_ordering",
    "adjacency_ordering_violations",
    "spectral_adjacency_violations",
]


def centered_permutation_values(n: int) -> np.ndarray:
    """The sorted component multiset of the centered permutation vectors ``P``.

    Odd ``n``: ``-(n-1)/2, ..., -1, 0, 1, ..., (n-1)/2``.
    Even ``n``: ``-n/2, ..., -1, +1, ..., n/2`` (zero excluded).

    Every vector in ``P`` satisfies ``p^T u = 0`` and
    ``p^T p = n(n^2-1)/12`` (odd) or ``n(n+1)(n+2)/12`` (even).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n % 2 == 1:
        half = (n - 1) // 2
        return np.arange(-half, half + 1, dtype=np.float64)
    half = n // 2
    negatives = np.arange(-half, 0, dtype=np.float64)
    positives = np.arange(1, half + 1, dtype=np.float64)
    return np.concatenate([negatives, positives])


def permutation_vector_from_ordering(perm) -> np.ndarray:
    """Centered permutation vector corresponding to an ordering.

    ``perm`` is new-to-old (``perm[k]`` = old index of the vertex placed at
    position ``k``).  The returned vector ``p`` has ``p[old_vertex]`` equal to
    the centered value of its position.  For odd ``n`` the centered values are
    consecutive integers, so ``p^T Q p`` equals the positional 2-sum
    ``sigma_2^2(perm)`` exactly; for even ``n`` the paper's value set skips 0,
    so edges straddling the middle contribute one extra unit of difference and
    ``p^T Q p >= sigma_2^2(perm)``.
    """
    perm = check_permutation(perm)
    n = perm.size
    values = centered_permutation_values(n)
    p = np.empty(n, dtype=np.float64)
    p[perm] = values
    return p


def closest_permutation_vector(x) -> np.ndarray:
    """The centered permutation vector closest (2-norm) to ``x`` (Theorem 2.3).

    The closest vector assigns the ``k``-th smallest centered value to the
    component holding the ``k``-th smallest entry of ``x`` — i.e. it is the
    permutation vector *induced by* ``x``.  Ties in ``x`` are broken by index
    (stable sort), which is one of the minimizers.

    Returns
    -------
    numpy.ndarray
        A vector ``p`` with ``p[i]`` the centered value assigned to component
        ``i``; ``argsort(p)`` equals ``argsort(x)`` up to ties.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ValueError(f"x must be one-dimensional, got shape {x.shape}")
    n = x.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    order = np.argsort(x, kind="stable")
    values = centered_permutation_values(n)
    p = np.empty(n, dtype=np.float64)
    p[order] = values
    return p


def adjacency_ordering_violations(pattern, perm=None) -> np.ndarray:
    """Positions ``j`` (1-based) where ``v_{j+1}`` is NOT adjacent to ``V_j``.

    An ordering is an *adjacency ordering* (Section 2.4) when the returned
    array is empty.  Vertices starting a new connected component are counted
    as violations except for position 0 (which can never satisfy the
    property and is excluded by definition).
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    if perm is None:
        perm = np.arange(n, dtype=np.intp)
    else:
        perm = check_permutation(perm, n)
    positions = np.empty(n, dtype=np.intp)
    positions[perm] = np.arange(n, dtype=np.intp)
    violations = []
    for j in range(1, n):
        v = perm[j]
        nbrs = pattern.neighbors(int(v))
        if nbrs.size == 0 or positions[nbrs].min() >= j:
            violations.append(j)
    return np.asarray(violations, dtype=np.intp)


def is_adjacency_ordering(pattern, perm=None) -> bool:
    """Whether the ordering is an adjacency ordering (Section 2.4)."""
    return adjacency_ordering_violations(pattern, perm).size == 0


def spectral_adjacency_violations(pattern, fiedler: np.ndarray, perm) -> dict:
    """Check the partial adjacency property of Theorem 2.5 for a spectral ordering.

    Theorem 2.5 implies that when vertices with positive Fiedler entries are
    appended (in increasing order of their entries) after all the zero and
    negative ones, each appended vertex is adjacent to the already-numbered
    set — and symmetrically for the negative side appended in decreasing
    order.  This function counts violations of that one-sided property in the
    given ordering; for an exact eigenvector of a connected graph the counts
    are zero on the side whose entries are strictly one-signed beyond the zero
    block (up to numerical tie handling).

    Returns
    -------
    dict
        ``{"positive_side": k+, "negative_side": k-, "total_checked": m}``.
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    fiedler = np.asarray(fiedler, dtype=np.float64)
    perm = check_permutation(perm, n)
    positions = np.empty(n, dtype=np.intp)
    positions[perm] = np.arange(n, dtype=np.intp)

    tol = 1e-12 * max(1.0, float(np.abs(fiedler).max(initial=0.0)))
    signs = np.zeros(n, dtype=np.intp)
    signs[fiedler > tol] = 1
    signs[fiedler < -tol] = -1

    def _count_side(side: int) -> tuple[int, int]:
        violations = 0
        checked = 0
        # Vertices of this sign, scanned in the order they appear in `perm`.
        for j in range(n):
            v = int(perm[j])
            if signs[v] != side:
                continue
            checked += 1
            nbrs = pattern.neighbors(v)
            if nbrs.size == 0:
                violations += 1
                continue
            if side > 0:
                # Everything numbered before v must include a neighbour,
                # unless v is the very first positive vertex adjacent to N∪Z.
                earlier = positions[nbrs] < j
            else:
                earlier = positions[nbrs] > j
            if not earlier.any():
                violations += 1
        # The first vertex on each side has nothing before (after) it to be
        # adjacent to only when the other side is empty; do not count it.
        return max(0, violations - 1), checked

    pos_violations, pos_checked = _count_side(1)
    neg_violations, neg_checked = _count_side(-1)
    return {
        "positive_side": pos_violations,
        "negative_side": neg_violations,
        "total_checked": pos_checked + neg_checked,
    }
