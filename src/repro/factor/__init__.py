"""Envelope (skyline) storage and factorization substrate.

Table 4.4 of the paper reports envelope-factorization times (SPARSPAK's
envelope Cholesky routine) for spectrally reordered matrices versus RCM.
This subpackage provides the equivalent machinery:

* :mod:`repro.factor.storage` — the row-oriented envelope (skyline) storage
  scheme: for every row, the contiguous segment from its first structural
  nonzero to the diagonal;
* :mod:`repro.factor.cholesky` — the envelope Cholesky factorization
  ``A = L L^T`` performed entirely inside the envelope (which is closed under
  the factorization: no fill occurs outside it), with operation counting;
* :mod:`repro.factor.solve` — forward/backward envelope triangular solves and
  the one-call :func:`repro.factor.solve.envelope_solve`.

The factorization cost grows with the sum of squared row widths — the
quadratic behaviour Table 4.4 demonstrates — so reducing the envelope
directly reduces both memory and factorization time.
"""

from repro.factor.storage import EnvelopeStorage
from repro.factor.cholesky import EnvelopeCholesky, envelope_cholesky, estimate_factor_work
from repro.factor.ldlt import EnvelopeLDLT, envelope_ldlt
from repro.factor.solve import envelope_solve

__all__ = [
    "EnvelopeStorage",
    "EnvelopeCholesky",
    "envelope_cholesky",
    "EnvelopeLDLT",
    "envelope_ldlt",
    "estimate_factor_work",
    "envelope_solve",
]
