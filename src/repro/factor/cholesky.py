"""Envelope Cholesky factorization (the SPARSPAK-style solver of Table 4.4).

A fundamental property of the envelope is that the Cholesky factor ``L`` of a
symmetric positive definite matrix ``A`` fills in only *inside* the envelope
of ``A`` (George & Liu 1981, Thm 4.1.1): ``f_i(L) = f_i(A)`` for every row.
The factorization can therefore run in place on the
:class:`repro.factor.storage.EnvelopeStorage` of ``A``.

The row-by-row algorithm is the standard skyline Cholesky.  For row ``i`` with
first stored column ``f_i``:

``L[i, j] = ( A[i, j] - sum_{k=max(f_i, f_j)}^{j-1} L[i, k] L[j, k] ) / L[j, j]``
for ``j = f_i, ..., i-1``, then
``L[i, i] = sqrt( A[i, i] - sum_{k=f_i}^{i-1} L[i, k]^2 )``.

The inner sums are contiguous dot products over the overlapping parts of two
envelope rows — vectorized with NumPy — so the operation count is
``sum_i r_i (r_i + 3) / 2`` multiply-adds, exactly the estimate the paper uses
for the envelope work (Section 2.1), and the run time is quadratic in the row
widths.  That quadratic dependence is what Table 4.4 demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.factor.storage import EnvelopeStorage

__all__ = ["EnvelopeCholesky", "envelope_cholesky", "estimate_factor_work"]


class CholeskyError(np.linalg.LinAlgError):
    """Raised when the matrix is found not to be positive definite."""


@dataclass
class EnvelopeCholesky:
    """An envelope Cholesky factorization ``A = L L^T``.

    Attributes
    ----------
    factor:
        :class:`EnvelopeStorage` holding ``L`` (same envelope as ``A``).
    operations:
        Number of multiply-add operations performed during the factorization.
    """

    factor: EnvelopeStorage
    operations: int

    @property
    def n(self) -> int:
        """Matrix order."""
        return self.factor.n

    # ------------------------------------------------------------------ #
    # solves
    # ------------------------------------------------------------------ #
    def forward_substitution(self, b: np.ndarray) -> np.ndarray:
        """Solve ``L y = b``."""
        storage = self.factor
        n = storage.n
        y = np.array(b, dtype=np.float64, copy=True)
        if y.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {y.shape}")
        values, first, row_start = storage.values, storage.first, storage.row_start
        for i in range(n):
            f = first[i]
            start = row_start[i]
            length = i - f
            if length > 0:
                y[i] -= np.dot(values[start : start + length], y[f:i])
            y[i] /= values[start + length]
        return y

    def backward_substitution(self, y: np.ndarray) -> np.ndarray:
        """Solve ``L^T x = y``."""
        storage = self.factor
        n = storage.n
        x = np.array(y, dtype=np.float64, copy=True)
        if x.shape != (n,):
            raise ValueError(f"y must have shape ({n},), got {x.shape}")
        values, first, row_start = storage.values, storage.first, storage.row_start
        for i in range(n - 1, -1, -1):
            f = first[i]
            start = row_start[i]
            length = i - f
            x[i] /= values[start + length]
            if length > 0:
                x[f:i] -= values[start : start + length] * x[i]
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` using the stored factor."""
        return self.backward_substitution(self.forward_substitution(b))

    def diagonal(self) -> np.ndarray:
        """Diagonal of ``L``."""
        return self.factor.diagonal()

    def log_determinant(self) -> float:
        """``log det(A) = 2 * sum_i log L_ii``."""
        return float(2.0 * np.sum(np.log(self.diagonal())))


def envelope_cholesky(matrix, perm=None, *, check: bool = True) -> EnvelopeCholesky:
    """Factor ``P^T A P = L L^T`` inside the envelope.

    Parameters
    ----------
    matrix:
        Symmetric positive definite SciPy sparse matrix or dense array (or an
        existing :class:`EnvelopeStorage`, which is then copied).
    perm:
        Optional new-to-old permutation applied before factoring (ignored when
        *matrix* is already an :class:`EnvelopeStorage`).
    check:
        Raise :class:`numpy.linalg.LinAlgError` when a non-positive pivot is
        encountered (i.e. the matrix is not positive definite).

    Returns
    -------
    EnvelopeCholesky
    """
    if isinstance(matrix, EnvelopeStorage):
        storage = matrix.copy()
    else:
        storage = EnvelopeStorage.from_matrix(matrix, perm=perm)
    n = storage.n
    values, first, row_start = storage.values, storage.first, storage.row_start
    operations = 0

    for i in range(n):
        fi = first[i]
        start_i = row_start[i]
        # Off-diagonal entries of row i, left to right.
        for j in range(fi, i):
            fj = first[j]
            lo = max(fi, fj)
            length = j - lo
            if length > 0:
                a = values[start_i + (lo - fi) : start_i + (j - fi)]
                b = values[row_start[j] + (lo - fj) : row_start[j] + (j - fj)]
                values[start_i + (j - fi)] -= float(np.dot(a, b))
                operations += length
            pivot = values[row_start[j + 1] - 1]
            values[start_i + (j - fi)] /= pivot
            operations += 1
        # Diagonal entry.
        length = i - fi
        if length > 0:
            row_i = values[start_i : start_i + length]
            values[start_i + length] -= float(np.dot(row_i, row_i))
            operations += length
        diag = values[start_i + length]
        if diag <= 0.0:
            if check:
                raise CholeskyError(
                    f"matrix is not positive definite: pivot {diag:.3e} at row {i}"
                )
            diag = abs(diag) if diag != 0.0 else np.finfo(np.float64).tiny
        values[start_i + length] = np.sqrt(diag)
        operations += 1

    return EnvelopeCholesky(factor=storage, operations=operations)


def estimate_factor_work(pattern, perm=None) -> float:
    """Upper-bound estimate of the envelope-factorization work.

    The paper bounds the work by ``(1/2) sum_i r_i (r_i + 3)`` multiply-adds
    (Section 2.1); this helper evaluates that expression for an ordering
    without performing the factorization.
    """
    from repro.envelope.metrics import row_widths

    widths = row_widths(pattern, perm).astype(np.float64)
    return float(0.5 * np.sum(widths * (widths + 3.0)))
