"""Envelope LDL^T factorization (square-root-free variant of the envelope solver).

Structural-analysis packages frequently use the ``L D L^T`` form of the
envelope factorization instead of the Cholesky ``L L^T`` form: it avoids the
square roots and extends to symmetric *indefinite* matrices whose leading
principal minors are nonsingular (e.g. shifted stiffness matrices in buckling
and vibration analysis, which is exactly the setting of several of the paper's
test matrices — BCSSTK29 is a buckling model).

The algorithm is the same row-by-row envelope sweep as
:mod:`repro.factor.cholesky`; fill stays inside the envelope for the same
reason.  For row ``i`` with first stored column ``f_i``:

``L[i, j] = ( A[i, j] - sum_k L[i, k] D[k] L[j, k] ) / D[j]``  for ``j < i``,
``D[i]   = A[i, i] - sum_k L[i, k]^2 D[k]``,

with all sums running over the overlap of the two envelope rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.factor.storage import EnvelopeStorage

__all__ = ["EnvelopeLDLT", "envelope_ldlt"]


@dataclass
class EnvelopeLDLT:
    """An envelope ``L D L^T`` factorization.

    Attributes
    ----------
    factor:
        :class:`EnvelopeStorage` holding the unit-lower-triangular ``L``
        (its diagonal slots store 1.0).
    d:
        The diagonal matrix ``D`` as a vector.
    operations:
        Multiply-add count of the factorization.
    """

    factor: EnvelopeStorage
    d: np.ndarray
    operations: int

    @property
    def n(self) -> int:
        """Matrix order."""
        return self.factor.n

    @property
    def inertia(self) -> tuple[int, int, int]:
        """``(n_positive, n_negative, n_zero)`` eigenvalue counts of ``A``.

        By Sylvester's law of inertia the signs of ``D`` give the inertia of
        the original matrix — useful for buckling/vibration shift strategies.
        """
        positive = int(np.sum(self.d > 0))
        negative = int(np.sum(self.d < 0))
        return positive, negative, self.n - positive - negative

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b`` via forward solve, diagonal scaling, back solve."""
        storage = self.factor
        n = storage.n
        x = np.array(b, dtype=np.float64, copy=True)
        if x.shape != (n,):
            raise ValueError(f"b must have shape ({n},), got {x.shape}")
        values, first, row_start = storage.values, storage.first, storage.row_start
        # forward: L y = b (unit diagonal)
        for i in range(n):
            f = first[i]
            length = i - f
            if length > 0:
                x[i] -= np.dot(values[row_start[i] : row_start[i] + length], x[f:i])
        # diagonal: D z = y
        x /= self.d
        # backward: L^T x = z
        for i in range(n - 1, -1, -1):
            f = first[i]
            length = i - f
            if length > 0:
                x[f:i] -= values[row_start[i] : row_start[i] + length] * x[i]
        return x

    def log_abs_determinant(self) -> float:
        """``log |det(A)| = sum_i log |D_i|``."""
        return float(np.sum(np.log(np.abs(self.d))))


def envelope_ldlt(matrix, perm=None, *, pivot_tol: float = 0.0) -> EnvelopeLDLT:
    """Factor ``P^T A P = L D L^T`` inside the envelope.

    Parameters
    ----------
    matrix:
        Structurally symmetric SciPy sparse / dense matrix (or an
        :class:`EnvelopeStorage`).  The matrix need not be positive definite,
        but every leading principal minor must be nonsingular (no pivoting is
        performed, as in classical envelope solvers).
    perm:
        Optional new-to-old permutation applied before factoring.
    pivot_tol:
        A pivot with absolute value ``<= pivot_tol`` raises
        :class:`numpy.linalg.LinAlgError`.

    Returns
    -------
    EnvelopeLDLT
    """
    if isinstance(matrix, EnvelopeStorage):
        storage = matrix.copy()
    else:
        storage = EnvelopeStorage.from_matrix(matrix, perm=perm)
    n = storage.n
    values, first, row_start = storage.values, storage.first, storage.row_start
    d = np.zeros(n, dtype=np.float64)
    operations = 0

    for i in range(n):
        fi = first[i]
        start_i = row_start[i]
        for j in range(fi, i):
            fj = first[j]
            lo = max(fi, fj)
            length = j - lo
            if length > 0:
                a = values[start_i + (lo - fi) : start_i + (j - fi)]
                b = values[row_start[j] + (lo - fj) : row_start[j] + (j - fj)]
                values[start_i + (j - fi)] -= float(np.dot(a * d[lo:j], b))
                operations += 2 * length
            pivot = d[j]
            values[start_i + (j - fi)] /= pivot
            operations += 1
        length = i - fi
        if length > 0:
            row_i = values[start_i : start_i + length]
            d[i] = values[start_i + length] - float(np.dot(row_i * row_i, d[fi:i]))
            operations += 2 * length
        else:
            d[i] = values[start_i + length]
        if abs(d[i]) <= pivot_tol:
            raise np.linalg.LinAlgError(
                f"zero (or below-tolerance) pivot {d[i]:.3e} at row {i}; "
                "the matrix needs pivoting, which envelope solvers do not provide"
            )
        values[start_i + length] = 1.0  # unit diagonal of L

    return EnvelopeLDLT(factor=storage, d=d, operations=operations)
