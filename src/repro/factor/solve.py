"""One-call envelope solve: reorder, factor, solve, and un-permute.

This is the full pipeline a structural-analysis user of an envelope solver
runs: choose an envelope-reducing ordering, factor ``P^T A P`` inside its
envelope, solve the two triangular systems, and return the solution in the
original variable order.  Both the quickstart example and the structural
analysis example use it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.factor.cholesky import EnvelopeCholesky, envelope_cholesky
from repro.orderings.base import Ordering
from repro.utils.validation import check_square

__all__ = ["EnvelopeSolveResult", "envelope_solve"]


@dataclass(frozen=True)
class EnvelopeSolveResult:
    """Result of :func:`envelope_solve`.

    Attributes
    ----------
    x:
        Solution of ``A x = b`` in the *original* ordering.
    ordering:
        The ordering used (``None`` means the natural ordering).
    factorization:
        The :class:`EnvelopeCholesky` of the permuted matrix.
    residual_norm:
        ``||A x - b||_2`` computed on the original system.
    """

    x: np.ndarray
    ordering: Ordering | None
    factorization: EnvelopeCholesky
    residual_norm: float


def envelope_solve(matrix, b, ordering: Ordering | None = None) -> EnvelopeSolveResult:
    """Solve ``A x = b`` with an envelope Cholesky factorization.

    Parameters
    ----------
    matrix:
        Symmetric positive definite SciPy sparse matrix or dense array.
    b:
        Right-hand side vector.
    ordering:
        Optional :class:`Ordering` to apply (e.g. from
        :func:`repro.orderings.spectral_ordering`).  ``None`` factors the
        matrix in its natural order.

    Returns
    -------
    EnvelopeSolveResult
    """
    matrix, n = check_square(matrix, "matrix")
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")

    perm = None if ordering is None else ordering.perm
    chol = envelope_cholesky(matrix, perm=perm)
    if perm is None:
        x = chol.solve(b)
    else:
        x_permuted = chol.solve(b[perm])
        x = np.empty(n, dtype=np.float64)
        x[perm] = x_permuted

    a = sp.csr_matrix(matrix) if not sp.issparse(matrix) else matrix.tocsr()
    residual = float(np.linalg.norm(a @ x - b))
    return EnvelopeSolveResult(x=x, ordering=ordering, factorization=chol, residual_norm=residual)
