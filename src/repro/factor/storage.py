"""Row-oriented envelope (skyline / variable-band) storage.

The envelope of a symmetric matrix (Section 2.1) is, for every row ``i``, the
set of column positions from the first structural nonzero ``f_i`` up to the
diagonal.  The storage scheme keeps exactly those positions — including any
explicit zeros inside the envelope, because Cholesky fill is confined to the
envelope — in one flat array with a per-row offset table.

This is the storage layout SPARSPAK's envelope solver uses; the factorization
in :mod:`repro.factor.cholesky` operates on it in place.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.envelope.metrics import first_nonzero_columns
from repro.sparse.ops import structure_from_matrix
from repro.utils.validation import check_permutation, check_square

__all__ = ["EnvelopeStorage"]


class EnvelopeStorage:
    """Envelope (skyline) storage of a symmetric matrix.

    Attributes
    ----------
    n:
        Matrix order.
    first:
        ``first[i]`` is the column of the first stored entry of row ``i``
        (``f_i``); entries ``first[i] .. i`` of row ``i`` are stored.
    row_start:
        ``row_start[i]`` is the offset of row ``i``'s segment in :attr:`values`;
        the segment has length ``i - first[i] + 1`` and ends with the diagonal.
    values:
        The flat value array of length ``envelope_size + n``.
    """

    __slots__ = ("n", "first", "row_start", "values")

    def __init__(self, n: int, first: np.ndarray, row_start: np.ndarray, values: np.ndarray):
        self.n = int(n)
        self.first = np.asarray(first, dtype=np.intp)
        self.row_start = np.asarray(row_start, dtype=np.intp)
        self.values = np.asarray(values, dtype=np.float64)
        if self.first.shape != (self.n,):
            raise ValueError(f"first must have shape ({self.n},)")
        if self.row_start.shape != (self.n + 1,):
            raise ValueError(f"row_start must have shape ({self.n + 1},)")
        expected = int(self.row_start[-1])
        if self.values.shape != (expected,):
            raise ValueError(f"values must have length {expected}, got {self.values.shape}")

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_matrix(cls, matrix, perm=None) -> "EnvelopeStorage":
        """Build envelope storage for ``P^T A P``.

        Parameters
        ----------
        matrix:
            Symmetric SciPy sparse matrix or dense array with nonzero
            diagonal.  Values are stored; the structure determines the
            envelope.
        perm:
            Optional new-to-old permutation; the storage is built for the
            permuted matrix without forming it explicitly beforehand.
        """
        matrix, n = check_square(matrix, "matrix")
        a = sp.csr_matrix(matrix, dtype=np.float64)
        if perm is not None:
            perm = check_permutation(perm, n)
            a = a[perm][:, perm].tocsr()
        pattern = structure_from_matrix(a)
        first = first_nonzero_columns(pattern)  # natural order of the permuted matrix
        lengths = np.arange(n, dtype=np.intp) - first + 1
        row_start = np.zeros(n + 1, dtype=np.intp)
        np.cumsum(lengths, out=row_start[1:])
        values = np.zeros(int(row_start[-1]), dtype=np.float64)

        a = a.tocoo()
        rows, cols, vals = a.row, a.col, a.data
        lower = rows >= cols
        rows, cols, vals = rows[lower], cols[lower], vals[lower]
        offsets = row_start[rows] + (cols - first[rows])
        if np.any(cols < first[rows]):  # pragma: no cover - defensive
            raise AssertionError("entry outside the computed envelope")
        values[offsets] = vals
        return cls(n, first, row_start, values)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def envelope_size(self) -> int:
        """Number of stored strictly-sub-diagonal positions (``Esize``)."""
        return int(self.values.size - self.n)

    @property
    def storage_size(self) -> int:
        """Total stored doubles (envelope plus diagonal)."""
        return int(self.values.size)

    def row(self, i: int) -> np.ndarray:
        """The stored segment of row *i* (columns ``first[i] .. i``), as a view."""
        return self.values[self.row_start[i] : self.row_start[i + 1]]

    def diagonal(self) -> np.ndarray:
        """The diagonal entries (copy)."""
        return self.values[self.row_start[1:] - 1].copy()

    def get(self, i: int, j: int) -> float:
        """Entry ``(i, j)`` honouring symmetry; zero outside the envelope."""
        if i < 0 or j < 0 or i >= self.n or j >= self.n:
            raise IndexError(f"index ({i}, {j}) out of range for n={self.n}")
        if j > i:
            i, j = j, i
        if j < self.first[i]:
            return 0.0
        return float(self.values[self.row_start[i] + (j - self.first[i])])

    def to_dense(self, symmetric: bool = True) -> np.ndarray:
        """Expand to a dense array (lower triangle, mirrored if *symmetric*)."""
        dense = np.zeros((self.n, self.n))
        for i in range(self.n):
            f = self.first[i]
            dense[i, f : i + 1] = self.row(i)
        if symmetric:
            dense = dense + np.tril(dense, -1).T
        return dense

    def copy(self) -> "EnvelopeStorage":
        """Deep copy (used so factorizations do not clobber the input)."""
        return EnvelopeStorage(
            self.n, self.first.copy(), self.row_start.copy(), self.values.copy()
        )

    def __repr__(self) -> str:
        return (
            f"EnvelopeStorage(n={self.n}, envelope_size={self.envelope_size}, "
            f"storage={self.storage_size})"
        )
