"""Deterministic, seed-driven fault injection (the ``repro.faults`` plane).

Every resilience mechanism in this codebase — crash-retry in the suite
engine, the serving layer's circuit breaker and graceful drain, the store's
corrupt-entry quarantine — needs a way to *provoke* the failure it absorbs,
on demand and reproducibly.  This module is that switch: a compact spec
string names fault **sites** and per-site firing **rates**, and every draw
is a pure function of ``(seed, site, rule parameters, key)``, so two runs
under the same spec inject exactly the same faults at exactly the same
cells.

Activation
----------
Faults are **off by default** and compile into near-no-ops when disabled
(one ``os.environ`` lookup behind a cached plan).  They activate through the
``REPRO_FAULTS`` environment variable or the ``--inject-faults SPEC`` flag
of ``repro suite`` / ``repro serve`` / ``repro chaos`` (which exports the
variable so worker processes inherit it).

Spec grammar
------------
Semicolon-separated directives; a directive is either ``seed=N``, ``log=PATH``
(append one JSONL event per fired fault), or a rule ``site@rate[,key=value...]``::

    seed=7;log=faults.jsonl;worker.crash@0.25,point=start;store.corrupt@0.5
    worker.hang@0.1,sleep_s=5;journal.flaky@0.3

Sites
-----
``worker.crash``
    SIGKILL the current process (``point=start`` before the cell computes,
    ``point=finish`` after it computed but before it reported — the torn-
    result case).  Skipped in a protected process (see below).
``worker.hang``
    Sleep ``sleep_s`` (default 3600) at cell start — the wedged-worker case
    the per-task timeout machinery must catch.  Skipped when protected.
``worker.slow``
    Sleep ``sleep_s`` (default 0.05) at cell start — survivable slowdown.
``store.corrupt``
    Flip one byte of a just-written artifact-store entry (bit rot).
``store.torn``
    Truncate a just-written store entry to half its bytes (torn write).
``journal.flaky``
    Raise :class:`FaultError` (an ``OSError``) from a journal line write.
``http.drop``
    The server closes a connection without writing the computed response.

Rates are probabilities in ``[0, 1]``; a rule's draw for a given ``key`` is
``sha256(seed | site | params | key)`` mapped to ``[0, 1)`` and compared to
the rate — deterministic, order-independent, and varied per retry attempt
because task keys embed the attempt ordinal.

Protected processes
-------------------
A coordinator (the ``repro suite`` main process, the asyncio server loop)
must *observe* worker faults, not die of them: CLI activation calls
:func:`protect_current_process`, which pins this PID in
``REPRO_FAULTS_PROTECT_PID``.  Child workers inherit the variable but have a
different PID, so process-fatal sites (crash, hang) fire only in them.

>>> plan = FaultPlan.parse("seed=7;worker.crash@0.5,point=start")
>>> [plan.fires("worker.crash", f"POW9/rcm#a{k}", point="start") is not None
...  for k in range(4)]    # deterministic per-attempt draws
[False, True, False, True]
>>> plan.fires("worker.crash", "POW9/rcm#a0", point="finish") is None
True
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field

__all__ = [
    "FAULT_SITES",
    "FaultError",
    "FaultPlan",
    "FaultRule",
    "fault_point",
    "fires",
    "flaky_io",
    "get_fault_plan",
    "protect_current_process",
    "reset_fault_plan",
    "set_fault_plan",
    "worker_faults",
]

#: Known fault sites and the parameters each accepts.
FAULT_SITES: dict[str, frozenset] = {
    "worker.crash": frozenset({"point"}),
    "worker.hang": frozenset({"sleep_s"}),
    "worker.slow": frozenset({"sleep_s"}),
    "store.corrupt": frozenset(),
    "store.torn": frozenset(),
    "journal.flaky": frozenset(),
    "http.drop": frozenset(),
}

_PROTECT_ENV = "REPRO_FAULTS_PROTECT_PID"
_SPEC_ENV = "REPRO_FAULTS"
_LOG_ENV = "REPRO_FAULTS_LOG"


class FaultError(OSError):
    """An injected I/O failure (``journal.flaky``).

    Subclasses :class:`OSError` so the code paths that already survive a
    full disk or a yanked volume absorb injected failures identically.
    """


@dataclass(frozen=True)
class FaultRule:
    """One ``site@rate[,param=value...]`` rule of a fault plan."""

    site: str
    rate: float
    params: dict = field(default_factory=dict)

    def describe(self) -> str:
        extra = "".join(f",{k}={v}" for k, v in sorted(self.params.items()))
        return f"{self.site}@{self.rate:g}{extra}"


class FaultPlan:
    """A parsed fault specification: seed, rules, optional event log."""

    def __init__(self, *, seed: int = 0, rules=(), log_path=None, spec: str = ""):
        self.seed = int(seed)
        self.rules = list(rules)
        self.log_path = log_path
        self.spec = spec

    # ------------------------------------------------------------------ #
    # parsing
    # ------------------------------------------------------------------ #
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a spec string (see the module docstring for the grammar).

        Raises :class:`ValueError` with a pointed message on an unknown
        site, an out-of-range rate, or a parameter the site does not take —
        a typo in a chaos spec must fail fast, not silently inject nothing.
        """
        seed = 0
        log_path = os.environ.get(_LOG_ENV, "").strip() or None
        rules: list[FaultRule] = []
        for chunk in str(spec).split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "@" not in chunk:
                name, eq, value = chunk.partition("=")
                name = name.strip()
                if not eq:
                    raise ValueError(
                        f"invalid fault directive {chunk!r}: expected "
                        f"'seed=N', 'log=PATH' or 'site@rate[,key=value...]'"
                    )
                if name == "seed":
                    try:
                        seed = int(value)
                    except ValueError:
                        raise ValueError(
                            f"fault seed must be an integer, got {value!r}"
                        ) from None
                elif name == "log":
                    log_path = value.strip()
                else:
                    raise ValueError(
                        f"unknown fault directive {name!r} (only 'seed' and "
                        f"'log' are directives; fault rules use 'site@rate')"
                    )
                continue
            head, _, tail = chunk.partition("@")
            site = head.strip()
            if site not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; available: "
                    f"{', '.join(sorted(FAULT_SITES))}"
                )
            parts = tail.split(",")
            try:
                rate = float(parts[0])
            except ValueError:
                raise ValueError(
                    f"fault rate for {site} must be a number in [0, 1], "
                    f"got {parts[0]!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"fault rate for {site} must be in [0, 1], got {rate:g}"
                )
            params: dict = {}
            for part in parts[1:]:
                pname, peq, pvalue = part.partition("=")
                pname = pname.strip()
                if not peq:
                    raise ValueError(
                        f"invalid fault parameter {part!r} for {site} "
                        f"(expected key=value)"
                    )
                if pname not in FAULT_SITES[site]:
                    allowed = sorted(FAULT_SITES[site]) or ["<none>"]
                    raise ValueError(
                        f"site {site} does not take parameter {pname!r} "
                        f"(accepted: {', '.join(allowed)})"
                    )
                params[pname] = pvalue.strip()
            if site == "worker.crash":
                point = params.setdefault("point", "start")
                if point not in ("start", "finish"):
                    raise ValueError(
                        f"worker.crash point must be 'start' or 'finish', "
                        f"got {point!r}"
                    )
            for name in ("sleep_s",):
                if name in params:
                    try:
                        params[name] = float(params[name])
                    except ValueError:
                        raise ValueError(
                            f"{site} {name} must be a number, "
                            f"got {params[name]!r}"
                        ) from None
            rules.append(FaultRule(site=site, rate=rate, params=params))
        return cls(seed=seed, rules=rules, log_path=log_path, spec=str(spec))

    def describe(self) -> str:
        """One-line summary (the CLI prints it when faults activate)."""
        rules = ", ".join(rule.describe() for rule in self.rules) or "<no rules>"
        return f"seed={self.seed}; {rules}"

    # ------------------------------------------------------------------ #
    # drawing
    # ------------------------------------------------------------------ #
    def _draw(self, rule: FaultRule, key: str) -> float:
        text = "\x1f".join([
            str(self.seed), rule.site,
            json.dumps(rule.params, sort_keys=True, default=str), str(key),
        ])
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") / 2.0 ** 64

    def fires(self, site: str, key: str, *, point: str | None = None):
        """The first matching rule that fires for ``key``, or ``None``.

        A fired rule is logged to the event log (when configured).  ``point``
        filters ``worker.crash`` rules to the given execution point, so a
        ``point=finish`` rule never draws at a cell's start.
        """
        for rule in self.rules:
            if rule.site != site:
                continue
            if point is not None and rule.params.get("point", "start") != point:
                continue
            if self._draw(rule, key) < rule.rate:
                self._log_event(rule, key)
                return rule
        return None

    def _log_event(self, rule: FaultRule, key: str) -> None:
        if not self.log_path:
            return
        event = {
            "t": time.time(),
            "pid": os.getpid(),
            "site": rule.site,
            "rate": rule.rate,
            "params": {k: str(v) for k, v in rule.params.items()},
            "key": str(key),
        }
        try:
            with open(self.log_path, "a") as handle:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        except OSError:
            pass  # the event log must never become its own fault


# ---------------------------------------------------------------------- #
# process-wide plan resolution
# ---------------------------------------------------------------------- #
_UNSET = object()
_plan_override = _UNSET
_cached_plan: tuple | None = None  # (spec text, parsed plan)


def get_fault_plan() -> FaultPlan | None:
    """The ambient fault plan, or ``None`` when injection is disabled.

    An explicit :func:`set_fault_plan` override wins; otherwise the
    ``REPRO_FAULTS`` environment variable is parsed (and cached against its
    text, so the disabled path costs one environment lookup).  Raises
    :class:`ValueError` for an unparseable spec — callers that activate
    faults validate up front (:meth:`FaultPlan.parse`) so workers never see
    a bad spec.
    """
    global _cached_plan
    if _plan_override is not _UNSET:
        return _plan_override
    spec = os.environ.get(_SPEC_ENV, "").strip()
    if not spec:
        return None
    if _cached_plan is not None and _cached_plan[0] == spec:
        return _cached_plan[1]
    plan = FaultPlan.parse(spec)
    _cached_plan = (spec, plan)
    return plan


def set_fault_plan(plan) -> None:
    """Install a process-wide override: a :class:`FaultPlan`, a spec string,
    or ``None`` to force injection off even when ``REPRO_FAULTS`` is set."""
    global _plan_override
    if plan is None or isinstance(plan, FaultPlan):
        _plan_override = plan
    else:
        _plan_override = FaultPlan.parse(str(plan))


def reset_fault_plan() -> None:
    """Drop any override and the cached environment plan (tests / re-exec)."""
    global _plan_override, _cached_plan
    _plan_override = _UNSET
    _cached_plan = None


def protect_current_process() -> None:
    """Exempt *this* process from process-fatal faults (crash, hang).

    Sets ``REPRO_FAULTS_PROTECT_PID`` to this PID; child workers inherit the
    variable but run under their own PID, so they stay fully injectable.
    """
    os.environ[_PROTECT_ENV] = str(os.getpid())


def _protected() -> bool:
    return os.environ.get(_PROTECT_ENV, "") == str(os.getpid())


# ---------------------------------------------------------------------- #
# injection points
# ---------------------------------------------------------------------- #
def fires(site: str, key: str):
    """Pure query for caller-handled sites (``store.*``, ``http.drop``):
    the fired :class:`FaultRule` or ``None``.  Logs the event when fired."""
    plan = get_fault_plan()
    return None if plan is None else plan.fires(site, key)


def worker_faults(key: str, point: str = "start") -> None:
    """The worker-side fault point, called by ``execute_task``.

    At ``point="start"`` (before the cell computes) the survivable sites
    fire first — ``worker.slow`` everywhere, ``worker.hang`` only in
    unprotected processes — then ``worker.crash`` rules matching the point
    SIGKILL the process.  At ``point="finish"`` only crash rules draw: the
    cell computed but the result dies with the worker.
    """
    plan = get_fault_plan()
    if plan is None:
        return
    if point == "start":
        rule = plan.fires("worker.slow", key)
        if rule is not None:
            time.sleep(float(rule.params.get("sleep_s", 0.05)))
        if not _protected():
            rule = plan.fires("worker.hang", key)
            if rule is not None:
                time.sleep(float(rule.params.get("sleep_s", 3600.0)))
    if not _protected():
        rule = plan.fires("worker.crash", key, point=point)
        if rule is not None:
            os.kill(os.getpid(), signal.SIGKILL)


def fault_point(site: str, key: str, *, point: str | None = None) -> None:
    """Generic action-site entry: crash/hang/slow via :func:`worker_faults`
    semantics for worker sites, :class:`FaultError` for ``journal.flaky``."""
    if site.startswith("worker."):
        worker_faults(key, point=point or "start")
        return
    if site == "journal.flaky":
        flaky_io(site, key)
        return
    raise ValueError(f"{site!r} is a caller-handled site; use fires()")


def flaky_io(site: str, key: str) -> None:
    """Raise :class:`FaultError` when an I/O-failure rule fires for ``key``."""
    plan = get_fault_plan()
    if plan is not None and plan.fires(site, key) is not None:
        raise FaultError(f"injected {site} failure ({key})")
