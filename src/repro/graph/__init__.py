"""Graph substrate.

The adjacency graph ``G(A)`` of a symmetric matrix ``A`` (represented by a
:class:`repro.sparse.SymmetricPattern`) is the object every ordering algorithm
actually works on.  This subpackage provides:

* breadth-first search, rooted level structures and eccentricities
  (:mod:`repro.graph.traversal`) — the engine of the RCM/GPS/GK baselines;
* connected components (:mod:`repro.graph.components`);
* pseudo-peripheral node / pseudo-diameter search
  (:mod:`repro.graph.peripheral`) — the George-Liu shrinking strategy;
* Laplacian matrix assembly (:mod:`repro.graph.laplacian`) — Section 2.2 of
  the paper;
* multilevel graph contraction by maximal independent sets and domain growing
  (:mod:`repro.graph.coarsen`) — Section 3 of the paper.
"""

from repro.graph.traversal import (
    RootedLevelStructure,
    bfs_order,
    breadth_first_levels,
    distance_from,
    rooted_level_structure,
)
from repro.graph.components import connected_components, is_connected, largest_component
from repro.graph.peripheral import pseudo_diameter, pseudo_peripheral_node
from repro.graph.laplacian import (
    adjacency_matrix,
    laplacian_matrix,
    normalized_laplacian_matrix,
)
from repro.graph.coarsen import (
    CoarseLevel,
    coarsen_graph,
    coarsening_hierarchy,
    interpolate_vector,
    maximal_independent_set,
)

__all__ = [
    "RootedLevelStructure",
    "breadth_first_levels",
    "rooted_level_structure",
    "bfs_order",
    "distance_from",
    "connected_components",
    "is_connected",
    "largest_component",
    "pseudo_peripheral_node",
    "pseudo_diameter",
    "laplacian_matrix",
    "adjacency_matrix",
    "normalized_laplacian_matrix",
    "maximal_independent_set",
    "coarsen_graph",
    "coarsening_hierarchy",
    "interpolate_vector",
    "CoarseLevel",
]
