"""Multilevel graph contraction (Section 3 of the paper).

The multilevel Fiedler-vector algorithm of Barnard & Simon needs three graph
operations:

* **Contraction** — "first finding a maximal independent set of vertices,
  which are to be the vertices of the contracted graph.  The edges of the
  contracted graph are determined by growing domains from the selected
  vertices in a breadth-first manner, adding an edge to the contracted graph
  when two domains intersect."  (Section 3.)
* **Interpolation** — carrying an eigenvector of the contracted graph back to
  the fine graph: each fine vertex takes the value of the coarse vertex whose
  domain it belongs to (piecewise-constant prolongation).
* A **hierarchy** of contractions down to a small coarsest graph
  ("typically 100" vertices in the paper).

This module provides those three pieces; the eigen-solver that consumes them
lives in :mod:`repro.eigen.multilevel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng

__all__ = [
    "maximal_independent_set",
    "coarsen_graph",
    "coarsening_hierarchy",
    "interpolate_vector",
    "interpolate_block",
    "CoarseLevel",
]


def maximal_independent_set(
    pattern: SymmetricPattern,
    rng=None,
    strategy: str = "degree",
) -> np.ndarray:
    """Greedy maximal independent set of the graph.

    Parameters
    ----------
    pattern:
        Adjacency structure.
    rng:
        Random generator (or seed) used when *strategy* is ``"random"``.
    strategy:
        Vertex scan order: ``"degree"`` (nondecreasing degree — produces a
        large independent set, the default), ``"natural"`` (index order), or
        ``"random"`` (uniformly random order).

    Returns
    -------
    numpy.ndarray
        Sorted vertex indices of a maximal independent set.  Maximality means
        every vertex outside the set has a neighbour inside it.
    """
    n = pattern.n
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if strategy == "degree":
        order = np.argsort(pattern.degree(), kind="stable")
    elif strategy == "natural":
        order = np.arange(n, dtype=np.intp)
    elif strategy == "random":
        order = default_rng(rng).permutation(n).astype(np.intp)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    # The sequential greedy scan selects v iff no scan-earlier neighbor was
    # selected — i.e. the lexicographically-first MIS under the scan ranking.
    # That fixpoint is computed here in *rounds* (the classic parallelization
    # of greedy MIS): each round selects every undecided vertex whose rank is
    # a strict minimum among its undecided neighbors, then blocks the selected
    # vertices' neighborhoods.  Identical output, whole-array work per round.
    rank = np.empty(n, dtype=np.intp)
    rank[order] = np.arange(n, dtype=np.intp)
    selected = np.zeros(n, dtype=bool)
    undecided = np.ones(n, dtype=bool)
    rounds = 0
    while True:
        pending = np.flatnonzero(undecided)
        if pending.size == 0:
            break
        if rounds >= 64:
            # Adversarial rank layouts (e.g. a path ranked along its length)
            # decide only O(1) vertices per round; finish those few scan-order
            # — the greedy fixpoint is confluent, so the result is unchanged.
            _greedy_tail(pattern, order, selected, undecided)
            break
        rounds += 1
        slab, offsets = pattern.neighbor_slab(pending)
        neighbor_rank = np.where(undecided[slab], rank[slab], n)
        counts = offsets[1:] - offsets[:-1]
        min_rank = np.full(pending.size, n, dtype=np.intp)
        nonempty = counts > 0
        if slab.size:
            min_rank[nonempty] = np.minimum.reduceat(
                neighbor_rank, offsets[:-1][nonempty]
            )
        wins = pending[rank[pending] < min_rank]
        selected[wins] = True
        undecided[wins] = False
        blocked_slab, _ = pattern.neighbor_slab(wins)
        undecided[blocked_slab] = False
    return np.flatnonzero(selected).astype(np.intp)


def _greedy_tail(pattern, order, selected, undecided) -> None:
    """Finish an interrupted round-based MIS with the sequential greedy scan.

    Mutates ``selected`` / ``undecided`` in place.  Correctness: every already
    -selected vertex is in the greedy solution and every already-blocked
    vertex has a selected smaller-rank neighbor, so scanning the remaining
    undecided vertices in rank order completes the same fixpoint.
    """
    indptr, indices = pattern.indptr, pattern.indices
    for v in order:
        if not undecided[v]:
            continue
        selected[v] = True
        undecided[v] = False
        undecided[indices[indptr[v] : indptr[v + 1]]] = False


def _grow_domains(pattern: SymmetricPattern, mis: np.ndarray, domain_of: np.ndarray) -> None:
    """Simultaneous whole-frontier BFS domain growth (in place).

    Each ring claims every still-unassigned neighbor of the frontier for the
    domain of its first-discovering frontier vertex (frontier order, rows in
    sorted adjacency order) — the same tie-breaking as the vertex-at-a-time
    sweep it replaces (:func:`repro.reference.grow_domains_reference`).
    """
    frontier = mis.copy()
    while frontier.size:
        candidates, parents = pattern.claim_frontier(frontier, domain_of < 0)
        if candidates.size == 0:
            break
        domain_of[candidates] = domain_of[frontier[parents]]
        frontier = candidates


@dataclass(frozen=True)
class CoarseLevel:
    """One level of the contraction hierarchy.

    Attributes
    ----------
    fine_n:
        Number of vertices in the fine graph.
    coarse_pattern:
        Adjacency structure of the contracted graph.
    coarse_vertices:
        Fine-graph indices of the independent-set vertices, i.e.
        ``coarse_vertices[c]`` is the fine vertex that became coarse vertex ``c``.
    domain_of:
        For every fine vertex, the coarse vertex (index into the coarse graph)
        whose domain it was absorbed into.
    """

    fine_n: int
    coarse_pattern: SymmetricPattern
    coarse_vertices: np.ndarray
    domain_of: np.ndarray


def coarsen_graph(
    pattern: SymmetricPattern,
    rng=None,
    strategy: str = "degree",
) -> CoarseLevel:
    """Contract the graph by one level (maximal independent set + domain growing).

    Domains are grown from the independent-set vertices breadth-first and
    simultaneously (one BFS ring per sweep), so each fine vertex joins the
    domain of the *nearest* selected vertex (ties broken by whichever domain
    reaches it first in the sweep).  An edge connects two coarse vertices when
    their domains touch — i.e. some fine edge joins the two domains.

    Isolated fine vertices become their own coarse vertices (they are always
    in the independent set), so the coarse graph never loses components.
    """
    n = pattern.n
    mis = maximal_independent_set(pattern, rng=rng, strategy=strategy)
    n_coarse = mis.size
    domain_of = np.full(n, -1, dtype=np.intp)
    domain_of[mis] = np.arange(n_coarse, dtype=np.intp)
    _grow_domains(pattern, mis, domain_of)

    # Any vertex still unassigned lies in a component with no selected vertex,
    # which cannot happen for a *maximal* independent set; assert the invariant.
    if np.any(domain_of < 0):  # pragma: no cover - defensive
        raise AssertionError("domain growing left unassigned vertices")

    # Coarse edges: for every fine edge (u, v) with different domains, connect
    # them.  Both directions of each fine edge are stored, so no extra
    # symmetrization pass is needed.
    indptr, indices = pattern.indptr, pattern.indices
    rows = np.repeat(np.arange(n), np.diff(indptr))
    cu, cv = domain_of[rows], domain_of[indices]
    mask = cu != cv
    coarse_pattern = SymmetricPattern.from_edge_arrays(
        n_coarse, cu[mask], cv[mask], symmetrize=False
    )
    return CoarseLevel(
        fine_n=n,
        coarse_pattern=coarse_pattern,
        coarse_vertices=mis,
        domain_of=domain_of,
    )


def coarsening_hierarchy(
    pattern: SymmetricPattern,
    coarsest_size: int = 100,
    max_levels: int = 50,
    rng=None,
    strategy: str = "degree",
) -> list[CoarseLevel]:
    """Build the full contraction hierarchy down to ``coarsest_size`` vertices.

    Contraction stops when the graph has at most *coarsest_size* vertices
    ("typically 100" in the paper), when *max_levels* levels have been built,
    or when a contraction fails to shrink the graph (possible on pathological
    graphs such as stars, where the independent set is almost the whole
    vertex set).

    Returns
    -------
    list of CoarseLevel
        ``levels[0]`` contracts the input graph; ``levels[-1].coarse_pattern``
        is the coarsest graph.  The list is empty when the input is already
        small enough.
    """
    rng = default_rng(rng)
    levels: list[CoarseLevel] = []
    current = pattern
    for _ in range(max_levels):
        if current.n <= coarsest_size:
            break
        level = coarsen_graph(current, rng=rng, strategy=strategy)
        if level.coarse_pattern.n >= current.n:
            break  # no progress; stop rather than loop forever
        levels.append(level)
        current = level.coarse_pattern
    return levels


def interpolate_vector(level: CoarseLevel, coarse_vector: np.ndarray) -> np.ndarray:
    """Prolong a coarse-graph vector to the fine graph of *level*.

    Each fine vertex receives the value of the coarse vertex whose domain it
    belongs to (piecewise-constant interpolation).  This "provides a good
    approximation to an eigenvector of the larger graph" (Section 3) which the
    Rayleigh Quotient Iteration then refines.
    """
    coarse_vector = np.asarray(coarse_vector, dtype=np.float64)
    if coarse_vector.shape != (level.coarse_pattern.n,):
        raise ValueError(
            f"coarse_vector must have shape ({level.coarse_pattern.n},), "
            f"got {coarse_vector.shape}"
        )
    return coarse_vector[level.domain_of]


def interpolate_block(level: CoarseLevel, coarse_block: np.ndarray) -> np.ndarray:
    """Prolong a block of coarse-graph column vectors to the fine graph.

    One fancy-indexing gather for the whole ``(n_coarse, k)`` block — the
    column-at-a-time equivalent (``interpolate_vector`` per column plus a
    ``column_stack`` copy) allocates ``k + 1`` intermediate arrays for the
    same values.  Used by the multilevel solver's robustness block.
    """
    coarse_block = np.asarray(coarse_block, dtype=np.float64)
    if coarse_block.ndim != 2 or coarse_block.shape[0] != level.coarse_pattern.n:
        raise ValueError(
            f"coarse_block must have shape ({level.coarse_pattern.n}, k), "
            f"got {coarse_block.shape}"
        )
    return coarse_block[level.domain_of, :]
