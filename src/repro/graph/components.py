"""Connected components of the adjacency graph.

The paper assumes the matrix is irreducible (its adjacency graph connected);
the library handles general matrices by ordering each component separately
(see :func:`repro.orderings.base.concatenate_component_orderings`), so the
component machinery lives here.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from repro.sparse.pattern import SymmetricPattern

__all__ = ["connected_components", "is_connected", "largest_component", "component_subpatterns"]


def connected_components(pattern: SymmetricPattern) -> tuple[int, np.ndarray]:
    """Label the connected components of the graph.

    Returns
    -------
    (num_components, labels):
        *labels* is an array of length ``n`` assigning each vertex a component
        id in ``0 .. num_components-1``; components are numbered in order of
        their smallest vertex.
    """
    n = pattern.n
    if n == 0:
        return 0, np.empty(0, dtype=np.intp)
    adjacency = sp.csr_matrix(
        (np.ones(pattern.indices.size, dtype=np.int8), pattern.indices, pattern.indptr),
        shape=(n, n),
    )
    count, raw = csgraph.connected_components(adjacency, directed=False)
    # csgraph's label order is an implementation detail; renumber so component
    # ids follow each component's smallest vertex (the documented contract the
    # per-component ordering concatenation relies on).
    _labels, first_vertex = np.unique(raw, return_index=True)
    rank = np.empty(count, dtype=np.intp)
    rank[np.argsort(first_vertex)] = np.arange(count, dtype=np.intp)
    return int(count), rank[raw].astype(np.intp)


def is_connected(pattern: SymmetricPattern) -> bool:
    """Whether the adjacency graph is connected (matrix is irreducible)."""
    if pattern.n <= 1:
        return True
    count, _ = connected_components(pattern)
    return count == 1


def largest_component(pattern: SymmetricPattern) -> np.ndarray:
    """Vertices of the largest connected component (ascending order)."""
    count, labels = connected_components(pattern)
    if count == 1:
        return np.arange(pattern.n, dtype=np.intp)
    sizes = np.bincount(labels, minlength=count)
    return np.flatnonzero(labels == int(np.argmax(sizes))).astype(np.intp)


def component_subpatterns(pattern: SymmetricPattern):
    """Split the pattern into per-component sub-patterns.

    Returns
    -------
    list of (vertices, subpattern):
        For each component, the original vertex indices (ascending) and the
        induced :class:`SymmetricPattern` on them.
    """
    count, labels = connected_components(pattern)
    result = []
    for c in range(count):
        vertices = np.flatnonzero(labels == c).astype(np.intp)
        result.append((vertices, pattern.subpattern(vertices)))
    return result
