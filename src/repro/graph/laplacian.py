"""Laplacian matrices of adjacency graphs (Section 2.2 of the paper).

For an undirected graph ``G`` with adjacency matrix ``B`` and diagonal degree
matrix ``D``, the Laplacian is ``Q(G) = D - B``.  When ``G`` is the adjacency
graph of a symmetric matrix ``M`` the paper defines ``Q`` directly from the
structure of ``M``:

* ``q_ij = -1`` if ``i != j`` and ``m_ij != 0``,
* ``q_ij = 0`` if ``i != j`` and ``m_ij == 0``,
* ``q_ii = -sum_{j != i} q_ij`` (the vertex degree).

``Q`` is a singular M-matrix: its eigenvalues satisfy
``0 = lambda_1 <= lambda_2 <= ... <= lambda_n``, with the constant vector as
the eigenvector for 0, and ``lambda_2 > 0`` exactly when ``G`` is connected.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.pattern import SymmetricPattern
from repro.sparse.ops import structure_from_matrix

__all__ = [
    "adjacency_matrix",
    "laplacian_matrix",
    "normalized_laplacian_matrix",
    "laplacian_quadratic_form",
]


def adjacency_matrix(pattern, dtype=np.float64, weights=None) -> sp.csr_matrix:
    """Adjacency matrix ``B`` of the graph of *pattern*.

    Parameters
    ----------
    pattern:
        A :class:`SymmetricPattern`, SciPy sparse matrix, or dense array (the
        latter two are converted to a pattern first).
    dtype:
        Value dtype of the result.
    weights:
        Optional array of edge weights aligned with ``pattern.indices``
        (one weight per stored off-diagonal entry).  Defaults to unit weights,
        which is what the paper's Laplacian uses.
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    if weights is None:
        data = np.ones(pattern.indices.size, dtype=dtype)
    else:
        data = np.asarray(weights, dtype=dtype)
        if data.shape != (pattern.indices.size,):
            raise ValueError(
                f"weights must have shape ({pattern.indices.size},), got {data.shape}"
            )
    return sp.csr_matrix((data, pattern.indices.copy(), pattern.indptr.copy()), shape=(n, n))


def laplacian_matrix(pattern, dtype=np.float64, weights=None) -> sp.csr_matrix:
    """Graph Laplacian ``Q = D - B`` of the adjacency graph of *pattern*.

    The unweighted case assembles the CSR arrays directly — the off-diagonal
    structure of ``Q`` is exactly the pattern's, plus one explicit diagonal
    entry per row — instead of building the adjacency matrix and subtracting
    it from a diagonal matrix.  That skips two intermediate sparse matrices
    and a sort-and-merge pass while producing the identical canonical CSR
    (same sorted structure, same values), which the multilevel eigensolver
    relies on when it rebuilds Laplacians for every level of a hierarchy.
    """
    pattern = structure_from_matrix(pattern)
    if weights is not None:
        b = adjacency_matrix(pattern, dtype=dtype, weights=weights)
        degrees = np.asarray(b.sum(axis=1)).ravel()
        return (sp.diags(degrees, format="csr", dtype=dtype) - b).tocsr()
    n = pattern.n
    indptr, indices = pattern.indptr, pattern.indices
    counts = np.diff(indptr)
    rows = np.repeat(np.arange(n, dtype=np.intp), counts)
    # Row-relative position of each off-diagonal entry, and how many of a
    # row's entries sort before the diagonal (column < row).
    rel = np.arange(indices.size, dtype=np.intp) - np.repeat(indptr[:-1], counts)
    below = np.zeros(n, dtype=np.intp)
    nonempty = counts > 0
    if indices.size:
        below[nonempty] = np.add.reduceat(
            (indices < rows).astype(np.intp), indptr[:-1][nonempty]
        )
    # Degree-0 rows get no stored diagonal — matching the canonical form of
    # the ``diags(degrees) - B`` construction, which drops the zero entry.
    has_diag = nonempty.astype(np.intp)
    new_indptr = indptr + np.concatenate(([0], np.cumsum(has_diag)))
    nnz_new = indices.size + int(has_diag.sum())
    new_indices = np.empty(nnz_new, dtype=indices.dtype)
    data = np.empty(nnz_new, dtype=dtype)
    offdiag_pos = new_indptr[rows] + rel + (rel >= below[rows])
    diag_pos = (new_indptr[:-1] + below)[nonempty]
    new_indices[offdiag_pos] = indices
    new_indices[diag_pos] = np.flatnonzero(nonempty).astype(indices.dtype)
    data[offdiag_pos] = -1.0
    data[diag_pos] = counts[nonempty].astype(dtype)
    lap = sp.csr_matrix((data, new_indices, new_indptr), shape=(n, n))
    lap.has_sorted_indices = True  # inserted at the in-row sorted position
    return lap


def normalized_laplacian_matrix(pattern, dtype=np.float64) -> sp.csr_matrix:
    """Symmetric normalized Laplacian ``D^{-1/2} Q D^{-1/2}``.

    Not used by the paper's algorithm (which uses the combinatorial
    Laplacian), but provided because it is the standard alternative and the
    ablation benchmarks compare the two.  Isolated vertices (degree 0) get a
    zero row/column.
    """
    b = adjacency_matrix(pattern, dtype=dtype)
    degrees = np.asarray(b.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degrees)
    nonzero = degrees > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(degrees[nonzero])
    d_inv = sp.diags(inv_sqrt, format="csr", dtype=dtype)
    lap = sp.diags(degrees, format="csr", dtype=dtype) - b
    return (d_inv @ lap @ d_inv).tocsr()


def laplacian_quadratic_form(pattern, x) -> float:
    """Evaluate ``x^T Q x = sum_{(i,j) in E} (x_i - x_j)^2`` without forming ``Q``.

    This identity (used throughout Section 2.3 of the paper) is evaluated
    directly over the edge set, which is both faster and more accurate than a
    matrix-vector product for the envelope bounds.
    """
    pattern = structure_from_matrix(pattern)
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (pattern.n,):
        raise ValueError(f"x must have shape ({pattern.n},), got {x.shape}")
    rows = np.repeat(np.arange(pattern.n), np.diff(pattern.indptr))
    diffs = x[rows] - x[pattern.indices]
    # Each undirected edge appears twice (i->j and j->i): halve the sum.
    return float(0.5 * np.dot(diffs, diffs))
