"""Pseudo-peripheral nodes and pseudo-diameters.

The GPS, GK and RCM algorithms all start a breadth-first search "from a
suitable vertex" — a *pseudo-peripheral* node, i.e. one whose eccentricity is
close to the graph diameter.  The standard way to find one is the George-Liu
shrinking strategy (George & Liu 1979; used by SPARSPAK's RCM): repeatedly
root a level structure at a minimum-degree vertex of the deepest last level
until the eccentricity stops increasing.  The Gibbs-Poole-Stockmeyer algorithm
additionally needs the *pair* of endpoints (a pseudo-diameter), which
:func:`pseudo_diameter` returns.

The paper also cites Grimes, Pierce & Simon (1990) who find a
pseudo-peripheral node from the eigenvector of the adjacency matrix for the
largest eigenvalue; that variant is provided as
:func:`spectral_pseudo_peripheral_node` for completeness and is exercised by
the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.graph.traversal import RootedLevelStructure, breadth_first_levels
from repro.sparse.pattern import SymmetricPattern

__all__ = [
    "pseudo_peripheral_node",
    "pseudo_diameter",
    "spectral_pseudo_peripheral_node",
]


def _min_degree_vertex(pattern: SymmetricPattern, candidates: np.ndarray) -> int:
    degrees = pattern.degree()
    candidates = np.asarray(candidates, dtype=np.intp)
    return int(candidates[np.argmin(degrees[candidates], axis=0)])


def pseudo_peripheral_node(
    pattern: SymmetricPattern,
    start: int | None = None,
    max_iterations: int = 20,
) -> tuple[int, RootedLevelStructure]:
    """Find a pseudo-peripheral node with the George-Liu shrinking strategy.

    Parameters
    ----------
    pattern:
        Adjacency structure (only the component containing *start* is explored).
    start:
        Initial guess; defaults to a vertex of minimum degree.
    max_iterations:
        Safety cap on the number of re-rooting rounds (the strategy converges
        in a handful of rounds in practice).

    Returns
    -------
    (node, level_structure):
        The pseudo-peripheral node found and its rooted level structure.
    """
    n = pattern.n
    if n == 0:
        raise ValueError("cannot find a pseudo-peripheral node of an empty graph")
    degrees = pattern.degree()
    if start is None:
        start = int(np.argmin(degrees))
    node = int(start)
    structure = breadth_first_levels(pattern, node)

    for _ in range(max_iterations):
        last_level = structure.levels[-1]
        # Sort the last level by degree and probe candidates of smallest degree;
        # shrinking the candidate set keeps the cost low (George & Liu).
        order = np.asarray(last_level, dtype=np.intp)[
            np.argsort(degrees[np.asarray(last_level, dtype=np.intp)], kind="stable")
        ]
        improved = False
        best_width = structure.width
        for candidate in order:
            trial = breadth_first_levels(pattern, int(candidate))
            if trial.height > structure.height or (
                trial.height == structure.height and trial.width < best_width
            ):
                if trial.height > structure.height:
                    improved = True
                node = int(candidate)
                structure = trial
                best_width = trial.width
                if improved:
                    break
        if not improved:
            break
    return node, structure


def pseudo_diameter(
    pattern: SymmetricPattern,
    start: int | None = None,
) -> tuple[int, int, RootedLevelStructure, RootedLevelStructure]:
    """Find a pseudo-diameter (pair of mutually distant vertices).

    Implements the endpoint search of the Gibbs-Poole-Stockmeyer algorithm:
    find a pseudo-peripheral node ``u``; among the minimum-degree vertices of
    the last level of ``L(u)``, pick the one ``v`` whose level structure has
    the smallest width.

    Returns
    -------
    (u, v, structure_u, structure_v)
    """
    u, structure_u = pseudo_peripheral_node(pattern, start=start)
    degrees = pattern.degree()
    last = np.asarray(structure_u.levels[-1], dtype=np.intp)
    # GPS examines the last level sorted by degree, keeping the structure of
    # minimum width among those with eccentricity equal to that of u.
    candidates = last[np.argsort(degrees[last], kind="stable")]
    best_v = int(candidates[0])
    best_structure = breadth_first_levels(pattern, best_v)
    best_width = best_structure.width
    for candidate in candidates[1:]:
        trial = breadth_first_levels(pattern, int(candidate))
        if trial.height > structure_u.height:
            # Found a deeper structure: restart the whole search from there.
            return pseudo_diameter(pattern, start=int(candidate))
        if trial.width < best_width:
            best_v, best_structure, best_width = int(candidate), trial, trial.width
    return u, best_v, structure_u, best_structure


def spectral_pseudo_peripheral_node(pattern: SymmetricPattern) -> int:
    """Pseudo-peripheral node from the dominant adjacency eigenvector.

    Grimes, Pierce & Simon (1990) observe that a vertex minimizing the entry
    of the Perron eigenvector of the adjacency matrix is a good
    pseudo-peripheral node.  A few power iterations suffice.
    """
    n = pattern.n
    if n == 0:
        raise ValueError("empty graph")
    if pattern.nnz_offdiag == 0:
        return 0
    adjacency = pattern.to_scipy("adjacency")
    x = np.ones(n) / np.sqrt(n)
    for _ in range(50):
        y = adjacency @ x
        norm = np.linalg.norm(y)
        if norm == 0:
            break
        y /= norm
        if np.linalg.norm(y - x) < 1e-10:
            x = y
            break
        x = y
    return int(np.argmin(np.abs(x)))
