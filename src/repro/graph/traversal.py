"""Breadth-first search, rooted level structures and distances.

The baseline orderings (Cuthill-McKee, reverse Cuthill-McKee, GPS, GK) are all
built on *rooted level structures*: the partition of the vertex set into BFS
levels ``L_0 = {r}, L_1 = adj(L_0), ...`` from a root ``r`` (George & Liu,
1981, Ch. 4).  This module provides those primitives as whole-frontier array
operations over CSR neighbor slabs
(:meth:`repro.sparse.pattern.SymmetricPattern.neighbor_slab`): each BFS step
expands the entire frontier with one gather + mask + first-occurrence dedupe
instead of a Python loop over vertices.  The discovery order is identical to
the vertex-at-a-time scan (see :mod:`repro.reference` and the property tests
in ``tests/test_kernels_reference.py``), so orderings built on these
primitives are bit-for-bit unchanged.

Both entry points are backend-dispatched (:mod:`repro.backends`): when the
registry selects a compiled (or loop-``python``) tier for the call's size,
the queue-scan kernel runs instead of the frontier expansion below — with
the identical discovery order, pinned by ``tests/test_backends.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import backends
from repro.sparse.pattern import SymmetricPattern

__all__ = [
    "RootedLevelStructure",
    "breadth_first_levels",
    "rooted_level_structure",
    "bfs_order",
    "distance_from",
]


@dataclass(frozen=True)
class RootedLevelStructure:
    """A rooted level structure ``L(r) = (L_0, L_1, ..., L_h)``.

    Attributes
    ----------
    root:
        The root vertex ``r`` (or a tuple of roots for multi-rooted
        structures, as used by GPS's combined structure).
    level_of:
        Array of length ``n`` giving the level index of every vertex, or
        ``-1`` for vertices unreachable from the root(s).
    levels:
        List of arrays; ``levels[k]`` holds the vertices at level ``k``
        in order of discovery.
    """

    root: tuple[int, ...]
    level_of: np.ndarray
    levels: list = field(default_factory=list)

    @property
    def height(self) -> int:
        """Number of levels minus one (the eccentricity of the root)."""
        return len(self.levels) - 1

    @property
    def depth(self) -> int:
        """Number of levels (``height + 1``)."""
        return len(self.levels)

    @property
    def width(self) -> int:
        """Maximum number of vertices in any level."""
        if not self.levels:
            return 0
        return max(len(level) for level in self.levels)

    @property
    def level_widths(self) -> np.ndarray:
        """Array of per-level sizes."""
        return np.array([len(level) for level in self.levels], dtype=np.intp)

    @property
    def num_reached(self) -> int:
        """Number of vertices reachable from the root(s)."""
        return int(sum(len(level) for level in self.levels))

    def vertices(self) -> np.ndarray:
        """All reached vertices in level order."""
        if not self.levels:
            return np.empty(0, dtype=np.intp)
        return np.concatenate([np.asarray(level, dtype=np.intp) for level in self.levels])


def breadth_first_levels(
    pattern: SymmetricPattern,
    roots: int | Sequence[int],
    restrict_to: np.ndarray | None = None,
) -> RootedLevelStructure:
    """Breadth-first level structure rooted at *roots*.

    Parameters
    ----------
    pattern:
        Adjacency structure of the graph.
    roots:
        A single root vertex or a sequence of roots (all placed in level 0).
    restrict_to:
        Optional boolean mask of length ``n``; vertices where the mask is
        ``False`` are treated as absent from the graph.

    Returns
    -------
    RootedLevelStructure
    """
    n = pattern.n
    if np.isscalar(roots):
        root_list = [int(roots)]
    else:
        root_list = [int(r) for r in roots]
    for r in root_list:
        if r < 0 or r >= n:
            raise ValueError(f"root {r} out of range for n={n}")

    allowed = np.ones(n, dtype=bool) if restrict_to is None else np.asarray(restrict_to, dtype=bool)

    impl = backends.kernel_impl("bfs_levels", n + pattern.indices.size)
    if impl is not None:
        roots_arr = np.asarray(root_list, dtype=np.intp)
        level_of, order, level_starts, num_levels = impl(
            pattern.indptr, pattern.indices, roots_arr,
            np.ascontiguousarray(allowed), n,
        )
        levels = [
            order[level_starts[k] : level_starts[k + 1]].copy()
            for k in range(num_levels)
        ]
        return RootedLevelStructure(tuple(root_list), level_of, levels)

    level_of = np.full(n, -1, dtype=np.intp)
    levels: list[np.ndarray] = []

    frontier = np.array([r for r in root_list if allowed[r]], dtype=np.intp)
    if frontier.size == 0:
        return RootedLevelStructure(tuple(root_list), level_of, [])
    level_of[frontier] = 0
    levels.append(frontier.copy())

    # Whole-frontier expansion: vertices where `fresh` is true are still
    # undiscovered; frontier_expand returns the next level in the discovery
    # order of the vertex-at-a-time scan.
    fresh = allowed.copy()
    fresh[frontier] = False
    current_level = 0
    while frontier.size:
        frontier = pattern.frontier_expand(frontier, fresh)
        if frontier.size == 0:
            break
        current_level += 1
        level_of[frontier] = current_level
        fresh[frontier] = False
        levels.append(frontier)

    return RootedLevelStructure(tuple(root_list), level_of, levels)


def rooted_level_structure(pattern: SymmetricPattern, root: int) -> RootedLevelStructure:
    """Rooted level structure from a single root (alias of :func:`breadth_first_levels`)."""
    return breadth_first_levels(pattern, root)


def bfs_order(
    pattern: SymmetricPattern,
    root: int,
    sort_by_degree: bool = False,
) -> np.ndarray:
    """Return the vertices reachable from *root* in BFS discovery order.

    Parameters
    ----------
    pattern:
        Adjacency structure.
    root:
        Start vertex.
    sort_by_degree:
        If true, the unvisited neighbours of each dequeued vertex are appended
        in order of nondecreasing degree — this is exactly the enqueuing rule
        of the Cuthill-McKee ordering.

    Returns
    -------
    numpy.ndarray
        Vertices in visitation order (only the component containing *root*).
    """
    n = pattern.n
    if root < 0 or root >= n:
        raise ValueError(f"root {root} out of range for n={n}")
    degrees = pattern.degree()

    impl = backends.kernel_impl("bfs_order", n + pattern.indices.size)
    if impl is not None:
        order, tail = impl(
            pattern.indptr, pattern.indices, degrees, int(root),
            bool(sort_by_degree), n,
        )
        return order[:tail]

    fresh = np.ones(n, dtype=bool)
    order = np.empty(n, dtype=np.intp)
    order[0] = root
    fresh[root] = False
    tail = 1

    # Whole-level expansion.  The queue scan appends, for each dequeued vertex
    # in turn, its still-unvisited neighbors (optionally degree-sorted); that
    # is exactly: claim each next-level vertex for its first-discovering
    # parent, then order by (parent position, [degree,] adjacency position).
    # np.lexsort is stable, so omitted keys fall back to slab position.
    frontier = order[:1]
    while frontier.size:
        candidates, parents = pattern.claim_frontier(frontier, fresh)
        if candidates.size == 0:
            break
        if sort_by_degree and candidates.size > 1:
            candidates = candidates[np.lexsort((degrees[candidates], parents))]
        fresh[candidates] = False
        order[tail : tail + candidates.size] = candidates
        tail += candidates.size
        frontier = candidates
    return order[:tail]


def distance_from(pattern: SymmetricPattern, root: int) -> np.ndarray:
    """Unweighted graph distance of every vertex from *root* (``-1`` if unreachable)."""
    return breadth_first_levels(pattern, root).level_of
