"""Reordering algorithms.

The paper's contribution is the *spectral* envelope-reducing ordering
(:mod:`repro.orderings.spectral`).  The algorithms it is evaluated against are
implemented here as well, from their original descriptions:

* Cuthill-McKee and reverse Cuthill-McKee (:mod:`repro.orderings.cuthill_mckee`),
* Gibbs-Poole-Stockmeyer (:mod:`repro.orderings.gps`),
* Gibbs-King (:mod:`repro.orderings.gibbs_king`),

plus two extensions the paper points to:

* Sloan's algorithm (:mod:`repro.orderings.sloan`), the other classical
  profile-reduction heuristic,
* a hybrid spectral + local refinement pass (:mod:`repro.orderings.hybrid`),
  the "limited use of a local reordering strategy" suggested in Section 4.

Every algorithm returns an :class:`repro.orderings.base.Ordering` — a
validated permutation with a uniform new-to-old convention — and handles
disconnected matrices by ordering each connected component independently.
"""

from repro.orderings.base import (
    Ordering,
    identity_ordering,
    order_by_components,
    random_ordering,
)
from repro.orderings.cuthill_mckee import cuthill_mckee_ordering, rcm_ordering
from repro.orderings.gps import gps_ordering
from repro.orderings.gibbs_king import gibbs_king_ordering
from repro.orderings.king import king_ordering, reverse_king_ordering
from repro.orderings.sloan import sloan_ordering
from repro.orderings.spectral import SpectralOrderingResult, spectral_ordering
from repro.orderings.hybrid import hybrid_spectral_ordering
from repro.orderings.registry import ORDERING_ALGORITHMS, get_ordering_algorithm

__all__ = [
    "Ordering",
    "identity_ordering",
    "random_ordering",
    "order_by_components",
    "cuthill_mckee_ordering",
    "rcm_ordering",
    "gps_ordering",
    "gibbs_king_ordering",
    "king_ordering",
    "reverse_king_ordering",
    "sloan_ordering",
    "spectral_ordering",
    "SpectralOrderingResult",
    "hybrid_spectral_ordering",
    "ORDERING_ALGORITHMS",
    "get_ordering_algorithm",
]
