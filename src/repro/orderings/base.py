"""The :class:`Ordering` permutation object and component handling.

Conventions
-----------
An :class:`Ordering` stores the *new-to-old* permutation array ``perm``:
``perm[k]`` is the original index of the row/column placed at position ``k``
of the reordered matrix, so that the reordered matrix is ``A[perm][:, perm]``
(``P^T A P``).  The inverse map — "where did old vertex ``v`` go" — is exposed
as :attr:`Ordering.positions`.

The paper assumes the matrix is irreducible; real matrices are not always, so
:func:`order_by_components` applies a per-component ordering function to every
connected component and concatenates the results (components in order of
their smallest original vertex).  Every algorithm in this package routes
through it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.sparse.ops import structure_from_matrix
from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng
from repro.utils.validation import check_permutation

__all__ = ["Ordering", "identity_ordering", "random_ordering", "order_by_components"]


@dataclass(frozen=True)
class Ordering:
    """A validated symmetric reordering of an ``n x n`` matrix.

    Attributes
    ----------
    perm:
        New-to-old permutation (see module docstring).
    algorithm:
        Name of the producing algorithm (``"rcm"``, ``"spectral"``, ...).
    metadata:
        Free-form dictionary of algorithm-specific details (eigenvalue
        estimates, chosen sort direction, level-structure statistics, ...).
    """

    perm: np.ndarray
    algorithm: str = "unknown"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        object.__setattr__(self, "perm", check_permutation(self.perm))

    @property
    def n(self) -> int:
        """Matrix order."""
        return int(self.perm.size)

    @property
    def positions(self) -> np.ndarray:
        """Old-to-new map: ``positions[old_vertex] = new_index``."""
        inverse = np.empty(self.n, dtype=np.intp)
        inverse[self.perm] = np.arange(self.n, dtype=np.intp)
        return inverse

    def reversed(self) -> "Ordering":
        """The reversed ordering (e.g. CM -> RCM)."""
        return Ordering(self.perm[::-1].copy(), algorithm=f"reverse-{self.algorithm}",
                        metadata=dict(self.metadata))

    def compose(self, other: "Ordering") -> "Ordering":
        """Apply *self* after *other*: the result maps new positions of *self*
        through *other*'s permutation (``result.perm[k] = other.perm[self.perm[k]]``)."""
        if other.n != self.n:
            raise ValueError("cannot compose orderings of different sizes")
        return Ordering(other.perm[self.perm],
                        algorithm=f"{self.algorithm}∘{other.algorithm}")

    def apply_to(self, matrix):
        """Return ``P^T A P`` for a SciPy sparse / dense matrix or a pattern."""
        if isinstance(matrix, SymmetricPattern):
            return matrix.permute(self.perm)
        from repro.sparse.ops import permute_symmetric

        return permute_symmetric(matrix, self.perm)

    def is_identity(self) -> bool:
        """Whether this is the natural (identity) ordering."""
        return bool(np.array_equal(self.perm, np.arange(self.n)))

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Ordering(n={self.n}, algorithm={self.algorithm!r})"


def identity_ordering(n: int) -> Ordering:
    """The natural ordering ``0, 1, ..., n-1``."""
    return Ordering(np.arange(n, dtype=np.intp), algorithm="identity")


def random_ordering(n: int, rng=None) -> Ordering:
    """A uniformly random ordering (baseline / stress-testing)."""
    generator = default_rng(rng)
    return Ordering(generator.permutation(n).astype(np.intp), algorithm="random")


def order_by_components(
    pattern,
    component_ordering: Callable[[SymmetricPattern], np.ndarray],
    algorithm: str,
    metadata: dict | None = None,
) -> Ordering:
    """Apply a per-component ordering function to every connected component.

    Parameters
    ----------
    pattern:
        Matrix structure (any format accepted by
        :func:`repro.sparse.structure_from_matrix`).
    component_ordering:
        Function mapping a *connected* :class:`SymmetricPattern` with local
        indices ``0..m-1`` to a new-to-old permutation of length ``m``.
    algorithm:
        Name recorded on the resulting :class:`Ordering`.
    metadata:
        Optional extra metadata; the number of components is always added.

    Returns
    -------
    Ordering
        The concatenation of the per-component orderings, components taken in
        order of their smallest original vertex index.
    """
    pattern = structure_from_matrix(pattern)
    n = pattern.n
    meta = dict(metadata or {})
    if n == 0:
        meta["num_components"] = 0
        return Ordering(np.empty(0, dtype=np.intp), algorithm=algorithm, metadata=meta)

    # The component split is a pure function of the structure; the spectral
    # workspace memoizes it (labels AND subpattern objects) on the pattern,
    # so every algorithm run on the same pattern shares one split — and the
    # shared subpatterns accumulate their own degree/Laplacian caches.
    from repro.eigen.workspace import spectral_workspace

    workspace = spectral_workspace(pattern)
    num_components, _labels = workspace.components()
    meta["num_components"] = num_components
    if num_components == 1:
        local = np.asarray(component_ordering(pattern), dtype=np.intp)
        return Ordering(check_permutation(local, n), algorithm=algorithm, metadata=meta)

    pieces = []
    for vertices, sub in workspace.component_split():
        if sub is None:
            pieces.append(vertices)
            continue
        local = check_permutation(np.asarray(component_ordering(sub), dtype=np.intp),
                                  vertices.size)
        pieces.append(vertices[local])
    perm = np.concatenate(pieces)
    return Ordering(check_permutation(perm, n), algorithm=algorithm, metadata=meta)
