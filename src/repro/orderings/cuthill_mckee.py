"""Cuthill-McKee and reverse Cuthill-McKee (RCM) orderings.

The RCM algorithm — "the reverse Cuthill-McKee (RCM) algorithm in SPARSPAK" —
is one of the paper's three baselines.  As described in Section 4:

    "The RCM algorithm ... uses local search (breadth-first search) from a
    pseudo-peripheral vertex to generate a long rooted level structure.  The
    RCM algorithm then numbers the vertices by increasing level values, where
    the vertices in each level are numbered in nondecreasing order of their
    degrees.  The final RCM ordering is obtained by reversing the ordering
    thus obtained."

The Cuthill-McKee numbering is exactly a breadth-first search in which the
unnumbered neighbours of each dequeued vertex are appended in nondecreasing
degree order; reversing it gives RCM (George & Liu 1981).  Cuthill-McKee
orderings are *adjacency orderings* (Section 2.4); RCM orderings are not.
"""

from __future__ import annotations

import numpy as np

from repro.graph.peripheral import pseudo_peripheral_node
from repro.graph.traversal import bfs_order
from repro.orderings.base import Ordering, order_by_components
from repro.sparse.pattern import SymmetricPattern

__all__ = ["cuthill_mckee_ordering", "rcm_ordering"]


def _cm_component(pattern: SymmetricPattern, start: int | None = None) -> np.ndarray:
    """Cuthill-McKee order of one connected component (new-to-old permutation)."""
    if pattern.n == 1:
        return np.zeros(1, dtype=np.intp)
    if start is None:
        start, _ = pseudo_peripheral_node(pattern)
    order = bfs_order(pattern, int(start), sort_by_degree=True)
    if order.size != pattern.n:  # pragma: no cover - defensive; component is connected
        raise AssertionError("BFS did not reach every vertex of a connected component")
    return order


def cuthill_mckee_ordering(pattern, start: int | None = None) -> Ordering:
    """Cuthill-McKee ordering (un-reversed).

    Parameters
    ----------
    pattern:
        Matrix structure (pattern, SciPy sparse matrix or dense array).
    start:
        Optional start vertex.  Only honoured when the graph is connected;
        otherwise each component starts from its own pseudo-peripheral node.

    Returns
    -------
    Ordering
    """
    from repro.sparse.ops import structure_from_matrix
    from repro.graph.components import is_connected

    pattern = structure_from_matrix(pattern)
    if start is not None and is_connected(pattern):
        perm = _cm_component(pattern, start=start)
        return Ordering(perm, algorithm="cuthill-mckee", metadata={"start": int(start)})
    return order_by_components(pattern, _cm_component, algorithm="cuthill-mckee")


def rcm_ordering(pattern, start: int | None = None) -> Ordering:
    """Reverse Cuthill-McKee ordering (the SPARSPAK baseline of the paper).

    The per-component Cuthill-McKee orders are computed first and the full
    concatenated ordering is then reversed, matching the SPARSPAK convention.
    """
    cm = cuthill_mckee_ordering(pattern, start=start)
    perm = cm.perm[::-1].copy()
    metadata = dict(cm.metadata)
    return Ordering(perm, algorithm="rcm", metadata=metadata)
