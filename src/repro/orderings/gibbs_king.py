"""The Gibbs-King (GK) profile-reducing ordering.

Gibbs (1976, TOMS Algorithm 509) combines the GPS combined level structure
with King's numbering criterion.  The paper observes (Section 4):

    "Generally the GPS algorithm yields a lower bandwidth while the GK
    algorithm yields a lower envelope size.  Our results are in agreement
    with this conclusion."

The implementation reuses the GPS phases 1-2
(:func:`repro.orderings.gps.combined_level_structure`) and replaces the
within-level numbering rule by King's criterion: the next vertex chosen is the
candidate whose numbering enlarges the active front the least, i.e. the one
with the fewest unnumbered neighbours that are not yet adjacent to any
numbered vertex (:func:`repro.orderings.gps.number_by_levels` with
``tie_break="king"``).  As with GPS, the better of the ordering and its
reverse (by envelope size) is returned.
"""

from __future__ import annotations

import numpy as np

from repro.envelope.metrics import envelope_size
from repro.orderings.base import Ordering, order_by_components
from repro.orderings.gps import combined_level_structure, number_by_levels
from repro.sparse.pattern import SymmetricPattern

__all__ = ["gibbs_king_ordering"]


def _gk_component(pattern: SymmetricPattern) -> np.ndarray:
    if pattern.n == 1:
        return np.zeros(1, dtype=np.intp)
    levels, _height, start, _end = combined_level_structure(pattern)
    forward = number_by_levels(pattern, levels, start, tie_break="king")
    backward = forward[::-1].copy()
    if envelope_size(pattern, backward) < envelope_size(pattern, forward):
        return backward
    return forward


def gibbs_king_ordering(pattern) -> Ordering:
    """Gibbs-King ordering of a symmetric matrix structure.

    Returns
    -------
    Ordering
        ``algorithm == "gk"``; metadata records the number of components.
    """
    return order_by_components(pattern, _gk_component, algorithm="gk")
