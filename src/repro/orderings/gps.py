"""The Gibbs-Poole-Stockmeyer (GPS) bandwidth/profile-reducing ordering.

Gibbs, Poole & Stockmeyer (1976) improve on Cuthill-McKee in two ways
(paper Section 4):

    "The GPS and GK algorithms use more sophisticated techniques to create a
    more general level structure by combining the information from two rooted
    level structures obtained from the endpoints of a pseudo-diameter ... They
    also use more refined numbering techniques to reduce the size of the
    envelope and the bandwidth."

The implementation follows the three phases of the original algorithm:

1. **Pseudo-diameter** — find endpoints ``u, v`` whose rooted level
   structures are deep (:func:`repro.graph.peripheral.pseudo_diameter`).
2. **Combined level structure** — each vertex gets the pair
   ``(level in L(u), height - level in L(v))``; vertices where the two agree
   are fixed, and each connected component of the remaining vertices is
   assigned wholesale to whichever of the two levelings yields the smaller
   maximum level width.
3. **Numbering** — vertices are numbered level by level starting from the
   lower-degree endpoint; within a level, vertices adjacent to the
   lowest-numbered vertices are taken first, ties broken by degree.  Both the
   resulting ordering and its reverse are evaluated and the one with the
   smaller envelope is returned (the reversal step plays the same role as in
   RCM).
"""

from __future__ import annotations

import numpy as np

from repro.envelope.metrics import envelope_size
from repro.graph.components import connected_components
from repro.graph.peripheral import pseudo_diameter
from repro.orderings.base import Ordering, order_by_components
from repro.sparse.pattern import SymmetricPattern

__all__ = ["gps_ordering", "combined_level_structure", "number_by_levels"]


def combined_level_structure(pattern: SymmetricPattern) -> tuple[np.ndarray, int, int, int]:
    """Phase 1 + 2 of GPS: pseudo-diameter and combined level assignment.

    Returns
    -------
    (levels, height, start, end):
        *levels* assigns every vertex a level in ``0..height``; *start* and
        *end* are the pseudo-diameter endpoints, with *start* the endpoint of
        smaller degree (the one numbering begins from).
    """
    n = pattern.n
    if n == 1:
        return np.zeros(1, dtype=np.intp), 0, 0, 0
    u, v, struct_u, struct_v = pseudo_diameter(pattern)
    height = struct_u.height
    level_u = struct_u.level_of
    # Reverse leveling from v so that both assign u's side small levels.
    level_v_rev = struct_v.height - struct_v.level_of

    levels = np.full(n, -1, dtype=np.intp)
    agree = level_u == level_v_rev
    levels[agree] = level_u[agree]

    unassigned = np.flatnonzero(~agree)
    if unassigned.size:
        # Current level widths from the already-fixed vertices.
        width_u = np.bincount(levels[agree], minlength=height + 1).astype(np.int64)
        width_v = width_u.copy()
        # Connected components of the subgraph induced on unassigned vertices,
        # processed in order of decreasing size (as GPS specifies).
        mask = ~agree
        sub = pattern.subpattern(unassigned)
        num_comp, labels = connected_components(sub)
        comp_vertices = [unassigned[labels == c] for c in range(num_comp)]
        comp_vertices.sort(key=len, reverse=True)
        for comp in comp_vertices:
            lu = np.clip(level_u[comp], 0, height)
            lv = np.clip(level_v_rev[comp], 0, height)
            add_u = np.bincount(lu, minlength=height + 1)
            add_v = np.bincount(lv, minlength=height + 1)
            max_if_u = int((width_u + add_u).max())
            max_if_v = int((width_u + add_v).max())
            if max_if_u <= max_if_v:
                levels[comp] = lu
                width_u += add_u
            else:
                levels[comp] = lv
                width_u += add_v
        del mask, width_v
    # Fallback for vertices unreachable from u (cannot happen on a connected
    # component, kept for safety): give them the deepest level.
    levels[levels < 0] = height

    degrees = pattern.degree()
    if degrees[u] <= degrees[v]:
        start, end = int(u), int(v)
    else:
        start, end = int(v), int(u)
        levels = np.max(levels) - levels  # renumber so `start` sits in level 0
    # Normalise so the minimum level is 0.
    levels = levels - levels.min()
    return levels.astype(np.intp), int(levels.max()), start, end


def number_by_levels(
    pattern: SymmetricPattern,
    levels: np.ndarray,
    start: int,
    tie_break: str = "degree",
) -> np.ndarray:
    """Phase 3 of GPS/GK: number vertices level by level.

    Within each level the next vertex chosen is one adjacent to the
    lowest-numbered already-numbered vertex; ties are broken according to
    *tie_break*:

    * ``"degree"`` — smallest degree first (the GPS rule);
    * ``"king"`` — smallest growth of the active front (the Gibbs-King rule):
      the candidate introducing the fewest new unnumbered neighbours that are
      not yet adjacent to a numbered vertex.

    Returns
    -------
    numpy.ndarray
        New-to-old permutation covering every vertex of the component.
    """
    n = pattern.n
    degrees = pattern.degree()
    numbered = np.zeros(n, dtype=bool)
    # lowest numbered neighbour's number for each vertex (np.inf if none yet)
    best_neighbor_number = np.full(n, np.inf)
    order = np.empty(n, dtype=np.intp)
    count = 0
    height = int(levels.max(initial=0))

    def _touch_neighbors(v: int, number: int) -> None:
        nbrs = pattern.neighbors(v)
        np.minimum.at(best_neighbor_number, nbrs, number)

    # Number the start vertex first.
    order[count] = start
    numbered[start] = True
    _touch_neighbors(start, 0)
    count += 1

    for lvl in range(height + 1):
        members = np.flatnonzero(levels == lvl)
        remaining = set(int(v) for v in members if not numbered[v])
        while remaining:
            candidates = [v for v in remaining if np.isfinite(best_neighbor_number[v])]
            if not candidates:
                candidates = list(remaining)
            if tie_break == "degree":
                key = lambda v: (best_neighbor_number[v], degrees[v], v)
            elif tie_break == "king":
                def key(v):
                    nbrs = pattern.neighbors(v)
                    unnumbered = nbrs[~numbered[nbrs]]
                    new_front = int(np.sum(~np.isfinite(best_neighbor_number[unnumbered])))
                    return (new_front, best_neighbor_number[v], degrees[v], v)
            else:
                raise ValueError(f"unknown tie_break {tie_break!r}")
            chosen = min(candidates, key=key)
            remaining.discard(chosen)
            order[count] = chosen
            numbered[chosen] = True
            _touch_neighbors(chosen, count)
            count += 1

    if count != n:  # pragma: no cover - defensive
        raise AssertionError("level numbering did not cover the component")
    return order


def _gps_component(pattern: SymmetricPattern) -> np.ndarray:
    if pattern.n == 1:
        return np.zeros(1, dtype=np.intp)
    levels, _height, start, _end = combined_level_structure(pattern)
    forward = number_by_levels(pattern, levels, start, tie_break="degree")
    backward = forward[::-1].copy()
    if envelope_size(pattern, backward) < envelope_size(pattern, forward):
        return backward
    return forward


def gps_ordering(pattern) -> Ordering:
    """Gibbs-Poole-Stockmeyer ordering of a symmetric matrix structure.

    Returns
    -------
    Ordering
        ``algorithm == "gps"``; metadata records the number of components.
    """
    return order_by_components(pattern, _gps_component, algorithm="gps")
