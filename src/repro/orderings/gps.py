"""The Gibbs-Poole-Stockmeyer (GPS) bandwidth/profile-reducing ordering.

Gibbs, Poole & Stockmeyer (1976) improve on Cuthill-McKee in two ways
(paper Section 4):

    "The GPS and GK algorithms use more sophisticated techniques to create a
    more general level structure by combining the information from two rooted
    level structures obtained from the endpoints of a pseudo-diameter ... They
    also use more refined numbering techniques to reduce the size of the
    envelope and the bandwidth."

The implementation follows the three phases of the original algorithm:

1. **Pseudo-diameter** — find endpoints ``u, v`` whose rooted level
   structures are deep (:func:`repro.graph.peripheral.pseudo_diameter`).
2. **Combined level structure** — each vertex gets the pair
   ``(level in L(u), height - level in L(v))``; vertices where the two agree
   are fixed, and each connected component of the remaining vertices is
   assigned wholesale to whichever of the two levelings yields the smaller
   maximum level width.
3. **Numbering** — vertices are numbered level by level starting from the
   lower-degree endpoint; within a level, vertices adjacent to the
   lowest-numbered vertices are taken first, ties broken by degree.  Both the
   resulting ordering and its reverse are evaluated and the one with the
   smaller envelope is returned (the reversal step plays the same role as in
   RCM).
"""

from __future__ import annotations

import numpy as np

from repro import backends
from repro.envelope.metrics import envelope_size
from repro.graph.components import connected_components
from repro.graph.peripheral import pseudo_diameter
from repro.orderings.base import Ordering, order_by_components
from repro.sparse.pattern import SymmetricPattern

__all__ = ["gps_ordering", "combined_level_structure", "number_by_levels"]


def combined_level_structure(pattern: SymmetricPattern) -> tuple[np.ndarray, int, int, int]:
    """Phase 1 + 2 of GPS: pseudo-diameter and combined level assignment.

    Returns
    -------
    (levels, height, start, end):
        *levels* assigns every vertex a level in ``0..height``; *start* and
        *end* are the pseudo-diameter endpoints, with *start* the endpoint of
        smaller degree (the one numbering begins from).
    """
    n = pattern.n
    if n == 1:
        return np.zeros(1, dtype=np.intp), 0, 0, 0
    u, v, struct_u, struct_v = pseudo_diameter(pattern)
    height = struct_u.height
    level_u = struct_u.level_of
    # Reverse leveling from v so that both assign u's side small levels.
    level_v_rev = struct_v.height - struct_v.level_of

    levels = np.full(n, -1, dtype=np.intp)
    agree = level_u == level_v_rev
    levels[agree] = level_u[agree]

    unassigned = np.flatnonzero(~agree)
    if unassigned.size:
        # Current level widths from the already-fixed vertices.
        width_u = np.bincount(levels[agree], minlength=height + 1).astype(np.int64)
        width_v = width_u.copy()
        # Connected components of the subgraph induced on unassigned vertices,
        # processed in order of decreasing size (as GPS specifies).
        mask = ~agree
        sub = pattern.subpattern(unassigned)
        num_comp, labels = connected_components(sub)
        comp_vertices = [unassigned[labels == c] for c in range(num_comp)]
        comp_vertices.sort(key=len, reverse=True)
        for comp in comp_vertices:
            lu = np.clip(level_u[comp], 0, height)
            lv = np.clip(level_v_rev[comp], 0, height)
            add_u = np.bincount(lu, minlength=height + 1)
            add_v = np.bincount(lv, minlength=height + 1)
            max_if_u = int((width_u + add_u).max())
            max_if_v = int((width_u + add_v).max())
            if max_if_u <= max_if_v:
                levels[comp] = lu
                width_u += add_u
            else:
                levels[comp] = lv
                width_u += add_v
        del mask, width_v
    # Fallback for vertices unreachable from u (cannot happen on a connected
    # component, kept for safety): give them the deepest level.
    levels[levels < 0] = height

    degrees = pattern.degree()
    if degrees[u] <= degrees[v]:
        start, end = int(u), int(v)
    else:
        start, end = int(v), int(u)
        levels = np.max(levels) - levels  # renumber so `start` sits in level 0
    # Normalise so the minimum level is 0.
    levels = levels - levels.min()
    return levels.astype(np.intp), int(levels.max()), start, end


def number_by_levels(
    pattern: SymmetricPattern,
    levels: np.ndarray,
    start: int,
    tie_break: str = "degree",
) -> np.ndarray:
    """Phase 3 of GPS/GK: number vertices level by level.

    Within each level the next vertex chosen is one adjacent to the
    lowest-numbered already-numbered vertex; ties are broken according to
    *tie_break*:

    * ``"degree"`` — smallest degree first (the GPS rule);
    * ``"king"`` — smallest growth of the active front (the Gibbs-King rule):
      the candidate introducing the fewest new unnumbered neighbours that are
      not yet adjacent to a numbered vertex.

    Returns
    -------
    numpy.ndarray
        New-to-old permutation covering every vertex of the component.
    """
    if tie_break not in ("degree", "king"):
        raise ValueError(f"unknown tie_break {tie_break!r}")
    king = tie_break == "king"
    n = pattern.n
    degrees = pattern.degree()

    impl = backends.kernel_impl("number_by_levels", n + pattern.indices.size)
    if impl is not None:
        return impl(
            pattern.indptr, pattern.indices, degrees,
            np.ascontiguousarray(levels, dtype=np.intp), int(start), king, n,
        )

    indptr, indices = pattern.indptr, pattern.indices
    numbered = np.zeros(n, dtype=bool)
    # lowest numbered neighbour's number for each vertex (n as "none yet":
    # every real number is < n, so n orders exactly like +inf did)
    best_neighbor_number = np.full(n, n, dtype=np.intp)
    order = np.empty(n, dtype=np.intp)
    count = 0
    height = int(levels.max(initial=0))

    # King's criterion ranks candidates by their active-front growth: the
    # number of unnumbered neighbors not yet adjacent to a numbered vertex.
    # Recomputing that per candidate per step is O(width * degree) every
    # step; instead maintain it incrementally — a vertex leaves the counts
    # exactly once (when it is numbered while untouched, or on its first
    # touch), so total maintenance is O(nnz) for the whole numbering.
    front_growth = degrees.copy() if king else None

    def _number_vertex(v: int, number: int) -> None:
        nbrs = indices[indptr[v] : indptr[v + 1]]
        if king:
            if best_neighbor_number[v] >= n:
                # v was counted as an untouched unnumbered neighbor; it is
                # numbered now (its own bnn never changes — v is not in nbrs).
                front_growth[nbrs] -= 1
            newly_touched = nbrs[(~numbered[nbrs]) & (best_neighbor_number[nbrs] >= n)]
            if newly_touched.size:
                slab, _offsets = pattern.neighbor_slab(newly_touched)
                np.subtract.at(front_growth, slab, 1)
        best_neighbor_number[nbrs] = np.minimum(best_neighbor_number[nbrs], number)

    # Number the start vertex first.
    order[count] = start
    numbered[start] = True
    _number_vertex(start, 0)
    count += 1

    # The selection rule is a lexicographic argmin over the remaining level
    # members; evaluate it with whole-array reductions over the member slab
    # instead of a Python min() over per-vertex key tuples.
    for lvl in range(height + 1):
        members = np.flatnonzero(levels == lvl)
        members = members[~numbered[members]].astype(np.intp)
        alive = np.ones(members.size, dtype=bool)
        for _ in range(members.size):
            pool = members[alive]
            bnn = best_neighbor_number[pool]
            touched = bnn < n
            candidates = pool[touched] if touched.any() else pool
            if king:
                chosen = _lex_argmin(
                    candidates, front_growth[candidates],
                    best_neighbor_number[candidates], degrees[candidates],
                )
            else:
                chosen = _lex_argmin(
                    candidates, best_neighbor_number[candidates], degrees[candidates]
                )
            alive[np.searchsorted(members, chosen)] = False
            order[count] = chosen
            numbered[chosen] = True
            _number_vertex(chosen, count)
            count += 1

    if count != n:  # pragma: no cover - defensive
        raise AssertionError("level numbering did not cover the component")
    return order


def _lex_argmin(vertices: np.ndarray, *keys: np.ndarray) -> int:
    """The vertex minimizing ``(*keys, vertex)`` lexicographically.

    Each key column narrows the tie set in turn; the vertex id itself is the
    final tie-break, so the minimum is unique.
    """
    selection = np.arange(vertices.size)
    for key in keys:
        if selection.size == 1:
            return int(vertices[selection[0]])
        narrowed = key[selection]
        selection = selection[narrowed == narrowed.min()]
    return int(vertices[selection].min())


def _gps_component(pattern: SymmetricPattern) -> np.ndarray:
    if pattern.n == 1:
        return np.zeros(1, dtype=np.intp)
    levels, _height, start, _end = combined_level_structure(pattern)
    forward = number_by_levels(pattern, levels, start, tie_break="degree")
    backward = forward[::-1].copy()
    if envelope_size(pattern, backward) < envelope_size(pattern, forward):
        return backward
    return forward


def gps_ordering(pattern) -> Ordering:
    """Gibbs-Poole-Stockmeyer ordering of a symmetric matrix structure.

    Returns
    -------
    Ordering
        ``algorithm == "gps"``; metadata records the number of components.
    """
    return order_by_components(pattern, _gps_component, algorithm="gps")
