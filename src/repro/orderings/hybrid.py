"""Hybrid spectral + local ordering (the extension suggested in Section 4).

    "A possibility is to make limited use of a local reordering strategy based
    on the adjacency structure to improve the envelope parameters obtained
    from the spectral method."

Two local strategies are provided on top of the spectral ordering:

* ``"adjacency"`` (default) — convert the spectral ordering into an
  *adjacency ordering* (Section 2.4): starting from the vertex with the
  smallest Fiedler component, repeatedly number the front vertex (a vertex
  adjacent to the numbered set) with the smallest Fiedler component.  This
  keeps the global shape of the spectral ordering while guaranteeing the
  adjacency property that makes frontwidths small.
* ``"window"`` — a sliding-window local search: within every window of
  ``window`` consecutive positions, greedily move the vertex whose relocation
  most reduces the envelope size (first-improvement, a bounded number of
  sweeps).

Both refinements never return an ordering with a larger envelope than the
plain spectral one — the better of the refined and original orderings is kept.
"""

from __future__ import annotations

import numpy as np

from repro.envelope.metrics import envelope_size
from repro.orderings.base import Ordering, order_by_components
from repro.orderings.spectral import _spectral_component
from repro.sparse.ops import structure_from_matrix
from repro.sparse.pattern import SymmetricPattern

__all__ = ["hybrid_spectral_ordering"]


def _adjacency_refine(pattern: SymmetricPattern, priorities: np.ndarray) -> np.ndarray:
    """Priority-first traversal: always number the frontier vertex with smallest priority."""
    import heapq

    n = pattern.n
    numbered = np.zeros(n, dtype=bool)
    in_heap = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.intp)
    count = 0
    start = int(np.argmin(priorities))
    heap = [(float(priorities[start]), start)]
    in_heap[start] = True
    while count < n:
        if not heap:
            # Disconnected pieces within a "connected" call cannot happen, but
            # guard anyway: continue from the unnumbered vertex of smallest priority.
            remaining = np.flatnonzero(~numbered)
            v = int(remaining[np.argmin(priorities[remaining])])
            heap = [(float(priorities[v]), v)]
            in_heap[v] = True
        _, v = heapq.heappop(heap)
        if numbered[v]:
            continue
        numbered[v] = True
        order[count] = v
        count += 1
        for w in pattern.neighbors(v):
            if not numbered[w] and not in_heap[w]:
                heapq.heappush(heap, (float(priorities[w]), int(w)))
                in_heap[w] = True
    return order


def _window_refine(
    pattern: SymmetricPattern, perm: np.ndarray, window: int, sweeps: int
) -> np.ndarray:
    """Bounded sliding-window first-improvement search on the envelope size."""
    best = perm.copy()
    best_size = envelope_size(pattern, best)
    n = best.size
    for _ in range(sweeps):
        improved = False
        for start in range(0, max(1, n - window + 1), max(1, window // 2)):
            stop = min(n, start + window)
            for i in range(start, stop):
                for j in range(i + 1, stop):
                    candidate = best.copy()
                    candidate[i], candidate[j] = candidate[j], candidate[i]
                    size = envelope_size(pattern, candidate)
                    if size < best_size:
                        best, best_size = candidate, size
                        improved = True
        if not improved:
            break
    return best


def hybrid_spectral_ordering(
    pattern,
    *,
    strategy: str = "adjacency",
    method: str = "auto",
    tol: float = 1e-8,
    rng=None,
    window: int = 16,
    sweeps: int = 2,
    **solver_options,
) -> Ordering:
    """Spectral ordering followed by a local refinement pass.

    Parameters
    ----------
    pattern:
        Matrix structure.
    strategy:
        ``"adjacency"`` or ``"window"`` (see module docstring).
    method, tol, rng, **solver_options:
        Passed to the underlying spectral ordering / Fiedler solver
        (``tol_policy="ordering"`` selects the rank-stability fast path).
    window, sweeps:
        Parameters of the ``"window"`` strategy.

    Returns
    -------
    Ordering
        ``algorithm == "hybrid-spectral"``; metadata records the strategy and
        whether the refinement actually improved the envelope.
    """
    if strategy not in ("adjacency", "window"):
        raise ValueError(f"strategy must be 'adjacency' or 'window', got {strategy!r}")
    pattern = structure_from_matrix(pattern)

    def _component(sub: SymmetricPattern) -> np.ndarray:
        details: list = []
        base = _spectral_component(sub, method, tol, rng, solver_options, details)
        if sub.n <= 2:
            return base
        base_size = envelope_size(sub, base)
        if strategy == "adjacency":
            detail = details[-1] if details and details[-1] is not None else None
            if detail is None:
                return base
            vec = np.asarray(detail["fiedler_vector"], dtype=np.float64)
            if detail["direction"] == "nonincreasing":
                vec = -vec
            refined = _adjacency_refine(sub, vec)
        else:
            refined = _window_refine(sub, base, window=window, sweeps=sweeps)
        if envelope_size(sub, refined) <= base_size:
            return refined
        return base

    return order_by_components(
        pattern,
        _component,
        algorithm="hybrid-spectral",
        metadata={"strategy": strategy, "method": method},
    )
