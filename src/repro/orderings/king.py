"""King's profile-reducing ordering (and its reverse).

King (1970) numbers vertices one at a time, always choosing the candidate that
increases the active front the least.  The Gibbs-King algorithm evaluated in
the paper is exactly this numbering rule applied inside the
Gibbs-Poole-Stockmeyer combined level structure; the *plain* King ordering
applies it inside an ordinary rooted level structure from a pseudo-peripheral
node.  It is included as an additional baseline (it predates GK and is the
ancestor of the frontwidth-greedy family) and is exercised by the ablation
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.envelope.metrics import envelope_size
from repro.graph.peripheral import pseudo_peripheral_node
from repro.orderings.base import Ordering, order_by_components
from repro.orderings.gps import number_by_levels
from repro.sparse.pattern import SymmetricPattern

__all__ = ["king_ordering", "reverse_king_ordering"]


def _king_component(pattern: SymmetricPattern) -> np.ndarray:
    if pattern.n == 1:
        return np.zeros(1, dtype=np.intp)
    root, structure = pseudo_peripheral_node(pattern)
    levels = structure.level_of.copy()
    # Unreached vertices cannot exist on a connected component, but clamp for safety.
    levels[levels < 0] = int(levels.max(initial=0)) + 1
    forward = number_by_levels(pattern, levels, int(root), tie_break="king")
    backward = forward[::-1].copy()
    if envelope_size(pattern, backward) < envelope_size(pattern, forward):
        return backward
    return forward


def king_ordering(pattern) -> Ordering:
    """King's ordering of a symmetric matrix structure.

    Returns
    -------
    Ordering
        ``algorithm == "king"``.
    """
    return order_by_components(pattern, _king_component, algorithm="king")


def reverse_king_ordering(pattern) -> Ordering:
    """The reverse of King's ordering (by analogy with CM -> RCM)."""
    king = king_ordering(pattern)
    return Ordering(king.perm[::-1].copy(), algorithm="reverse-king",
                    metadata=dict(king.metadata))
