"""Name-based registry of the ordering algorithms.

The benchmark harnesses, the comparison pipeline and the examples all refer
to algorithms by the short names used in the paper's tables (``SPECTRAL``,
``GK``, ``GPS``, ``RCM``) plus the extensions added by this library.  The
registry maps those names to callables of a single ``pattern`` argument.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.orderings.base import Ordering, identity_ordering, random_ordering
from repro.orderings.cuthill_mckee import cuthill_mckee_ordering, rcm_ordering
from repro.orderings.gibbs_king import gibbs_king_ordering
from repro.orderings.gps import gps_ordering
from repro.orderings.hybrid import hybrid_spectral_ordering
from repro.orderings.king import king_ordering, reverse_king_ordering
from repro.orderings.sloan import sloan_ordering
from repro.orderings.spectral import spectral_ordering

__all__ = ["ORDERING_ALGORITHMS", "get_ordering_algorithm", "PAPER_ALGORITHMS"]

#: Algorithms evaluated in the paper's tables, in the row order used there.
PAPER_ALGORITHMS = ("spectral", "gk", "gps", "rcm")

#: All registered algorithms: name -> callable(pattern) -> Ordering.
ORDERING_ALGORITHMS: Mapping[str, Callable[..., Ordering]] = {
    "spectral": spectral_ordering,
    "gk": gibbs_king_ordering,
    "gps": gps_ordering,
    "rcm": rcm_ordering,
    "cm": cuthill_mckee_ordering,
    "king": king_ordering,
    "reverse-king": reverse_king_ordering,
    "sloan": sloan_ordering,
    "hybrid": hybrid_spectral_ordering,
    "identity": lambda pattern: identity_ordering(
        pattern.n if hasattr(pattern, "n") else pattern.shape[0]
    ),
    "random": lambda pattern, rng=None: random_ordering(
        pattern.n if hasattr(pattern, "n") else pattern.shape[0], rng=rng
    ),
}


def get_ordering_algorithm(name: str) -> Callable[..., Ordering]:
    """Look up an ordering algorithm by (case-insensitive) name.

    Raises
    ------
    KeyError
        With the list of valid names, when *name* is unknown.
    """
    key = name.strip().lower()
    if key not in ORDERING_ALGORITHMS:
        raise KeyError(
            f"unknown ordering algorithm {name!r}; valid names: "
            f"{sorted(ORDERING_ALGORITHMS)}"
        )
    return ORDERING_ALGORITHMS[key]
