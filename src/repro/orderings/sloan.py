"""Sloan's profile/wavefront-reducing ordering.

Sloan (1986) is the other classical envelope-reduction heuristic and the
natural "local" competitor the paper's Section 4 alludes to when it discusses
combining spectral information with local reordering strategies.  It is
included both as an extra baseline and as the local engine of the hybrid
ordering (:mod:`repro.orderings.hybrid`).

The algorithm numbers vertices one at a time, always choosing the eligible
vertex with the highest priority

``P(v) = -W1 * incr(v) + W2 * dist(v, e)``

where ``incr(v)`` is the growth of the active front caused by numbering ``v``
(its unnumbered, not-yet-active neighbours plus itself if not active), and
``dist(v, e)`` is the graph distance to the end ``e`` of a pseudo-diameter.
Eligible vertices are those already adjacent to the front ("active" or
"preactive" in Sloan's terminology).  The classical weights ``W1=2, W2=1``
are the defaults.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.graph.peripheral import pseudo_diameter
from repro.graph.traversal import distance_from
from repro.orderings.base import Ordering, order_by_components
from repro.sparse.pattern import SymmetricPattern

__all__ = ["sloan_ordering"]

# Sloan vertex states.
_INACTIVE, _PREACTIVE, _ACTIVE, _NUMBERED = 0, 1, 2, 3


def _sloan_component(pattern: SymmetricPattern, w1: int, w2: int) -> np.ndarray:
    n = pattern.n
    if n == 1:
        return np.zeros(1, dtype=np.intp)
    start, end, _su, _sv = pseudo_diameter(pattern)
    dist_to_end = distance_from(pattern, end)
    degrees = pattern.degree()

    status = np.full(n, _INACTIVE, dtype=np.int8)
    # current degree = number of unnumbered, inactive/preactive neighbours + self if inactive
    priority = (-w1 * (degrees + 1) + w2 * dist_to_end).astype(np.int64)

    order = np.empty(n, dtype=np.intp)
    count = 0
    # Max-heap via negated priorities; lazy deletion with an entry counter.
    heap: list[tuple[int, int, int]] = []
    counter = 0

    def push(v: int) -> None:
        nonlocal counter
        heapq.heappush(heap, (-int(priority[v]), counter, int(v)))
        counter += 1

    status[start] = _PREACTIVE
    push(start)

    while count < n:
        # Pop until we find a vertex that is still unnumbered and whose
        # priority has not been superseded by a later push.
        while heap:
            neg_prio, _tie, v = heapq.heappop(heap)
            if status[v] != _NUMBERED and -neg_prio == priority[v]:
                break
        else:  # pragma: no cover - defensive; component is connected
            remaining = np.flatnonzero(status != _NUMBERED)
            v = int(remaining[0])

        if status[v] == _PREACTIVE:
            # Numbering a preactive vertex activates its neighbours.
            for w in pattern.neighbors(v):
                if status[w] == _NUMBERED:
                    continue
                priority[w] += w1  # v leaves w's "unnumbered neighbour" count
                if status[w] == _INACTIVE:
                    status[w] = _PREACTIVE
                push(int(w))
        else:
            for w in pattern.neighbors(v):
                if status[w] != _NUMBERED:
                    priority[w] += w1
                    push(int(w))

        order[count] = v
        status[v] = _NUMBERED
        count += 1

        # Second ring: neighbours of newly preactive vertices gain priority
        # because their future front growth shrinks.
        for w in pattern.neighbors(v):
            if status[w] == _NUMBERED:
                continue
            if status[w] == _PREACTIVE:
                status[w] = _ACTIVE
                for x in pattern.neighbors(int(w)):
                    if status[x] == _NUMBERED:
                        continue
                    priority[x] += w1
                    if status[x] == _INACTIVE:
                        status[x] = _PREACTIVE
                    push(int(x))

    return order


def sloan_ordering(pattern, *, w1: int = 2, w2: int = 1) -> Ordering:
    """Sloan's ordering of a symmetric matrix structure.

    Parameters
    ----------
    pattern:
        Matrix structure.
    w1, w2:
        Sloan's weights for the front-growth and distance-to-end terms
        (defaults 2 and 1, the values recommended in the original paper).

    Returns
    -------
    Ordering
        ``algorithm == "sloan"``.
    """
    ordering = order_by_components(
        pattern, lambda sub: _sloan_component(sub, w1, w2), algorithm="sloan",
        metadata={"w1": w1, "w2": w2},
    )
    return ordering
