"""Sloan's profile/wavefront-reducing ordering.

Sloan (1986) is the other classical envelope-reduction heuristic and the
natural "local" competitor the paper's Section 4 alludes to when it discusses
combining spectral information with local reordering strategies.  It is
included both as an extra baseline and as the local engine of the hybrid
ordering (:mod:`repro.orderings.hybrid`).

The algorithm numbers vertices one at a time, always choosing the eligible
vertex with the highest priority

``P(v) = -W1 * incr(v) + W2 * dist(v, e)``

where ``incr(v)`` is the growth of the active front caused by numbering ``v``
(its unnumbered, not-yet-active neighbours plus itself if not active), and
``dist(v, e)`` is the graph distance to the end ``e`` of a pseudo-diameter.
Eligible vertices are those already adjacent to the front ("active" or
"preactive" in Sloan's terminology).  The classical weights ``W1=2, W2=1``
are the defaults.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro import backends
from repro.graph.peripheral import pseudo_diameter
from repro.graph.traversal import distance_from
from repro.orderings.base import Ordering, order_by_components
from repro.sparse.pattern import SymmetricPattern

__all__ = ["sloan_ordering"]

# Sloan vertex states.
_INACTIVE, _PREACTIVE, _ACTIVE, _NUMBERED = 0, 1, 2, 3


def _dedupe_batch(targets: list, keep_first: bool) -> list:
    """Deduplicate a push batch, keeping each vertex's governing occurrence.

    With positive (or any nonzero) ``w1`` a vertex's priority changes on every
    increment, so only its **last** push of the numbering step can match the
    final priority — earlier entries are dead weight the lazy-deletion pop
    discards anyway.  With ``w1 == 0`` nothing ever invalidates, so the
    **first** push is the one whose heap counter governs tie-breaking.  The
    surviving entries keep their original relative order, which preserves the
    counter ordering (and therefore the exact output) of the per-push code.
    Batches are small (a couple of neighborhoods), so a dict/set sweep beats
    array machinery.
    """
    if keep_first:
        return list(dict.fromkeys(targets))
    seen: set = set()
    out: list = []
    for v in reversed(targets):
        if v not in seen:
            seen.add(v)
            out.append(v)
    out.reverse()
    return out


def _sloan_component(pattern: SymmetricPattern, w1: int, w2: int) -> np.ndarray:
    n = pattern.n
    if n == 1:
        return np.zeros(1, dtype=np.intp)
    start, end, _su, _sv = pseudo_diameter(pattern)
    dist_to_end = distance_from(pattern, end)
    degrees = pattern.degree()

    # Backend dispatch: the loop-form kernel replicates the heapq
    # lazy-deletion semantics below exactly (same push counters, same
    # dedupe rule), so the numbering is bit-identical on every tier.
    impl = backends.kernel_impl("sloan", n + pattern.indices.size)
    if impl is not None:
        return impl(
            pattern.indptr, pattern.indices, degrees, dist_to_end,
            int(start), int(w1), int(w2), n,
        )

    status = np.full(n, _INACTIVE, dtype=np.int8)
    # current degree = number of unnumbered, inactive/preactive neighbours + self if inactive
    priority = (-w1 * (degrees + 1) + w2 * dist_to_end).astype(np.int64)

    order = np.empty(n, dtype=np.intp)
    count = 0
    # Max-heap via negated priorities; lazy deletion with an entry counter.
    # The heap handles only the argmax; all priority maintenance below is
    # batched array arithmetic over neighbor slabs.
    heap: list[tuple[int, int, int]] = []
    counter = 0
    push = heapq.heappush
    keep_first = w1 == 0

    status[start] = _PREACTIVE
    push(heap, (-int(priority[start]), counter, int(start)))
    counter += 1

    indptr, indices = pattern.indptr, pattern.indices
    while count < n:
        # Pop until we find a vertex that is still unnumbered and whose
        # priority has not been superseded by a later push.
        while heap:
            neg_prio, _tie, v = heapq.heappop(heap)
            if status[v] != _NUMBERED and -neg_prio == priority[v]:
                break
        else:  # pragma: no cover - defensive; component is connected
            remaining = np.flatnonzero(status != _NUMBERED)
            v = int(remaining[0])

        # First ring: every unnumbered neighbour loses v from its unnumbered
        # count; numbering a preactive vertex additionally activates them.
        nbrs = indices[indptr[v] : indptr[v + 1]]
        ring1 = nbrs[status[nbrs] != _NUMBERED]
        priority[ring1] += w1  # rows are duplicate-free: plain fancy-index add
        if status[v] == _PREACTIVE:
            status[ring1[status[ring1] == _INACTIVE]] = _PREACTIVE
        for w, prio in zip(ring1.tolist(), priority[ring1].tolist()):
            push(heap, (-prio, counter, w))
            counter += 1

        order[count] = v
        status[v] = _NUMBERED
        count += 1

        # Second ring: neighbours of newly preactive vertices gain priority
        # because their future front growth shrinks.  The per-vertex loop is
        # replaced by one scatter-add over the concatenated neighbor slab;
        # pushes are deduplicated to one governing heap entry per vertex.
        newly_active = ring1[status[ring1] == _PREACTIVE]
        if newly_active.size:
            status[newly_active] = _ACTIVE
            slab, _offsets = pattern.neighbor_slab(newly_active)
            targets = slab[status[slab] != _NUMBERED]
            if newly_active.size == 1:
                # one duplicate-free row: plain fancy-index add, no dedupe
                priority[targets] += w1
                batch = targets.tolist()
            else:
                np.add.at(priority, targets, w1)
                batch = _dedupe_batch(targets.tolist(), keep_first)
            if batch:
                status[targets[status[targets] == _INACTIVE]] = _PREACTIVE
                for x, prio in zip(batch, priority[batch].tolist()):
                    push(heap, (-prio, counter, x))
                    counter += 1

    return order


def sloan_ordering(pattern, *, w1: int = 2, w2: int = 1) -> Ordering:
    """Sloan's ordering of a symmetric matrix structure.

    Parameters
    ----------
    pattern:
        Matrix structure.
    w1, w2:
        Sloan's weights for the front-growth and distance-to-end terms
        (defaults 2 and 1, the values recommended in the original paper).

    Returns
    -------
    Ordering
        ``algorithm == "sloan"``.
    """
    ordering = order_by_components(
        pattern, lambda sub: _sloan_component(sub, w1, w2), algorithm="sloan",
        metadata={"w1": w1, "w2": w2},
    )
    return ordering
