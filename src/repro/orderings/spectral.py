"""The spectral envelope-reducing ordering (Algorithm 1 of the paper).

    ALGORITHM 1. Spectral Algorithm
      1. Given the sparsity structure of a matrix M, form the Laplacian
         matrix L.
      2. Compute a second eigenvector x_2 of L.
      3. Sort the components of the eigenvector in nondecreasing order, and
         reorder the matrix M using the corresponding permutation vector.
         Also sort the components in nonincreasing order, and compute the
         corresponding reordering of the matrix M.  Choose the permutation
         that leads to the smaller envelope size.

The eigenvector computation (step 2) is delegated to
:func:`repro.eigen.fiedler.fiedler_vector`, which offers Lanczos, the
multilevel scheme of Section 3, and SciPy's solvers.  Step 3 is a stable sort
of the eigenvector components; ties (equal components, which arise from graph
symmetries) are broken by vertex degree and then original index so that the
result is deterministic.

The paper assumes the matrix is irreducible; disconnected matrices are
handled by ordering each connected component independently and concatenating,
which preserves the per-component envelope optimality properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.envelope.metrics import envelope_size
from repro.eigen.fiedler import fiedler_vector
from repro.orderings.base import Ordering, order_by_components
from repro.sparse.ops import structure_from_matrix
from repro.sparse.pattern import SymmetricPattern

__all__ = ["SpectralOrderingResult", "spectral_ordering", "ordering_from_vector"]


@dataclass(frozen=True)
class SpectralOrderingResult:
    """Detailed result of a spectral ordering on a *connected* pattern.

    Attributes
    ----------
    ordering:
        The chosen :class:`Ordering` (nondecreasing or nonincreasing sort,
        whichever gives the smaller envelope).
    fiedler_value:
        Estimate of ``lambda_2``.
    fiedler_vector:
        The eigenvector used (original vertex numbering).
    direction:
        ``"nondecreasing"`` or ``"nonincreasing"`` — the winning sort
        direction of Algorithm 1 step 3.
    envelope_nondecreasing / envelope_nonincreasing:
        Envelope sizes of the two candidate orderings.
    solver:
        Eigen-solver used (after ``auto`` resolution).
    """

    ordering: Ordering
    fiedler_value: float
    fiedler_vector: np.ndarray
    direction: str
    envelope_nondecreasing: int
    envelope_nonincreasing: int
    solver: str = "auto"
    extra: dict = field(default_factory=dict)


def ordering_from_vector(
    vector: np.ndarray,
    pattern: SymmetricPattern | None = None,
    direction: str = "nondecreasing",
) -> np.ndarray:
    """Permutation induced by sorting the components of *vector*.

    Ties are broken by vertex degree (if *pattern* is given) and then by
    original index, making the ordering deterministic — Theorem 2.3 leaves
    the tie handling free, so any stable rule yields a closest permutation
    vector.

    Returns
    -------
    numpy.ndarray
        New-to-old permutation: position ``k`` holds the vertex with the
        ``k``-th smallest (or largest) component.
    """
    vector = np.asarray(vector, dtype=np.float64)
    n = vector.size
    if direction not in ("nondecreasing", "nonincreasing"):
        raise ValueError(f"direction must be 'nondecreasing' or 'nonincreasing', got {direction!r}")
    keys_primary = vector if direction == "nondecreasing" else -vector
    if pattern is not None:
        degrees = pattern.degree().astype(np.float64)
    else:
        degrees = np.zeros(n)
    # np.lexsort sorts by the *last* key first.
    order = np.lexsort((np.arange(n), degrees, keys_primary))
    return order.astype(np.intp)


def _spectral_component(
    pattern: SymmetricPattern,
    method: str,
    tol: float,
    rng,
    solver_options: dict,
    detail_sink: list | None = None,
) -> np.ndarray:
    """Algorithm 1 on one connected component; returns the new-to-old permutation."""
    n = pattern.n
    if n == 1:
        if detail_sink is not None:
            detail_sink.append(None)
        return np.zeros(1, dtype=np.intp)
    result = fiedler_vector(
        pattern,
        method=method,
        tol=tol,
        rng=rng,
        check_connected=False,
        **solver_options,
    )
    vec = result.eigenvector
    perm_up = ordering_from_vector(vec, pattern, "nondecreasing")
    perm_down = ordering_from_vector(vec, pattern, "nonincreasing")
    esize_up = envelope_size(pattern, perm_up)
    esize_down = envelope_size(pattern, perm_down)
    if esize_down < esize_up:
        chosen, direction = perm_down, "nonincreasing"
    else:
        chosen, direction = perm_up, "nondecreasing"
    if detail_sink is not None:
        detail_sink.append(
            {
                "fiedler_value": result.eigenvalue,
                "fiedler_vector": vec,
                "direction": direction,
                "envelope_nondecreasing": esize_up,
                "envelope_nonincreasing": esize_down,
                "solver": result.method,
                "converged": result.converged,
            }
        )
    return chosen


def spectral_ordering(
    pattern,
    *,
    method: str = "auto",
    tol: float = 1e-8,
    rng=None,
    return_details: bool = False,
    **solver_options,
):
    """Spectral envelope-reducing ordering (Algorithm 1).

    Parameters
    ----------
    pattern:
        Matrix structure (pattern, SciPy sparse matrix or dense array).
    method:
        Eigen-solver passed to :func:`repro.eigen.fiedler.fiedler_vector`
        (``"auto"``, ``"lanczos"``, ``"multilevel"``, ``"eigsh"``,
        ``"lobpcg"``, ``"dense"``).
    tol:
        Eigen-residual tolerance.
    rng:
        Seed or generator for the iterative solvers.
    return_details:
        If true, return a :class:`SpectralOrderingResult` (connected input
        only — with several components the per-component details are attached
        to ``Ordering.metadata["components"]`` instead).
    **solver_options:
        Extra options forwarded to the eigen-solver (e.g. ``coarsest_size``,
        or ``tol_policy="ordering"`` for the rank-stability fast path — the
        ``--fiedler-policy fast`` CLI switch; see
        :func:`repro.eigen.fiedler.fiedler_vector`).

    Returns
    -------
    Ordering or SpectralOrderingResult
    """
    pattern = structure_from_matrix(pattern)
    details: list = []
    ordering = order_by_components(
        pattern,
        lambda sub: _spectral_component(sub, method, tol, rng, solver_options, details),
        algorithm="spectral",
        metadata={"method": method, "tol": tol},
    )
    component_details = [d for d in details if d is not None]
    if component_details:
        ordering.metadata["components"] = component_details
        # Summary fields for the common connected case.
        ordering.metadata["direction"] = component_details[0]["direction"]
        ordering.metadata["fiedler_value"] = component_details[0]["fiedler_value"]
        ordering.metadata["solver"] = component_details[0]["solver"]

    if not return_details:
        return ordering
    if not component_details:
        raise ValueError("return_details requires at least one nontrivial component")
    first = component_details[0]
    return SpectralOrderingResult(
        ordering=ordering,
        fiedler_value=float(first["fiedler_value"]),
        fiedler_vector=np.asarray(first["fiedler_vector"]),
        direction=first["direction"],
        envelope_nondecreasing=int(first["envelope_nondecreasing"]),
        envelope_nonincreasing=int(first["envelope_nonincreasing"]),
        solver=first["solver"],
        extra={"num_components": ordering.metadata.get("num_components", 1)},
    )
