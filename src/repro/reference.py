"""Naive reference implementations of the hot-path graph kernels.

The production kernels (:mod:`repro.graph.traversal`,
:mod:`repro.graph.coarsen`, :mod:`repro.orderings.gps`,
:mod:`repro.orderings.sloan`, ...) are vectorized over whole frontiers and
neighbor slabs for speed.  This module retains the original vertex-at-a-time
implementations **verbatim** as the behavioural contract: every vectorized
kernel must produce bit-identical output to its reference twin, on every
input.  ``tests/test_kernels_reference.py`` enforces that equivalence with
property tests on random (including disconnected) graphs, and the golden
suite artifact (``tests/golden/suite_small.json``) pins it end to end.

These functions are *not* exported through the package API and are not meant
for production use — they exist so the equivalence guarantee stays testable
forever, not just against a frozen artifact.
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np

from repro.graph.traversal import RootedLevelStructure
from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng

__all__ = [
    "breadth_first_levels_reference",
    "bfs_order_reference",
    "connected_components_reference",
    "subpattern_reference",
    "maximal_independent_set_reference",
    "grow_domains_reference",
    "number_by_levels_reference",
    "sloan_component_reference",
]


def breadth_first_levels_reference(
    pattern: SymmetricPattern,
    roots: int | Sequence[int],
    restrict_to: np.ndarray | None = None,
) -> RootedLevelStructure:
    """Vertex-at-a-time BFS level structure (reference for
    :func:`repro.graph.traversal.breadth_first_levels`)."""
    n = pattern.n
    if np.isscalar(roots):
        root_list = [int(roots)]
    else:
        root_list = [int(r) for r in roots]
    for r in root_list:
        if r < 0 or r >= n:
            raise ValueError(f"root {r} out of range for n={n}")

    level_of = np.full(n, -1, dtype=np.intp)
    allowed = np.ones(n, dtype=bool) if restrict_to is None else np.asarray(restrict_to, dtype=bool)
    levels: list[np.ndarray] = []

    frontier = np.array([r for r in root_list if allowed[r]], dtype=np.intp)
    if frontier.size == 0:
        return RootedLevelStructure(tuple(root_list), level_of, [])
    level_of[frontier] = 0
    levels.append(frontier.copy())

    indptr, indices = pattern.indptr, pattern.indices
    current_level = 0
    while frontier.size:
        next_nodes: list[int] = []
        for v in frontier:
            row = indices[indptr[v] : indptr[v + 1]]
            for w in row:
                if level_of[w] < 0 and allowed[w]:
                    level_of[w] = current_level + 1
                    next_nodes.append(int(w))
        if not next_nodes:
            break
        frontier = np.array(next_nodes, dtype=np.intp)
        levels.append(frontier.copy())
        current_level += 1

    return RootedLevelStructure(tuple(root_list), level_of, levels)


def bfs_order_reference(
    pattern: SymmetricPattern,
    root: int,
    sort_by_degree: bool = False,
) -> np.ndarray:
    """Queue-based BFS visitation order (reference for
    :func:`repro.graph.traversal.bfs_order`)."""
    n = pattern.n
    if root < 0 or root >= n:
        raise ValueError(f"root {root} out of range for n={n}")
    degrees = pattern.degree()
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.intp)
    order[0] = root
    visited[root] = True
    head, tail = 0, 1
    indptr, indices = pattern.indptr, pattern.indices
    while head < tail:
        v = order[head]
        head += 1
        nbrs = indices[indptr[v] : indptr[v + 1]]
        unvisited = nbrs[~visited[nbrs]]
        if unvisited.size:
            if sort_by_degree:
                unvisited = unvisited[np.argsort(degrees[unvisited], kind="stable")]
            visited[unvisited] = True
            order[tail : tail + unvisited.size] = unvisited
            tail += unvisited.size
    return order[:tail]


def connected_components_reference(pattern: SymmetricPattern) -> tuple[int, np.ndarray]:
    """Stack-based component labelling (reference for
    :func:`repro.graph.components.connected_components`)."""
    n = pattern.n
    labels = np.full(n, -1, dtype=np.intp)
    indptr, indices = pattern.indptr, pattern.indices
    current = 0
    stack = np.empty(n, dtype=np.intp)
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = current
        stack[0] = start
        top = 1
        while top:
            top -= 1
            v = stack[top]
            nbrs = indices[indptr[v] : indptr[v + 1]]
            fresh = nbrs[labels[nbrs] < 0]
            if fresh.size:
                labels[fresh] = current
                stack[top : top + fresh.size] = fresh
                top += fresh.size
        current += 1
    return current, labels


def subpattern_reference(pattern: SymmetricPattern, vertices) -> SymmetricPattern:
    """Edge-list induced substructure (reference for
    :meth:`repro.sparse.pattern.SymmetricPattern.subpattern`)."""
    from repro.utils.validation import as_int_array

    vertices = as_int_array(vertices, "vertices")
    if vertices.size and (vertices.min() < 0 or vertices.max() >= pattern.n):
        raise ValueError("vertices out of range")
    if np.unique(vertices).size != vertices.size:
        raise ValueError("vertices must be distinct")
    remap = -np.ones(pattern.n, dtype=np.intp)
    remap[vertices] = np.arange(vertices.size, dtype=np.intp)
    edges = []
    for new_i, old_i in enumerate(vertices):
        nbrs = pattern.neighbors(int(old_i))
        kept = remap[nbrs]
        for new_j in kept[kept >= 0]:
            edges.append((new_i, int(new_j)))
    return SymmetricPattern.from_edges(vertices.size, edges, symmetrize=False)


def maximal_independent_set_reference(
    pattern: SymmetricPattern,
    rng=None,
    strategy: str = "degree",
) -> np.ndarray:
    """Sequential greedy MIS scan (reference for
    :func:`repro.graph.coarsen.maximal_independent_set`)."""
    n = pattern.n
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if strategy == "degree":
        order = np.argsort(pattern.degree(), kind="stable")
    elif strategy == "natural":
        order = np.arange(n, dtype=np.intp)
    elif strategy == "random":
        order = default_rng(rng).permutation(n).astype(np.intp)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    selected = np.zeros(n, dtype=bool)
    blocked = np.zeros(n, dtype=bool)
    indptr, indices = pattern.indptr, pattern.indices
    for v in order:
        if blocked[v]:
            continue
        selected[v] = True
        blocked[v] = True
        blocked[indices[indptr[v] : indptr[v + 1]]] = True
    return np.flatnonzero(selected).astype(np.intp)


def grow_domains_reference(pattern: SymmetricPattern, mis: np.ndarray) -> np.ndarray:
    """Ring-by-ring simultaneous BFS domain growth (reference for the domain
    sweep inside :func:`repro.graph.coarsen.coarsen_graph`)."""
    n = pattern.n
    n_coarse = mis.size
    domain_of = np.full(n, -1, dtype=np.intp)
    domain_of[mis] = np.arange(n_coarse, dtype=np.intp)

    indptr, indices = pattern.indptr, pattern.indices
    frontier = mis.copy()
    while frontier.size:
        next_frontier: list[int] = []
        for v in frontier:
            dom = domain_of[v]
            nbrs = indices[indptr[v] : indptr[v + 1]]
            fresh = nbrs[domain_of[nbrs] < 0]
            if fresh.size:
                domain_of[fresh] = dom
                next_frontier.extend(int(w) for w in fresh)
        frontier = np.asarray(next_frontier, dtype=np.intp)
    return domain_of


def number_by_levels_reference(
    pattern: SymmetricPattern,
    levels: np.ndarray,
    start: int,
    tie_break: str = "degree",
) -> np.ndarray:
    """Set-scan level numbering (reference for
    :func:`repro.orderings.gps.number_by_levels`)."""
    n = pattern.n
    degrees = pattern.degree()
    numbered = np.zeros(n, dtype=bool)
    best_neighbor_number = np.full(n, np.inf)
    order = np.empty(n, dtype=np.intp)
    count = 0
    height = int(levels.max(initial=0))

    def _touch_neighbors(v: int, number: int) -> None:
        nbrs = pattern.neighbors(v)
        np.minimum.at(best_neighbor_number, nbrs, number)

    order[count] = start
    numbered[start] = True
    _touch_neighbors(start, 0)
    count += 1

    for lvl in range(height + 1):
        members = np.flatnonzero(levels == lvl)
        remaining = set(int(v) for v in members if not numbered[v])
        while remaining:
            candidates = [v for v in remaining if np.isfinite(best_neighbor_number[v])]
            if not candidates:
                candidates = list(remaining)
            if tie_break == "degree":
                key = lambda v: (best_neighbor_number[v], degrees[v], v)
            elif tie_break == "king":
                def key(v):
                    nbrs = pattern.neighbors(v)
                    unnumbered = nbrs[~numbered[nbrs]]
                    new_front = int(np.sum(~np.isfinite(best_neighbor_number[unnumbered])))
                    return (new_front, best_neighbor_number[v], degrees[v], v)
            else:
                raise ValueError(f"unknown tie_break {tie_break!r}")
            chosen = min(candidates, key=key)
            remaining.discard(chosen)
            order[count] = chosen
            numbered[chosen] = True
            _touch_neighbors(chosen, count)
            count += 1

    if count != n:  # pragma: no cover - defensive
        raise AssertionError("level numbering did not cover the component")
    return order


# Sloan vertex states (mirrors repro.orderings.sloan).
_INACTIVE, _PREACTIVE, _ACTIVE, _NUMBERED = 0, 1, 2, 3


def sloan_component_reference(pattern: SymmetricPattern, w1: int, w2: int) -> np.ndarray:
    """Per-push heap maintenance (reference for the vectorized
    ``_sloan_component`` in :mod:`repro.orderings.sloan`)."""
    from repro.graph.peripheral import pseudo_diameter
    from repro.graph.traversal import distance_from

    n = pattern.n
    if n == 1:
        return np.zeros(1, dtype=np.intp)
    start, end, _su, _sv = pseudo_diameter(pattern)
    dist_to_end = distance_from(pattern, end)
    degrees = pattern.degree()

    status = np.full(n, _INACTIVE, dtype=np.int8)
    priority = (-w1 * (degrees + 1) + w2 * dist_to_end).astype(np.int64)

    order = np.empty(n, dtype=np.intp)
    count = 0
    heap: list[tuple[int, int, int]] = []
    counter = 0

    def push(v: int) -> None:
        nonlocal counter
        heapq.heappush(heap, (-int(priority[v]), counter, int(v)))
        counter += 1

    status[start] = _PREACTIVE
    push(start)

    while count < n:
        while heap:
            neg_prio, _tie, v = heapq.heappop(heap)
            if status[v] != _NUMBERED and -neg_prio == priority[v]:
                break
        else:  # pragma: no cover - defensive; component is connected
            remaining = np.flatnonzero(status != _NUMBERED)
            v = int(remaining[0])

        if status[v] == _PREACTIVE:
            for w in pattern.neighbors(v):
                if status[w] == _NUMBERED:
                    continue
                priority[w] += w1
                if status[w] == _INACTIVE:
                    status[w] = _PREACTIVE
                push(int(w))
        else:
            for w in pattern.neighbors(v):
                if status[w] != _NUMBERED:
                    priority[w] += w1
                    push(int(w))

        order[count] = v
        status[v] = _NUMBERED
        count += 1

        for w in pattern.neighbors(v):
            if status[w] == _NUMBERED:
                continue
            if status[w] == _PREACTIVE:
                status[w] = _ACTIVE
                for x in pattern.neighbors(int(w)):
                    if status[x] == _NUMBERED:
                        continue
                    priority[x] += w1
                    if status[x] == _INACTIVE:
                        status[x] = _PREACTIVE
                    push(int(x))

    return order
