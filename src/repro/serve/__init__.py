"""Ordering-as-a-service: the ``repro serve`` HTTP/JSON API.

A resident asyncio process answering ordering requests over the same
single-cell core as ``repro suite`` — warm across requests through the
per-worker problem cache and the persistent ``--store`` artifact cache,
bounded by a worker pool with per-task timeouts, coalescing identical
in-flight requests, and shedding load with ``429 Retry-After`` under
overload.  See ``docs/serving.md`` for the API reference and
:mod:`repro.serve.app` for the architecture.

Quick start::

    repro serve --port 8741 --workers 4 --store ./cache &
    repro order problem:POW9@0.05 --algorithm rcm --server http://127.0.0.1:8741

or programmatically::

    from repro.serve import OrderingServer, ServeConfig
    server = OrderingServer(ServeConfig(port=0, workers=2))
"""

from repro.serve.api import OrderSpec, inline_label, parse_order_request
from repro.serve.app import OrderingServer, ServeConfig
from repro.serve.breaker import BreakerBoard, CircuitBreaker
from repro.serve.client import ServerClient, ServerError
from repro.serve.jobs import Job, JobJournal, JobRegistry, ReplayedJobs
from repro.serve.pool import PoolSaturated, WorkerPool
from repro.serve.protocol import ProtocolError, Request, json_response, read_request

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "Job",
    "JobJournal",
    "JobRegistry",
    "OrderSpec",
    "OrderingServer",
    "PoolSaturated",
    "ProtocolError",
    "ReplayedJobs",
    "Request",
    "ServeConfig",
    "ServerClient",
    "ServerError",
    "WorkerPool",
    "inline_label",
    "json_response",
    "parse_order_request",
    "read_request",
]
