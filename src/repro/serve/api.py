"""The ``/v1/order`` request schema: JSON payload -> executable cell.

A request names **exactly one** pattern source —

``problem``
    A registered paper problem (plus optional ``scale``), rebuilt inside
    the worker through the per-worker problem cache and the persistent
    ``--store`` cache, so repeated requests are warm.
``coo`` / ``csr``
    The structure inline: ``{"n": ..., "rows": [...], "cols": [...]}``
    (symmetrized, self-loops dropped) or ``{"n": ..., "indptr": [...],
    "indices": [...]}`` (must already be the canonical symmetric CSR form;
    validated).
``matrix_market`` / ``harwell_boeing``
    A file upload as text, parsed by the same readers the CLI uses.

— plus the algorithm and run parameters.  :func:`parse_order_request` turns
the payload into an :class:`OrderSpec` holding the same
:class:`~repro.batch.tasks.BatchTask` a ``repro suite`` run would build for
that cell (identical label normalization and seed derivation), which is what
makes server results byte-identical to batch results in canonical form.

Every validation failure raises
:class:`~repro.serve.protocol.ProtocolError` with a 4xx status and a
structured error type; nothing in here may raise anything else for
attacker-controlled input (fuzz-pinned).
"""

from __future__ import annotations

import hashlib
import inspect
import io
from dataclasses import dataclass

from repro.batch.tasks import build_task, derive_seed
from repro.collections.registry import all_problems, get_problem_spec
from repro.orderings.registry import ORDERING_ALGORITHMS
from repro.serve.protocol import ProtocolError
from repro.store.core import canonical_params
from repro.store.spectral import pattern_digest, problem_digest

__all__ = [
    "DEFAULT_MAX_INLINE_N",
    "MAX_DELAY_S",
    "OrderSpec",
    "PATTERN_SOURCES",
    "inline_label",
    "parse_order_request",
]

#: Pattern-source keys; a request must carry exactly one.
PATTERN_SOURCES = ("problem", "coo", "csr", "matrix_market", "harwell_boeing")

#: Largest inline/uploaded matrix order accepted by default.  ``n`` bounds
#: the dense-in-``n`` allocations (indptr, permutation, frontier arrays), so
#: it must be capped *before* any array is built — a four-byte body asking
#: for ``n=10**12`` must cost nothing.
DEFAULT_MAX_INLINE_N = 2_000_000

#: Cap on the ``debug_delay_s`` load-testing knob.
MAX_DELAY_S = 30.0


def _bad(message: str, error_type: str = "InvalidOrderRequest") -> ProtocolError:
    return ProtocolError(400, message, error_type)


def inline_label(digest: str) -> str:
    """The task label of a directly-supplied pattern: ``inline:<digest12>``.

    Shared with the ``repro order`` client so the client's in-process
    fallback derives the same per-task seed as the server for the same
    structure.
    """
    return f"inline:{digest[:12]}"


@dataclass
class OrderSpec:
    """One validated ordering request, ready to execute.

    ``task`` is the batch cell (label, algorithm, scale, seed, options);
    ``pattern`` is the inline/uploaded structure, or ``None`` for registry
    problems (built inside the worker, cache-assisted).  ``key`` is the
    coalescing identity: requests with equal keys are provably the same
    computation and share one worker slot.
    """

    task: object
    pattern: object | None
    key: str
    mode: str = "sync"
    include_permutation: bool = False
    timeout_s: float | None = None
    delay_s: float = 0.0


def _require_int(payload: dict, name: str, *, minimum: int | None = None,
                 maximum: int | None = None, default=None):
    value = payload.get(name, default)
    if value is default and default is None and name not in payload:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"{name!r} must be an integer")
    if minimum is not None and value < minimum:
        raise _bad(f"{name!r} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise _bad(f"{name!r} must be <= {maximum}, got {value}")
    return value


def _require_number(payload: dict, name: str, *, minimum=None, maximum=None):
    if name not in payload:
        return None
    value = payload[name]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(f"{name!r} must be a number")
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise _bad(f"{name!r} must be finite")
    if minimum is not None and value < minimum:
        raise _bad(f"{name!r} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise _bad(f"{name!r} must be <= {maximum}, got {value}")
    return value


def _int_list(source: dict, name: str, owner: str):
    value = source.get(name)
    if not isinstance(value, list):
        raise _bad(f"{owner}.{name} must be a list of integers")
    for item in value:
        if isinstance(item, bool) or not isinstance(item, int):
            raise _bad(f"{owner}.{name} must hold only integers")
    return value


def _build_inline_pattern(payload: dict, max_inline_n: int):
    """Build the pattern of a non-registry request; 4xx on anything wrong."""
    from repro.sparse.pattern import SymmetricPattern

    if "coo" in payload:
        source = payload["coo"]
        if not isinstance(source, dict):
            raise _bad("'coo' must be an object with keys n, rows, cols")
        n = _require_int(source, "n", minimum=0, maximum=max_inline_n, default=-1)
        if n is None or n < 0:
            raise _bad("'coo' needs an integer 'n' >= 0 "
                       f"(<= {max_inline_n})")
        rows = _int_list(source, "rows", "coo")
        cols = _int_list(source, "cols", "coo")
        try:
            return SymmetricPattern.from_edge_arrays(n, rows, cols)
        except (ValueError, TypeError, OverflowError) as exc:
            raise _bad(f"invalid COO pattern: {exc}") from None

    if "csr" in payload:
        source = payload["csr"]
        if not isinstance(source, dict):
            raise _bad("'csr' must be an object with keys n, indptr, indices")
        n = _require_int(source, "n", minimum=0, maximum=max_inline_n, default=-1)
        if n is None or n < 0:
            raise _bad("'csr' needs an integer 'n' >= 0 "
                       f"(<= {max_inline_n})")
        indptr = _int_list(source, "indptr", "csr")
        indices = _int_list(source, "indices", "csr")
        try:
            pattern = SymmetricPattern(n, indptr, indices, copy=True)
            pattern.validate()
        except (ValueError, TypeError, IndexError, OverflowError) as exc:
            raise _bad(f"invalid CSR pattern: {exc}") from None
        return pattern

    name = "matrix_market" if "matrix_market" in payload else "harwell_boeing"
    text = payload[name]
    if not isinstance(text, str):
        raise _bad(f"{name!r} must be the file contents as a string")
    try:
        if name == "matrix_market":
            from repro.sparse.io_mm import read_matrix_market

            matrix = read_matrix_market(io.StringIO(text))
        else:
            from repro.sparse.io_hb import read_harwell_boeing

            matrix = read_harwell_boeing(io.StringIO(text))
        if max(matrix.shape) > max_inline_n:
            raise _bad(f"uploaded matrix order {max(matrix.shape)} exceeds "
                       f"the limit of {max_inline_n}")
        from repro.sparse.ops import structure_from_matrix

        return structure_from_matrix(matrix)
    except ProtocolError:
        raise
    except Exception as exc:
        # The readers raise ValueError for format errors, but a hostile
        # file can reach numpy/scipy edges too; all of it is client input.
        raise _bad(f"cannot parse {name} upload: "
                   f"{type(exc).__name__}: {exc}") from None


def _check_option_names(algorithm: str, options: dict) -> None:
    """Reject option names the algorithm's signature cannot accept.

    Without this, an unknown option sails through validation and dies as a
    ``TypeError`` inside the worker — a 500 for what is plainly a client
    mistake.  Algorithms taking ``**kwargs`` keep their flexibility.
    """
    func = ORDERING_ALGORITHMS[algorithm]
    try:
        parameters = list(inspect.signature(func).parameters.values())
    except (TypeError, ValueError):  # exotic callables: let the worker judge
        return
    if any(p.kind is p.VAR_KEYWORD for p in parameters):
        return
    accepted = {p.name for p in parameters[1:]
                if p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)}
    unknown = sorted(set(options) - accepted)
    if unknown:
        raise ProtocolError(
            400,
            f"unknown option(s) {unknown} for algorithm {algorithm!r}; "
            f"accepted: {sorted(accepted)}",
            "UnknownOption",
        )


def parse_order_request(
    payload,
    *,
    max_inline_n: int = DEFAULT_MAX_INLINE_N,
    allow_delay: bool = True,
) -> OrderSpec:
    """Validate a ``POST /v1/order`` JSON document into an :class:`OrderSpec`.

    Raises :class:`~repro.serve.protocol.ProtocolError` (400) on every
    malformed or unknown field; the server turns that into the structured
    4xx body.  ``allow_delay=False`` rejects the ``debug_delay_s`` testing
    knob (servers started with ``--no-debug-delay``).
    """
    if not isinstance(payload, dict):
        raise _bad("request body must be a JSON object")

    algorithm = payload.get("algorithm")
    if not isinstance(algorithm, str) or algorithm not in ORDERING_ALGORITHMS:
        raise ProtocolError(
            400,
            f"unknown algorithm {algorithm!r}; available: "
            f"{sorted(ORDERING_ALGORITHMS)}",
            "UnknownAlgorithm",
        )

    sources = [name for name in PATTERN_SOURCES if name in payload]
    if len(sources) != 1:
        raise _bad(
            f"give exactly one pattern source of {list(PATTERN_SOURCES)}; "
            f"got {sources or 'none'}"
        )
    source = sources[0]

    options = payload.get("options", {})
    if not isinstance(options, dict):
        raise _bad("'options' must be an object of algorithm keyword arguments")
    try:
        options_text = canonical_params(options)
    except (TypeError, ValueError) as exc:
        raise _bad(f"'options' must be JSON-canonicalizable: {exc}") from None
    _check_option_names(algorithm, options)

    mode = payload.get("mode", "sync")
    if mode not in ("sync", "async"):
        raise _bad(f"'mode' must be 'sync' or 'async', got {mode!r}")
    # Off by default: a permutation is O(n) response weight, and metric
    # consumers don't need it.
    include_permutation = payload.get("include_permutation", False)
    if not isinstance(include_permutation, bool):
        raise _bad("'include_permutation' must be a boolean")
    base_seed = _require_int(payload, "base_seed", default=0) or 0
    explicit_seed = _require_int(payload, "seed", minimum=0)
    timeout_s = _require_number(payload, "timeout_s", minimum=0.001)
    delay_s = _require_number(payload, "debug_delay_s", minimum=0.0,
                              maximum=MAX_DELAY_S) or 0.0
    if delay_s and not allow_delay:
        raise _bad("'debug_delay_s' is disabled on this server", "DelayDisabled")

    scale = _require_number(payload, "scale", minimum=1e-9)
    if source == "problem":
        name = payload["problem"]
        if not isinstance(name, str):
            raise _bad("'problem' must be a registered problem name")
        name = name.strip().upper()
        if get_problem_spec(name) is None:
            raise ProtocolError(
                400,
                f"unknown problem {name!r}; available: "
                f"{', '.join(sorted(all_problems()))}",
                "UnknownProblem",
            )
        pattern = None
        label = name
        digest = problem_digest(name, scale)
        task_scale = scale
    else:
        if scale is not None:
            raise _bad("'scale' only applies to registry problems")
        pattern = _build_inline_pattern(payload, max_inline_n)
        digest = pattern_digest(pattern)
        label = inline_label(digest)
        task_scale = None

    seed = (derive_seed(base_seed, label, algorithm)
            if explicit_seed is None else explicit_seed)
    task = build_task(label, algorithm, scale=task_scale, options=options,
                      seed=seed, check_problem=False)

    key_text = "\x1f".join([
        digest, algorithm, options_text, str(seed),
        repr(timeout_s), repr(delay_s),
    ])
    key = hashlib.sha256(key_text.encode("utf-8")).hexdigest()
    return OrderSpec(task=task, pattern=pattern, key=key, mode=mode,
                     include_permutation=include_permutation,
                     timeout_s=timeout_s, delay_s=delay_s)
