"""The ``repro serve`` asyncio application: ordering-as-a-service.

One :class:`OrderingServer` exposes the batch engine's single-cell core
over HTTP/JSON (stdlib only — no framework):

``POST /v1/order``
    Submit one ordering request (registry problem, inline COO/CSR, or a
    MatrixMarket / Harwell-Boeing upload; see :mod:`repro.serve.api`).
    ``mode="sync"`` answers with the finished record; ``mode="async"``
    answers ``202`` with a job id to poll.
``GET /v1/jobs/<id>``
    Poll a job (sync and async requests both get one).
``GET /v1/algorithms``
    The registered algorithm names and the paper's default set.
``GET /healthz`` / ``GET /statsz``
    Liveness, and the counters the load tests reconcile: queue depth,
    worker utilization, coalescing effectiveness, response classes, store
    hits/misses.

Identical concurrent requests are **coalesced**: the first one starts the
computation, every later arrival with the same key (pattern digest +
algorithm + params + seed) awaits the same future, so k identical requests
cost one worker slot and one computation.  Admission past the configured
queue depth is **shed** with ``429`` and a ``Retry-After`` header instead of
queueing without bound.

Results are byte-identical in canonical form to what ``repro suite`` writes
for the same cells — the server builds the very same
:class:`~repro.batch.tasks.BatchTask` and runs the very same
:func:`~repro.batch.engine.execute_task` — which the integration tests pin.
"""

from __future__ import annotations

import asyncio
import itertools
import math
import time
import traceback
from dataclasses import dataclass

from repro import faults
from repro.serve.api import DEFAULT_MAX_INLINE_N, parse_order_request
from repro.serve.breaker import BreakerBoard
from repro.serve.jobs import JobJournal, JobRegistry
from repro.serve.pool import PoolSaturated, WorkerPool
from repro.serve.protocol import (
    DEFAULT_MAX_BODY_BYTES,
    ProtocolError,
    json_response,
    read_request,
)

__all__ = ["OrderingServer", "ServeConfig"]


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can be started with."""

    host: str = "127.0.0.1"
    port: int = 8741
    workers: int = 2
    max_queue: int = 8
    timeout: float | None = None
    worker_mode: str = "subprocess"
    journal: str | None = None
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    max_inline_n: int = DEFAULT_MAX_INLINE_N
    retry_after_s: int = 1
    job_capacity: int = 1024
    read_timeout_s: float = 30.0
    allow_delay: bool = True
    #: Consecutive worker crashes per algorithm before its circuit breaker
    #: opens (<= 0 disables circuit breaking).
    breaker_threshold: int = 3
    #: Seconds an open breaker sheds requests before admitting a probe.
    breaker_cooldown_s: float = 30.0
    #: Upper bound on how long a SIGTERM drain waits for in-flight work.
    drain_grace_s: float = 30.0


class OrderingServer:
    """The asyncio HTTP server over the batch engine's single-cell core."""

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.pool = WorkerPool(
            workers=self.config.workers,
            max_queue=self.config.max_queue,
            timeout=self.config.timeout,
            mode=self.config.worker_mode,
        )
        self.jobs = JobRegistry(capacity=self.config.job_capacity)
        self.breakers = BreakerBoard(
            threshold=self.config.breaker_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        self.journal = None
        self.replayed_jobs = 0
        self.replay_skipped = 0
        if self.config.journal:
            if _journal_exists(self.config.journal):
                replayed = JobJournal.replay(self.config.journal)
                self.replayed_jobs = len(replayed)
                self.replay_skipped = getattr(replayed, "skipped", 0)
            self.journal = JobJournal(self.config.journal, append=True)
        self.draining = False
        self._drain_requested = asyncio.Event()
        self._open_connections = 0
        self._drop_counter = itertools.count(1)
        self._inflight: dict[str, asyncio.Task] = {}
        self._server: asyncio.AbstractServer | None = None
        self._started_monotonic = time.monotonic()
        self.port: int | None = None
        self.counters = {
            "requests_total": 0,
            "order": 0,
            "shed": 0,
            "breaker_rejected": 0,
            "drain_rejected": 0,
            "computations": 0,
            "coalesced": 0,
            "dropped_responses": 0,
            "journaled": 0,
            "journal_write_errors": 0,
            "responses": {"2xx": 0, "3xx": 0, "4xx": 0, "5xx": 0},
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting; ``self.port`` holds the real port
        (meaningful with ``port=0`` — the ephemeral-port test path)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    def begin_drain(self) -> None:
        """Enter graceful drain (the SIGTERM handler): stop admitting new
        orders — they get ``503`` + ``Retry-After`` — while health checks
        and job polling keep answering and in-flight work runs to
        completion.  Idempotent; safe to call from a signal handler running
        on the event loop."""
        self.draining = True
        self._drain_requested.set()

    async def run_until_drained(self) -> None:
        """Serve until a drain is requested, then until in-flight work ends.

        The graceful-shutdown counterpart of :meth:`serve_forever`: the
        listener stays up the whole time (pollers must be able to collect
        async results during the drain), so "drained" means no computation
        in flight, nothing queued, and no connection mid-request — bounded
        by ``drain_grace_s`` so a wedged worker cannot hold the process
        hostage forever.  The caller then runs :meth:`close`, which flushes
        and closes the journal.
        """
        assert self._server is not None, "call start() first"
        await self._drain_requested.wait()
        deadline = time.monotonic() + self.config.drain_grace_s
        while time.monotonic() < deadline:
            busy = (self._inflight or self.pool.busy or self.pool.queued
                    or self._open_connections)
            if not busy:
                break
            await asyncio.sleep(0.02)
        # One final beat lets async-mode _finish_job callbacks scheduled by
        # the last computation run before the journal closes.
        await asyncio.sleep(0.05)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.pool.shutdown()
        if self.journal is not None:
            self.journal.close()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader, writer) -> None:
        """One request -> one response -> close.  Never raises."""
        self._open_connections += 1
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader, max_body_bytes=self.config.max_body_bytes),
                    timeout=self.config.read_timeout_s,
                )
                if request is None:
                    return
                response = await self._dispatch(request)
            except ProtocolError as exc:
                response = json_response(exc.status, exc.to_payload())
            except asyncio.TimeoutError:
                response = json_response(408, {"error": {
                    "type": "RequestReadTimeout",
                    "message": f"request not received within "
                               f"{self.config.read_timeout_s:g} s",
                }})
            except Exception as exc:  # noqa: BLE001 — the server must not die
                response = json_response(500, {"error": {
                    "type": "InternalServerError",
                    "message": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }})
            self._count_response(response)
            if faults.fires("http.drop", f"response#{next(self._drop_counter)}") is not None:
                # Injected network failure: the response was computed (and
                # journaled) but the bytes never reach the client — the case
                # client-side retries must absorb.
                self.counters["dropped_responses"] += 1
                return
            writer.write(response)
            await writer.drain()
        except (ConnectionError, BrokenPipeError, OSError, asyncio.CancelledError):
            pass  # the client vanished; nothing to answer
        finally:
            self._open_connections -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001 — closing a dead socket is fine
                pass

    def _count_response(self, response: bytes) -> None:
        try:
            status = int(response.split(b" ", 2)[1])
        except (IndexError, ValueError):  # pragma: no cover - we built it
            return
        bucket = f"{status // 100}xx"
        if bucket in self.counters["responses"]:
            self.counters["responses"][bucket] += 1

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    async def _dispatch(self, request) -> bytes:
        self.counters["requests_total"] += 1
        path = request.path
        if path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return json_response(200, self.health())
        if path == "/statsz":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            return json_response(200, self.statsz())
        if path == "/v1/algorithms":
            if request.method != "GET":
                return self._method_not_allowed("GET")
            from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS

            return json_response(200, {
                "algorithms": sorted(ORDERING_ALGORITHMS),
                "paper_algorithms": list(PAPER_ALGORITHMS),
            })
        if path.startswith("/v1/jobs/"):
            if request.method != "GET":
                return self._method_not_allowed("GET")
            job = self.jobs.get(path[len("/v1/jobs/"):])
            if job is None:
                return json_response(404, {"error": {
                    "type": "UnknownJob",
                    "message": "no such job (finished jobs are evicted "
                               "oldest-first once the registry is full)",
                }})
            return json_response(200, {"job": job.to_dict()})
        if path == "/v1/order":
            if request.method != "POST":
                return self._method_not_allowed("POST")
            return await self._handle_order(request)
        return json_response(404, {"error": {
            "type": "NotFound",
            "message": f"no route for {path!r} (see docs/serving.md)",
        }})

    @staticmethod
    def _method_not_allowed(allowed: str) -> bytes:
        return json_response(
            405,
            {"error": {"type": "MethodNotAllowed",
                       "message": f"use {allowed} on this endpoint"}},
            extra_headers={"Allow": allowed},
        )

    # ------------------------------------------------------------------ #
    # the order endpoint
    # ------------------------------------------------------------------ #
    async def _handle_order(self, request) -> bytes:
        self.counters["order"] += 1
        if self.draining:
            self.counters["drain_rejected"] += 1
            return json_response(
                503,
                {"error": {"type": "ServerDraining",
                           "message": "server is draining for shutdown; "
                                      "retry against another instance"},
                 "retry_after_s": self.config.retry_after_s},
                extra_headers={"Retry-After": str(self.config.retry_after_s)},
            )
        spec = parse_order_request(
            request.json(),
            max_inline_n=self.config.max_inline_n,
            allow_delay=self.config.allow_delay,
        )

        future = self._inflight.get(spec.key)
        coalesced = future is not None
        if not coalesced:
            algorithm = spec.task.algorithm
            allowed, retry_in = self.breakers.allow(algorithm)
            if not allowed:
                self.counters["breaker_rejected"] += 1
                retry_after = max(1, math.ceil(retry_in))
                return json_response(
                    503,
                    {"error": {"type": "CircuitOpen",
                               "message": f"algorithm {algorithm!r} is "
                                          f"circuit-broken after repeated "
                                          f"worker crashes"},
                     "retry_after_s": retry_after},
                    extra_headers={"Retry-After": str(retry_after)},
                )
            try:
                self.pool.reserve()
            except PoolSaturated as exc:
                # The breaker admitted (possibly a half-open probe) but no
                # computation will run: release the probe.
                self.breakers.abort(algorithm)
                self.counters["shed"] += 1
                return json_response(
                    429,
                    {"error": {"type": "PoolSaturated", "message": str(exc)},
                     "queue_depth": exc.queue_depth,
                     "retry_after_s": self.config.retry_after_s},
                    extra_headers={"Retry-After": str(self.config.retry_after_s)},
                )
            self.counters["computations"] += 1
            future = asyncio.ensure_future(self._compute(spec))
            self._inflight[spec.key] = future
        else:
            self.counters["coalesced"] += 1

        job = self.jobs.new_job(spec.key, algorithm=spec.task.algorithm,
                                problem=spec.task.problem, mode=spec.mode,
                                coalesced=coalesced)
        if spec.mode == "async":
            asyncio.ensure_future(self._finish_job(job, future,
                                                   spec.include_permutation))
            return json_response(202, {"job": job.to_dict(include_result=False)})

        try:
            record = await asyncio.shield(future)
        except Exception as exc:
            # An executor-level failure (not a captured task record): the
            # job must still finish so pollers see a terminal state.
            self._finalize(job, 500, record_dict=None, permutation=None,
                           error={"type": type(exc).__name__,
                                  "message": str(exc)})
            raise
        status, payload = self._result_payload(job, record,
                                               spec.include_permutation)
        self._finalize(job, status,
                       record_dict=payload.get("record"),
                       permutation=payload.get("permutation"))
        payload["job"] = job.to_dict(include_result=False)
        return json_response(status, payload)

    async def _compute(self, spec):
        """The single computation behind one coalescing key."""
        algorithm = spec.task.algorithm
        try:
            record = await self.pool.run(spec.task, spec.pattern,
                                         timeout=spec.timeout_s,
                                         delay_s=spec.delay_s)
        except BaseException:
            # Executor-level failure: no record means no outcome to judge,
            # but a half-open probe must be released or the breaker wedges.
            self.breakers.abort(algorithm)
            raise
        finally:
            self._inflight.pop(spec.key, None)
        crashed = (record.error or {}).get("type") == "WorkerCrashed"
        self.breakers.record(algorithm, crashed=crashed)
        return record

    async def _finish_job(self, job, future, include_permutation) -> None:
        """Async-mode completion: fill the job when the computation lands."""
        try:
            record = await asyncio.shield(future)
        except Exception as exc:  # noqa: BLE001 — job must still finish
            self._finalize(job, 500, record_dict=None, permutation=None,
                           error={"type": type(exc).__name__, "message": str(exc)})
            return
        status, payload = self._result_payload(job, record, include_permutation)
        self._finalize(job, status, record_dict=payload.get("record"),
                       permutation=payload.get("permutation"))

    def _result_payload(self, job, record, include_permutation):
        """Map a TaskRecord to (http status, response payload)."""
        record_dict = record.to_dict(include_timing=True)
        payload = {"record": record_dict, "coalesced": job.coalesced}
        if record.ok:
            status = 200
            if include_permutation and record.ordering is not None:
                payload["permutation"] = [int(p) for p in record.ordering.perm]
        elif record.timed_out:
            status = 504
            payload["error"] = record.error
        else:
            # WorkerCrashed and algorithm exceptions are both server-side
            # failures of a validated request: 5xx, never a hang.
            status = 500
            payload["error"] = record.error
        return status, payload

    def _finalize(self, job, status, *, record_dict, permutation, error=None) -> None:
        if error is not None:
            record_dict = {"error": error}
        self.jobs.finish(job, http_status=status, record=record_dict,
                         permutation=permutation)
        if self.journal is not None:
            try:
                self.journal.record_job(job)
                self.counters["journaled"] += 1
            except OSError:
                # A full disk must not take the server down — but the loss
                # is counted and degrades /healthz.
                self.counters["journal_write_errors"] += 1

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """The ``/healthz`` document.

        A healthy server answers exactly ``{"status": "ok"}``.  Anything
        less than healthy adds a ``reasons`` list: ``"draining"`` while a
        graceful shutdown runs, ``"degraded"`` when circuit breakers are
        open or journal writes are failing — still alive and answering,
        but a load balancer should prefer other instances.
        """
        reasons = []
        open_algorithms = self.breakers.open_algorithms()
        if open_algorithms:
            reasons.append("circuit open: " + ", ".join(open_algorithms))
        if self.counters["journal_write_errors"]:
            reasons.append(
                f"journal write errors: {self.counters['journal_write_errors']}")
        if self.draining:
            return {"status": "draining", "reasons": ["draining"] + reasons}
        if reasons:
            return {"status": "degraded", "reasons": reasons}
        return {"status": "ok"}

    def statsz(self) -> dict:
        """The ``/statsz`` document (see docs/serving.md for the schema)."""
        from repro.store.core import get_default_store

        store = get_default_store()
        store_stats = None
        if store is not None or any(self.pool.store_stats.values()):
            merged = dict(self.pool.store_stats)
            if store is not None:
                for name in merged:
                    merged[name] += int(store.stats.get(name, 0))
            store_stats = {"root": str(store.root) if store else None, **merged}
        return {
            "engine": "repro.serve",
            "uptime_s": round(time.monotonic() - self._started_monotonic, 3),
            "draining": self.draining,
            "requests": {
                "total": self.counters["requests_total"],
                "order": self.counters["order"],
                "shed": self.counters["shed"],
                "breaker_rejected": self.counters["breaker_rejected"],
                "drain_rejected": self.counters["drain_rejected"],
                "dropped_responses": self.counters["dropped_responses"],
                "responses": dict(self.counters["responses"]),
            },
            "coalescing": {
                "computations": self.counters["computations"],
                "coalesced": self.counters["coalesced"],
                "inflight": len(self._inflight),
            },
            "breakers": self.breakers.stats(),
            "pool": self.pool.stats(),
            "jobs": {"tracked": len(self.jobs),
                     "capacity": self.jobs.capacity,
                     "replayed_from_journal": self.replayed_jobs,
                     "journal_skipped": self.replay_skipped,
                     "journaled": self.counters["journaled"],
                     "journal_write_errors": self.counters["journal_write_errors"]},
            "store": store_stats,
            "backend": _backend_status(),
        }


def _backend_status() -> dict:
    """Kernel-backend tier view for ``/statsz``.

    The per-kernel dispatch counts are this (coordinator) process's own; in
    subprocess worker mode the workers dispatch in their own processes, so
    the interesting fields here are the requested tier, numba availability
    and any recorded fallback from an explicit ``numba`` request.
    """
    from repro import backends

    return backends.backend_status()


def _journal_exists(path) -> bool:
    from pathlib import Path

    return Path(path).exists()
