"""Per-algorithm circuit breaking for ``repro serve``.

A worker that keeps crashing on one algorithm (a pathological input class, a
poisoned cache entry, an injected fault spec) should not be allowed to burn a
pool slot per request forever: after ``threshold`` *consecutive* crashes the
algorithm's breaker **opens** and requests for it are shed immediately with
``503`` + ``Retry-After``, costing the server nothing.  After ``cooldown_s``
the breaker goes **half-open**: exactly one probe request is admitted — a
success closes the breaker, another crash re-opens it for a fresh cooldown.

The classic three-state machine::

        closed ──(threshold consecutive crashes)──▶ open
          ▲                                          │
          │ success                       cooldown elapsed
          │                                          ▼
          └──────────── probe ok ────────────── half-open
                                                     │
                                          probe crashed ──▶ open

Breakers track *crashes* (a worker died without reporting), not ordinary
algorithm errors — a cell that raises a clean exception produces a valid
``"error"`` record and harms nobody else.

``threshold <= 0`` disables the board entirely (every request admitted,
nothing recorded) — the escape hatch for deployments that prefer raw 500s.
"""

from __future__ import annotations

import time

__all__ = ["BreakerBoard", "CircuitBreaker"]


class CircuitBreaker:
    """One algorithm's crash breaker (see the module docstring).

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).

    >>> clock = lambda: 100.0
    >>> breaker = CircuitBreaker(threshold=2, cooldown_s=30.0, clock=clock)
    >>> breaker.allow()
    (True, 0.0)
    >>> breaker.record(crashed=True); breaker.record(crashed=True)
    >>> breaker.state
    'open'
    >>> allowed, retry_in = breaker.allow()
    >>> allowed, round(retry_in, 1)
    (False, 30.0)
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown_s <= 0:
            raise ValueError(f"cooldown_s must be positive, got {cooldown_s}")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self.state = "closed"
        self.consecutive_crashes = 0
        self.trips = 0            # closed/half-open -> open transitions
        self.rejected = 0         # requests shed while open
        self._opened_at = 0.0
        self._probing = False     # a half-open probe is in flight

    def allow(self) -> tuple[bool, float]:
        """Admission decision: ``(allowed, retry_after_s)``.

        ``retry_after_s`` is the remaining cooldown when the request is
        shed (0.0 when admitted).  An open breaker whose cooldown elapsed
        transitions to half-open and admits exactly one probe; concurrent
        requests during the probe are still shed.
        """
        if self.state == "open":
            elapsed = self._clock() - self._opened_at
            if elapsed < self.cooldown_s:
                self.rejected += 1
                return False, self.cooldown_s - elapsed
            self.state = "half-open"
            self._probing = False
        if self.state == "half-open":
            if self._probing:
                self.rejected += 1
                return False, self.cooldown_s
            self._probing = True
        return True, 0.0

    def record(self, *, crashed: bool) -> None:
        """Report the outcome of an admitted computation."""
        if crashed:
            self.consecutive_crashes += 1
            if self.state == "half-open" or self.consecutive_crashes >= self.threshold:
                self._trip()
        else:
            self.state = "closed"
            self.consecutive_crashes = 0
            self._probing = False

    def abort(self) -> None:
        """An admitted request never reached a computation (pool saturated,
        executor error): release the half-open probe so the breaker cannot
        wedge waiting for an outcome that will never arrive."""
        self._probing = False

    def _trip(self) -> None:
        self.state = "open"
        self.trips += 1
        self._opened_at = self._clock()
        self._probing = False

    def to_dict(self) -> dict:
        payload = {
            "state": self.state,
            "consecutive_crashes": int(self.consecutive_crashes),
            "trips": int(self.trips),
            "rejected": int(self.rejected),
        }
        if self.state == "open":
            remaining = self.cooldown_s - (self._clock() - self._opened_at)
            payload["retry_after_s"] = round(max(0.0, remaining), 3)
        return payload


class BreakerBoard:
    """Per-algorithm :class:`CircuitBreaker` collection (lazily created).

    ``threshold <= 0`` disables the board: :meth:`allow` always admits and
    :meth:`record` is a no-op, so a disabled server carries zero state.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 30.0,
                 clock=time.monotonic):
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}

    @property
    def enabled(self) -> bool:
        return self.threshold > 0

    def _breaker_for(self, algorithm: str) -> CircuitBreaker:
        breaker = self._breakers.get(algorithm)
        if breaker is None:
            breaker = self._breakers[algorithm] = CircuitBreaker(
                threshold=self.threshold, cooldown_s=self.cooldown_s,
                clock=self._clock)
        return breaker

    def allow(self, algorithm: str) -> tuple[bool, float]:
        if not self.enabled:
            return True, 0.0
        return self._breaker_for(algorithm).allow()

    def record(self, algorithm: str, *, crashed: bool) -> None:
        if self.enabled:
            self._breaker_for(algorithm).record(crashed=crashed)

    def abort(self, algorithm: str) -> None:
        if self.enabled and algorithm in self._breakers:
            self._breakers[algorithm].abort()

    def open_algorithms(self) -> list[str]:
        """Algorithms currently shedding requests (open, cooldown running)."""
        return sorted(name for name, breaker in self._breakers.items()
                      if breaker.state == "open")

    def stats(self) -> dict:
        """Per-algorithm breaker state for ``/statsz`` (empty when disabled
        or untouched)."""
        return {name: breaker.to_dict()
                for name, breaker in sorted(self._breakers.items())}
