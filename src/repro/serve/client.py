"""Stdlib HTTP client for a running ``repro serve`` instance.

Used by ``repro order --server URL`` (the thin-client path) and by the
server test layer.  Only :mod:`urllib.request` — no new dependencies.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request

__all__ = ["ServerClient", "ServerError"]

#: Transport-level failures worth retrying: a server not (yet) listening,
#: a connection dropped mid-request, a read that timed out.  ``URLError``
#: wraps ``ConnectionRefusedError``/``ConnectionResetError`` on the urllib
#: path; the bare exceptions cover direct socket surfacing.
_RETRYABLE_ERRORS = (urllib.error.URLError, ConnectionError, TimeoutError,
                    http.client.HTTPException)

#: HTTP statuses that mean "try again later": saturation (429) and a
#: draining server or an open circuit breaker (503).
_RETRYABLE_STATUSES = (429, 503)


class ServerError(Exception):
    """A non-2xx server answer, carrying the decoded JSON body when present."""

    def __init__(self, status: int, payload, headers=None):
        message = status and f"server answered {status}"
        if isinstance(payload, dict) and "error" in payload:
            err = payload["error"] or {}
            message = (f"server answered {status}: "
                       f"{err.get('type', 'Error')}: {err.get('message', '')}")
        super().__init__(message)
        self.status = int(status)
        self.payload = payload
        self.headers = dict(headers or {})


class ServerClient:
    """Minimal JSON-over-HTTP client bound to one base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def request(self, method: str, path: str, payload=None):
        """One JSON request; returns ``(status, headers, body)``.

        4xx/5xx answers come back as return values (not exceptions) so
        callers can inspect structured error bodies and headers like
        ``Retry-After``.
        """
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return (response.status, dict(response.headers),
                        _decode(response.read()))
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, dict(exc.headers or {}), _decode(exc.read())

    def _checked(self, method: str, path: str, payload=None, ok=(200, 202)):
        status, headers, body = self.request(method, path, payload)
        if status not in ok:
            raise ServerError(status, body, headers)
        return body

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #
    def order(self, payload: dict) -> dict:
        """``POST /v1/order``; raises :class:`ServerError` on non-2xx."""
        return self._checked("POST", "/v1/order", payload)

    def order_with_retries(self, payload: dict, *, retries: int = 0,
                           backoff_s: float = 0.5, max_backoff_s: float = 30.0,
                           sleep=time.sleep) -> dict:
        """``POST /v1/order`` surviving transient failures — the
        ``repro order --retries N`` path.

        Retries up to ``retries`` times on connection-level failures
        (refused — the server is still booting or briefly down — reset, read
        timeout) and on ``429``/``503`` answers, honoring a numeric
        ``Retry-After`` header when the server sent one and otherwise
        backing off exponentially (``backoff_s * 2**attempt``, capped at
        ``max_backoff_s``).  Any other non-2xx answer raises immediately —
        a 400 will not get better by waiting.  The final failure propagates
        as-is (:class:`ServerError` or the transport exception).
        """
        retries = int(retries)
        attempt = 0
        while True:
            delay = min(float(backoff_s) * (2.0 ** attempt), float(max_backoff_s))
            try:
                status, headers, body = self.request("POST", "/v1/order", payload)
            except _RETRYABLE_ERRORS:
                if attempt >= retries:
                    raise
            else:
                if status in (200, 202):
                    return body
                if status not in _RETRYABLE_STATUSES or attempt >= retries:
                    raise ServerError(status, body, headers)
                retry_after = _retry_after_s(headers)
                if retry_after is not None:
                    delay = min(retry_after, float(max_backoff_s))
            attempt += 1
            if delay > 0:
                sleep(delay)

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/jobs/{job_id}")["job"]

    def poll_job(self, job_id: str, *, timeout: float = 60.0,
                 interval: float = 0.05) -> dict:
        """Poll ``GET /v1/jobs/<id>`` until the job reaches ``done``."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']!r} "
                                   f"after {timeout:g} s")
            time.sleep(interval)

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/statsz")

    def algorithms(self) -> dict:
        return self._checked("GET", "/v1/algorithms")


def _retry_after_s(headers) -> float | None:
    """A numeric ``Retry-After`` value in seconds, or ``None``.

    Header lookup is case-insensitive; the HTTP-date flavour of the header
    is ignored (the server only ever sends delta-seconds).
    """
    for name, value in (headers or {}).items():
        if str(name).lower() == "retry-after":
            try:
                return max(0.0, float(str(value).strip()))
            except ValueError:
                return None
    return None


def _decode(raw: bytes):
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {"raw": raw.decode("utf-8", "replace")}
