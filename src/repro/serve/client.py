"""Stdlib HTTP client for a running ``repro serve`` instance.

Used by ``repro order --server URL`` (the thin-client path) and by the
server test layer.  Only :mod:`urllib.request` — no new dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

__all__ = ["ServerClient", "ServerError"]


class ServerError(Exception):
    """A non-2xx server answer, carrying the decoded JSON body when present."""

    def __init__(self, status: int, payload, headers=None):
        message = status and f"server answered {status}"
        if isinstance(payload, dict) and "error" in payload:
            err = payload["error"] or {}
            message = (f"server answered {status}: "
                       f"{err.get('type', 'Error')}: {err.get('message', '')}")
        super().__init__(message)
        self.status = int(status)
        self.payload = payload
        self.headers = dict(headers or {})


class ServerClient:
    """Minimal JSON-over-HTTP client bound to one base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def request(self, method: str, path: str, payload=None):
        """One JSON request; returns ``(status, headers, body)``.

        4xx/5xx answers come back as return values (not exceptions) so
        callers can inspect structured error bodies and headers like
        ``Retry-After``.
        """
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return (response.status, dict(response.headers),
                        _decode(response.read()))
        except urllib.error.HTTPError as exc:
            with exc:
                return exc.code, dict(exc.headers or {}), _decode(exc.read())

    def _checked(self, method: str, path: str, payload=None, ok=(200, 202)):
        status, headers, body = self.request(method, path, payload)
        if status not in ok:
            raise ServerError(status, body, headers)
        return body

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #
    def order(self, payload: dict) -> dict:
        """``POST /v1/order``; raises :class:`ServerError` on non-2xx."""
        return self._checked("POST", "/v1/order", payload)

    def job(self, job_id: str) -> dict:
        return self._checked("GET", f"/v1/jobs/{job_id}")["job"]

    def poll_job(self, job_id: str, *, timeout: float = 60.0,
                 interval: float = 0.05) -> dict:
        """Poll ``GET /v1/jobs/<id>`` until the job reaches ``done``."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] == "done":
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {job['state']!r} "
                                   f"after {timeout:g} s")
            time.sleep(interval)

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def stats(self) -> dict:
        return self._checked("GET", "/statsz")

    def algorithms(self) -> dict:
        return self._checked("GET", "/v1/algorithms")


def _decode(raw: bytes):
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return {"raw": raw.decode("utf-8", "replace")}
