"""Job tracking and the stream-backed job journal of ``repro serve``.

Every admitted ``/v1/order`` request becomes a :class:`Job` — pollable at
``GET /v1/jobs/<id>`` whether the request was synchronous or asynchronous.
Jobs live in a bounded in-memory :class:`JobRegistry` (oldest finished jobs
evicted first, so a long-lived server cannot leak memory).

With ``--journal PATH.jsonl`` the server also appends one JSON line per
finished job — the same crash-tolerant JSONL discipline as the batch
engine's ``--stream-output``: a header line first, one flushed object per
event after, and read-back through
:func:`repro.batch.stream.read_jsonl_objects`, which tolerates exactly the
damage a killed process can cause (a truncated final line, even with
trailing blank bytes) and rejects genuine mid-file corruption.
"""

from __future__ import annotations

import itertools
import json
import secrets
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.batch.stream import TruncatedStreamError, read_jsonl_objects_partial

__all__ = ["Job", "JobJournal", "JobRegistry", "JOURNAL_SCHEMA_VERSION",
           "ReplayedJobs"]

#: Version of the journal line schema.
JOURNAL_SCHEMA_VERSION = 1

_ENGINE_NAME = "repro.serve"


@dataclass
class Job:
    """One tracked ordering request."""

    id: str
    key: str
    algorithm: str
    problem: str
    mode: str = "sync"
    state: str = "queued"           # "queued" -> "done"
    coalesced: bool = False
    created_s: float = field(default_factory=time.time)
    finished_s: float | None = None
    http_status: int | None = None
    record: dict | None = None      # TaskRecord.to_dict(include_timing=True)
    permutation: list | None = None

    def to_dict(self, *, include_result: bool = True) -> dict:
        payload = {
            "id": self.id,
            "key": self.key,
            "algorithm": self.algorithm,
            "problem": self.problem,
            "mode": self.mode,
            "state": self.state,
            "coalesced": self.coalesced,
            "created_s": self.created_s,
            "finished_s": self.finished_s,
            "http_status": self.http_status,
        }
        if include_result:
            payload["record"] = self.record
            payload["permutation"] = self.permutation
        return payload


class JobRegistry:
    """Bounded id -> :class:`Job` map (insertion-ordered eviction)."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._counter = itertools.count(1)

    def __len__(self) -> int:
        return len(self._jobs)

    def new_job(self, key: str, *, algorithm: str, problem: str,
                mode: str, coalesced: bool) -> Job:
        job_id = f"{next(self._counter):06d}-{secrets.token_hex(4)}"
        job = Job(id=job_id, key=key, algorithm=algorithm, problem=problem,
                  mode=mode, coalesced=coalesced)
        self._jobs[job_id] = job
        while len(self._jobs) > self.capacity:
            # Evict the oldest *finished* job; never drop one still pending.
            for candidate_id, candidate in self._jobs.items():
                if candidate.state == "done":
                    del self._jobs[candidate_id]
                    break
            else:
                break
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def finish(self, job: Job, *, http_status: int, record: dict | None,
               permutation: list | None) -> None:
        job.state = "done"
        job.finished_s = time.time()
        job.http_status = int(http_status)
        job.record = record
        job.permutation = permutation


class ReplayedJobs(list):
    """The job dictionaries replayed from a journal, plus loss accounting.

    Behaves exactly like the plain list :meth:`JobJournal.replay` used to
    return (so ``replayed == []`` and iteration keep working); ``skipped``
    counts the lines that did *not* replay — damaged/unparseable lines
    anywhere in the file and unknown line kinds — so the boot line and
    ``/statsz`` can report replayed and skipped separately instead of
    conflating them.
    """

    def __init__(self, jobs=(), *, skipped: int = 0):
        super().__init__(jobs)
        self.skipped = int(skipped)


class JobJournal:
    """Append-only JSONL journal of finished jobs (crash-tolerant on read).

    The write discipline matches :class:`repro.batch.stream.StreamWriter`:
    a header first, then one flushed line per event, and — when appending to
    a file a killed server left behind — the truncated tail is trimmed so
    new lines never splice into a partial record.
    """

    def __init__(self, path, *, append: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        exists = self.path.exists()
        if append and exists:
            data = self.path.read_bytes()
            if data and not data.endswith(b"\n"):
                self.path.write_bytes(data[: data.rfind(b"\n") + 1])
        self._file = self.path.open("a" if (append and exists) else "w")
        if not (append and exists and self.path.stat().st_size):
            self._write_line({
                "kind": "header",
                "engine": _ENGINE_NAME,
                "journal_schema": JOURNAL_SCHEMA_VERSION,
            })

    def _write_line(self, payload: dict, *, fault_key: str | None = None) -> None:
        if fault_key is not None:
            from repro import faults

            faults.flaky_io("journal.flaky", fault_key)
        self._file.write(json.dumps(payload, sort_keys=True) + "\n")
        self._file.flush()

    def record_job(self, job: Job, *, retries: int = 2) -> None:
        """Append one finished job (result included) and flush.

        Journal writes retry ``retries`` times on :class:`OSError` (a flaky
        volume, an injected ``journal.flaky`` fault) before giving up —
        losing a journal line degrades replay, so transient write failures
        are worth absorbing; the final failure propagates for the server to
        count.
        """
        payload = {"kind": "job", **job.to_dict()}
        for attempt in range(int(retries) + 1):
            try:
                self._write_line(payload, fault_key=f"{job.id}#a{attempt}")
                return
            except OSError:
                if attempt >= retries:
                    raise

    def close(self) -> None:
        self._file.close()

    @staticmethod
    def replay(path) -> "ReplayedJobs":
        """Read a journal back into its job dictionaries.

        Salvages every complete ``"job"`` line and *counts* what did not
        replay: damaged/unparseable lines anywhere in the file (a truncated
        final write, mid-file corruption) and unknown line kinds (forward
        compatibility) land in the returned list's ``skipped`` counter
        instead of being silently conflated with replayed records or — worse
        — killing the boot.  An empty or header-truncated journal replays as
        no jobs; a journal that does not start with a ``repro.serve`` header
        is rejected (unknown provenance must not be replayed).
        """
        try:
            parsed, skipped = read_jsonl_objects_partial(path)
        except TruncatedStreamError:
            return ReplayedJobs()
        header = parsed[0]
        if header.get("kind") != "header" or header.get("engine") != _ENGINE_NAME:
            raise ValueError(
                f"journal file {path} does not start with a repro.serve header"
            )
        jobs = []
        for line in parsed[1:]:
            if line.get("kind") == "job":
                jobs.append(line)
            else:
                skipped += 1
        return ReplayedJobs(jobs, skipped=skipped)
