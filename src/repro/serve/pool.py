"""Bounded worker pool behind the ordering server.

One :class:`WorkerPool` executes the cells the HTTP layer admits, reusing
the batch engine's single-cell core (:func:`repro.batch.engine.execute_task`
and its structured ``timeout``/``crash`` records) under an asyncio-friendly
concurrency cap:

* at most ``workers`` cells run at once (an :class:`asyncio.Semaphore`);
* at most ``max_queue`` admitted cells may *wait* for a slot — admission
  beyond that raises :class:`PoolSaturated`, which the server answers with
  ``429 Retry-After`` (bounded queue = bounded memory = bounded latency);
* in the default ``subprocess`` mode each cell runs in its own worker
  process, so a cell that overruns its deadline is **terminated** (a
  ``"timeout"`` record, exactly as ``repro suite --timeout`` produces) and
  a worker that dies mid-cell (OOM kill, SIGKILL) surfaces as a structured
  ``WorkerCrashed`` error record rather than a hang — the server maps those
  to 504/500;
* ``inline`` mode runs cells on threads inside the server process instead:
  no kill capability, but the per-worker problem cache and memoized
  ``SpectralWorkspace`` stay warm across requests in one process.  With a
  persistent ``--store`` both modes serve warm requests from disk.

Subprocess workers report their artifact-store traffic back through the
result pipe; the pool aggregates it so ``/statsz`` can show cache
hits/misses even though they accrue in short-lived children.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import multiprocessing
import time
from concurrent.futures import ThreadPoolExecutor

from repro.batch.engine import crash_record, execute_task, timeout_record

__all__ = ["PoolSaturated", "WorkerPool"]


class PoolSaturated(Exception):
    """Admission refused: the wait queue is at its configured depth."""

    def __init__(self, queue_depth: int, max_queue: int):
        super().__init__(
            f"worker queue is full ({queue_depth} waiting, limit {max_queue})"
        )
        self.queue_depth = int(queue_depth)
        self.max_queue = int(max_queue)


def _cell_worker(task, pattern, delay_s, connection) -> None:
    """Child-process entry point: run one cell, pipe back (record, store stats).

    ``execute_task`` already captures algorithm exceptions as error records;
    ``delay_s`` is the load-testing knob (sleep before computing, so tests
    can hold a worker busy deterministically).
    """
    try:
        if delay_s:
            time.sleep(delay_s)
        record = execute_task(task, pattern=pattern)
        from repro.store.core import get_default_store

        store = get_default_store()
        stats = dict(store.stats) if store is not None else None
        connection.send((record, stats))
    finally:
        connection.close()


class WorkerPool:
    """Bounded, observable executor of single ordering cells."""

    def __init__(self, *, workers: int = 2, max_queue: int = 16,
                 timeout: float | None = None, mode: str = "subprocess"):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        if mode not in ("subprocess", "inline"):
            raise ValueError(f"mode must be 'subprocess' or 'inline', got {mode!r}")
        self.workers = int(workers)
        self.max_queue = int(max_queue)
        self.timeout = None if timeout is None else float(timeout)
        self.mode = mode
        self.queued = 0
        self.busy = 0
        self.completed = {"ok": 0, "error": 0, "timeout": 0, "crashed": 0}
        self.store_stats = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
                            "quarantined": 0}
        self.active_pids: dict[int, int] = {}
        self._tokens = itertools.count(1)
        self._semaphore = asyncio.Semaphore(self.workers)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve-worker"
        )

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def reserve(self) -> None:
        """Claim a queue slot for a new computation, or raise
        :class:`PoolSaturated`.  Coalesced requests never reserve — they
        piggyback on the primary's slot.

        Admission is bounded on *total* unfinished work: up to ``workers``
        cells running plus ``max_queue`` waiting.  ``max_queue=0`` therefore
        means "never wait" — run immediately or shed — not "reject all".
        """
        if self.busy + self.queued >= self.workers + self.max_queue:
            raise PoolSaturated(self.queued, self.max_queue)
        self.queued += 1

    def unreserve(self) -> None:
        """Return a reservation that never ran (admission-time failures)."""
        self.queued = max(0, self.queued - 1)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    async def run(self, task, pattern=None, *, timeout: float | None = None,
                  delay_s: float = 0.0):
        """Execute one reserved cell; always returns a :class:`TaskRecord`.

        The effective deadline is the smaller of the server-wide limit and
        the request's own ``timeout_s``; ``delay_s`` extends it (the sleep
        is instrumentation, not work).  The caller must have called
        :meth:`reserve` first.
        """
        try:
            await self._semaphore.acquire()
        except BaseException:
            self.unreserve()
            raise
        self.queued -= 1
        self.busy += 1
        try:
            limits = [t for t in (self.timeout, timeout) if t is not None]
            limit = min(limits) if limits else None
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._executor, self._run_blocking, task, pattern, limit, delay_s
            )
        finally:
            self.busy -= 1
            self._semaphore.release()

    def _run_blocking(self, task, pattern, limit, delay_s):
        if self.mode == "inline":
            if delay_s:
                time.sleep(delay_s)
            record = execute_task(task, pattern=pattern)
        else:
            record = self._run_subprocess(task, pattern, limit, delay_s)
        self._tally(record)
        return record

    def _run_subprocess(self, task, pattern, limit, delay_s):
        context = multiprocessing.get_context()
        receiver, sender = context.Pipe(duplex=False)
        token = next(self._tokens)
        # Stamp the computation ordinal onto the task so deterministic
        # fault-injection draws (repro.faults) vary across repeated
        # computations of the same cell — a crashed-then-retried request
        # must be able to draw differently the second time.
        task = dataclasses.replace(task, attempt=token)
        process = context.Process(
            target=_cell_worker, args=(task, pattern, delay_s, sender), daemon=True
        )
        process.start()
        sender.close()
        self.active_pids[token] = process.pid
        try:
            deadline = None if limit is None else limit + float(delay_s)
            if receiver.poll(deadline):
                try:
                    record, stats = receiver.recv()
                    if stats:
                        for name in self.store_stats:
                            self.store_stats[name] += int(stats.get(name, 0))
                except (EOFError, OSError) as exc:
                    record = crash_record(task, type(exc).__name__)
            else:
                process.terminate()
                record = timeout_record(task, limit)
        finally:
            self.active_pids.pop(token, None)
            receiver.close()
            process.join()
        return record

    def _tally(self, record) -> None:
        if record.status == "ok":
            self.completed["ok"] += 1
        elif record.status == "timeout":
            self.completed["timeout"] += 1
        elif (record.error or {}).get("type") == "WorkerCrashed":
            self.completed["crashed"] += 1
        else:
            self.completed["error"] += 1

    # ------------------------------------------------------------------ #
    # observability / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """The ``/statsz`` view of the pool."""
        return {
            "mode": self.mode,
            "workers": self.workers,
            "busy": self.busy,
            "queue_depth": self.queued,
            "max_queue": self.max_queue,
            "timeout_s": self.timeout,
            "active_pids": sorted(self.active_pids.values()),
            "completed": dict(self.completed),
        }

    def shutdown(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)
