"""Hand-rolled HTTP/1.1 request/response layer for ``repro serve``.

The server speaks just enough HTTP for a JSON ordering API — request line,
headers, ``Content-Length`` bodies, one response per connection — on top of
plain :mod:`asyncio` streams, with **no dependencies beyond the stdlib**.
Every way a client can hand us garbage is mapped to a structured
:class:`ProtocolError` carrying the 4xx status to answer with; nothing a
socket can deliver may ever take the server process down (the fuzz layer in
``tests/test_serve_fuzz.py`` feeds hundreds of malformed byte streams and
asserts exactly that).

Hard limits (request line / header block / header count / body size) are
enforced *while reading*, so an oversized request is rejected without
buffering it.  Responses always carry ``Connection: close`` — the API is
one-shot request/response, and closing keeps the connection state machine
trivial (no pipelining, no keep-alive bookkeeping to fuzz).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "MAX_HEADER_COUNT",
    "MAX_REQUEST_LINE_BYTES",
    "ProtocolError",
    "Request",
    "STATUS_REASONS",
    "json_response",
    "read_request",
    "response_bytes",
]

#: Longest accepted request line (method + target + version).
MAX_REQUEST_LINE_BYTES = 8192
#: Longest accepted single header line.
MAX_HEADER_BYTES = 16384
#: Most headers accepted on one request.
MAX_HEADER_COUNT = 100
#: Default body cap; inline COO/CSR and MatrixMarket uploads must fit here.
DEFAULT_MAX_BODY_BYTES = 32 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """A malformed or unacceptable request, answered with ``status``.

    ``error_type`` travels in the JSON error body so clients (and the fuzz
    corpus assertions) can distinguish failure classes without parsing
    prose.
    """

    def __init__(self, status: int, message: str, error_type: str = "BadRequest"):
        super().__init__(message)
        self.status = int(status)
        self.message = str(message)
        self.error_type = str(error_type)

    def to_payload(self) -> dict:
        return {"error": {"type": self.error_type, "message": self.message}}


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    target: str
    version: str
    headers: dict = field(default_factory=dict)  # lower-cased name -> value
    body: bytes = b""

    @property
    def path(self) -> str:
        """The target without its query string."""
        return self.target.split("?", 1)[0]

    def json(self):
        """The body decoded as a JSON document.

        Raises :class:`ProtocolError` (400) for invalid UTF-8 or invalid
        JSON — the two malformed-body classes the API tests pin.
        """
        try:
            text = self.body.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError(400, "request body is not valid UTF-8",
                                "InvalidBody") from None
        try:
            return json.loads(text) if text.strip() else None
        except json.JSONDecodeError as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}",
                                "InvalidBody") from None


async def _read_line(reader: asyncio.StreamReader, limit: int, what: str) -> bytes:
    """Read one CRLF/LF-terminated line, bounding its length.

    Returns ``b""`` on a clean EOF before any byte; raises
    :class:`ProtocolError` when the line overruns ``limit`` or the peer
    hangs up mid-line.
    """
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.LimitOverrunError:
        raise ProtocolError(431, f"{what} exceeds {limit} bytes",
                            "HeaderTooLarge") from None
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""
        raise ProtocolError(400, f"connection closed mid-{what}",
                            "TruncatedRequest") from None
    if len(line) > limit:
        raise ProtocolError(431, f"{what} exceeds {limit} bytes",
                            "HeaderTooLarge")
    return line


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Request | None:
    """Read and parse one HTTP/1.1 request from a stream.

    Returns ``None`` when the client closed the connection without sending
    anything (a health-checker's connect-and-close probe).  All malformed
    input raises :class:`ProtocolError` with the right 4xx/501 status:
    garbage request lines, non-ASCII or colon-less headers, conflicting
    duplicate ``Content-Length`` headers, non-integer or negative lengths,
    ``Transfer-Encoding`` (not implemented — the API needs none), oversized
    headers or bodies, and bodies cut off before ``Content-Length`` bytes
    arrived.
    """
    raw = await _read_line(reader, MAX_REQUEST_LINE_BYTES, "request line")
    if not raw:
        return None
    try:
        request_line = raw.decode("ascii").strip()
    except UnicodeDecodeError:
        raise ProtocolError(400, "request line is not ASCII",
                            "MalformedRequestLine") from None
    parts = request_line.split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line: {request_line[:80]!r}",
                            "MalformedRequestLine")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol version {version!r}",
                            "MalformedRequestLine")

    headers: dict[str, str] = {}
    header_lines = 0
    while True:
        raw = await _read_line(reader, MAX_HEADER_BYTES, "header line")
        if not raw:
            raise ProtocolError(400, "connection closed inside the header block",
                                "TruncatedRequest")
        if raw in (b"\r\n", b"\n"):
            break
        # Count lines, not distinct names: duplicate identical headers
        # collapse in the dict but must not stream past the limit.
        header_lines += 1
        if header_lines > MAX_HEADER_COUNT:
            raise ProtocolError(431, f"more than {MAX_HEADER_COUNT} headers",
                                "HeaderTooLarge")
        try:
            text = raw.decode("ascii").strip()
        except UnicodeDecodeError:
            raise ProtocolError(400, "header line is not ASCII",
                                "MalformedHeader") from None
        name, sep, value = text.partition(":")
        if not sep or not name or name != name.strip() or " " in name:
            raise ProtocolError(400, f"malformed header line: {text[:80]!r}",
                                "MalformedHeader")
        key, value = name.lower(), value.strip()
        if key in headers and headers[key] != value:
            if key == "content-length":
                raise ProtocolError(400, "conflicting Content-Length headers",
                                    "MalformedHeader")
            headers[key] = f"{headers[key]},{value}"
        else:
            headers[key] = value

    if "transfer-encoding" in headers:
        raise ProtocolError(501, "Transfer-Encoding is not supported "
                                 "(send a Content-Length body)",
                            "NotImplemented")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise ProtocolError(400, "Content-Length is not an integer",
                                "MalformedHeader") from None
        if length < 0:
            raise ProtocolError(400, "Content-Length is negative",
                                "MalformedHeader")
        if length > max_body_bytes:
            raise ProtocolError(413, f"request body of {length} bytes exceeds "
                                     f"the {max_body_bytes}-byte limit",
                                "BodyTooLarge")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise ProtocolError(
                    400,
                    f"request body truncated: Content-Length said {length} "
                    f"bytes but only {len(exc.partial)} arrived",
                    "TruncatedRequest",
                ) from None
    return Request(method=method.upper(), target=target, version=version,
                   headers=headers, body=body)


def response_bytes(status: int, body: bytes, *,
                   content_type: str = "application/json",
                   extra_headers: dict | None = None) -> bytes:
    """Serialize one complete ``Connection: close`` HTTP/1.1 response."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


def json_response(status: int, payload, *, extra_headers: dict | None = None) -> bytes:
    """Serialize a JSON response (sorted keys, trailing newline)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body, extra_headers=extra_headers)
