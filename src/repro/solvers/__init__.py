"""Iterative solvers and ordering-sensitive preconditioners.

The paper's introduction motivates envelope-reducing orderings beyond direct
envelope factorization:

    "The RCM ordering has been found to be an effective preordering in
    computing incomplete factorization preconditioners for preconditioned
    conjugate gradients methods.  Such orderings have also been used in
    parallel matrix-vector multiplication ..."

This subpackage provides that application layer so the effect of the
orderings on *iterative* solution methods can be measured:

* :mod:`repro.solvers.cg` — conjugate gradients with optional preconditioning
  and full convergence-history reporting;
* :mod:`repro.solvers.ic` — incomplete Cholesky IC(0) (no-fill) factorization
  on the reordered matrix, plus a diagonal (Jacobi) fallback;
* :func:`repro.solvers.preconditioned_cg_experiment` — the one-call experiment
  used by the ablation benchmark: reorder, build IC(0), run CG, report the
  iteration count and timings for each ordering.
"""

from repro.solvers.cg import CGResult, conjugate_gradient
from repro.solvers.ic import IncompleteCholesky, incomplete_cholesky, jacobi_preconditioner
from repro.solvers.experiment import PcgExperimentResult, preconditioned_cg_experiment

__all__ = [
    "CGResult",
    "conjugate_gradient",
    "IncompleteCholesky",
    "incomplete_cholesky",
    "jacobi_preconditioner",
    "PcgExperimentResult",
    "preconditioned_cg_experiment",
]
