"""Preconditioned conjugate gradients with convergence history.

A small, dependency-free CG implementation (SciPy's ``cg`` does not expose the
per-iteration residual history, which is exactly what the ordering/
preconditioner experiments need to compare convergence behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_square

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass(frozen=True)
class CGResult:
    """Result of a conjugate-gradient solve.

    Attributes
    ----------
    x:
        Final iterate.
    converged:
        Whether the relative residual tolerance was met.
    iterations:
        Number of CG iterations performed.
    residual_norms:
        ``||b - A x_k||_2`` after every iteration (index 0 is the initial
        residual norm).
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norms: list = field(default_factory=list)

    @property
    def final_relative_residual(self) -> float:
        """Last residual norm divided by the initial one."""
        if not self.residual_norms or self.residual_norms[0] == 0:
            return 0.0
        return self.residual_norms[-1] / self.residual_norms[0]


def conjugate_gradient(
    matrix,
    b: np.ndarray,
    *,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-8,
    max_iter: int | None = None,
) -> CGResult:
    """Solve ``A x = b`` for symmetric positive definite ``A`` with (P)CG.

    Parameters
    ----------
    matrix:
        SPD SciPy sparse matrix or dense array.
    b:
        Right-hand side.
    preconditioner:
        Callable applying ``M^{-1}`` to a vector (e.g.
        :meth:`repro.solvers.ic.IncompleteCholesky.apply`).  ``None`` runs
        plain CG.
    x0:
        Initial guess (default zero).
    tol:
        Convergence test ``||b - A x_k|| <= tol * ||b||``.
    max_iter:
        Iteration cap (default ``10 n``).

    Returns
    -------
    CGResult
    """
    matrix, n = check_square(matrix, "matrix")
    a = matrix.tocsr() if sp.issparse(matrix) else np.asarray(matrix, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")
    if max_iter is None:
        max_iter = 10 * n

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - a @ x
    b_norm = float(np.linalg.norm(b))
    target = tol * (b_norm if b_norm > 0 else 1.0)
    residual_norms = [float(np.linalg.norm(r))]
    if residual_norms[0] <= target:
        return CGResult(x=x, converged=True, iterations=0, residual_norms=residual_norms)

    apply_m = preconditioner if preconditioner is not None else (lambda v: v)
    z = apply_m(r)
    p = z.copy()
    rz = float(np.dot(r, z))

    iterations = 0
    converged = False
    for iterations in range(1, max_iter + 1):
        ap = a @ p
        denominator = float(np.dot(p, ap))
        if denominator <= 0:
            # Loss of positive definiteness (or breakdown): stop with what we have.
            break
        alpha = rz / denominator
        x += alpha * p
        r -= alpha * ap
        residual_norm = float(np.linalg.norm(r))
        residual_norms.append(residual_norm)
        if residual_norm <= target:
            converged = True
            break
        z = apply_m(r)
        rz_new = float(np.dot(r, z))
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p

    return CGResult(x=x, converged=converged, iterations=iterations, residual_norms=residual_norms)
