"""The ordering -> IC(0) -> PCG experiment (the intro's preconditioning motivation).

One call runs, for a given SPD matrix and a given ordering: build the IC(0)
factor of the reordered matrix, run preconditioned CG, and report iteration
counts and timings.  The ablation benchmark sweeps this over the library's
orderings to quantify the claim that envelope-reducing preorderings help
incomplete-factorization preconditioners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.orderings.base import Ordering
from repro.solvers.cg import CGResult, conjugate_gradient
from repro.solvers.ic import incomplete_cholesky, jacobi_preconditioner
from repro.utils.timing import Timer
from repro.utils.validation import check_square

__all__ = ["PcgExperimentResult", "preconditioned_cg_experiment"]


@dataclass(frozen=True)
class PcgExperimentResult:
    """Outcome of one ordering/preconditioner/CG run.

    Attributes
    ----------
    ordering_name:
        Label of the ordering used (``"natural"`` when none).
    preconditioner:
        ``"ic0"``, ``"jacobi"`` or ``"none"``.
    cg:
        The :class:`CGResult` (in the *reordered* variable order).
    x:
        Solution mapped back to the original variable order.
    setup_time:
        Seconds spent building the preconditioner.
    solve_time:
        Seconds spent in CG.
    ic_shift:
        Diagonal shift IC(0) needed (0.0 normally).
    """

    ordering_name: str
    preconditioner: str
    cg: CGResult
    x: np.ndarray
    setup_time: float
    solve_time: float
    ic_shift: float = 0.0

    @property
    def iterations(self) -> int:
        """CG iterations performed."""
        return self.cg.iterations


def preconditioned_cg_experiment(
    matrix,
    b,
    ordering: Ordering | None = None,
    *,
    preconditioner: str = "ic0",
    tol: float = 1e-8,
    max_iter: int | None = None,
) -> PcgExperimentResult:
    """Reorder, build a preconditioner, and solve ``A x = b`` with PCG.

    Parameters
    ----------
    matrix:
        SPD SciPy sparse matrix or dense array.
    b:
        Right-hand side (original ordering).
    ordering:
        Optional :class:`Ordering`; ``None`` keeps the natural order.
    preconditioner:
        ``"ic0"`` (default), ``"jacobi"`` or ``"none"``.
    tol, max_iter:
        CG controls.

    Returns
    -------
    PcgExperimentResult
    """
    matrix, n = check_square(matrix, "matrix")
    a = sp.csr_matrix(matrix, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (n,):
        raise ValueError(f"b must have shape ({n},), got {b.shape}")

    if ordering is None:
        permuted, b_permuted = a, b
        name = "natural"
    else:
        perm = ordering.perm
        permuted = a[perm][:, perm].tocsr()
        b_permuted = b[perm]
        name = ordering.algorithm

    setup_timer = Timer()
    ic_shift = 0.0
    if preconditioner == "ic0":
        with setup_timer:
            ic = incomplete_cholesky(permuted)
        apply_m = ic.apply
        ic_shift = ic.shifted
    elif preconditioner == "jacobi":
        with setup_timer:
            apply_m = jacobi_preconditioner(permuted)
    elif preconditioner == "none":
        apply_m = None
        setup_timer.elapsed = 0.0
    else:
        raise ValueError(f"preconditioner must be 'ic0', 'jacobi' or 'none', got {preconditioner!r}")

    solve_timer = Timer()
    with solve_timer:
        cg = conjugate_gradient(
            permuted, b_permuted, preconditioner=apply_m, tol=tol, max_iter=max_iter
        )

    if ordering is None:
        x = cg.x
    else:
        x = np.empty(n, dtype=np.float64)
        x[ordering.perm] = cg.x

    return PcgExperimentResult(
        ordering_name=name,
        preconditioner=preconditioner,
        cg=cg,
        x=x,
        setup_time=setup_timer.elapsed,
        solve_time=solve_timer.elapsed,
        ic_shift=ic_shift,
    )
