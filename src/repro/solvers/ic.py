"""Incomplete Cholesky IC(0) and Jacobi preconditioners.

IC(0) computes a lower-triangular factor with exactly the sparsity of the
lower triangle of ``A`` (no fill).  Its quality — and hence the PCG iteration
count — depends on the ordering of ``A``, which is why the paper's
introduction cites envelope-reducing orderings as effective ILU/IC
preorderings (D'Azevedo, Forsyth & Tang 1992; Duff & Meurant 1989).  The
ablation benchmark measures exactly that effect with the orderings of this
library.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_permutation, check_square

__all__ = ["IncompleteCholesky", "incomplete_cholesky", "jacobi_preconditioner"]


@dataclass
class IncompleteCholesky:
    """An IC(0) factorization ``A ~= L L^T`` with the sparsity of ``tril(A)``.

    Attributes
    ----------
    factor:
        Lower-triangular CSR factor ``L``.
    shifted:
        Diagonal shift that had to be added (as a multiple of ``diag(A)``) to
        complete the factorization; 0.0 when plain IC(0) succeeded.
    """

    factor: sp.csr_matrix
    shifted: float = 0.0

    @property
    def n(self) -> int:
        """Matrix order."""
        return self.factor.shape[0]

    def apply(self, r: np.ndarray) -> np.ndarray:
        """Apply the preconditioner: solve ``L L^T z = r``."""
        from scipy.sparse.linalg import spsolve_triangular

        y = spsolve_triangular(self.factor, r, lower=True)
        return spsolve_triangular(self.factor.T.tocsr(), y, lower=False)

    def nnz(self) -> int:
        """Stored nonzeros of the factor."""
        return int(self.factor.nnz)


def _ic0_attempt(a_lower: sp.csc_matrix, n: int) -> sp.csc_matrix | None:
    """One right-looking IC(0) sweep; returns None when a pivot fails (needs shifting).

    Works directly on the CSC lower triangle: column ``j`` is scaled by its
    pivot, then every pair of below-diagonal entries ``(i, j)``, ``(k, j)``
    with ``i <= k`` updates position ``(k, i)`` *if it exists in the pattern*
    (that restriction is what makes the factorization "incomplete").
    """
    lower = a_lower.copy().tocsc()
    lower.sort_indices()
    indptr, indices, data = lower.indptr, lower.indices, lower.data
    # Offset of every stored (row, col) position, for O(1) pattern lookups.
    position = {}
    for j in range(n):
        for p in range(indptr[j], indptr[j + 1]):
            position[(int(indices[p]), j)] = p

    for j in range(n):
        pivot_pos = position.get((j, j))
        if pivot_pos is None or data[pivot_pos] <= 0:
            return None
        pivot = np.sqrt(data[pivot_pos])
        data[pivot_pos] = pivot
        below = []
        for p in range(indptr[j], indptr[j + 1]):
            i = int(indices[p])
            if i > j:
                data[p] /= pivot
                below.append((i, float(data[p])))
        for a_idx, (i, lij) in enumerate(below):
            for k, lkj in below[a_idx:]:
                q = position.get((k, i))
                if q is not None:
                    data[q] -= lkj * lij
    return lower


def incomplete_cholesky(
    matrix,
    perm=None,
    *,
    max_shifts: int = 6,
    initial_shift: float = 1e-3,
) -> IncompleteCholesky:
    """IC(0) factorization of ``P^T A P``.

    Parameters
    ----------
    matrix:
        SPD SciPy sparse matrix or dense array.
    perm:
        Optional new-to-old ordering applied before factoring.
    max_shifts:
        If a pivot breaks down, the diagonal is boosted by
        ``shift * diag(A)`` with ``shift`` doubling each retry, up to this
        many retries (Manteuffel shifting).
    initial_shift:
        First shift value tried after a breakdown.

    Returns
    -------
    IncompleteCholesky
    """
    matrix, n = check_square(matrix, "matrix")
    a = sp.csr_matrix(matrix, dtype=np.float64)
    if perm is not None:
        perm = check_permutation(perm, n)
        a = a[perm][:, perm].tocsr()
    diag = a.diagonal()
    if np.any(diag <= 0):
        raise np.linalg.LinAlgError("IC(0) requires positive diagonal entries")

    shift = 0.0
    next_shift = initial_shift
    for _attempt in range(max_shifts + 1):
        shifted_matrix = a + sp.diags(shift * diag) if shift else a
        lower = sp.tril(shifted_matrix, k=0).tocsc()
        factor = _ic0_attempt(lower, n)
        if factor is not None:
            return IncompleteCholesky(factor=factor.tocsr(), shifted=shift)
        shift = next_shift
        next_shift *= 2.0
    raise np.linalg.LinAlgError(
        f"IC(0) failed even with a diagonal shift of {shift:g} * diag(A)"
    )


def jacobi_preconditioner(matrix):
    """Diagonal (Jacobi) preconditioner ``M^{-1} = diag(A)^{-1}`` as a callable."""
    matrix, n = check_square(matrix, "matrix")
    a = sp.csr_matrix(matrix, dtype=np.float64)
    diag = a.diagonal()
    if np.any(diag == 0):
        raise np.linalg.LinAlgError("Jacobi preconditioner requires a nonzero diagonal")
    inverse = 1.0 / diag

    def apply(r: np.ndarray) -> np.ndarray:
        return inverse * r

    return apply
