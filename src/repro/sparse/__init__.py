"""Sparse-structure substrate.

The ordering algorithms in this library consume only the *sparsity structure*
of a symmetric matrix.  :class:`~repro.sparse.pattern.SymmetricPattern` is the
canonical in-memory representation: a CSR-style adjacency structure of the
off-diagonal nonzeros (diagonal entries are assumed nonzero, as in the paper,
Section 2.1).

The subpackage also contains structural operations (symmetrization, symmetric
permutation, triangle extraction) and readers/writers for the two file formats
the original test matrices are distributed in: Harwell-Boeing and Matrix
Market.  Real Boeing-Harwell files can therefore be dropped into the benchmark
harness when available; the shipped benchmarks use synthetic surrogates from
:mod:`repro.collections`.
"""

from repro.sparse.pattern import SymmetricPattern
from repro.sparse.ops import (
    lower_triangle,
    permute_pattern,
    permute_symmetric,
    structural_density,
    structure_from_matrix,
    symmetrize,
)
from repro.sparse.io_mm import read_matrix_market, write_matrix_market
from repro.sparse.io_hb import read_harwell_boeing, write_harwell_boeing

__all__ = [
    "SymmetricPattern",
    "structure_from_matrix",
    "symmetrize",
    "permute_symmetric",
    "permute_pattern",
    "lower_triangle",
    "structural_density",
    "read_matrix_market",
    "write_matrix_market",
    "read_harwell_boeing",
    "write_harwell_boeing",
]
