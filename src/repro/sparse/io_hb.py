"""Harwell-Boeing (``.rsa`` / ``.psa``) reading and writing.

The matrices evaluated in the paper (BCSSTK13, BCSSTK29-33, CAN1072, POW9,
DWT2680, ...) were distributed in the Harwell-Boeing exchange format.  This
module implements a reader and writer for *assembled* matrices of the types
used by the paper's test set:

* ``RSA`` — real symmetric assembled,
* ``PSA`` — pattern symmetric assembled,
* ``RUA`` / ``PUA`` — real / pattern unsymmetric assembled (read only;
  symmetrized downstream by :func:`repro.sparse.structure_from_matrix`).

Finite-element ("elemental", ``*SE``) matrices are not supported; none of the
paper's matrices use that storage.

The format is fixed-column Fortran card images; the reader parses the Fortran
edit descriptors found on the header cards (e.g. ``(16I5)``, ``(5E16.8)``)
to determine field widths, which is what a conforming HB reader must do.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import TextIO, Union

import numpy as np
import scipy.sparse as sp

__all__ = ["read_harwell_boeing", "write_harwell_boeing", "HBHeader"]

# Fortran edit descriptors such as 16I5, 10I8, 5E16.8, 4D20.12, 3F20.16,
# optionally wrapped in parentheses and with a leading repeat/"1P" scale.
_FORMAT_RE = re.compile(
    r"""^\s*\(?\s*
        (?:\d+\s*P\s*,?\s*)?          # optional scale factor like 1P
        (?P<repeat>\d*)\s*
        (?P<code>[IiEeDdFfGg])\s*
        (?P<width>\d+)
        (?:\.\d+)?
        \s*\)?\s*$""",
    re.VERBOSE,
)


@dataclass
class HBHeader:
    """Parsed Harwell-Boeing header cards."""

    title: str
    key: str
    mxtype: str
    nrow: int
    ncol: int
    nnzero: int
    ptr_format: str
    ind_format: str
    val_format: str


def _parse_fortran_format(fmt: str) -> tuple[int, int, str]:
    """Return ``(per_line, width, code)`` for a Fortran edit descriptor."""
    match = _FORMAT_RE.match(fmt)
    if not match:
        raise ValueError(f"unsupported Fortran format descriptor {fmt!r}")
    repeat = int(match.group("repeat") or 1)
    width = int(match.group("width"))
    code = match.group("code").upper()
    return repeat, width, code


def _read_fixed_width_ints(stream: TextIO, count: int, fmt: str) -> np.ndarray:
    per_line, width, _ = _parse_fortran_format(fmt)
    out = np.empty(count, dtype=np.intp)
    filled = 0
    while filled < count:
        line = stream.readline()
        if not line:
            raise ValueError("unexpected end of file while reading integer data")
        line = line.rstrip("\n")
        for k in range(per_line):
            field = line[k * width : (k + 1) * width]
            if not field.strip():
                continue
            out[filled] = int(field)
            filled += 1
            if filled == count:
                break
    return out


def _read_fixed_width_floats(stream: TextIO, count: int, fmt: str) -> np.ndarray:
    per_line, width, _ = _parse_fortran_format(fmt)
    out = np.empty(count, dtype=np.float64)
    filled = 0
    while filled < count:
        line = stream.readline()
        if not line:
            raise ValueError("unexpected end of file while reading value data")
        line = line.rstrip("\n")
        for k in range(per_line):
            field = line[k * width : (k + 1) * width]
            if not field.strip():
                continue
            # Fortran D exponents -> E
            out[filled] = float(field.replace("D", "E").replace("d", "e"))
            filled += 1
            if filled == count:
                break
    return out


def _open_maybe(path_or_file, mode: str):
    if isinstance(path_or_file, (str, os.PathLike)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_harwell_boeing(
    path_or_file: Union[str, os.PathLike, TextIO],
    return_header: bool = False,
):
    """Read an assembled Harwell-Boeing matrix.

    Parameters
    ----------
    path_or_file:
        Path or open text stream.
    return_header:
        If ``True`` return ``(matrix, header)`` where *header* is an
        :class:`HBHeader`.

    Returns
    -------
    scipy.sparse.csr_matrix
        The matrix with symmetric storage expanded to both triangles.
        Pattern matrices get unit values.
    """
    stream, should_close = _open_maybe(path_or_file, "r")
    try:
        card1 = stream.readline().rstrip("\n")
        if not card1:
            raise ValueError("empty Harwell-Boeing file")
        title = card1[:72].rstrip()
        key = card1[72:80].strip()

        card2 = stream.readline().rstrip("\n")
        fields2 = [card2[i * 14 : (i + 1) * 14] for i in range(5)]
        totcrd = int(fields2[0])
        rhscrd = int(fields2[4]) if fields2[4].strip() else 0
        del totcrd  # informational only

        card3 = stream.readline().rstrip("\n")
        mxtype = card3[:3].upper()
        nrow = int(card3[14:28])
        ncol = int(card3[28:42])
        nnzero = int(card3[42:56])
        neltvl_field = card3[56:70].strip()
        neltvl = int(neltvl_field) if neltvl_field else 0
        if mxtype[2] == "E" or neltvl:
            raise ValueError("elemental (finite-element) Harwell-Boeing matrices are not supported")
        if mxtype[0] not in ("R", "P"):
            raise ValueError(f"unsupported value type {mxtype[0]!r} (only R and P)")
        if mxtype[1] not in ("S", "U"):
            raise ValueError(f"unsupported symmetry type {mxtype[1]!r} (only S and U)")

        card4 = stream.readline().rstrip("\n")
        ptrfmt = card4[:16].strip()
        indfmt = card4[16:32].strip()
        valfmt = card4[32:52].strip()

        if rhscrd > 0:
            stream.readline()  # card 5 (right-hand side description): skipped

        colptr = _read_fixed_width_ints(stream, ncol + 1, ptrfmt)
        rowind = _read_fixed_width_ints(stream, nnzero, indfmt)
        if mxtype[0] == "R":
            values = _read_fixed_width_floats(stream, nnzero, valfmt)
        else:
            values = np.ones(nnzero, dtype=np.float64)
    finally:
        if should_close:
            stream.close()

    header = HBHeader(
        title=title,
        key=key,
        mxtype=mxtype,
        nrow=nrow,
        ncol=ncol,
        nnzero=nnzero,
        ptr_format=ptrfmt,
        ind_format=indfmt,
        val_format=valfmt,
    )

    matrix = sp.csc_matrix(
        (values, rowind - 1, colptr - 1), shape=(nrow, ncol)
    )
    if mxtype[1] == "S":
        # Symmetric storage keeps only the lower triangle: expand it.
        lower = sp.tril(matrix, k=-1)
        matrix = matrix + lower.T
    matrix = matrix.tocsr()
    if return_header:
        return matrix, header
    return matrix


def write_harwell_boeing(
    path_or_file: Union[str, os.PathLike, TextIO],
    matrix,
    *,
    title: str = "repro matrix",
    key: str = "REPRO",
    pattern_only: bool = False,
) -> None:
    """Write a symmetric matrix in Harwell-Boeing ``RSA``/``PSA`` format.

    Only the lower triangle (including the diagonal) is stored, as the format
    specifies for symmetric matrices.

    Parameters
    ----------
    path_or_file:
        Destination path or open text stream.
    matrix:
        Structurally symmetric SciPy sparse matrix or dense array.
    title, key:
        Header identification fields (truncated to 72 and 8 characters).
    pattern_only:
        Write a ``PSA`` pattern file (no value records).
    """
    a = sp.csc_matrix(matrix)
    if a.shape[0] != a.shape[1]:
        raise ValueError("Harwell-Boeing symmetric output requires a square matrix")
    lower = sp.tril(a, k=0).tocsc()
    lower.sort_indices()
    n = a.shape[0]
    nnz = lower.nnz

    ptrfmt, ptr_per_line, ptr_width = "(10I10)", 10, 10
    indfmt, ind_per_line, ind_width = "(10I10)", 10, 10
    valfmt, val_per_line, val_width = "(4E24.16)", 4, 24

    def emit_ints(stream, values, per_line, width):
        for start in range(0, len(values), per_line):
            chunk = values[start : start + per_line]
            stream.write("".join(f"{int(v):>{width}d}" for v in chunk) + "\n")

    def emit_floats(stream, values, per_line, width):
        for start in range(0, len(values), per_line):
            chunk = values[start : start + per_line]
            stream.write("".join(f"{float(v):>{width}.16E}" for v in chunk) + "\n")

    def card_count(count, per_line):
        return (count + per_line - 1) // per_line if count else 0

    ptrcrd = card_count(n + 1, ptr_per_line)
    indcrd = card_count(nnz, ind_per_line)
    valcrd = 0 if pattern_only else card_count(nnz, val_per_line)
    totcrd = ptrcrd + indcrd + valcrd
    mxtype = "PSA" if pattern_only else "RSA"

    stream, should_close = _open_maybe(path_or_file, "w")
    try:
        stream.write(f"{title[:72]:<72}{key[:8]:<8}\n")
        stream.write(
            f"{totcrd:>14d}{ptrcrd:>14d}{indcrd:>14d}{valcrd:>14d}{0:>14d}\n"
        )
        stream.write(f"{mxtype:<3}{'':11}{n:>14d}{n:>14d}{nnz:>14d}{0:>14d}\n")
        stream.write(
            f"{ptrfmt:<16}{indfmt:<16}{valfmt:<20}{'':<20}\n"
        )
        emit_ints(stream, (lower.indptr + 1).tolist(), ptr_per_line, ptr_width)
        emit_ints(stream, (lower.indices + 1).tolist(), ind_per_line, ind_width)
        if not pattern_only:
            emit_floats(stream, lower.data.tolist(), val_per_line, val_width)
    finally:
        if should_close:
            stream.close()
