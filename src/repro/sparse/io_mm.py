"""Matrix Market (``.mtx``) reading and writing.

The Boeing-Harwell / NASA matrices used in the paper are nowadays distributed
by the SuiteSparse collection in Matrix Market format, so the benchmark
harness accepts ``.mtx`` files directly.  The implementation here is written
from the format specification (coordinate and array formats; real, integer and
pattern fields; general / symmetric / skew-symmetric symmetries) rather than
delegating to :mod:`scipy.io` so the library has no hidden behaviour — but it
round-trips against SciPy in the test suite.
"""

from __future__ import annotations

import io
import os
from typing import TextIO, Union

import numpy as np
import scipy.sparse as sp

__all__ = ["read_matrix_market", "write_matrix_market"]

_VALID_FORMATS = {"coordinate", "array"}
_VALID_FIELDS = {"real", "integer", "pattern", "complex"}
_VALID_SYMMETRIES = {"general", "symmetric", "skew-symmetric", "hermitian"}


def _open_maybe(path_or_file, mode: str):
    """Return ``(stream, should_close)`` for a path or an already-open stream."""
    if isinstance(path_or_file, (str, os.PathLike)):
        return open(path_or_file, mode), True
    return path_or_file, False


def read_matrix_market(path_or_file: Union[str, os.PathLike, TextIO]) -> sp.csr_matrix:
    """Read a Matrix Market file and return a CSR matrix.

    Symmetric and skew-symmetric storage is expanded to the full matrix.
    Pattern matrices get unit values.  Complex matrices are rejected (the
    library is real-symmetric only).

    Parameters
    ----------
    path_or_file:
        File path or open text stream.

    Returns
    -------
    scipy.sparse.csr_matrix
    """
    stream, should_close = _open_maybe(path_or_file, "r")
    try:
        header = stream.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError("not a Matrix Market file: missing %%MatrixMarket header")
        tokens = header.strip().split()
        if len(tokens) < 5 or tokens[1].lower() != "matrix":
            raise ValueError(f"unsupported MatrixMarket header: {header.strip()!r}")
        mm_format, field, symmetry = (
            tokens[2].lower(),
            tokens[3].lower(),
            tokens[4].lower(),
        )
        if mm_format not in _VALID_FORMATS:
            raise ValueError(f"unsupported MatrixMarket format {mm_format!r}")
        if field not in _VALID_FIELDS:
            raise ValueError(f"unsupported MatrixMarket field {field!r}")
        if field == "complex":
            raise ValueError("complex matrices are not supported by this library")
        if symmetry not in _VALID_SYMMETRIES:
            raise ValueError(f"unsupported MatrixMarket symmetry {symmetry!r}")

        # Skip comments and blank lines to the size line.
        line = stream.readline()
        while line and (line.startswith("%") or not line.strip()):
            line = stream.readline()
        if not line:
            raise ValueError("missing size line")
        size_tokens = line.split()

        if mm_format == "coordinate":
            nrows, ncols, nnz = (int(t) for t in size_tokens[:3])
            rows = np.empty(nnz, dtype=np.intp)
            cols = np.empty(nnz, dtype=np.intp)
            vals = np.empty(nnz, dtype=np.float64)
            count = 0
            for line in stream:
                line = line.strip()
                if not line or line.startswith("%"):
                    continue
                parts = line.split()
                rows[count] = int(parts[0]) - 1
                cols[count] = int(parts[1]) - 1
                if field == "pattern":
                    vals[count] = 1.0
                else:
                    vals[count] = float(parts[2])
                count += 1
            if count != nnz:
                raise ValueError(f"expected {nnz} entries, found {count}")
        else:  # array (dense, column major)
            nrows, ncols = (int(t) for t in size_tokens[:2])
            values = []
            for line in stream:
                line = line.strip()
                if not line or line.startswith("%"):
                    continue
                values.append(float(line.split()[0]))
            if symmetry == "general":
                expected = nrows * ncols
            else:
                expected = nrows * (nrows + 1) // 2
            if len(values) != expected:
                raise ValueError(f"expected {expected} array entries, found {len(values)}")
            if symmetry == "general":
                dense = np.asarray(values).reshape((ncols, nrows)).T
                return sp.csr_matrix(dense)
            # packed lower triangle, column major
            dense = np.zeros((nrows, ncols))
            k = 0
            for j in range(ncols):
                for i in range(j, nrows):
                    dense[i, j] = values[k]
                    k += 1
            rows, cols = np.nonzero(dense)
            vals = dense[rows, cols]
            nnz = rows.size
    finally:
        if should_close:
            stream.close()

    mat = sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
    if symmetry in ("symmetric", "hermitian"):
        off = mat.row != mat.col
        mirror = sp.coo_matrix(
            (mat.data[off], (mat.col[off], mat.row[off])), shape=mat.shape
        )
        mat = (mat + mirror).tocoo()
    elif symmetry == "skew-symmetric":
        off = mat.row != mat.col
        mirror = sp.coo_matrix(
            (-mat.data[off], (mat.col[off], mat.row[off])), shape=mat.shape
        )
        mat = (mat + mirror).tocoo()
    return mat.tocsr()


def write_matrix_market(
    path_or_file: Union[str, os.PathLike, TextIO],
    matrix,
    *,
    field: str = "real",
    symmetric: bool | None = None,
    comment: str = "",
) -> None:
    """Write a sparse matrix in Matrix Market coordinate format.

    Parameters
    ----------
    path_or_file:
        Destination path or open text stream.
    matrix:
        SciPy sparse matrix or dense array.
    field:
        ``"real"`` or ``"pattern"``.
    symmetric:
        If ``True`` only the lower triangle is written with symmetry
        ``symmetric``.  If ``None`` (default) symmetry is detected
        automatically for square matrices.
    comment:
        Optional comment text placed after the header (may be multi-line).
    """
    if field not in ("real", "pattern"):
        raise ValueError("field must be 'real' or 'pattern'")
    a = sp.coo_matrix(matrix)
    if symmetric is None:
        symmetric = bool(
            a.shape[0] == a.shape[1] and (abs(a - a.T)).nnz == 0
        )
    symmetry = "symmetric" if symmetric else "general"

    if symmetric:
        mask = a.row >= a.col
        rows, cols, vals = a.row[mask], a.col[mask], a.data[mask]
    else:
        rows, cols, vals = a.row, a.col, a.data

    stream, should_close = _open_maybe(path_or_file, "w")
    try:
        stream.write(f"%%MatrixMarket matrix coordinate {field} {symmetry}\n")
        for line in comment.splitlines():
            stream.write(f"% {line}\n")
        stream.write(f"{a.shape[0]} {a.shape[1]} {rows.size}\n")
        if field == "pattern":
            for i, j in zip(rows, cols):
                stream.write(f"{i + 1} {j + 1}\n")
        else:
            for i, j, v in zip(rows, cols, vals):
                stream.write(f"{i + 1} {j + 1} {v:.17g}\n")
    finally:
        if should_close:
            stream.close()


def matrix_market_string(matrix, **kwargs) -> str:
    """Serialize *matrix* to a Matrix Market string (convenience for tests)."""
    buf = io.StringIO()
    write_matrix_market(buf, matrix, **kwargs)
    return buf.getvalue()
