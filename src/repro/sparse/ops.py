"""Structural operations on symmetric sparse matrices.

These are thin, well-tested wrappers around SciPy sparse operations expressed
in the vocabulary of the paper (structural symmetry, symmetric permutations
``P^T A P``, lower triangles for envelope definitions).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.pattern import SymmetricPattern
from repro.utils.validation import check_permutation, check_square

__all__ = [
    "structure_from_matrix",
    "symmetrize",
    "permute_symmetric",
    "permute_pattern",
    "lower_triangle",
    "structural_density",
]


def structure_from_matrix(matrix, tol: float = 0.0) -> SymmetricPattern:
    """Extract the symmetric sparsity structure of *matrix*.

    Accepts SciPy sparse matrices, dense arrays, or an existing
    :class:`SymmetricPattern` (returned unchanged).  Entries with magnitude
    ``<= tol`` are dropped before symmetrization.
    """
    if isinstance(matrix, SymmetricPattern):
        return matrix
    return SymmetricPattern.from_scipy(matrix, tol=tol)


def symmetrize(matrix, mode: str = "or") -> sp.csr_matrix:
    """Return a structurally symmetric version of *matrix*.

    Parameters
    ----------
    matrix:
        Square SciPy sparse matrix or dense array.
    mode:
        ``"or"`` — union of the patterns of ``A`` and ``A.T`` with values
        ``(A + A.T) / 2``;
        ``"and"`` — intersection of the two patterns (entries present in both),
        values ``(A + A.T) / 2`` restricted to the intersection.
    """
    matrix, n = check_square(matrix, "matrix")
    a = sp.csr_matrix(matrix, dtype=np.float64)
    at = a.T.tocsr()
    if mode == "or":
        return ((a + at) * 0.5).tocsr()
    if mode == "and":
        # Structure-only masks: share the index arrays and carry one byte per
        # stored entry instead of duplicating the float data.
        mask_a = sp.csr_matrix(
            (np.ones(a.nnz, dtype=bool), a.indices, a.indptr), shape=a.shape
        )
        mask_at = sp.csr_matrix(
            (np.ones(at.nnz, dtype=bool), at.indices, at.indptr), shape=at.shape
        )
        both = mask_a.multiply(mask_at)
        return (((a + at) * 0.5).multiply(both)).tocsr()
    raise ValueError(f"mode must be 'or' or 'and', got {mode!r}")


def permute_symmetric(matrix, perm) -> sp.csr_matrix:
    """Symmetric permutation ``P^T A P`` of a SciPy sparse (or dense) matrix.

    ``perm`` is the new-to-old map: row/column ``k`` of the result is
    row/column ``perm[k]`` of the input.  Values are preserved.
    """
    matrix, n = check_square(matrix, "matrix")
    perm = check_permutation(perm, n)
    # One COO index remap instead of two fancy-index passes (a[perm][:, perm]
    # builds a full intermediate matrix per axis): relabel every stored entry
    # (i, j) to (inverse[i], inverse[j]) in a single sweep.
    a = sp.coo_matrix(matrix)
    inverse = np.empty(n, dtype=np.intp)
    inverse[perm] = np.arange(n, dtype=np.intp)
    permuted = sp.coo_matrix(
        (a.data, (inverse[a.row], inverse[a.col])), shape=(n, n)
    ).tocsr()
    permuted.sort_indices()
    return permuted


def permute_pattern(pattern: SymmetricPattern, perm) -> SymmetricPattern:
    """Symmetric permutation of a :class:`SymmetricPattern` (new-to-old *perm*)."""
    return pattern.permute(perm)


def lower_triangle(matrix, include_diagonal: bool = True) -> sp.csr_matrix:
    """Lower-triangular part of *matrix* (the part the envelope is defined on)."""
    matrix, _ = check_square(matrix, "matrix")
    a = sp.csr_matrix(matrix)
    k = 0 if include_diagonal else -1
    return sp.tril(a, k=k).tocsr()


def structural_density(pattern: SymmetricPattern) -> float:
    """Fraction of structurally nonzero entries (diagonal included)."""
    n = pattern.n
    if n == 0:
        return 0.0
    return pattern.nnz / float(n * n)
