"""The :class:`SymmetricPattern` structure-only symmetric sparse matrix.

The paper (Section 2.1) works with an ``n x n`` symmetric matrix ``A`` with
nonzero diagonal and considers only the *positions* of its nonzeros.  This
module provides that abstraction: a compressed sparse row (CSR) adjacency
structure holding, for every row ``i``, the sorted column indices of the
off-diagonal nonzeros.  The diagonal is implicit and always treated as
structurally nonzero, matching the paper's assumption.

The same object doubles as the adjacency structure of the matrix's graph
``G(A)``: row ``i``'s index list is exactly ``adj(v_i)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import as_int_array, check_permutation, require_positive_int

__all__ = ["SymmetricPattern"]


def _first_claims(
    candidates: np.ndarray, positions: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray | None]:
    """Deduplicate *candidates* to first occurrences, preserving slab order.

    This is the single source of the discovery-order contract every
    whole-frontier kernel relies on: a vertex reached from several frontier
    rows is claimed by its **first** occurrence (earliest row, then earliest
    position within the row — exactly where a vertex-at-a-time scan would
    first see it).  *positions* (indices of the candidates in the original
    slab) is filtered alongside when given.
    """
    if candidates.size <= 1:
        return candidates, positions
    _unique, first = np.unique(candidates, return_index=True)
    first.sort()
    if positions is None:
        return candidates[first], None
    return candidates[first], positions[first]


class SymmetricPattern:
    """Structure-only symmetric sparse matrix / undirected graph adjacency.

    Parameters
    ----------
    n:
        Matrix order (number of rows = columns = graph vertices).
    indptr:
        CSR row-pointer array of length ``n + 1``.
    indices:
        CSR column-index array; ``indices[indptr[i]:indptr[i+1]]`` are the
        column indices of the off-diagonal nonzeros of row ``i``, sorted
        increasingly and free of duplicates and of ``i`` itself.
    copy:
        If ``True`` the index arrays are copied; otherwise they are used
        as-is (after dtype normalization).

    Notes
    -----
    The structure is *symmetric by construction*: constructors symmetrize
    their input, and :meth:`validate` checks the invariant.  Diagonal entries
    are implicit (assumed structurally nonzero), as in the paper.
    """

    __slots__ = ("n", "indptr", "indices", "_degrees", "_workspace")

    def __init__(self, n: int, indptr, indices, copy: bool = False):
        self.n = require_positive_int(n, "n", minimum=0) if n != 0 else 0
        indptr = np.asarray(indptr, dtype=np.intp)
        indices = np.asarray(indices, dtype=np.intp)
        if copy:
            indptr = indptr.copy()
            indices = indices.copy()
        if indptr.shape != (self.n + 1,):
            raise ValueError(
                f"indptr must have length n+1 = {self.n + 1}, got {indptr.shape}"
            )
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise ValueError("indptr must start at 0 and end at len(indices)")
        self.indptr = indptr
        self.indices = indices
        self._degrees = None  # lazy degree cache (the structure is immutable)
        self._workspace = None  # lazy spectral workspace (repro.eigen.workspace)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]], symmetrize: bool = True
    ) -> "SymmetricPattern":
        """Build a pattern from an iterable of ``(i, j)`` off-diagonal pairs.

        Self-loops (``i == j``) are ignored (the diagonal is implicit).
        Duplicate edges are merged.  If *symmetrize* is true (default) each
        edge is inserted in both directions.
        """
        edge_list = [(int(i), int(j)) for i, j in edges]
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.intp)
            rows, cols = arr[:, 0], arr[:, 1]
        else:
            rows = cols = np.empty(0, dtype=np.intp)
        return cls.from_edge_arrays(n, rows, cols, symmetrize=symmetrize)

    @classmethod
    def from_edge_arrays(
        cls, n: int, rows, cols, symmetrize: bool = True
    ) -> "SymmetricPattern":
        """Build a pattern from parallel endpoint arrays (vectorized twin of
        :meth:`from_edges` — no per-edge Python objects).

        Self-loops are dropped and duplicates merged exactly as in
        :meth:`from_edges`; the two constructors produce identical structures
        for the same edge set.
        """
        n = require_positive_int(n, "n", minimum=0) if n != 0 else 0
        rows = np.asarray(rows, dtype=np.intp).ravel()
        cols = np.asarray(cols, dtype=np.intp).ravel()
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same length")
        if rows.size and (
            min(rows.min(), cols.min()) < 0 or max(rows.max(), cols.max()) >= n
        ):
            raise ValueError("edge endpoints must lie in [0, n)")
        if symmetrize and rows.size:
            rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        mask = rows != cols
        rows, cols = rows[mask], cols[mask]
        data = np.ones(rows.size, dtype=np.int8)
        coo = sp.coo_matrix((data, (rows, cols)), shape=(n, n))
        csr = coo.tocsr()
        csr.sum_duplicates()
        csr.sort_indices()
        return cls(n, csr.indptr.astype(np.intp), csr.indices.astype(np.intp))

    @classmethod
    def from_scipy(cls, matrix, tol: float = 0.0) -> "SymmetricPattern":
        """Build a pattern from any SciPy sparse matrix (or dense array).

        The structure is symmetrized (``pattern(A) | pattern(A.T)``) so that
        structurally unsymmetric inputs — common after dropping small entries
        — still yield a valid undirected adjacency, exactly as sparse ordering
        packages do.  Entries with ``|a_ij| <= tol`` are treated as zero.
        """
        if not sp.issparse(matrix):
            matrix = sp.csr_matrix(np.asarray(matrix))
        if matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"matrix must be square, got shape {matrix.shape}")
        n = matrix.shape[0]
        m = matrix.tocsr(copy=True)
        if m.nnz and tol > 0:
            m.data = np.where(np.abs(m.data) <= tol, 0.0, m.data)
        m.eliminate_zeros()
        pattern = m + m.T  # structural symmetrization
        pattern = pattern.tocsr()
        pattern.setdiag(0)
        pattern.eliminate_zeros()
        pattern.sort_indices()
        return cls(n, pattern.indptr.astype(np.intp), pattern.indices.astype(np.intp))

    @classmethod
    def from_adjacency_lists(cls, adjacency: Sequence[Sequence[int]]) -> "SymmetricPattern":
        """Build a pattern from a list of per-vertex neighbour lists."""
        n = len(adjacency)
        edges = []
        for i, nbrs in enumerate(adjacency):
            for j in nbrs:
                edges.append((i, int(j)))
        return cls.from_edges(n, edges, symmetrize=True)

    @classmethod
    def empty(cls, n: int) -> "SymmetricPattern":
        """Pattern with no off-diagonal nonzeros (diagonal matrix / empty graph)."""
        return cls(n, np.zeros(n + 1, dtype=np.intp), np.empty(0, dtype=np.intp))

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def nnz_offdiag(self) -> int:
        """Number of stored off-diagonal nonzeros (counting both triangles)."""
        return int(self.indices.size)

    @property
    def nnz(self) -> int:
        """Total structural nonzeros including the (implicit) diagonal."""
        return self.nnz_offdiag + self.n

    @property
    def num_edges(self) -> int:
        """Number of undirected graph edges (off-diagonal nonzero pairs / 2)."""
        return self.nnz_offdiag // 2

    def degree(self, i: int | None = None):
        """Off-diagonal row counts (= graph vertex degrees).

        With no argument returns the full degree array; with an index returns
        that vertex's degree.  The array is computed once and memoized (the
        structure is immutable), so the ordering kernels — which consult
        degrees on every frontier — share a single copy.  Callers must not
        mutate the returned array.
        """
        if self._degrees is None:
            self._degrees = np.diff(self.indptr).astype(np.intp)
        if i is None:
            return self._degrees
        return int(self._degrees[i])

    def neighbors(self, i: int) -> np.ndarray:
        """Sorted column indices of the off-diagonal nonzeros in row *i*."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    def row_slices(self) -> Iterator[tuple[int, np.ndarray]]:
        """Iterate ``(i, neighbors(i))`` for every row."""
        for i in range(self.n):
            yield i, self.indices[self.indptr[i] : self.indptr[i + 1]]

    # ------------------------------------------------------------------ #
    # batch (slab) neighbor access — the vectorized-kernel primitives
    # ------------------------------------------------------------------ #
    def neighbor_slab(self, vertices) -> tuple[np.ndarray, np.ndarray]:
        """Concatenated neighbor lists of *vertices*, with segment offsets.

        Returns ``(slab, offsets)`` where ``slab`` is the concatenation of
        ``neighbors(v)`` for every ``v`` in *vertices* (in the given order,
        each row in its stored sorted order) and ``offsets`` has length
        ``len(vertices) + 1`` with ``slab[offsets[k]:offsets[k+1]]`` being the
        neighbors of ``vertices[k]``.  This is the gather primitive the
        whole-frontier BFS, coarsening and numbering kernels are built on:
        one fancy-index replaces a Python loop over rows.
        """
        vertices = np.asarray(vertices, dtype=np.intp)
        if 0 < vertices.size <= 8:
            # Small sets (the per-step batches of Sloan / King maintenance):
            # concatenating row views beats the vectorized gather below, whose
            # fixed setup cost only amortizes over larger frontiers.
            indptr, indices = self.indptr, self.indices
            parts = [indices[indptr[v] : indptr[v + 1]] for v in vertices]
            offsets = np.zeros(vertices.size + 1, dtype=np.intp)
            total = 0
            for i, part in enumerate(parts):
                total += part.size
                offsets[i + 1] = total
            slab = parts[0] if len(parts) == 1 else np.concatenate(parts)
            return slab, offsets
        starts = self.indptr[vertices]
        counts = self.indptr[vertices + 1] - starts
        offsets = np.zeros(vertices.size + 1, dtype=np.intp)
        np.cumsum(counts, out=offsets[1:])
        total = int(offsets[-1])
        if total == 0:
            return np.empty(0, dtype=np.intp), offsets
        # Gather positions: segment k covers starts[k] + (0..counts[k]-1).
        gather = np.repeat(starts - offsets[:-1], counts) + np.arange(total, dtype=np.intp)
        return self.indices[gather], offsets

    def neighbors_of_set(self, vertices) -> np.ndarray:
        """Sorted unique neighbors of the vertex set (set semantics).

        Vertices of the set that are neighbors of other set members are
        included; callers wanting the strict boundary mask them out.
        """
        slab, _offsets = self.neighbor_slab(vertices)
        return np.unique(slab)

    def frontier_expand(self, frontier, fresh: np.ndarray) -> np.ndarray:
        """One whole-frontier BFS expansion step.

        Returns the vertices of ``fresh`` (a boolean mask of length ``n``,
        true = not yet discovered) adjacent to *frontier*, **in discovery
        order**: the order a vertex-at-a-time scan over the frontier (rows in
        frontier order, each row sorted) would first encounter them.  That
        ordering contract is what keeps the vectorized BFS bit-identical to
        the naive one.
        """
        slab, _offsets = self.neighbor_slab(frontier)
        candidates, _positions = _first_claims(slab[fresh[slab]])
        return candidates

    def claim_frontier(self, frontier, fresh: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`frontier_expand` plus parent attribution.

        Returns ``(candidates, parents)`` where ``parents[i]`` is the index
        *into frontier* of the first frontier vertex whose row discovers
        ``candidates[i]`` — the claiming parent the Cuthill-McKee enqueue and
        the coarsening domain growth tie-break on.
        """
        slab, offsets = self.neighbor_slab(frontier)
        keep = np.flatnonzero(fresh[slab])
        candidates, keep = _first_claims(slab[keep], keep)
        parents = np.searchsorted(offsets, keep, side="right") - 1
        return candidates, parents

    def has_edge(self, i: int, j: int) -> bool:
        """Whether ``a_ij`` (``i != j``) is structurally nonzero."""
        if i == j:
            return True  # implicit nonzero diagonal
        row = self.neighbors(i)
        pos = np.searchsorted(row, j)
        return bool(pos < row.size and row[pos] == j)

    def max_degree(self) -> int:
        """Maximum off-diagonal row count (``Delta`` in Theorem 2.1)."""
        if self.n == 0:
            return 0
        return int(np.diff(self.indptr).max(initial=0))

    # ------------------------------------------------------------------ #
    # conversions
    # ------------------------------------------------------------------ #
    def to_scipy(self, values: str = "pattern", dtype=np.float64) -> sp.csr_matrix:
        """Convert to a SciPy CSR matrix.

        Parameters
        ----------
        values:
            ``"pattern"`` — off-diagonal entries are ``1`` and the diagonal is
            ``1`` (structure only);
            ``"laplacian"`` — returns the graph Laplacian ``D - B``;
            ``"adjacency"`` — off-diagonal entries ``1``, zero diagonal;
            ``"spd"`` — a symmetric positive definite model matrix with
            off-diagonal entries ``-1`` and diagonal ``degree + 1``
            (diagonally dominant), useful for factorization experiments.
        dtype:
            Value dtype of the returned matrix.
        """
        n = self.n
        data = np.ones(self.indices.size, dtype=dtype)
        adj = sp.csr_matrix((data, self.indices.copy(), self.indptr.copy()), shape=(n, n))
        if values == "adjacency":
            return adj
        if values == "pattern":
            return (adj + sp.eye(n, format="csr", dtype=dtype)).tocsr()
        degrees = np.diff(self.indptr).astype(dtype)
        if values == "laplacian":
            return (sp.diags(degrees, format="csr", dtype=dtype) - adj).tocsr()
        if values == "spd":
            diag = sp.diags(degrees + 1.0, format="csr", dtype=dtype)
            return (diag - adj).tocsr()
        raise ValueError(
            "values must be one of 'pattern', 'adjacency', 'laplacian', 'spd'; "
            f"got {values!r}"
        )

    def to_dense_pattern(self) -> np.ndarray:
        """Dense boolean array of the structural nonzeros (diagonal included)."""
        dense = np.zeros((self.n, self.n), dtype=bool)
        rows = np.repeat(np.arange(self.n), np.diff(self.indptr))
        dense[rows, self.indices] = True
        np.fill_diagonal(dense, True)
        return dense

    def to_adjacency_lists(self) -> list[list[int]]:
        """Per-vertex neighbour lists (plain Python lists)."""
        return [list(map(int, self.neighbors(i))) for i in range(self.n)]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges ``(i, j)`` with ``i < j``."""
        for i in range(self.n):
            for j in self.neighbors(i):
                if i < j:
                    yield i, int(j)

    # ------------------------------------------------------------------ #
    # structural operations
    # ------------------------------------------------------------------ #
    def permute(self, perm) -> "SymmetricPattern":
        """Symmetric permutation ``P^T A P``.

        ``perm`` is the *new-to-old* vertex map: new vertex ``k`` is old
        vertex ``perm[k]`` (the convention of :class:`repro.orderings.base.Ordering`).
        """
        perm = check_permutation(perm, self.n)
        inverse = np.empty(self.n, dtype=np.intp)
        inverse[perm] = np.arange(self.n, dtype=np.intp)
        # Relabel each old edge (i, j) to (inverse[i], inverse[j]).
        old_rows = np.repeat(np.arange(self.n), np.diff(self.indptr))
        new_rows = inverse[old_rows]
        new_cols = inverse[self.indices]
        data = np.ones(new_rows.size, dtype=np.int8)
        coo = sp.coo_matrix((data, (new_rows, new_cols)), shape=(self.n, self.n))
        csr = coo.tocsr()
        csr.sort_indices()
        return SymmetricPattern(
            self.n, csr.indptr.astype(np.intp), csr.indices.astype(np.intp)
        )

    def subpattern(self, vertices) -> "SymmetricPattern":
        """Induced sub-structure on the given vertex subset (order preserved)."""
        vertices = as_int_array(vertices, "vertices")
        if vertices.size and (vertices.min() < 0 or vertices.max() >= self.n):
            raise ValueError("vertices out of range")
        if np.unique(vertices).size != vertices.size:
            raise ValueError("vertices must be distinct")
        remap = -np.ones(self.n, dtype=np.intp)
        remap[vertices] = np.arange(vertices.size, dtype=np.intp)
        slab, offsets = self.neighbor_slab(vertices)
        mapped = remap[slab]
        kept = mapped >= 0
        # Per-row kept counts via a cumulative sum (reduceat mishandles empty
        # rows), then assemble the sub-CSR directly — rows stay duplicate-free
        # and symmetric because both endpoints survive iff both are selected.
        running = np.zeros(slab.size + 1, dtype=np.intp)
        np.cumsum(kept, out=running[1:])
        sub_indptr = running[offsets]
        m = sp.csr_matrix(
            (np.ones(int(sub_indptr[-1]), dtype=np.int8), mapped[kept],
             sub_indptr),
            shape=(vertices.size, vertices.size),
        )
        m.sort_indices()
        return SymmetricPattern(
            vertices.size, m.indptr.astype(np.intp), m.indices.astype(np.intp)
        )

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`ValueError` on violation.

        Invariants: sorted, duplicate-free rows; no self indices; symmetric
        structure (``j in row(i)`` iff ``i in row(j)``); indices in range.
        """
        if self.indices.size:
            if self.indices.min() < 0 or self.indices.max() >= self.n:
                raise ValueError("column indices out of range")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be nondecreasing")
        for i in range(self.n):
            row = self.neighbors(i)
            if row.size == 0:
                continue
            if np.any(np.diff(row) <= 0):
                raise ValueError(f"row {i} is not strictly increasing / has duplicates")
            if np.any(row == i):
                raise ValueError(f"row {i} contains a diagonal index")
        # symmetry
        rows = np.repeat(np.arange(self.n), np.diff(self.indptr))
        forward = set(zip(rows.tolist(), self.indices.tolist()))
        for i, j in forward:
            if (j, i) not in forward:
                raise ValueError(f"structure is not symmetric: ({i},{j}) without ({j},{i})")

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __eq__(self, other) -> bool:
        if not isinstance(other, SymmetricPattern):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    # Patterns hold mutable arrays; keep them unhashable.
    __hash__ = None

    # ------------------------------------------------------------------ #
    # pickling
    # ------------------------------------------------------------------ #
    def __getstate__(self):
        """Pickle only the structure, never the lazy caches.

        The default ``__slots__`` reduction would drag the attached
        :class:`~repro.eigen.workspace.SpectralWorkspace` (Laplacians, whole
        coarsening hierarchies) across process boundaries and resurrect it on
        a *different* pattern object — stale by identity and enormous on the
        wire.  A deserialized pattern starts with fresh, empty caches, the
        same contract as :meth:`copy`/:meth:`permute`/:meth:`subpattern`.
        """
        return (self.n, self.indptr, self.indices)

    def __setstate__(self, state):
        n, indptr, indices = state
        self.n = n
        self.indptr = indptr
        self.indices = indices
        self._degrees = None
        self._workspace = None

    def __repr__(self) -> str:
        return (
            f"SymmetricPattern(n={self.n}, edges={self.num_edges}, "
            f"nnz={self.nnz})"
        )

    def copy(self) -> "SymmetricPattern":
        """Deep copy of the structure."""
        return SymmetricPattern(self.n, self.indptr, self.indices, copy=True)
