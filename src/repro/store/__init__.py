"""``repro.store`` — the disk-backed, content-addressed artifact cache.

Public surface:

* :class:`~repro.store.core.ArtifactStore` — one cache directory of npz
  containers, addressed by ``sha256(kind | builder version | pattern digest
  | params)``, written atomically and schema-checked on read
  (corrupt-or-stale entries are a miss, never a crash);
* :func:`~repro.store.core.get_default_store` /
  :func:`~repro.store.core.set_default_store` — the process-wide default
  resolved from an explicit override or the ``REPRO_STORE`` environment
  variable (``repro suite/bench --store DIR`` sets the latter so worker
  processes inherit it);
* :mod:`repro.store.spectral` — the codecs that move Laplacians, component
  splits, coarsening hierarchies, Fiedler vectors and registry patterns in
  and out of a store.

See ``docs/performance.md`` ("Persistent artifact store") for the
content-address scheme and invalidation rules.
"""

from repro.store.core import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    canonical_params,
    get_default_store,
    reset_default_store,
    set_default_store,
)
from repro.store.spectral import pattern_digest, problem_digest

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ArtifactStore",
    "canonical_params",
    "get_default_store",
    "reset_default_store",
    "set_default_store",
    "pattern_digest",
    "problem_digest",
]
