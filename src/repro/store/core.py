"""Disk-backed, content-addressed artifact cache (the ``repro.store`` core).

An :class:`ArtifactStore` holds npz containers keyed by **content address**:
``sha256(kind | builder version | pattern digest | canonical params)``.  The
address pins everything that determines an artifact's bytes — the structure
it was derived from, which builder produced it and with which parameters —
so an entry can never be served for the wrong input, and bumping a builder's
version constant invalidates exactly that builder's entries (they simply
stop being addressed; ``repro cache clear`` reclaims the space).

Durability contract
-------------------
* Writes go through :func:`repro.utils.atomic.atomic_output_file`
  (write-tempfile-then-``os.replace``), so a run killed mid-write can never
  leave a truncated entry under a valid address — at worst a ``*.tmp*``
  droppings file that readers ignore.
* Reads schema-check every entry (npz integrity, metadata presence, and a
  full address match) and treat **anything** unexpected — a corrupt zip, a
  hand-truncated file, a stale schema, an address collision — as a cache
  miss, deleting the bad entry best-effort.  A store directory can therefore
  be shared, killed into, bit-rotted or version-skewed and the worst case is
  always "rebuild from scratch", never a crash.

The store itself is format-agnostic (it moves dictionaries of numpy arrays
plus a JSON metadata blob); the spectral artifact codecs — Laplacians,
component splits, coarsening hierarchies, Fiedler vectors, registry
patterns — live in :mod:`repro.store.spectral`.

Process-wide default
--------------------
:func:`get_default_store` resolves the ambient store: an explicit
:func:`set_default_store` override first, else the ``REPRO_STORE``
environment variable (which child worker processes inherit — that is how one
``--store DIR`` flag reaches every suite worker).  Both the workspace spill
hooks and the per-worker problem cache consult it lazily, so a run without a
store configured pays one ``os.environ`` lookup and nothing else.
"""

from __future__ import annotations

import hashlib
import json
import os
from io import BytesIO
from pathlib import Path

import numpy as np

__all__ = [
    "STORE_SCHEMA_VERSION",
    "ArtifactStore",
    "canonical_params",
    "get_default_store",
    "set_default_store",
]

#: Version of the npz container layout (the ``__meta__`` schema).  Bumping it
#: invalidates every existing entry at once.
STORE_SCHEMA_VERSION = 1

_META_KEY = "__meta__"

#: Sentinel meaning "no explicit override installed" (``None`` is a valid
#: override meaning "store disabled even if REPRO_STORE is set").
_UNSET = object()

_default_override = _UNSET
_stores_by_root: dict[str, "ArtifactStore"] = {}


def canonical_params(params: dict) -> str:
    """Stable JSON text of a parameter dictionary (sorted keys, no spaces).

    Raises :class:`TypeError` for non-JSON-serializable values — callers that
    cannot canonicalize their parameters must skip the store rather than
    guess an address.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


class ArtifactStore:
    """One cache directory of content-addressed npz artifact containers.

    Entries live under ``<root>/objects/<key[:2]>/<key>.npz``; the two-level
    fan-out keeps directory listings sane for large stores.  ``stats`` counts
    this process's traffic (hits / misses / writes / corrupt evictions) — the
    CLI prints it after a store-enabled run and tests assert on it.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.stats = {"hits": 0, "misses": 0, "writes": 0, "corrupt": 0,
                      "quarantined": 0}

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved for post-mortem inspection."""
        return self.root / "quarantine"

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #
    def key(self, kind: str, builder_version: int, pattern_digest: str,
            params: dict | None = None) -> str:
        """Content address of one artifact (hex sha256)."""
        payload = "\x1f".join([
            str(STORE_SCHEMA_VERSION), str(kind), str(int(builder_version)),
            str(pattern_digest), canonical_params(params or {}),
        ])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------ #
    # read / write
    # ------------------------------------------------------------------ #
    def save(self, kind: str, builder_version: int, pattern_digest: str,
             arrays: dict, params: dict | None = None) -> Path:
        """Atomically persist one artifact; returns the entry path.

        ``arrays`` maps names to numpy arrays (numeric or unicode dtypes —
        never object arrays; entries are read back with
        ``allow_pickle=False`` so a poisoned store cannot execute code).
        """
        key = self.key(kind, builder_version, pattern_digest, params)
        meta = {
            "store_schema": STORE_SCHEMA_VERSION,
            "kind": str(kind),
            "builder_version": int(builder_version),
            "pattern_digest": str(pattern_digest),
            "params": canonical_params(params or {}),
        }
        path = self.path_for(key)
        from repro.utils.atomic import atomic_output_file

        with atomic_output_file(path, suffix=".npz") as tmp:
            with open(tmp, "wb") as handle:
                np.savez_compressed(
                    handle, **{_META_KEY: np.array(json.dumps(meta))}, **arrays
                )
        self.stats["writes"] += 1
        self._maybe_injure(path, key)
        return path

    @staticmethod
    def _maybe_injure(path: Path, key: str) -> None:
        """Fault-injection hook: damage a just-written entry when a
        ``store.torn`` / ``store.corrupt`` rule fires (no-op otherwise).

        Damage lands *after* the atomic replace — simulating bit rot or a
        torn device write below the filesystem's durability promises, which
        the read path must absorb as a miss + quarantine.
        """
        from repro import faults

        try:
            if faults.fires("store.torn", key) is not None:
                data = path.read_bytes()
                path.write_bytes(data[: len(data) // 2])
            elif faults.fires("store.corrupt", key) is not None:
                data = bytearray(path.read_bytes())
                if data:
                    data[len(data) // 2] ^= 0xFF
                    path.write_bytes(bytes(data))
        except OSError:  # pragma: no cover - injury failing is a non-event
            pass

    def load(self, kind: str, builder_version: int, pattern_digest: str,
             params: dict | None = None) -> dict | None:
        """Load one artifact's arrays, or ``None`` on any kind of miss.

        A miss is: no entry, an unreadable/corrupt container (killed write,
        truncation, bit rot), a metadata mismatch (schema skew or — however
        unlikely — an address collision).  Corrupt-or-stale entries are
        deleted best-effort so they stop costing a read attempt.
        """
        key = self.key(kind, builder_version, pattern_digest, params)
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.stats["misses"] += 1
            return None
        try:
            with np.load(BytesIO(raw), allow_pickle=False) as container:
                meta = json.loads(str(container[_META_KEY][()]))
                arrays = {name: container[name] for name in container.files
                          if name != _META_KEY}
        except Exception:
            # zipfile.BadZipFile, zlib.error, KeyError, json errors, numpy
            # format errors ... — every one of them means "not a usable
            # entry", and distinguishing them buys nothing.
            self._evict_corrupt(path)
            return None
        expected = {
            "store_schema": STORE_SCHEMA_VERSION,
            "kind": str(kind),
            "builder_version": int(builder_version),
            "pattern_digest": str(pattern_digest),
            "params": canonical_params(params or {}),
        }
        if meta != expected:
            self._evict_corrupt(path)
            return None
        self.stats["hits"] += 1
        return arrays

    def _evict_corrupt(self, path: Path) -> None:
        """Remove a corrupt/stale entry from the addressable space.

        The entry is *quarantined* — moved to ``<root>/quarantine/`` — not
        deleted, so the evidence of bit rot, torn writes or version skew
        survives for inspection (``repro cache info`` counts it; ``repro
        cache clear --quarantine`` reclaims it).  Either way the entry stops
        being addressable, so the caller's "corrupt is a miss" contract is
        unchanged.  Falls back to deletion when the move itself fails.
        """
        self.stats["corrupt"] += 1
        self.stats["misses"] += 1
        target = self.quarantine_dir / path.name
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
            self.stats["quarantined"] += 1
        except OSError:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing eviction is fine
                pass

    def quarantined_entries(self) -> list[Path]:
        """Paths of quarantined (corrupt, no longer addressable) entries."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(p for p in self.quarantine_dir.iterdir() if p.is_file())

    # ------------------------------------------------------------------ #
    # maintenance (the ``repro cache`` surface)
    # ------------------------------------------------------------------ #
    def entries(self) -> list[dict]:
        """Metadata of every readable entry (corrupt ones reported as such).

        Each row carries ``key``, ``path``, ``bytes`` and — when the
        container is readable — its ``kind`` / ``builder_version`` /
        ``pattern_digest`` / ``params``; unreadable containers get
        ``kind="<corrupt>"`` so ``repro cache ls`` surfaces them instead of
        hiding them.
        """
        rows = []
        objects = self.root / "objects"
        for path in sorted(objects.glob("*/*.npz")) if objects.is_dir() else []:
            row = {"key": path.stem, "path": path,
                   "bytes": path.stat().st_size}
            try:
                with np.load(path, allow_pickle=False) as container:
                    meta = json.loads(str(container[_META_KEY][()]))
                row.update(
                    kind=meta.get("kind", "?"),
                    builder_version=meta.get("builder_version"),
                    pattern_digest=meta.get("pattern_digest", ""),
                    params=meta.get("params", "{}"),
                )
            except Exception:
                row.update(kind="<corrupt>", builder_version=None,
                           pattern_digest="", params="{}")
            rows.append(row)
        return rows

    def clear(self, include_quarantine: bool = False) -> int:
        """Delete every entry (and stray temp files); returns entries removed.

        Quarantined entries are *kept* by default — they are evidence of
        corruption, not cache state — and reclaimed only with
        ``include_quarantine=True`` (``repro cache clear --quarantine``).
        """
        removed = 0
        objects = self.root / "objects"
        if objects.is_dir():
            for path in objects.glob("*/*"):
                is_entry = path.suffix == ".npz" and not path.name.startswith(".")
                path.unlink(missing_ok=True)
                removed += int(is_entry)
        if include_quarantine:
            for path in self.quarantined_entries():
                path.unlink(missing_ok=True)
                removed += 1
        return removed

    def info(self) -> dict:
        """Aggregate view: per-kind entry counts/bytes plus this process's stats."""
        kinds: dict[str, dict] = {}
        total_bytes = 0
        count = 0
        for row in self.entries():
            bucket = kinds.setdefault(row["kind"], {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += row["bytes"]
            total_bytes += row["bytes"]
            count += 1
        quarantined = self.quarantined_entries()
        return {
            "root": str(self.root),
            "store_schema": STORE_SCHEMA_VERSION,
            "entries": count,
            "bytes": total_bytes,
            "kinds": kinds,
            "quarantine": {
                "entries": len(quarantined),
                "bytes": sum(p.stat().st_size for p in quarantined),
            },
            "process_stats": dict(self.stats),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"ArtifactStore(root={str(self.root)!r})"


def _store_for(root) -> ArtifactStore:
    """One :class:`ArtifactStore` per resolved root, so stats accumulate."""
    resolved = str(Path(root).expanduser().resolve())
    store = _stores_by_root.get(resolved)
    if store is None:
        store = _stores_by_root[resolved] = ArtifactStore(resolved)
    return store


def set_default_store(store) -> None:
    """Install (or clear) the process-wide default store.

    Accepts an :class:`ArtifactStore`, a directory path, or ``None`` to
    disable the store even when ``REPRO_STORE`` is set.  Pass the module's
    :data:`UNSET` sentinel — via :func:`reset_default_store` — to drop the
    override and fall back to the environment.
    """
    global _default_override
    if store is None or isinstance(store, ArtifactStore):
        _default_override = store
    else:
        _default_override = _store_for(store)


def reset_default_store() -> None:
    """Remove any :func:`set_default_store` override (tests / REPL hygiene)."""
    global _default_override
    _default_override = _UNSET


def get_default_store() -> ArtifactStore | None:
    """The ambient store: explicit override first, else ``REPRO_STORE``."""
    if _default_override is not _UNSET:
        return _default_override
    root = os.environ.get("REPRO_STORE", "").strip()
    if not root:
        return None
    return _store_for(root)
