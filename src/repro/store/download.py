"""Content-addressed download cache for external collection files.

The artifact store (:mod:`repro.store.core`) caches *derived* artifacts keyed
by what produced them; this module applies the same discipline to *fetched
bytes*: every downloaded file is stored once under its own sha256 and looked
up by URL through a small JSON meta record.  Layout under the cache root::

    objects/<sha256[:2]>/<sha256>      raw file bytes
    urls/<sha256(url)>.json            {"url", "sha256", "size", "filename"}

Both writes go through :mod:`repro.utils.atomic`, so a crashed or concurrent
fetch can never leave a half-written object behind.  On lookup the object's
digest is re-verified; a mismatch (bit rot, truncation, manual tampering)
evicts the entry and reports a miss, mirroring the corrupt-entry policy of
:class:`repro.store.core.ArtifactStore` — corruption is a re-download, never
a crash and never silently wrong bytes.

The cache root defaults to ``~/.cache/repro/fetch`` and can be moved with the
``REPRO_FETCH_CACHE`` environment variable (mirroring ``REPRO_STORE``).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from repro.utils.atomic import atomic_write_bytes, atomic_write_text

__all__ = ["DownloadCache", "default_fetch_cache_root"]


def default_fetch_cache_root() -> Path:
    """Cache root: ``REPRO_FETCH_CACHE`` env var, else ``~/.cache/repro/fetch``."""
    value = os.environ.get("REPRO_FETCH_CACHE", "")
    if value:
        return Path(value)
    return Path.home() / ".cache" / "repro" / "fetch"


class DownloadCache:
    """Content-addressed store of downloaded files, looked up by URL."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = Path(root) if root is not None else default_fetch_cache_root()

    # -- paths -------------------------------------------------------------- #
    def object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    def _meta_path(self, url: str) -> Path:
        key = hashlib.sha256(url.encode("utf-8")).hexdigest()
        return self.root / "urls" / f"{key}.json"

    # -- operations --------------------------------------------------------- #
    def lookup(self, url: str) -> dict | None:
        """Meta record for a cached URL, or ``None`` on miss.

        The returned dict carries ``url``, ``sha256``, ``size``, ``filename``
        and ``path`` (the object file).  The object's bytes are re-hashed on
        every lookup; any mismatch evicts the entry and is a miss.
        """
        meta_path = self._meta_path(url)
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        digest = meta.get("sha256", "")
        obj = self.object_path(digest)
        try:
            data = obj.read_bytes()
        except OSError:
            return None
        if hashlib.sha256(data).hexdigest() != digest:
            obj.unlink(missing_ok=True)
            meta_path.unlink(missing_ok=True)
            return None
        meta["path"] = str(obj)
        return meta

    def store(self, url: str, data: bytes, filename: str = "") -> dict:
        """Insert downloaded bytes for ``url``; returns the meta record."""
        digest = hashlib.sha256(data).hexdigest()
        obj = self.object_path(digest)
        obj.parent.mkdir(parents=True, exist_ok=True)
        if not obj.exists():
            atomic_write_bytes(obj, data)
        meta = {
            "url": url,
            "sha256": digest,
            "size": len(data),
            "filename": filename or url.rstrip("/").rpartition("/")[2],
        }
        meta_path = self._meta_path(url)
        meta_path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(meta_path, json.dumps(meta, indent=2, sort_keys=True) + "\n")
        return {**meta, "path": str(obj)}

    def evict(self, url: str) -> bool:
        """Drop the URL's meta record (the object stays for other URLs)."""
        meta_path = self._meta_path(url)
        existed = meta_path.exists()
        meta_path.unlink(missing_ok=True)
        return existed

    def entries(self) -> list[dict]:
        """All valid cached URL records, sorted by URL."""
        urls_dir = self.root / "urls"
        if not urls_dir.is_dir():
            return []
        records = []
        for meta_path in sorted(urls_dir.glob("*.json")):
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if "url" in meta:
                records.append(meta)
        return sorted(records, key=lambda meta: meta["url"])
