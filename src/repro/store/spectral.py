"""Codecs between spectral artifacts and :class:`~repro.store.core.ArtifactStore` entries.

Everything persisted here is a deterministic pure function of an immutable
:class:`~repro.sparse.pattern.SymmetricPattern` structure (plus, for Fiedler
vectors, the solver configuration and the exact rng state), so a loaded
artifact is **byte-identical** to a rebuilt one — the property the
warm-from-disk tests pin.  Each artifact kind carries its own builder-version
constant; bump it when the producing algorithm changes and old entries simply
stop being addressed.

Artifact kinds
--------------
``pattern``
    A problem's surrogate structure, keyed by registry name + scale (the
    cross-process twin of the per-worker problem cache, and the unit
    ``repro cache prewarm`` builds).
``laplacian`` / ``components`` / ``split`` / ``hierarchy``
    The :class:`~repro.eigen.workspace.SpectralWorkspace` artifacts, keyed by
    the pattern's structural digest.  Hierarchy entries additionally key on
    ``(coarsest_size, max_levels, strategy)`` and exist only for the
    deterministic MIS strategies; per-level Laplacians are *not* stored —
    they are rebuilt bit-identically by
    :func:`repro.graph.laplacian.laplacian_matrix` on load.
``fiedler``
    A converged :class:`~repro.eigen.fiedler.FiedlerResult`, keyed by solver
    method, tolerances, options **and a digest of the rng state before the
    solve**; the entry stores the rng state *after* the solve, which the
    loader restores so a warm run consumes exactly the random stream a cold
    run does.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

__all__ = [
    "PATTERN_VERSION", "LAPLACIAN_VERSION", "COMPONENTS_VERSION",
    "SPLIT_VERSION", "HIERARCHY_VERSION", "FIEDLER_VERSION",
    "pattern_digest", "problem_digest", "rng_state_json", "rng_state_digest",
    "save_pattern", "load_pattern",
    "save_laplacian", "load_laplacian",
    "save_components", "load_components",
    "save_split", "load_split",
    "save_hierarchy", "load_hierarchy",
    "save_fiedler", "load_fiedler",
]

#: Builder versions — bump when the producing algorithm's output can change.
PATTERN_VERSION = 1      # repro.collections registry generators
LAPLACIAN_VERSION = 1    # repro.graph.laplacian.laplacian_matrix
COMPONENTS_VERSION = 1   # repro.graph.components.connected_components
SPLIT_VERSION = 1        # SpectralWorkspace.component_split
HIERARCHY_VERSION = 1    # repro.graph.coarsen.coarsening_hierarchy
FIEDLER_VERSION = 1      # repro.eigen lanczos / multilevel solvers


# --------------------------------------------------------------------- #
# digests
# --------------------------------------------------------------------- #
def pattern_digest(pattern) -> str:
    """Structural sha256 of a pattern: ``n`` plus the canonical CSR arrays.

    Index arrays are widened to a fixed int64 layout first, so the digest is
    platform-independent (``intp`` is 32-bit on some builds).
    """
    h = hashlib.sha256()
    h.update(str(int(pattern.n)).encode("ascii"))
    h.update(b"|")
    h.update(np.ascontiguousarray(pattern.indptr, dtype=np.int64).tobytes())
    h.update(b"|")
    h.update(np.ascontiguousarray(pattern.indices, dtype=np.int64).tobytes())
    return h.hexdigest()


def problem_digest(problem: str, scale) -> str:
    """Address digest of a registry problem surrogate (name + scale)."""
    scale_text = "default" if scale is None else repr(float(scale))
    return hashlib.sha256(
        f"problem:{str(problem).strip().upper()}|scale:{scale_text}".encode()
    ).hexdigest()


def rng_state_json(rng) -> str | None:
    """JSON text of a generator's bit-generator state, or ``None``.

    Only states that round-trip through JSON are usable as cache keys (the
    default PCG64 does; MT19937 carries an ndarray and is skipped — its user
    explicitly opted out of the default stream anyway).
    """
    try:
        return json.dumps(rng.bit_generator.state, sort_keys=True)
    except (AttributeError, TypeError):
        return None


def rng_state_digest(state_text: str) -> str:
    return hashlib.sha256(state_text.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# pattern (the problem-cache artifact)
# --------------------------------------------------------------------- #
def save_pattern(store, problem: str, scale, pattern):
    return store.save(
        "pattern", PATTERN_VERSION, problem_digest(problem, scale),
        {"indptr": pattern.indptr, "indices": pattern.indices},
    )


def load_pattern(store, problem: str, scale):
    """Load a problem surrogate structure (``n`` is recovered from the CSR)."""
    arrays = store.load("pattern", PATTERN_VERSION,
                        problem_digest(problem, scale))
    if arrays is None:
        return None
    from repro.sparse.pattern import SymmetricPattern

    indptr = arrays["indptr"].astype(np.intp, copy=False)
    indices = arrays["indices"].astype(np.intp, copy=False)
    try:
        return SymmetricPattern(int(indptr.size - 1), indptr, indices)
    except ValueError:
        return None


# --------------------------------------------------------------------- #
# laplacian
# --------------------------------------------------------------------- #
def save_laplacian(store, digest: str, laplacian):
    return store.save(
        "laplacian", LAPLACIAN_VERSION, digest,
        {"indptr": laplacian.indptr, "indices": laplacian.indices,
         "data": laplacian.data},
    )


def load_laplacian(store, digest: str):
    arrays = store.load("laplacian", LAPLACIAN_VERSION, digest)
    if arrays is None:
        return None
    import scipy.sparse as sp

    indptr = arrays["indptr"]
    n = int(indptr.size - 1)
    try:
        lap = sp.csr_matrix(
            (arrays["data"], arrays["indices"], indptr), shape=(n, n)
        )
    except (ValueError, IndexError):
        return None
    lap.has_sorted_indices = True  # stored from a canonically-sorted build
    return lap


# --------------------------------------------------------------------- #
# connected components
# --------------------------------------------------------------------- #
def save_components(store, digest: str, num: int, labels):
    return store.save(
        "components", COMPONENTS_VERSION, digest,
        {"labels": labels, "num": np.asarray(int(num), dtype=np.int64)},
    )


def load_components(store, digest: str):
    arrays = store.load("components", COMPONENTS_VERSION, digest)
    if arrays is None:
        return None
    return int(arrays["num"][()]), arrays["labels"].astype(np.intp, copy=False)


# --------------------------------------------------------------------- #
# component split
# --------------------------------------------------------------------- #
def save_split(store, digest: str, split):
    """Pack ``[(vertices, subpattern-or-None), ...]`` into flat arrays.

    Per-component vertex lists and sub-CSR arrays are concatenated; sizes and
    per-component nnz counts carry the segmentation.  Singleton components
    (``sub is None``) contribute a size of 1 and an nnz of -1.
    """
    sizes = np.asarray([v.size for v, _sub in split], dtype=np.int64)
    nnzs = np.asarray(
        [-1 if sub is None else sub.indices.size for _v, sub in split],
        dtype=np.int64,
    )
    vertices = (np.concatenate([v for v, _sub in split])
                if split else np.empty(0, dtype=np.intp))
    indptrs = [sub.indptr for _v, sub in split if sub is not None]
    indices = [sub.indices for _v, sub in split if sub is not None]
    cat = lambda parts: (np.concatenate(parts) if parts
                         else np.empty(0, dtype=np.intp))
    return store.save(
        "split", SPLIT_VERSION, digest,
        {"sizes": sizes, "nnzs": nnzs, "vertices": vertices,
         "sub_indptr": cat(indptrs), "sub_indices": cat(indices)},
    )


def load_split(store, digest: str):
    arrays = store.load("split", SPLIT_VERSION, digest)
    if arrays is None:
        return None
    from repro.sparse.pattern import SymmetricPattern

    sizes = arrays["sizes"]
    nnzs = arrays["nnzs"]
    vertices = arrays["vertices"].astype(np.intp, copy=False)
    sub_indptr = arrays["sub_indptr"].astype(np.intp, copy=False)
    sub_indices = arrays["sub_indices"].astype(np.intp, copy=False)
    split = []
    v_at = p_at = i_at = 0
    try:
        for size, nnz in zip(sizes.tolist(), nnzs.tolist()):
            verts = vertices[v_at:v_at + size]
            v_at += size
            if nnz < 0:
                split.append((verts, None))
                continue
            indptr = sub_indptr[p_at:p_at + size + 1]
            p_at += size + 1
            indices = sub_indices[i_at:i_at + nnz]
            i_at += nnz
            split.append((verts, SymmetricPattern(int(size), indptr, indices)))
    except (ValueError, IndexError):
        return None
    if v_at != vertices.size or p_at != sub_indptr.size or i_at != sub_indices.size:
        return None
    return split


# --------------------------------------------------------------------- #
# coarsening hierarchy
# --------------------------------------------------------------------- #
def _hierarchy_params(coarsest_size: int, max_levels: int, strategy: str) -> dict:
    return {"coarsest_size": int(coarsest_size), "max_levels": int(max_levels),
            "strategy": str(strategy)}


def save_hierarchy(store, digest: str, coarsest_size, max_levels, strategy, levels):
    arrays = {"num_levels": np.asarray(len(levels), dtype=np.int64)}
    for i, level in enumerate(levels):
        arrays[f"l{i}_fine_n"] = np.asarray(int(level.fine_n), dtype=np.int64)
        arrays[f"l{i}_indptr"] = level.coarse_pattern.indptr
        arrays[f"l{i}_indices"] = level.coarse_pattern.indices
        arrays[f"l{i}_coarse_vertices"] = level.coarse_vertices
        arrays[f"l{i}_domain_of"] = level.domain_of
    return store.save(
        "hierarchy", HIERARCHY_VERSION, digest, arrays,
        params=_hierarchy_params(coarsest_size, max_levels, strategy),
    )


def load_hierarchy(store, digest: str, coarsest_size, max_levels, strategy):
    arrays = store.load(
        "hierarchy", HIERARCHY_VERSION, digest,
        params=_hierarchy_params(coarsest_size, max_levels, strategy),
    )
    if arrays is None:
        return None
    from repro.graph.coarsen import CoarseLevel
    from repro.sparse.pattern import SymmetricPattern

    levels = []
    try:
        num_levels = int(arrays["num_levels"][()])
        for i in range(num_levels):
            indptr = arrays[f"l{i}_indptr"].astype(np.intp, copy=False)
            coarse = SymmetricPattern(
                int(indptr.size - 1), indptr,
                arrays[f"l{i}_indices"].astype(np.intp, copy=False),
            )
            levels.append(CoarseLevel(
                fine_n=int(arrays[f"l{i}_fine_n"][()]),
                coarse_pattern=coarse,
                coarse_vertices=arrays[f"l{i}_coarse_vertices"].astype(
                    np.intp, copy=False),
                domain_of=arrays[f"l{i}_domain_of"].astype(np.intp, copy=False),
            ))
    except (KeyError, ValueError, IndexError):
        return None
    return levels


# --------------------------------------------------------------------- #
# converged Fiedler results
# --------------------------------------------------------------------- #
def fiedler_params(method: str, tol: float, tol_policy: str,
                   solver_options: dict, rng_state_text: str) -> dict | None:
    """Address params of one eigensolve, or ``None`` when uncacheable.

    Uncacheable means: solver options that do not canonicalize to JSON
    (callables, arrays) — the entry could not be addressed deterministically.
    """
    from repro.store.core import canonical_params

    try:
        options_text = canonical_params(dict(solver_options))
    except TypeError:
        return None
    return {
        "method": str(method),
        "tol": repr(float(tol)),
        "tol_policy": str(tol_policy),
        "options": options_text,
        "rng": rng_state_digest(rng_state_text),
    }


def save_fiedler(store, digest: str, params: dict, result, rng_state_after: str):
    return store.save(
        "fiedler", FIEDLER_VERSION, digest,
        {
            "eigenvector": result.eigenvector,
            "eigenvalue": np.asarray(float(result.eigenvalue), dtype=np.float64),
            "residual_norm": np.asarray(float(result.residual_norm),
                                        dtype=np.float64),
            "converged": np.asarray(bool(result.converged)),
            "rng_state_after": np.array(rng_state_after),
        },
        params=params,
    )


def load_fiedler(store, digest: str, params: dict, rng):
    """Load a converged eigensolve and replay its rng side effect.

    On a hit, *rng*'s bit-generator state is restored to the post-solve
    state the cold run left behind, so every subsequent draw from *rng*
    matches the cold path exactly.
    """
    arrays = store.load("fiedler", FIEDLER_VERSION, digest, params=params)
    if arrays is None:
        return None
    from repro.eigen.fiedler import FiedlerResult

    try:
        state_after = json.loads(str(arrays["rng_state_after"][()]))
        result = FiedlerResult(
            eigenvalue=float(arrays["eigenvalue"][()]),
            eigenvector=arrays["eigenvector"],
            method=str(params["method"]),
            residual_norm=float(arrays["residual_norm"][()]),
            converged=bool(arrays["converged"][()]),
        )
        rng.bit_generator.state = state_after
    except (KeyError, ValueError, TypeError, RuntimeError):
        return None
    return result
