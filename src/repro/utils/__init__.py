"""Shared utilities: argument validation, timing, and deterministic RNG helpers.

These helpers are deliberately small and dependency free so that every other
subpackage (``repro.sparse``, ``repro.graph``, ``repro.eigen`` ...) can use
them without creating import cycles.
"""

from repro.utils.validation import (
    check_permutation,
    check_square,
    check_symmetric_structure,
    require_positive_int,
)
from repro.utils.atomic import atomic_output_file, atomic_write_bytes, atomic_write_text
from repro.utils.timing import Timer, timed
from repro.utils.rng import default_rng

__all__ = [
    "check_permutation",
    "check_square",
    "check_symmetric_structure",
    "require_positive_int",
    "atomic_output_file",
    "atomic_write_bytes",
    "atomic_write_text",
    "Timer",
    "timed",
    "default_rng",
]
