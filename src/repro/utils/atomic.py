"""Crash-safe file replacement: write-tempfile-then-``os.replace``.

Every artifact the repo persists and later reads back — cost models, suite
results, bench artifacts, store entries — must never be observable in a
half-written state: a run killed mid-write (SIGKILL, OOM, power loss) that
leaves a truncated JSON file behind makes the *next* run fail on a decode
error, which is exactly the crash class the JSONL stream was built to
survive.  These helpers close that hole for whole-file writes:

* the payload is written to a temporary file **in the destination
  directory** (same filesystem, so the final rename cannot degrade to a
  copy), flushed and fsynced;
* ``os.replace`` then installs it under the final name — atomic on POSIX
  and on modern Windows.

A reader therefore sees either the complete old content or the complete new
content, never a prefix.  A crash between the two steps leaves only a
``*.tmp*`` droppings file next to the destination, which readers ignore.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

__all__ = ["atomic_write_text", "atomic_write_bytes", "atomic_output_file"]


@contextmanager
def atomic_output_file(path, suffix: str = ""):
    """Context manager yielding a temporary path that replaces *path* on exit.

    The temporary file lives in ``path``'s directory (created if needed) and
    carries *suffix* (some writers — ``numpy.savez`` — append their own
    extension unless the name already has it).  On clean exit the temporary
    file is fsynced and atomically renamed onto *path*; on an exception it is
    removed and *path* is left untouched.

    >>> import json, tempfile
    >>> target = Path(tempfile.mkdtemp()) / "out.json"
    >>> with atomic_output_file(target) as tmp:
    ...     _ = Path(tmp).write_text(json.dumps({"ok": True}))
    >>> json.loads(target.read_text())
    {'ok': True}
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.tmp", suffix=suffix, dir=path.parent
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        yield tmp
        # Flush file content to disk before the rename becomes visible, so a
        # crash straight after the replace cannot surface an empty file.
        fd = os.open(tmp, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_bytes(path, data: bytes) -> Path:
    """Atomically write *data* to *path*; returns the path."""
    path = Path(path)
    with atomic_output_file(path) as tmp:
        tmp.write_bytes(data)
    return path


def atomic_write_text(path, text: str, encoding: str = "utf-8") -> Path:
    """Atomically write *text* to *path*; returns the path.

    Drop-in replacement for ``Path.write_text`` on every persistence path
    whose output a later run reads — a kill at any instant leaves either the
    previous complete file or the new complete file, never a truncation.
    """
    return atomic_write_bytes(path, text.encode(encoding))
