"""Deterministic random-number-generator helpers.

Everything stochastic in the library (random Lanczos start vectors, random
maximal-independent-set tie breaking, synthetic mesh perturbations) goes
through :func:`default_rng` so that results are reproducible run to run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "DEFAULT_SEED"]

#: Seed used when the caller does not supply one.  Chosen once; the exact
#: value is irrelevant but must stay fixed for reproducibility of the
#: benchmark tables.
DEFAULT_SEED = 19931015  # the report date of RNR-93-015


def default_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (use :data:`DEFAULT_SEED`), an integer seed, an existing
        :class:`numpy.random.Generator` (returned unchanged), or anything
        accepted by :func:`numpy.random.default_rng`.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)
