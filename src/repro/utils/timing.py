"""Lightweight wall-clock timing helpers.

The paper reports ordering run times (Tables 4.1-4.3) and factorization times
(Table 4.4).  The benchmark harnesses use :class:`Timer` for coarse-grained
measurements and ``pytest-benchmark`` for statistically robust ones.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating wall-clock timer.

    Example
    -------
    >>> t = Timer()
    >>> with t:
    ...     sum(range(1000))
    499500
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    laps: list = field(default_factory=list)
    _start: float | None = None

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._start = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer, record a lap, and return the lap duration."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before Timer.start()")
        lap = time.perf_counter() - self._start
        self._start = None
        self.elapsed += lap
        self.laps.append(lap)
        return lap

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def reset(self) -> None:
        """Zero the accumulated time and laps."""
        self.elapsed = 0.0
        self.laps.clear()
        self._start = None


@contextmanager
def timed(label: str, sink: dict | None = None):
    """Context manager recording the elapsed time under *label* in *sink*.

    If *sink* is ``None`` the measurement is discarded (useful to keep call
    sites uniform when timing is optional).
    """
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        if sink is not None:
            sink[label] = sink.get(label, 0.0) + elapsed
