"""Argument-validation helpers used across the library.

All functions raise :class:`ValueError` (or :class:`TypeError`) with a message
naming the offending argument, so that library entry points fail fast with a
readable diagnostic rather than deep inside a NumPy kernel.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

__all__ = [
    "require_positive_int",
    "check_permutation",
    "check_square",
    "check_symmetric_structure",
    "as_int_array",
]


def require_positive_int(value, name: str, minimum: int = 1) -> int:
    """Validate that *value* is an integer ``>= minimum`` and return it.

    Parameters
    ----------
    value:
        The value to check.  Floats that are exactly integral are accepted.
    name:
        Argument name used in error messages.
    minimum:
        Smallest allowed value (inclusive).

    Returns
    -------
    int
        ``int(value)``.

    Raises
    ------
    TypeError
        If *value* is not integral.
    ValueError
        If *value* is smaller than *minimum*.
    """
    if isinstance(value, bool):
        raise TypeError(f"{name} must be an integer, got bool")
    if isinstance(value, float):
        if not value.is_integer():
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = int(value)
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def as_int_array(values, name: str) -> np.ndarray:
    """Convert *values* to a 1-D ``intp`` array, rejecting non-integral input."""
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.intp)
        else:
            raise TypeError(f"{name} must contain integers, got dtype {arr.dtype}")
    return arr.astype(np.intp, copy=False)


def check_permutation(perm, n: int | None = None, name: str = "perm") -> np.ndarray:
    """Validate that *perm* is a permutation of ``0 .. n-1`` and return it.

    Parameters
    ----------
    perm:
        Sequence of integers.
    n:
        Expected length.  If ``None`` the length of *perm* is used.
    name:
        Argument name for error messages.

    Returns
    -------
    numpy.ndarray
        The permutation as an ``intp`` array.
    """
    arr = as_int_array(perm, name)
    if n is None:
        n = arr.size
    if arr.size != n:
        raise ValueError(f"{name} has length {arr.size}, expected {n}")
    if n == 0:
        return arr
    seen = np.zeros(n, dtype=bool)
    if arr.min() < 0 or arr.max() >= n:
        raise ValueError(f"{name} entries must lie in [0, {n - 1}]")
    seen[arr] = True
    if not seen.all():
        missing = int(np.flatnonzero(~seen)[0])
        raise ValueError(f"{name} is not a permutation: index {missing} is missing")
    return arr


def check_square(matrix, name: str = "matrix"):
    """Validate that *matrix* is 2-D and square; return ``(matrix, n)``."""
    if sp.issparse(matrix):
        shape = matrix.shape
    else:
        matrix = np.asarray(matrix)
        shape = matrix.shape
    if len(shape) != 2 or shape[0] != shape[1]:
        raise ValueError(f"{name} must be square, got shape {shape}")
    return matrix, shape[0]


def check_symmetric_structure(matrix, name: str = "matrix", tol: float = 0.0) -> None:
    """Raise :class:`ValueError` if the sparsity structure of *matrix* is not symmetric.

    Only the *structure* (position of nonzeros) is checked, because every
    algorithm in this library consumes structure only.

    Parameters
    ----------
    matrix:
        SciPy sparse matrix or dense array.
    name:
        Argument name for error messages.
    tol:
        Entries with absolute value ``<= tol`` are treated as zero.
    """
    matrix, n = check_square(matrix, name)
    if sp.issparse(matrix):
        m = matrix.tocsr(copy=True)
        if tol > 0:
            m.data[np.abs(m.data) <= tol] = 0.0
        m.eliminate_zeros()
        pattern = m.copy()
        pattern.data = np.ones_like(pattern.data)
        diff = (pattern - pattern.T).tocoo()
        if diff.nnz and np.any(diff.data != 0):
            raise ValueError(f"{name} does not have a symmetric sparsity structure")
    else:
        dense = np.asarray(matrix)
        mask = np.abs(dense) > tol
        if not np.array_equal(mask, mask.T):
            raise ValueError(f"{name} does not have a symmetric sparsity structure")
