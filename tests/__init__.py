"""Test package for the repro library.

Keeping ``tests`` a proper package lets the individual test modules import the
shared hypothesis strategies from :mod:`tests.conftest` regardless of how
pytest is invoked (``pytest`` console script or ``python -m pytest``).
"""
