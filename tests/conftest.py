"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import strategies as st

from repro.collections.generators import random_geometric_pattern
from repro.collections.meshes import (
    binary_tree_pattern,
    complete_pattern,
    cycle_pattern,
    grid2d_pattern,
    path_pattern,
    star_pattern,
)
from repro.sparse.pattern import SymmetricPattern


# --------------------------------------------------------------------------- #
# plain fixtures
# --------------------------------------------------------------------------- #
@pytest.fixture
def path10() -> SymmetricPattern:
    """Path graph on 10 vertices (tridiagonal matrix)."""
    return path_pattern(10)


@pytest.fixture
def cycle12() -> SymmetricPattern:
    """Cycle graph on 12 vertices."""
    return cycle_pattern(12)


@pytest.fixture
def star9() -> SymmetricPattern:
    """Star graph on 9 vertices (arrowhead matrix)."""
    return star_pattern(9)


@pytest.fixture
def grid_8x6() -> SymmetricPattern:
    """5-point 8x6 grid."""
    return grid2d_pattern(8, 6)


@pytest.fixture
def grid_12x9() -> SymmetricPattern:
    """9-point 12x9 grid (finite-element style)."""
    return grid2d_pattern(12, 9, stencil=9)


@pytest.fixture
def tree_depth4() -> SymmetricPattern:
    """Complete binary tree of depth 4 (31 vertices)."""
    return binary_tree_pattern(4)


@pytest.fixture
def k6() -> SymmetricPattern:
    """Complete graph on 6 vertices."""
    return complete_pattern(6)


@pytest.fixture
def geometric200() -> SymmetricPattern:
    """Connected random geometric graph with about 200 vertices."""
    return random_geometric_pattern(200, seed=7)


@pytest.fixture
def disconnected_pattern() -> SymmetricPattern:
    """Two path components plus one isolated vertex (17 vertices total)."""
    edges = [(i, i + 1) for i in range(7)]            # component 0: vertices 0..7
    edges += [(8 + i, 8 + i + 1) for i in range(7)]   # component 1: vertices 8..15
    return SymmetricPattern.from_edges(17, edges)     # vertex 16 isolated


@pytest.fixture
def spd_grid_matrix(grid_8x6) -> sp.csr_matrix:
    """Symmetric positive definite matrix on the 8x6 grid (diagonally dominant)."""
    return grid_8x6.to_scipy("spd")


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic NumPy generator for tests."""
    return np.random.default_rng(12345)


# --------------------------------------------------------------------------- #
# hypothesis strategies
# --------------------------------------------------------------------------- #
@st.composite
def small_connected_patterns(draw, min_n: int = 2, max_n: int = 24):
    """Random connected SymmetricPattern: a spanning tree plus extra edges."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    edges = []
    # random spanning tree: attach each vertex to a random earlier one
    for v in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=v - 1))
        edges.append((parent, v))
    n_extra = draw(st.integers(min_value=0, max_value=min(20, n * (n - 1) // 2)))
    for _ in range(n_extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.append((min(a, b), max(a, b)))
    return SymmetricPattern.from_edges(n, edges)


@st.composite
def small_patterns(draw, min_n: int = 1, max_n: int = 24):
    """Random SymmetricPattern, possibly disconnected (including empty graphs)."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    max_edges = n * (n - 1) // 2
    n_edges = draw(st.integers(min_value=0, max_value=min(40, max_edges)))
    edges = []
    for _ in range(n_edges):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.append((a, b))
    return SymmetricPattern.from_edges(n, edges)


@st.composite
def permutations_of(draw, n: int):
    """A random permutation of 0..n-1 as a list."""
    return draw(st.permutations(range(n)))
