"""Shared harness for the ``repro serve`` test layer.

Boots the real server — ``python -m repro serve --port 0`` in a fresh
subprocess, exactly as the docs advertise — and hands tests a
:class:`repro.serve.client.ServerClient` bound to the ephemeral port parsed
from the boot line.  Used by ``test_serve_api.py`` (integration),
``test_serve_load.py`` (coalescing / saturation / crash), and
``test_serve_fuzz.py`` (protocol fuzzing).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_BOOT_LINE = re.compile(r"listening on http://([\d.]+):(\d+)")


class ServerProcess:
    """A ``repro serve`` subprocess on an ephemeral port.

    Use as a context manager::

        with ServerProcess("--workers", "2") as server:
            server.client.health()
    """

    def __init__(self, *args: str, boot_timeout: float = 30.0):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", *args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            self.url = self._await_boot(boot_timeout)
        except Exception:
            self.stop()
            raise
        from repro.serve import ServerClient

        self.client = ServerClient(self.url, timeout=120.0)

    def _await_boot(self, timeout: float) -> str:
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "server exited during boot:\n"
                    + (self.proc.stderr.read() if self.proc.stderr else ""))
            line = self.proc.stdout.readline()
            if not line:
                continue
            match = _BOOT_LINE.search(line)
            if match:
                return f"http://{match.group(1)}:{match.group(2)}"
        raise TimeoutError("server did not print its boot line in time")

    def stop(self, timeout: float = 15.0) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout)
        for stream in (self.proc.stdout, self.proc.stderr):
            if stream is not None:
                stream.close()

    def __enter__(self) -> "ServerProcess":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
