"""Unit tests for the matvec-locality metrics (repro.analysis.locality)."""

import numpy as np
import pytest

from repro.analysis.locality import (
    average_nonzero_distance,
    cache_line_spans,
    locality_report,
    partition_communication_volume,
)
from repro.collections.generators import airfoil_pattern
from repro.collections.meshes import path_pattern
from repro.envelope.sums import one_sum
from repro.orderings.base import random_ordering
from repro.orderings.cuthill_mckee import rcm_ordering
from repro.orderings.spectral import spectral_ordering
from repro.sparse.pattern import SymmetricPattern


class TestAverageNonzeroDistance:
    def test_path_natural(self, path10):
        assert average_nonzero_distance(path10) == pytest.approx(1.0)

    def test_relation_to_one_sum(self, geometric200, rng):
        perm = rng.permutation(geometric200.n)
        expected = one_sum(geometric200, perm) / geometric200.num_edges
        assert average_nonzero_distance(geometric200, perm) == pytest.approx(expected)

    def test_empty_graph(self):
        assert average_nonzero_distance(SymmetricPattern.empty(5)) == 0.0

    def test_good_ordering_beats_random(self, geometric200):
        good = average_nonzero_distance(geometric200, rcm_ordering(geometric200).perm)
        bad = average_nonzero_distance(geometric200, random_ordering(geometric200.n, rng=1).perm)
        assert good < bad


class TestCacheLineSpans:
    def test_path_touches_few_lines(self, path10):
        result = cache_line_spans(path10, line_length=4)
        assert result["per_row_max"] <= 2
        assert result["total"] >= path10.n  # every row touches at least its own line

    def test_banded_better_than_random(self, geometric200):
        banded = cache_line_spans(geometric200, rcm_ordering(geometric200).perm)
        scattered = cache_line_spans(geometric200, random_ordering(geometric200.n, rng=2).perm)
        assert banded["total"] < scattered["total"]

    def test_line_length_one_counts_neighbours(self, path10):
        result = cache_line_spans(path10, line_length=1)
        # every row touches itself plus its 1-2 neighbours
        assert result["per_row_max"] == 3

    def test_invalid_line_length(self, path10):
        with pytest.raises(ValueError):
            cache_line_spans(path10, line_length=0)


class TestPartitionCommunicationVolume:
    def test_path_contiguous_partition_minimal(self, path10):
        result = partition_communication_volume(path10, parts=2)
        assert result["cut_edges"] == 1
        assert result["volume"] == 2  # each side receives one remote entry

    def test_single_part_no_communication(self, geometric200):
        result = partition_communication_volume(geometric200, parts=1)
        assert result == {"volume": 0, "cut_edges": 0, "max_part_volume": 0}

    def test_good_ordering_reduces_volume(self):
        pattern = airfoil_pattern(400, seed=4)
        spectral = spectral_ordering(pattern, method="lanczos").perm
        rand = random_ordering(pattern.n, rng=3).perm
        good = partition_communication_volume(pattern, 4, spectral)
        bad = partition_communication_volume(pattern, 4, rand)
        assert good["volume"] < bad["volume"]
        assert good["cut_edges"] < bad["cut_edges"]

    def test_volume_bounded_by_cut(self, geometric200, rng):
        perm = rng.permutation(geometric200.n)
        result = partition_communication_volume(geometric200, 3, perm)
        assert result["volume"] <= 2 * result["cut_edges"]
        assert result["max_part_volume"] <= result["volume"]


class TestLocalityReport:
    def test_bundle_consistency(self, geometric200):
        ordering = rcm_ordering(geometric200)
        report = locality_report(geometric200, ordering.perm, parts=3)
        assert report.average_distance == pytest.approx(
            average_nonzero_distance(geometric200, ordering.perm)
        )
        assert report.communication_volume >= 0
        assert report.cache_total >= geometric200.n
