"""Unit tests for the comparison-table reporting (repro.analysis.report)."""

import numpy as np
import pytest

from repro.analysis.report import ComparisonRow, comparison_table, format_table, rank_by
from repro.collections.meshes import grid2d_pattern
from repro.envelope.metrics import envelope_size
from repro.orderings.cuthill_mckee import rcm_ordering
from repro.orderings.gps import gps_ordering
from repro.orderings.spectral import spectral_ordering


def _rows():
    return [
        ComparisonRow("p", "a", 10, 30, 100, 1000, 9, 0.1),
        ComparisonRow("p", "b", 10, 30, 80, 900, 12, 0.2),
        ComparisonRow("p", "c", 10, 30, 120, 1500, 7, 0.05),
    ]


class TestRankBy:
    def test_rank_by_envelope(self):
        ranked = {r.algorithm: r.rank for r in rank_by(_rows())}
        assert ranked == {"b": 1, "a": 2, "c": 3}

    def test_rank_by_bandwidth(self):
        ranked = {r.algorithm: r.rank for r in rank_by(_rows(), key="bandwidth")}
        assert ranked == {"c": 1, "a": 2, "b": 3}

    def test_ranks_are_per_problem(self):
        rows = _rows() + [ComparisonRow("q", "a", 5, 10, 50, 100, 3, 0.0)]
        ranked = rank_by(rows)
        q_rows = [r for r in ranked if r.problem == "q"]
        assert len(q_rows) == 1 and q_rows[0].rank == 1


class TestComparisonTable:
    def test_rows_match_metrics(self, grid_8x6):
        orderings = {
            "spectral": spectral_ordering(grid_8x6, method="dense"),
            "rcm": rcm_ordering(grid_8x6),
            "gps": gps_ordering(grid_8x6),
            "natural": None,
        }
        rows = comparison_table(grid_8x6, orderings, problem="grid")
        assert len(rows) == 4
        by_name = {r.algorithm: r for r in rows}
        for name, ordering in orderings.items():
            perm = None if ordering is None else ordering.perm
            assert by_name[name].envelope_size == envelope_size(grid_8x6, perm)
        assert sorted(r.rank for r in rows) == [1, 2, 3, 4]

    def test_run_times_recorded(self, path10):
        rows = comparison_table(
            path10, {"rcm": rcm_ordering(path10)}, run_times={"rcm": 1.25}
        )
        assert rows[0].run_time == pytest.approx(1.25)


class TestFormatTable:
    def test_contains_all_algorithms_and_title(self, grid_8x6):
        orderings = {"rcm": rcm_ordering(grid_8x6), "gps": gps_ordering(grid_8x6)}
        rows = comparison_table(grid_8x6, orderings, problem="grid_8x6")
        text = format_table(rows, title="Table test")
        assert "Table test" in text
        assert "RCM" in text and "GPS" in text
        assert "grid_8x6" in text

    def test_problem_name_not_repeated(self):
        text = format_table(rank_by(_rows()))
        assert text.count("p ") <= 2  # the problem label appears once in the body
