"""Unit tests for the experiment runner (repro.analysis.runner)."""

import pytest

from repro.analysis.runner import ExperimentResult, run_comparison, run_problem_suite
from repro.collections.meshes import grid2d_pattern
from repro.envelope.metrics import envelope_size
from repro.orderings.registry import ORDERING_ALGORITHMS


class TestRunComparison:
    def test_default_paper_algorithms(self, grid_8x6):
        result = run_comparison(grid_8x6, problem="grid")
        assert {r.algorithm for r in result.rows} == {"spectral", "gk", "gps", "rcm"}
        assert set(result.run_times) == {"spectral", "gk", "gps", "rcm"}
        assert all(t >= 0 for t in result.run_times.values())

    def test_winner_has_rank_one(self, geometric200):
        result = run_comparison(geometric200, algorithms=("spectral", "rcm"), problem="geo")
        winner_row = result.row_for(result.winner)
        assert winner_row.rank == 1
        assert winner_row.envelope_size == min(r.envelope_size for r in result.rows)

    def test_rows_match_orderings(self, grid_8x6):
        result = run_comparison(grid_8x6, algorithms=("rcm",), problem="grid")
        row = result.row_for("rcm")
        assert row.envelope_size == envelope_size(grid_8x6, result.orderings["rcm"].perm)

    def test_row_for_missing_algorithm(self, grid_8x6):
        result = run_comparison(grid_8x6, algorithms=("rcm",))
        with pytest.raises(KeyError):
            result.row_for("gps")

    def test_algorithm_options_forwarded(self, grid_8x6):
        result = run_comparison(
            grid_8x6,
            algorithms=("spectral",),
            algorithm_options={"spectral": {"method": "dense"}},
        )
        assert result.orderings["spectral"].metadata["solver"] == "dense"

    def test_to_text_is_table(self, grid_8x6):
        result = run_comparison(grid_8x6, algorithms=("rcm", "gps"), problem="grid")
        text = result.to_text()
        assert "RCM" in text and "GPS" in text and "Rank" in text

    def test_unknown_algorithm_raises(self, grid_8x6):
        with pytest.raises(KeyError):
            run_comparison(grid_8x6, algorithms=("rcm", "amd"))


class TestExperimentResultWinner:
    def test_winner_on_empty_rows_raises_value_error(self):
        result = ExperimentResult(problem="empty")
        with pytest.raises(ValueError, match="no comparison rows"):
            result.winner


class TestRunProblemSuite:
    def test_runs_registered_problems(self):
        results = run_problem_suite(["POW9", "DWT2680"], algorithms=("rcm", "spectral"), scale=0.02)
        assert [r.problem for r in results] == ["POW9", "DWT2680"]
        for result in results:
            assert len(result.rows) == 2
            assert sorted(r.rank for r in result.rows) == [1, 2]

    def test_parallel_jobs_match_serial(self):
        serial = run_problem_suite(["POW9", "CAN1072"], algorithms=("rcm", "gps"), scale=0.02)
        parallel = run_problem_suite(
            ["POW9", "CAN1072"], algorithms=("rcm", "gps"), scale=0.02, n_jobs=2
        )
        for a, b in zip(serial, parallel):
            assert a.problem == b.problem
            assert [(r.algorithm, r.envelope_size, r.rank) for r in a.rows] == [
                (r.algorithm, r.envelope_size, r.rank) for r in b.rows
            ]
            # orderings survive the process boundary
            assert set(b.orderings) == {"rcm", "gps"}

    def test_failed_task_raises_runtime_error(self, monkeypatch):
        def boom(pattern, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(ORDERING_ALGORITHMS, "boom", boom)
        with pytest.raises(RuntimeError, match="kaboom"):
            run_problem_suite(["POW9"], algorithms=("rcm", "boom"), scale=0.02)
