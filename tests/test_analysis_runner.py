"""Unit tests for the experiment runner (repro.analysis.runner)."""

import pytest

from repro.analysis.runner import run_comparison, run_problem_suite
from repro.collections.meshes import grid2d_pattern
from repro.envelope.metrics import envelope_size


class TestRunComparison:
    def test_default_paper_algorithms(self, grid_8x6):
        result = run_comparison(grid_8x6, problem="grid")
        assert {r.algorithm for r in result.rows} == {"spectral", "gk", "gps", "rcm"}
        assert set(result.run_times) == {"spectral", "gk", "gps", "rcm"}
        assert all(t >= 0 for t in result.run_times.values())

    def test_winner_has_rank_one(self, geometric200):
        result = run_comparison(geometric200, algorithms=("spectral", "rcm"), problem="geo")
        winner_row = result.row_for(result.winner)
        assert winner_row.rank == 1
        assert winner_row.envelope_size == min(r.envelope_size for r in result.rows)

    def test_rows_match_orderings(self, grid_8x6):
        result = run_comparison(grid_8x6, algorithms=("rcm",), problem="grid")
        row = result.row_for("rcm")
        assert row.envelope_size == envelope_size(grid_8x6, result.orderings["rcm"].perm)

    def test_row_for_missing_algorithm(self, grid_8x6):
        result = run_comparison(grid_8x6, algorithms=("rcm",))
        with pytest.raises(KeyError):
            result.row_for("gps")

    def test_algorithm_options_forwarded(self, grid_8x6):
        result = run_comparison(
            grid_8x6,
            algorithms=("spectral",),
            algorithm_options={"spectral": {"method": "dense"}},
        )
        assert result.orderings["spectral"].metadata["solver"] == "dense"

    def test_to_text_is_table(self, grid_8x6):
        result = run_comparison(grid_8x6, algorithms=("rcm", "gps"), problem="grid")
        text = result.to_text()
        assert "RCM" in text and "GPS" in text and "Rank" in text


class TestRunProblemSuite:
    def test_runs_registered_problems(self):
        results = run_problem_suite(["POW9", "DWT2680"], algorithms=("rcm", "spectral"), scale=0.02)
        assert [r.problem for r in results] == ["POW9", "DWT2680"]
        for result in results:
            assert len(result.rows) == 2
            assert sorted(r.rank for r in result.rows) == [1, 2]
