"""Unit tests for the spy-plot / band-profile reporting (repro.analysis.spy)."""

import numpy as np
import pytest

from repro.analysis.spy import ascii_spy, band_profile, density_grid
from repro.collections.generators import airfoil_pattern
from repro.collections.meshes import grid2d_pattern, path_pattern
from repro.envelope.metrics import bandwidth, envelope_size
from repro.orderings.cuthill_mckee import rcm_ordering
from repro.orderings.spectral import spectral_ordering
from repro.sparse.pattern import SymmetricPattern


class TestDensityGrid:
    def test_total_count_equals_nnz(self, grid_12x9, rng):
        grid = density_grid(grid_12x9, resolution=16)
        assert grid.sum() == grid_12x9.nnz
        perm = rng.permutation(grid_12x9.n)
        assert density_grid(grid_12x9, perm, resolution=16).sum() == grid_12x9.nnz

    def test_symmetric(self, geometric200):
        grid = density_grid(geometric200, resolution=20)
        np.testing.assert_array_equal(grid, grid.T)

    def test_diagonal_blocks_populated(self, path10):
        grid = density_grid(path10, resolution=5)
        assert np.all(np.diag(grid) > 0)

    def test_banded_matrix_concentrates_near_diagonal(self, path10):
        grid = density_grid(path10, resolution=10)
        off_band = grid[np.abs(np.subtract.outer(range(10), range(10))) > 1]
        assert off_band.sum() == 0

    def test_resolution_capped_at_n(self):
        grid = density_grid(path_pattern(3), resolution=64)
        assert grid.shape == (3, 3)


class TestAsciiSpy:
    def test_dimensions(self, grid_12x9):
        art = ascii_spy(grid_12x9, resolution=24)
        lines = art.splitlines()
        assert len(lines) == 24
        assert all(len(line) == 24 for line in lines)

    def test_empty_matrix_blank(self):
        art = ascii_spy(SymmetricPattern.empty(5), resolution=5)
        # only the diagonal is nonzero: corners must be blank
        lines = art.splitlines()
        assert lines[0][-1] == " "
        assert lines[-1][0] == " "

    def test_band_structure_visible(self, path10):
        art = ascii_spy(path10, resolution=10)
        lines = art.splitlines()
        assert lines[0][0] != " "      # diagonal populated
        assert lines[0][-1] == " "     # far off-diagonal empty

    def test_spectral_vs_rcm_render_differently(self):
        """The Figure 4.2-4.5 message: the reorderings look different."""
        pattern = airfoil_pattern(400, seed=4)
        spec = ascii_spy(pattern, spectral_ordering(pattern, method="lanczos").perm, resolution=24)
        rcm = ascii_spy(pattern, rcm_ordering(pattern).perm, resolution=24)
        assert spec != rcm


class TestBandProfile:
    def test_consistent_with_metrics(self, geometric200, rng):
        perm = rng.permutation(geometric200.n)
        profile = band_profile(geometric200, perm)
        assert profile["bandwidth"] == bandwidth(geometric200, perm)
        assert profile["envelope_size"] == envelope_size(geometric200, perm)
        assert profile["n"] == geometric200.n
        assert 0 <= profile["median_row_width"] <= profile["p95_row_width"] <= profile["bandwidth"]

    def test_spectral_vs_local_band_shape(self):
        """Numerical form of Figures 4.1-4.5: RCM gives a narrow band
        (small bandwidth); the spectral ordering gives a smaller envelope on
        unstructured meshes even when its bandwidth is larger."""
        pattern = airfoil_pattern(500, seed=4)
        spec = band_profile(pattern, spectral_ordering(pattern, method="lanczos").perm)
        rcm = band_profile(pattern, rcm_ordering(pattern).perm)
        assert spec["envelope_size"] < rcm["envelope_size"]
        assert spec["bandwidth"] >= rcm["bandwidth"] * 0.5  # usually larger, never tiny

    def test_mean_row_width_relation(self, path10):
        profile = band_profile(path10)
        assert profile["mean_row_width"] == pytest.approx(0.9)  # 9 widths of 1 over 10 rows
