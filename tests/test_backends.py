"""Tests of the per-kernel backend registry (:mod:`repro.backends`).

Covers the registry semantics (request resolution, env precedence, auto
threshold, fallback accounting), bit-identity of the loop kernels against
the vectorized production paths, the no-numba environment contract (silent
recorded fallback everywhere, structured exit 2 from the CLI flag), the
backend block of suite artifacts, the bench trend/diff backend dimension,
the threshold-calibration policy, and external-problem registration
(``repro fetch --register``).

The compiled ``numba`` tier is exercised when numba is importable
(``skipif`` otherwise) — the interpreted ``python`` tier runs the *same*
kernel code objects, so the identity guarantees are tested either way.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import backends
from repro.backends import kernels as loop_kernels
from repro.backends.policy import fit_threshold
from repro.cli import main
from repro.collections.meshes import grid2d_pattern
from repro.sparse.pattern import SymmetricPattern
from repro.utils.rng import default_rng

HAS_NUMBA = backends.numba_available()


@pytest.fixture(autouse=True)
def _clean_backend_state(monkeypatch):
    """Every test starts (and leaves) with no override, no env, no counters.

    The teardown pops the env vars directly: the CLI under test exports
    ``REPRO_BACKEND`` by writing ``os.environ`` itself, which monkeypatch
    (having seen the var absent at setup) would not undo.
    """
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_BACKEND_THRESHOLD", raising=False)
    backends.set_backend(None)
    backends.reset_events()
    yield
    os.environ.pop("REPRO_BACKEND", None)
    os.environ.pop("REPRO_BACKEND_THRESHOLD", None)
    backends.set_backend(None)
    backends.reset_events()


def _patterns() -> list[SymmetricPattern]:
    """A small corpus: meshes, a pendant chain, a disconnected graph."""
    rng = default_rng(77)
    out = [grid2d_pattern(9, 7), grid2d_pattern(4, 25)]
    # pendant-heavy
    edges = [(i, i + 1) for i in range(9)]
    edges += [(int(rng.integers(0, 10)), v) for v in range(10, 24)]
    out.append(SymmetricPattern.from_edges(24, edges))
    # disconnected with isolated vertices
    pairs = rng.integers(0, 12, size=(14, 2))
    out.append(SymmetricPattern.from_edges(20, [(int(a), int(b)) for a, b in pairs if a != b]))
    return out


PATTERNS = _patterns()


# --------------------------------------------------------------------- #
# registry semantics
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_requestable_names_normalize(self):
        assert backends.normalize_backend(" Auto ") == "auto"
        assert backends.normalize_backend("NUMPY") == "numpy"
        with pytest.raises(ValueError, match="unknown backend"):
            backends.normalize_backend("cython")

    def test_default_request_is_auto(self):
        assert backends.requested_backend() == "auto"

    def test_env_sets_request_and_override_outranks_it(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert backends.requested_backend() == "python"
        backends.set_backend("numpy")
        assert backends.requested_backend() == "numpy"
        backends.set_backend(None)
        assert backends.requested_backend() == "python"

    def test_invalid_env_is_auto_and_surfaced(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "warp-drive")
        assert backends.requested_backend() == "auto"
        assert backends.backend_status()["ignored_invalid_env"] == "warp-drive"

    def test_auto_threshold_env_override(self, monkeypatch):
        assert backends.auto_threshold() == backends.DEFAULT_AUTO_THRESHOLD
        monkeypatch.setenv("REPRO_BACKEND_THRESHOLD", "123")
        assert backends.auto_threshold() == 123
        monkeypatch.setenv("REPRO_BACKEND_THRESHOLD", "soon")
        with pytest.raises(ValueError, match="REPRO_BACKEND_THRESHOLD"):
            backends.auto_threshold()

    def test_available_backends_always_has_numpy_and_python(self):
        available = backends.available_backends()
        assert available[:2] == ["numpy", "python"]
        assert ("numba" in available) == HAS_NUMBA

    def test_resolve_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            backends.resolve_backend("fft", 10_000)

    def test_numpy_tier_returns_no_impl(self):
        backends.set_backend("numpy")
        for kernel in backends.KERNELS:
            assert backends.kernel_impl(kernel, 10**9) is None

    def test_python_tier_returns_loop_kernels_regardless_of_size(self):
        backends.set_backend("python")
        assert backends.kernel_impl("sloan", 1) is loop_kernels.sloan_kernel
        assert backends.kernel_impl("spmv", 1) is loop_kernels.csr_matvec_kernel

    def test_auto_below_threshold_is_numpy(self):
        backends.set_backend("auto")
        assert backends.resolve_backend("bfs_levels",
                                        backends.auto_threshold() - 1) == "numpy"

    def test_events_count_per_kernel_choice(self):
        backends.set_backend("python")
        backends.kernel_impl("sloan", 10)
        backends.kernel_impl("sloan", 10)
        backends.kernel_impl("bfs_order", 10)
        events = backends.backend_events()
        assert events["sloan:python"] == 2
        assert events["bfs_order:python"] == 1


class TestNoNumbaEnvironment:
    """The fallback contract when the compiled tier is absent."""

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_require_numba_raises_structured(self):
        with pytest.raises(backends.BackendUnavailableError) as excinfo:
            backends.require_backend("numba")
        err = excinfo.value
        assert err.backend == "numba"
        assert "available backends: numpy, python" in str(err)
        assert "--backend auto" in str(err)

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_explicit_numba_request_falls_back_and_is_counted(self, monkeypatch):
        # An *inherited* env request (worker process) must not crash — it
        # serves numpy and records the fallback.
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        assert backends.resolve_backend("sloan", 10**9) == "numpy"
        status = backends.backend_status()
        assert status["fallbacks"] == 1
        assert status["numba_available"] is False

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_auto_never_tries_numba(self):
        backends.set_backend("auto")
        assert backends.resolve_backend("spmv", 10**9) == "numpy"
        assert backends.backend_status()["fallbacks"] == 0

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_backend_summary_records_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        summary = backends.backend_summary()
        assert summary == {"requested": "numba", "numba_available": False,
                           "fallback": True}

    def test_backend_summary_no_fallback_for_auto(self):
        summary = backends.backend_summary()
        assert summary["requested"] == "auto"
        assert summary["fallback"] is False


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestCompiledTier:
    """Only when numba is importable: the JIT kernels match the loop tier."""

    def test_compiled_kernels_cover_every_kernel(self):
        from repro.backends.numba_backend import compiled_kernels

        assert set(compiled_kernels()) == set(backends.KERNELS)

    def test_compiled_matches_python_tier(self):
        pattern = PATTERNS[0]
        degrees = pattern.degree()
        n = pattern.n
        roots = np.asarray([0], dtype=np.intp)
        allowed = np.ones(n, dtype=bool)
        backends.set_backend("python")
        py = backends.kernel_impl("bfs_levels", 1)(
            pattern.indptr, pattern.indices, roots, allowed, n)
        backends.set_backend("numba")
        jit = backends.kernel_impl("bfs_levels", 1)(
            pattern.indptr, pattern.indices, roots, allowed, n)
        for a, b in zip(py[:3], jit[:3]):
            assert np.array_equal(a, b)
        assert py[3] == jit[3]
        backends.set_backend("python")
        py_order, py_tail = backends.kernel_impl("bfs_order", 1)(
            pattern.indptr, pattern.indices, degrees, 0, True, n)
        backends.set_backend("numba")
        jit_order, jit_tail = backends.kernel_impl("bfs_order", 1)(
            pattern.indptr, pattern.indices, degrees, 0, True, n)
        assert py_tail == jit_tail
        assert np.array_equal(py_order[:py_tail], jit_order[:jit_tail])

    def test_machine_info_reports_versions(self):
        from repro.bench import machine_info

        info = machine_info()
        assert "numba" in info and "llvmlite" in info


# --------------------------------------------------------------------- #
# kernel bit-identity against the production numpy paths
# --------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "backend", [b for b in backends.available_backends() if b != "numpy"]
)
class TestKernelIdentity:
    def _with_backend(self, backend, func):
        backends.set_backend(backend)
        try:
            return func()
        finally:
            backends.set_backend(None)

    def test_breadth_first_levels(self, backend):
        from repro.graph.traversal import breadth_first_levels

        for pattern in PATTERNS:
            rng = default_rng(pattern.n)
            mask = rng.random(pattern.n) < 0.8
            for roots, restrict in [(0, None), ([0, pattern.n - 1], None),
                                    (1, mask)]:
                base = breadth_first_levels(pattern, roots, restrict)
                tier = self._with_backend(
                    backend, lambda: breadth_first_levels(pattern, roots, restrict))
                assert np.array_equal(base.level_of, tier.level_of)
                assert len(base.levels) == len(tier.levels)
                for lv_a, lv_b in zip(base.levels, tier.levels):
                    assert np.array_equal(lv_a, lv_b)

    def test_bfs_order_both_enqueue_rules(self, backend):
        from repro.graph.traversal import bfs_order

        for pattern in PATTERNS:
            for sort_by_degree in (False, True):
                base = bfs_order(pattern, 0, sort_by_degree)
                tier = self._with_backend(
                    backend, lambda: bfs_order(pattern, 0, sort_by_degree))
                assert np.array_equal(base, tier)

    def test_sloan_weight_variants(self, backend):
        from repro.orderings.sloan import sloan_ordering

        for pattern in PATTERNS:
            for w1, w2 in [(2, 1), (1, 2), (0, 3), (16, 1)]:
                base = sloan_ordering(pattern, w1=w1, w2=w2)
                tier = self._with_backend(
                    backend, lambda: sloan_ordering(pattern, w1=w1, w2=w2))
                assert np.array_equal(base.perm, tier.perm), (w1, w2, pattern.n)

    def test_level_numbering_king_and_gps(self, backend):
        from repro.orderings.gps import gps_ordering
        from repro.orderings.king import king_ordering

        for pattern in PATTERNS:
            for func in (gps_ordering, king_ordering):
                base = func(pattern)
                tier = self._with_backend(backend, lambda: func(pattern))
                assert np.array_equal(base.perm, tier.perm)

    def test_spmv_matches_scipy_bitwise(self, backend):
        from repro.graph.laplacian import laplacian_matrix

        for pattern in PATTERNS[:2]:
            lap = laplacian_matrix(pattern).tocsr().astype(np.float64)
            v = default_rng(5).standard_normal(pattern.n)
            base = lap @ v
            matvec = self._with_backend(
                backend, lambda: backends.spmv_operator(lap))
            assert matvec is not None
            backends.set_backend(backend)
            try:
                out = matvec(v)
            finally:
                backends.set_backend(None)
            assert np.array_equal(base, out)  # bitwise, not approx

    def test_lanczos_end_to_end_identity(self, backend):
        from repro.eigen.lanczos import lanczos_smallest_nontrivial
        from repro.graph.laplacian import laplacian_matrix

        lap = laplacian_matrix(PATTERNS[0])
        base = lanczos_smallest_nontrivial(lap, rng=0)
        tier = self._with_backend(
            backend, lambda: lanczos_smallest_nontrivial(lap, rng=0))
        assert base.eigenvalue == tier.eigenvalue
        assert np.array_equal(base.eigenvector, tier.eigenvector)


class TestSpmvOperator:
    def test_none_for_numpy_tier(self):
        from repro.graph.laplacian import laplacian_matrix

        backends.set_backend("numpy")
        lap = laplacian_matrix(PATTERNS[0]).tocsr()
        assert backends.spmv_operator(lap) is None

    def test_none_for_non_csr_or_wrong_dtype(self):
        import scipy.sparse as sp

        backends.set_backend("python")
        assert backends.spmv_operator(np.eye(3)) is None
        coo = sp.coo_matrix(np.eye(3))
        assert backends.spmv_operator(coo) is None
        csr32 = sp.csr_matrix(np.eye(3, dtype=np.float32))
        assert backends.spmv_operator(csr32) is None


# --------------------------------------------------------------------- #
# suite artifacts: backend block, canonical identity across tiers
# --------------------------------------------------------------------- #
class TestSuiteArtifactBackend:
    def test_run_suite_records_backend_summary(self):
        from repro.batch import run_suite

        backends.set_backend("python")
        suite = run_suite(["POW9"], ["rcm"], scale=0.05)
        assert suite.backend["requested"] == "python"
        assert suite.backend["fallback"] is False

    def test_backend_only_in_timing_form_and_roundtrips(self):
        from repro.batch import run_suite
        from repro.batch.results import SuiteResult

        suite = run_suite(["POW9"], ["rcm"], scale=0.05)
        full = suite.to_dict(include_timing=True)
        canonical = suite.to_dict(include_timing=False)
        assert "backend" in full
        assert "backend" not in canonical
        restored = SuiteResult.from_json(suite.to_json())
        assert restored.backend == suite.backend

    def test_canonical_artifact_byte_identical_across_tiers(self):
        from repro.batch import run_suite

        texts = {}
        for backend in backends.available_backends():
            backends.set_backend(backend)
            try:
                suite = run_suite(["POW9"], ["rcm", "sloan"], scale=0.05)
            finally:
                backends.set_backend(None)
            texts[backend] = suite.to_json(include_timing=False)
        reference = texts["numpy"]
        for backend, text in texts.items():
            assert text == reference, f"tier {backend} drifted from numpy"


# --------------------------------------------------------------------- #
# bench: machine info, diff dimension, trend
# --------------------------------------------------------------------- #
def _bench_artifact(rev, created_s, backend, times):
    return {
        "kind": "repro-bench", "schema_version": 1, "rev": rev,
        "created_s": created_s, "config": {"backend": backend},
        "kernels": [{"name": name, "group": name.split("/")[0], "best_s": t}
                    for name, t in times.items()],
    }


class TestBenchBackendDimension:
    def test_machine_info_records_backend(self, monkeypatch):
        from repro.bench import machine_info

        monkeypatch.setenv("REPRO_BACKEND", "python")
        info = machine_info()
        assert info["backend"] == "python"
        assert info["numba_available"] == HAS_NUMBA

    def test_diff_carries_backend_pair_and_notes_mismatch(self):
        from repro.bench import diff_bench, format_diff

        a = _bench_artifact("r1", 1.0, "numpy", {"graph/bfs/X": 1.0})
        b = _bench_artifact("r2", 2.0, "numba", {"graph/bfs/X": 0.5})
        diff = diff_bench(a, b)
        assert diff["backends"] == ("numpy", "numba")
        assert "NOTE: backend tiers differ" in format_diff(diff)
        same = diff_bench(a, _bench_artifact("r3", 3.0, "numpy",
                                             {"graph/bfs/X": 0.9}))
        assert "NOTE: backend tiers differ" not in format_diff(same)

    def test_trend_sorts_by_creation_and_chains_geomeans(self):
        from repro.bench import format_trend, trend_bench

        a = _bench_artifact("r1", 100.0, "numpy",
                            {"orderings/rcm/X": 1.0, "graph/bfs/X": 0.8})
        b = _bench_artifact("r2", 200.0, "numpy",
                            {"orderings/rcm/X": 0.5, "graph/bfs/X": 0.8})
        c = _bench_artifact("r3", 300.0, "numba",
                            {"orderings/rcm/X": 0.25, "graph/bfs/X": 0.2})
        trend = trend_bench([c, a, b])  # order on disk must not matter
        assert trend["revisions"] == ["r1", "r2", "r3"]
        last = trend["steps"][-1]
        assert last["backends"] == ("numpy", "numba")
        assert last["cumulative"]["orderings"] == pytest.approx(4.0)
        assert last["cumulative"]["graph"] == pytest.approx(4.0)
        text = format_trend(trend)
        assert "cumulative" in text and "[numpy->numba]" in text

    def test_trend_requires_two_artifacts(self):
        from repro.bench import trend_bench

        with pytest.raises(ValueError, match="at least two"):
            trend_bench([_bench_artifact("r1", 1.0, "numpy", {})])

    def test_trend_disjoint_kernels_yield_no_speedup(self):
        from repro.bench import trend_bench

        a = _bench_artifact("r1", 1.0, "numpy", {"graph/old/X": 1.0})
        b = _bench_artifact("r2", 2.0, "numpy", {"graph/new/X": 0.1})
        trend = trend_bench([a, b])
        assert trend["steps"][0]["speedups"]["graph"] is None
        assert trend["steps"][0]["cumulative"]["graph"] == pytest.approx(1.0)


class TestThresholdPolicy:
    def _suite_artifact(self, backend, cells):
        return {"kind": "repro-bench", "schema_version": 1, "rev": backend,
                "config": {"backend": backend}, "suite": {"cells": cells}}

    def _cell(self, name, n, nnz, best, status="ok"):
        return {"problem": name, "algorithm": "rcm", "status": status,
                "n": n, "nnz": nnz, "best_s": best}

    def test_fits_the_crossover_work_size(self):
        base = self._suite_artifact("numpy", [
            self._cell("A", 100, 400, 0.001),
            self._cell("B", 1_000, 4_000, 0.010),
            self._cell("C", 10_000, 40_000, 0.100),
        ])
        comp = self._suite_artifact("numba", [
            self._cell("A", 100, 400, 0.002),
            self._cell("B", 1_000, 4_000, 0.005),
            self._cell("C", 10_000, 40_000, 0.020),
        ])
        calibration = fit_threshold(base, comp)
        assert calibration.threshold == 5_000
        assert calibration.loss_s == pytest.approx(0.0)
        assert not calibration.fallback
        assert "3 matched cell(s)" in calibration.describe()

    def test_no_matched_cells_falls_back_to_default(self):
        empty = self._suite_artifact("numpy", [])
        calibration = fit_threshold(empty, empty)
        assert calibration.fallback
        assert calibration.threshold == backends.DEFAULT_AUTO_THRESHOLD
        assert fit_threshold(empty, empty, default=777).threshold == 777

    def test_failed_and_sizeless_cells_are_ignored(self):
        base = self._suite_artifact("numpy", [
            self._cell("A", 100, 400, 0.001, status="failed"),
            {"problem": "B", "algorithm": "rcm", "status": "ok", "best_s": 0.01},
        ])
        comp = self._suite_artifact("numba", [
            self._cell("A", 100, 400, 0.002),
            {"problem": "B", "algorithm": "rcm", "status": "ok", "best_s": 0.01},
        ])
        assert fit_threshold(base, comp).fallback

    def test_compiled_always_slower_pushes_threshold_past_everything(self):
        base = self._suite_artifact("numpy", [
            self._cell("A", 100, 400, 0.001),
            self._cell("B", 1_000, 4_000, 0.010),
        ])
        comp = self._suite_artifact("numba", [
            self._cell("A", 100, 400, 0.010),
            self._cell("B", 1_000, 4_000, 0.100),
        ])
        calibration = fit_threshold(base, comp)
        assert calibration.threshold > 5_000  # above the largest work size


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
class TestCliBackend:
    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_explicit_numba_flag_exits_2_structured(self, capsys):
        code = main(["suite", "POW9", "--scale", "0.05", "--backend", "numba"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unavailable" in err and "numpy, python" in err

    @pytest.mark.skipif(HAS_NUMBA, reason="numba is installed here")
    def test_inherited_numba_env_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BACKEND", "numba")
        code = main(["suite", "POW9", "--scale", "0.05", "--algorithms", "rcm"])
        assert code == 2
        assert "REPRO_BACKEND" in capsys.readouterr().err

    def test_backend_flag_exported_and_announced(self, monkeypatch, capsys):
        code = main(["suite", "POW9", "--scale", "0.05",
                     "--algorithms", "rcm", "--backend", "python"])
        assert code == 0
        captured = capsys.readouterr()
        assert "kernel backend: python" in captured.err
        import os

        assert os.environ.get("REPRO_BACKEND") == "python"

    def test_suite_artifact_records_backend(self, tmp_path, capsys):
        out = tmp_path / "results.json"
        code = main(["suite", "POW9", "--scale", "0.05", "--algorithms", "rcm",
                     "--backend", "python", "--output", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["backend"]["requested"] == "python"

    def test_bench_trend_cli(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(_bench_artifact(
            "r1", 100.0, "numpy", {"graph/bfs/X": 1.0})))
        b.write_text(json.dumps(_bench_artifact(
            "r2", 200.0, "numba", {"graph/bfs/X": 0.25})))
        code = main(["bench", "--trend", str(a), str(b)])
        assert code == 0
        out = capsys.readouterr().out
        assert "bench trend: r1 -> r2" in out
        assert "4.00x" in out

    def test_bench_trend_needs_two_files(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(_bench_artifact("r1", 1.0, "numpy", {})))
        assert main(["bench", "--trend", str(a)]) == 2
        assert "at least two" in capsys.readouterr().err

    def test_bench_trend_unreadable_file_exits_2(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        a.write_text(json.dumps(_bench_artifact("r1", 1.0, "numpy", {})))
        assert main(["bench", "--trend", str(a), str(tmp_path / "nope.json")]) == 2


class TestExternalRegistration:
    def _register(self, tmp_path, monkeypatch, name="tiny5"):
        from repro.collections.external import register_external

        monkeypatch.setenv("REPRO_EXTERNAL_DIR", str(tmp_path / "ext"))
        pattern = grid2d_pattern(5, 4)
        return register_external(name, pattern, meta={"source": "test"})

    def test_register_and_resolve_as_problem(self, tmp_path, monkeypatch):
        from repro.collections.registry import (
            available_problems,
            expected_problem_size,
            get_problem_spec,
            has_analytic_size,
            load_problem,
        )

        spec = self._register(tmp_path, monkeypatch)
        assert spec.name == "EXT/TINY5"
        assert "EXT/TINY5" in available_problems("external")
        resolved = get_problem_spec("ext/tiny5")
        assert resolved is not None and resolved.n == spec.n
        pattern, loaded = load_problem("EXT/TINY5")
        assert pattern.n == spec.n and loaded.name == "EXT/TINY5"
        # fixed size: scale is ignored, exact n*nnz feeds the cost model
        big, _ = load_problem("EXT/TINY5", scale=0.001)
        assert big.n == pattern.n
        assert expected_problem_size("EXT/TINY5", scale=0.001) == spec.n * spec.nnz
        assert has_analytic_size("EXT/TINY5")

    def test_invalid_names_rejected(self, tmp_path, monkeypatch):
        with pytest.raises(ValueError, match="external problem name"):
            self._register(tmp_path, monkeypatch, name="bad name!")

    def test_suite_runs_external_problem(self, tmp_path, monkeypatch, capsys):
        self._register(tmp_path, monkeypatch)
        code = main(["suite", "EXT/TINY5", "--algorithms", "rcm",
                     "--backend", "python"])
        assert code == 0
        assert "EXT/TINY5" in capsys.readouterr().out

    def test_fetch_register_via_file_url(self, tmp_path, monkeypatch, capsys):
        from repro.sparse.io_mm import write_matrix_market

        monkeypatch.setenv("REPRO_EXTERNAL_DIR", str(tmp_path / "ext"))
        mtx = tmp_path / "tiny.mtx"
        write_matrix_market(mtx, grid2d_pattern(4, 4).to_scipy(), field="pattern")
        code = main(["fetch", mtx.as_uri(), "--cache", str(tmp_path / "cache"),
                     "--register", "grid44"])
        assert code == 0
        out = capsys.readouterr().out
        assert "registered as EXT/GRID44" in out
        from repro.collections.registry import load_problem

        pattern, _spec = load_problem("EXT/GRID44")
        assert pattern.n == 16

    def test_fetch_register_conflicts_with_no_ingest(self, tmp_path, capsys):
        code = main(["fetch", "HB/bcsstk13", "--cache", str(tmp_path),
                     "--no-ingest", "--register", "x"])
        assert code == 2
        assert "--register needs the ingest step" in capsys.readouterr().err


class TestServeStatsz:
    def test_statsz_reports_backend(self, monkeypatch):
        from repro.serve.app import _backend_status

        monkeypatch.setenv("REPRO_BACKEND", "python")
        status = _backend_status()
        assert status["requested"] == "python"
        assert status["numba_available"] == HAS_NUMBA
        assert "auto_threshold" in status
