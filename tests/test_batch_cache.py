"""Correctness of the suite-level problem cache and the degree memoization.

The batch engine memoizes surrogate patterns per worker process
(``repro.batch.engine._cached_pattern``) and ``SymmetricPattern.degree()``
memoizes the degree array on the pattern itself.  Both are pure caches: a
warm run must be **byte-identical in canonical form** to a cold one, and the
cache must actually be hit across the algorithms of a problem.
"""

from __future__ import annotations

import numpy as np

from repro.batch import clear_problem_cache, problem_cache_info, run_suite
from repro.batch.tasks import BatchTask, build_tasks
from repro.batch.engine import execute_task
from repro.collections.registry import load_problem
from repro.sparse.pattern import SymmetricPattern

PROBLEMS = ["POW9", "CAN1072"]
ALGORITHMS = ("rcm", "gps")
SCALE = 0.02


def test_cached_and_uncached_suite_runs_are_byte_identical():
    clear_problem_cache()
    cold = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
    cold_hits = problem_cache_info().hits
    warm = run_suite(PROBLEMS, ALGORITHMS, scale=SCALE)
    assert cold.to_json(include_timing=False) == warm.to_json(include_timing=False)
    # The warm run must have been served from the cache, not rebuilt.
    assert problem_cache_info().hits > cold_hits


def test_cache_is_shared_across_a_problems_algorithms():
    clear_problem_cache()
    tasks = build_tasks(PROBLEMS, ALGORITHMS, scale=SCALE, base_seed=0)
    for task in tasks:
        record = execute_task(task)
        assert record.status == "ok"
    info = problem_cache_info()
    # one miss per problem, one hit per extra algorithm of that problem
    assert info.misses == len(PROBLEMS)
    assert info.hits == len(tasks) - len(PROBLEMS)


def test_cached_pattern_record_matches_explicit_pattern():
    clear_problem_cache()
    task = BatchTask(problem="POW9", algorithm="rcm", scale=SCALE, seed=123)
    pattern, _spec = load_problem("POW9", scale=SCALE)
    via_cache = execute_task(task)
    explicit = execute_task(task, pattern=pattern)
    assert via_cache.to_dict(include_timing=False) == explicit.to_dict(include_timing=False)


def test_degree_memoization_returns_consistent_values():
    pattern = SymmetricPattern.from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5)])
    degrees = pattern.degree()
    assert degrees is pattern.degree()  # memoized: same array object
    assert np.array_equal(degrees, np.diff(pattern.indptr))
    assert pattern.degree(1) == 2
    # independent instances (copy / permute) do not share the cache
    clone = pattern.copy()
    assert clone.degree() is not degrees
    assert np.array_equal(clone.degree(), degrees)
