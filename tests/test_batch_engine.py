"""Tests for the parallel batch-experiment engine (repro.batch.engine)."""

import numpy as np
import pytest

from repro.batch.engine import execute_task, run_suite
from repro.batch.tasks import BatchTask, build_tasks, derive_seed
from repro.orderings.registry import ORDERING_ALGORITHMS, PAPER_ALGORITHMS

SCALE = 0.02


class TestBuildTasks:
    def test_cross_product_order_and_indices(self):
        tasks = build_tasks(["POW9", "CAN1072"], ("rcm", "gps"), scale=SCALE)
        assert [(t.problem, t.algorithm) for t in tasks] == [
            ("POW9", "rcm"), ("POW9", "gps"), ("CAN1072", "rcm"), ("CAN1072", "gps"),
        ]
        assert [t.index for t in tasks] == [0, 1, 2, 3]

    def test_case_insensitive_problem_names(self):
        tasks = build_tasks(["pow9"], ("rcm",))
        assert tasks[0].problem == "POW9"

    def test_unknown_problem_raises(self):
        with pytest.raises(ValueError, match="unknown problem"):
            build_tasks(["NOSUCH"], ("rcm",))

    def test_unknown_algorithm_raises(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_tasks(["POW9"], ("rcm", "amd"))

    def test_seeds_independent_of_task_order(self):
        forward = build_tasks(["POW9", "CAN1072"], ("rcm", "gps"))
        backward = build_tasks(["CAN1072", "POW9"], ("gps", "rcm"))
        seeds_forward = {(t.problem, t.algorithm): t.seed for t in forward}
        seeds_backward = {(t.problem, t.algorithm): t.seed for t in backward}
        assert seeds_forward == seeds_backward

    def test_base_seed_changes_seeds(self):
        assert derive_seed(0, "POW9", "rcm") != derive_seed(1, "POW9", "rcm")


class TestExecuteTask:
    def test_ok_record_has_metrics_and_ordering(self):
        task = BatchTask(problem="POW9", algorithm="rcm", scale=SCALE,
                         seed=derive_seed(0, "POW9", "rcm"))
        record = execute_task(task)
        assert record.ok and record.error is None
        assert record.n > 0 and record.nnz > 0
        assert record.metrics["envelope_size"] > 0
        assert sorted(record.ordering.perm.tolist()) == list(range(record.n))
        assert record.time_s >= 0

    def test_exception_becomes_failure_record(self, monkeypatch):
        def boom(pattern, **kwargs):
            raise RuntimeError("kaboom mid-suite")

        monkeypatch.setitem(ORDERING_ALGORITHMS, "boom", boom)
        record = execute_task(BatchTask(problem="POW9", algorithm="boom", scale=SCALE))
        assert not record.ok
        assert record.error["type"] == "RuntimeError"
        assert "kaboom" in record.error["message"]
        assert "Traceback" in record.error["traceback"]
        assert record.ordering is None

    def test_capture_errors_false_propagates(self, monkeypatch):
        def boom(pattern, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setitem(ORDERING_ALGORITHMS, "boom", boom)
        with pytest.raises(RuntimeError, match="kaboom"):
            execute_task(BatchTask(problem="POW9", algorithm="boom", scale=SCALE),
                         capture_errors=False)

    def test_rng_injected_deterministically(self):
        task = BatchTask(problem="POW9", algorithm="random", scale=SCALE, seed=123)
        a = execute_task(task)
        b = execute_task(task)
        assert np.array_equal(a.ordering.perm, b.ordering.perm)
        other = execute_task(
            BatchTask(problem="POW9", algorithm="random", scale=SCALE, seed=124)
        )
        assert not np.array_equal(a.ordering.perm, other.ordering.perm)


class TestRunSuite:
    def test_one_failure_does_not_kill_the_suite(self, monkeypatch):
        def boom(pattern, **kwargs):
            raise RuntimeError("kaboom mid-suite")

        monkeypatch.setitem(ORDERING_ALGORITHMS, "boom", boom)
        suite = run_suite(["POW9", "CAN1072"], ("rcm", "boom"), scale=SCALE)
        assert len(suite.records) == 4
        assert len(suite.failures) == 2
        assert {r.algorithm for r in suite.failures} == {"boom"}
        assert {r.algorithm for r in suite.ok_records} == {"rcm"}
        # the suite still renders and serializes
        assert "FAILED POW9/boom" in suite.to_text()
        reloaded = type(suite).from_json(suite.to_json())
        assert reloaded.failures[0].error["type"] == "RuntimeError"

    def test_empty_problem_list(self):
        suite = run_suite([], ("rcm",), scale=SCALE)
        assert suite.records == [] and suite.failures == []
        assert suite.winners() == {}
        roundtrip = type(suite).from_json(suite.to_json())
        assert roundtrip.to_dict() == suite.to_dict()

    def test_unknown_algorithm_raises_upfront(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_suite(["POW9"], ("rcm", "amd"), scale=SCALE)

    def test_unknown_problem_raises_upfront(self):
        with pytest.raises(ValueError, match="unknown problem"):
            run_suite(["NOSUCH"], ("rcm",), scale=SCALE)

    def test_invalid_n_jobs_raises(self):
        with pytest.raises(ValueError, match="n_jobs"):
            run_suite(["POW9"], ("rcm",), scale=SCALE, n_jobs=0)

    def test_json_round_trip_equality(self):
        suite = run_suite(["POW9"], ("rcm", "gps"), scale=SCALE)
        roundtrip = type(suite).from_json(suite.to_json())
        assert roundtrip.to_dict() == suite.to_dict()
        assert roundtrip.to_json() == suite.to_json()

    def test_parallel_matches_serial(self):
        serial = run_suite(["POW9", "CAN1072"], ("rcm", "gps"), scale=SCALE, n_jobs=1)
        parallel = run_suite(["POW9", "CAN1072"], ("rcm", "gps"), scale=SCALE, n_jobs=2)
        assert serial.diff(parallel) == []
        assert serial.to_json(include_timing=False) == parallel.to_json(include_timing=False)

    def test_parallel_returns_orderings(self):
        suite = run_suite(["POW9"], ("rcm",), scale=SCALE, n_jobs=2)
        # single task short-circuits to serial; force two tasks
        suite = run_suite(["POW9"], ("rcm", "gps"), scale=SCALE, n_jobs=2)
        for record in suite.records:
            assert sorted(record.ordering.perm.tolist()) == list(range(record.n))

    def test_keep_orderings_false_drops_permutations(self):
        suite = run_suite(["POW9"], ("rcm",), scale=SCALE, keep_orderings=False)
        assert all(record.ordering is None for record in suite.records)

    def test_parallel_shard_matches_serial_shard(self):
        serial = run_suite(["POW9", "CAN1072"], ("rcm", "gps"), scale=SCALE,
                           n_jobs=1, shard=(1, 2))
        parallel = run_suite(["POW9", "CAN1072"], ("rcm", "gps"), scale=SCALE,
                             n_jobs=2, shard=(1, 2))
        assert serial.to_json(include_timing=False) == parallel.to_json(include_timing=False)

    def test_records_in_task_order_regardless_of_completion_order(self):
        suite = run_suite(["POW9", "CAN1072"], ("rcm", "gps"), scale=SCALE, n_jobs=4)
        assert [(r.problem, r.algorithm) for r in suite.records] == [
            ("POW9", "rcm"), ("POW9", "gps"), ("CAN1072", "rcm"), ("CAN1072", "gps"),
        ]

    @pytest.mark.slow
    def test_parallel_four_jobs_matches_serial_on_paper_algorithms(self):
        problems = ["POW9", "CAN1072", "DWT2680"]
        serial = run_suite(problems, PAPER_ALGORITHMS, scale=0.03, n_jobs=1)
        parallel = run_suite(problems, PAPER_ALGORITHMS, scale=0.03, n_jobs=4)
        assert serial.diff(parallel) == []
        assert serial.to_json(include_timing=False) == parallel.to_json(include_timing=False)


class TestPerTaskTimeouts:
    """Callable (per-cell) timeouts — the --timeout auto machinery."""

    def test_callable_timeout_limits_only_selected_cells(self, monkeypatch):
        import time

        from repro.orderings.registry import ORDERING_ALGORITHMS

        monkeypatch.setitem(ORDERING_ALGORITHMS, "sleepy",
                            lambda p: time.sleep(30))
        policy = lambda task: 0.5 if task.algorithm == "sleepy" else None
        suite = run_suite(["POW9"], ("rcm", "sleepy"), scale=0.02,
                          timeout=policy)
        by_algorithm = {r.algorithm: r for r in suite.records}
        assert by_algorithm["rcm"].status == "ok"
        assert by_algorithm["sleepy"].status == "timeout"
        assert by_algorithm["sleepy"].time_s == 0.5

    def test_auto_timeout_policy_from_cost_model(self):
        from repro.batch import CostModel, auto_timeout
        from repro.batch.sched import AUTO_TIMEOUT_FLOOR_S, AUTO_TIMEOUT_SAFETY
        from repro.batch.tasks import BatchTask

        model = CostModel()
        model.observe("POW9", "rcm", 0.02, time_s=0.5)
        policy = auto_timeout(model)
        seen = BatchTask(problem="POW9", algorithm="rcm", scale=0.02)
        unseen = BatchTask(problem="POW9", algorithm="gps", scale=0.02)
        assert policy(seen) == max(AUTO_TIMEOUT_FLOOR_S,
                                   0.5 * AUTO_TIMEOUT_SAFETY)
        assert policy(unseen) is None
        assert model.observed_cell("POW9", "rcm", 0.02)
        assert not model.observed_cell("POW9", "rcm", 0.05)  # other scale

    def test_callable_timeout_escalation_grows_per_cell(self, monkeypatch):
        """Retried cells multiply their own base limit by the growth factor;
        the second attempt's larger window lets the task finish."""
        import time

        from repro.orderings.registry import ORDERING_ALGORITHMS

        monkeypatch.setitem(
            ORDERING_ALGORITHMS, "sleepy",
            lambda p: time.sleep(1.2) or ORDERING_ALGORITHMS["rcm"](p))
        policy = lambda task: 0.4 if task.algorithm == "sleepy" else None
        suite = run_suite(["POW9"], ("rcm", "sleepy"), scale=0.02,
                          timeout=policy, retry_timeouts=2, timeout_growth=3.0)
        by_algorithm = {r.algorithm: r for r in suite.records}
        assert by_algorithm["sleepy"].status == "ok"
        assert by_algorithm["rcm"].status == "ok"
